package stir

import (
	"context"
	"io"

	"stir/internal/admin"
	"stir/internal/dataio"
	"stir/internal/pipeline"
)

// Interchange surface: move datasets and results in and out of the library
// as line-oriented files (JSONL collections, the paper's '#'-delimited
// location strings, CSV group stats).

// ExportCollection writes the dataset's raw users and tweets as JSONL.
func (d *Dataset) ExportCollection(w io.Writer) error {
	users, tweets := pipeline.CollectFromService(d.Service)
	return dataio.WriteCollection(w, users, tweets)
}

// ExportLocationStrings writes the refined per-user merged location strings
// in the paper's Table-II format.
func (r *Result) ExportLocationStrings(w io.Writer) error {
	return dataio.WriteLocationStrings(w, r.Groupings)
}

// ExportGroupCSV writes the per-group analysis as CSV.
func (r *Result) ExportGroupCSV(w io.Writer) error {
	return dataio.WriteGroupCSV(w, &r.Analysis)
}

// AnalyzeCollection runs the §III pipeline over a JSONL collection exported
// earlier (or produced by other tooling). world selects the worldwide
// gazetteer.
func AnalyzeCollection(ctx context.Context, in io.Reader, world bool) (*Result, error) {
	users, tweets, err := dataio.ReadCollection(in)
	if err != nil {
		return nil, err
	}
	var gaz *admin.Gazetteer
	if world {
		gaz, err = admin.NewWorldGazetteer()
	} else {
		gaz, err = admin.NewKoreaGazetteer()
	}
	if err != nil {
		return nil, err
	}
	p := pipeline.New(gaz, 10)
	res, err := p.Run(ctx, users, tweets)
	if err != nil {
		return nil, err
	}
	return &Result{
		Funnel:          res.Funnel,
		Groupings:       res.Groupings,
		Analysis:        res.Analysis,
		ProfileDistrict: res.ProfileDistrict,
	}, nil
}

// ImportGroupings parses Table-II-format location strings back into
// per-user groupings, for analyses shipped without raw tweets.
func ImportGroupings(in io.Reader) ([]UserGrouping, error) {
	return dataio.ReadLocationStrings(in)
}
