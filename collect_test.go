package stir

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestCrawlAndAnalyzeStore exercises the full networked path: HTTP Twitter
// API → follower crawler with checkpointed store → HTTP geocoder → pipeline.
func TestCrawlAndAnalyzeStore(t *testing.T) {
	ds, err := NewKoreanDataset(DatasetOptions{Seed: 31, Users: 400, FollowerGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	apiSrv := httptest.NewServer(ds.TwitterHandler(APIOptions{}))
	defer apiSrv.Close()
	geoSrv := httptest.NewServer(ds.GeocodeHandler(0, time.Hour))
	defer geoSrv.Close()

	dir := t.TempDir()
	progress := 0
	stats, err := Crawl(context.Background(), CrawlOptions{
		BaseURL:  apiSrv.URL,
		StoreDir: dir,
		OnProgress: func(done, queued int) {
			progress++
		},
	}, ds.SeedUser())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 400 {
		t.Fatalf("crawled %d users, want 400 (connected graph)", stats.Users)
	}
	if progress != 400 {
		t.Fatalf("progress callbacks = %d", progress)
	}
	if stats.Tweets == 0 || stats.GeoTweets == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	res, err := AnalyzeStore(context.Background(), AnalyzeOptions{
		StoreDir:   dir,
		GeocodeURL: geoSrv.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.RawUsers != 400 {
		t.Fatalf("analyzed RawUsers = %d", res.Funnel.RawUsers)
	}
	// Cross-check: analysis of the crawled store must match analysis of the
	// service directly (same data, different path).
	direct, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.FinalUsers != direct.Funnel.FinalUsers {
		t.Fatalf("crawled-path final users %d != direct %d",
			res.Funnel.FinalUsers, direct.Funnel.FinalUsers)
	}
	if res.Analysis.Users != direct.Analysis.Users {
		t.Fatalf("crawled-path analysis users %d != direct %d",
			res.Analysis.Users, direct.Analysis.Users)
	}
}

func TestCrawlValidation(t *testing.T) {
	if _, err := Crawl(context.Background(), CrawlOptions{}); err == nil {
		t.Fatal("missing options accepted")
	}
}

func TestCrawlMaxUsersAndResume(t *testing.T) {
	ds, err := NewKoreanDataset(DatasetOptions{Seed: 37, Users: 120, FollowerGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ds.TwitterHandler(APIOptions{}))
	defer srv.Close()
	dir := t.TempDir()
	opts := CrawlOptions{BaseURL: srv.URL, StoreDir: dir, MaxUsers: 50}
	stats, err := Crawl(context.Background(), opts, ds.SeedUser())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 50 {
		t.Fatalf("first leg crawled %d", stats.Users)
	}
	opts.MaxUsers = 0
	stats, err = Crawl(context.Background(), opts) // resume, no seeds needed
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 120 {
		t.Fatalf("resume crawled %d, want 120", stats.Users)
	}
}

func TestResolvePoint(t *testing.T) {
	ds, err := NewKoreanDataset(DatasetOptions{Seed: 1, Users: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, err := ds.ResolvePoint(37.517, 126.866)
	if err != nil || d.County != "Yangcheon-gu" {
		t.Fatalf("ResolvePoint = %v, %v", d, err)
	}
	if _, err := ds.ResolvePoint(95, 0); err == nil {
		t.Fatal("invalid point accepted")
	}
}
