// Benchmark harness: one testing.B target per paper artifact (E1-E7 in
// DESIGN.md's experiment index) plus the design ablations and the hot-path
// micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
package stir_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"stir"
	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/eventdetect"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/gis"
	"stir/internal/homeloc"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/pipeline"
	"stir/internal/storage"
	"stir/internal/temporal"
	"stir/internal/twitter"
)

// benchEnv holds the shared fixture: a bench-scale Korean dataset plus its
// analysis, built once. Individual benchmarks then time their own slice of
// the computation.
type benchEnv struct {
	gaz       *admin.Gazetteer
	dataset   *stir.Dataset
	users     map[twitter.UserID]*twitter.User
	tweets    map[twitter.UserID][]*twitter.Tweet
	result    *stir.Result
	world     *stir.Dataset
	worldRes  *stir.Result
	geoPoints []geo.Point
}

var (
	envOnce sync.Once
	env     *benchEnv
	envErr  error
)

func getEnv(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		gaz, err := admin.NewKoreaGazetteer()
		if err != nil {
			envErr = err
			return
		}
		ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 2012, Users: 1500})
		if err != nil {
			envErr = err
			return
		}
		users, tweets := pipeline.CollectFromService(ds.Service)
		res, err := ds.Analyze(context.Background())
		if err != nil {
			envErr = err
			return
		}
		wds, err := stir.NewWorldDataset(stir.DatasetOptions{Seed: 2013, Users: 1000})
		if err != nil {
			envErr = err
			return
		}
		wres, err := wds.Analyze(context.Background())
		if err != nil {
			envErr = err
			return
		}
		var pts []geo.Point
		ds.Service.EachTweet(func(t *twitter.Tweet) bool {
			if t.Geo != nil {
				pts = append(pts, geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon})
			}
			return true
		})
		env = &benchEnv{
			gaz: gaz, dataset: ds, users: users, tweets: tweets,
			result: res, world: wds, worldRes: wres, geoPoints: pts,
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkE1Funnel times the full §III refinement pipeline — the
// computation behind the collection-funnel table (E1).
func BenchmarkE1Funnel(b *testing.B) {
	e := getEnv(b)
	p := pipeline.New(e.gaz, 10)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run(ctx, e.users, e.tweets)
		if err != nil {
			b.Fatal(err)
		}
		if res.Funnel.FinalUsers == 0 {
			b.Fatal("funnel produced no users")
		}
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on the E1
// funnel path: the same pipeline run with a live registry (funnel gauges,
// stage spans, resolver cache gauges) versus obs.Discard (typed-nil metrics,
// every call a no-op). The instrumented run must stay within a few percent of
// discard — the per-run cost is a handful of registry lookups and span
// timestamps against thousands of users processed.
func BenchmarkObsOverhead(b *testing.B) {
	e := getEnv(b)
	ctx := context.Background()
	for _, cfg := range []struct {
		name string
		reg  func() *obs.Registry
	}{
		{"instrumented", obs.NewRegistry},
		{"discard", func() *obs.Registry { return obs.Discard }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := pipeline.New(e.gaz, 10)
			p.Obs = cfg.reg()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(ctx, e.users, e.tweets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The same run with an unsampled distributed tracer wired in: Root
	// returns (ctx, nil) and every nil-span method is a no-op, so the cost
	// must match the discard baseline.
	b.Run("unsampled-trace", func(b *testing.B) {
		p := pipeline.New(e.gaz, 10)
		p.Obs = obs.Discard
		p.Trace = trace.New(trace.Options{Service: "bench", Sample: 0, Metrics: obs.Discard})
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(ctx, e.users, e.tweets); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The unsampled span surface in isolation — root, child, annotate, end —
	// must report 0 allocs/op: that is the contract that lets clients leave
	// tracing calls on the hot path unconditionally.
	b.Run("unsampled-trace-ops", func(b *testing.B) {
		tr := trace.New(trace.Options{Service: "bench", Sample: 0, Metrics: obs.Discard})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sctx, sp := tr.Root(ctx, "bench.root")
			_, child := trace.Start(sctx, "bench.child")
			child.Annotate("key", "value")
			child.AnnotateInt("n", int64(i))
			child.End()
			sp.End()
		}
	})
}

// analyzeRows re-aggregates the per-user groupings into the per-group stats
// and extracts one figure's series; this is the shared computation behind
// Figures 6-7 and the slide charts.
func analyzeRows(b *testing.B, groupings []core.UserGrouping, pick func(core.GroupStat) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		a := core.Analyze(groupings)
		var sink float64
		for _, g := range core.Groups() {
			sink += pick(a.Stat(g))
		}
		if sink == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkE2Fig6 regenerates Fig. 6 (average tweet districts per group).
func BenchmarkE2Fig6(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	analyzeRows(b, e.result.Groupings, func(s core.GroupStat) float64 { return s.AvgDistinctDistricts })
}

// BenchmarkE3Fig7 regenerates Fig. 7 (user share per group).
func BenchmarkE3Fig7(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	analyzeRows(b, e.result.Groupings, func(s core.GroupStat) float64 { return s.UserShare })
}

// BenchmarkE4TweetShare regenerates the slides' tweet-share chart.
func BenchmarkE4TweetShare(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	analyzeRows(b, e.result.Groupings, func(s core.GroupStat) float64 { return s.TweetShare })
}

// BenchmarkE5TwoDatasetsUsers regenerates the two-dataset user-share table.
func BenchmarkE5TwoDatasetsUsers(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ka := core.Analyze(e.result.Groupings)
		wa := core.Analyze(e.worldRes.Groupings)
		if ka.Users == 0 || wa.Users == 0 {
			b.Fatal("empty analyses")
		}
	}
}

// BenchmarkE6TwoDatasetsDistricts regenerates the two-dataset district table.
func BenchmarkE6TwoDatasetsDistricts(b *testing.B) {
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ka := core.Analyze(e.result.Groupings)
		wa := core.Analyze(e.worldRes.Groupings)
		if ka.OverallAvgDistricts <= wa.OverallAvgDistricts {
			b.Fatal("expected Korean avg districts above world")
		}
	}
}

// buildEventObservations prepares the E7 observation set once.
func buildEventObservations(b *testing.B) ([]eventdetect.Observation, geo.Rect) {
	b.Helper()
	e := getEnv(b)
	epi := geo.Point{Lat: 36.35, Lon: 127.38}
	weights := e.result.ReliabilityWeights(stir.WeightMatchShare)
	rng := rand.New(rand.NewSource(99))
	var obs []eventdetect.Observation
	for _, g := range e.result.Groupings {
		d := e.result.ProfileDistrict[twitter.UserID(g.UserID)]
		if d == nil || d.Center.DistanceKm(epi) > 60 {
			continue
		}
		obs = append(obs, eventdetect.Observation{
			Point:  d.Center,
			Weight: weights[g.UserID],
			Source: eventdetect.SourceProfile,
		})
	}
	for i := 0; i < 5; i++ {
		obs = append(obs, eventdetect.Observation{
			Point:  epi.Destination(rng.Float64()*360, rng.Float64()*5),
			Weight: 1,
			Source: eventdetect.SourceGPS,
		})
	}
	return obs, e.gaz.Bounds()
}

// BenchmarkE7EventEstimation times the reliability-weighted event-location
// estimation (Fig. 2 analogue) for each estimator.
func BenchmarkE7EventEstimation(b *testing.B) {
	obs, bounds := buildEventObservations(b)
	for _, m := range []eventdetect.Method{
		eventdetect.MethodMedian, eventdetect.MethodCentroid,
		eventdetect.MethodKalman, eventdetect.MethodParticle,
	} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eventdetect.EstimateLocation(obs, m, bounds, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGranularity compares the pipeline at the paper's county
// granularity against state granularity.
func BenchmarkAblationGranularity(b *testing.B) {
	e := getEnv(b)
	ctx := context.Background()
	for _, stateLevel := range []bool{false, true} {
		name := "county"
		if stateLevel {
			name = "state"
		}
		b.Run(name, func(b *testing.B) {
			p := pipeline.New(e.gaz, 10)
			p.StateLevel = stateLevel
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(ctx, e.users, e.tweets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGeocodeCache measures reverse geocoding with and without
// an effective cache.
func BenchmarkAblationGeocodeCache(b *testing.B) {
	e := getEnv(b)
	gazFn := func(p geo.Point, slack float64) (geocode.Location, error) {
		d, err := e.gaz.ResolvePoint(p, slack)
		if err != nil {
			return geocode.Location{}, err
		}
		return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
	}
	ctx := context.Background()
	run := func(b *testing.B, r *geocode.DirectResolver) {
		for i := 0; i < b.N; i++ {
			p := e.geoPoints[i%len(e.geoPoints)]
			if _, err := r.Reverse(ctx, p); err != nil && err != geocode.ErrNoMatch {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) {
		r := geocode.NewDirectResolver(gazFn, 10, 65536)
		r.SetQuantizeDecimals(2)
		run(b, r)
	})
	b.Run("uncached", func(b *testing.B) {
		r := geocode.NewDirectResolver(gazFn, 10, 1)
		r.SetQuantizeDecimals(2)
		run(b, r)
	})
}

// BenchmarkAblationSpatialIndex compares point lookups across the three
// index structures.
func BenchmarkAblationSpatialIndex(b *testing.B) {
	e := getEnv(b)
	rt := gis.NewRTree()
	grid := gis.NewGrid(e.gaz.Bounds(), 48, 48)
	lin := gis.NewLinear()
	for _, d := range e.gaz.Districts() {
		it := gis.Item{Bounds: d.Bounds(), Value: d.ID()}
		rt.Insert(it)
		grid.Insert(it)
		lin.Insert(it)
	}
	pts := e.geoPoints
	for name, idx := range map[string]gis.Index{"rtree": rt, "grid": grid, "linear": lin} {
		b.Run(name, func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				if len(idx.SearchPoint(pts[i%len(pts)])) > 0 {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no lookups hit")
			}
		})
	}
}

// BenchmarkAblationWeightForm compares the three reliability-weight forms as
// inputs to the particle-filter estimator.
func BenchmarkAblationWeightForm(b *testing.B) {
	e := getEnv(b)
	obs, bounds := buildEventObservations(b)
	for _, form := range []stir.WeightForm{
		stir.WeightHardTop1, stir.WeightGroupPrior, stir.WeightMatchShare,
	} {
		b.Run(form.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := e.result.ReliabilityWeights(form)
				local := make([]eventdetect.Observation, len(obs))
				copy(local, obs)
				for j := range local {
					if local[j].Source == eventdetect.SourceProfile {
						// Re-key observation weights under this form; the
						// profile obs order matches groupings order only
						// approximately, so use the mean weight — the
						// bench measures cost, not accuracy.
						local[j].Weight = meanWeight(w)
					}
				}
				if _, err := eventdetect.EstimateLocation(local, eventdetect.MethodParticle, bounds, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func meanWeight(w map[int64]float64) float64 {
	if len(w) == 0 {
		return 1
	}
	var s float64
	for _, v := range w {
		s += v
	}
	m := s / float64(len(w))
	if m <= 0 {
		m = 0.01
	}
	return m
}

// --- hot-path micro-benchmarks ---

// BenchmarkGroupingBuild times the core text-based grouping method on a
// realistic per-user tweet multiset.
func BenchmarkGroupingBuild(b *testing.B) {
	profile := core.Place{State: "Seoul", County: "Yangcheon-gu"}
	places := make([]core.Place, 0, 24)
	rng := rand.New(rand.NewSource(1))
	pool := []core.Place{
		profile,
		{State: "Seoul", County: "Jung-gu"},
		{State: "Seoul", County: "Mapo-gu"},
		{State: "Gyeonggi-do", County: "Bucheon-si"},
		{State: "Gyeonggi-do", County: "Seongnam-si"},
	}
	for i := 0; i < 24; i++ {
		places = append(places, pool[rng.Intn(len(pool))])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := core.BuildUserGrouping(42, profile, places)
		if u.TotalTweets != 24 {
			b.Fatal("bad grouping")
		}
	}
}

// BenchmarkLocStringParse times Table-I wire-format parsing.
func BenchmarkLocStringParse(b *testing.B) {
	s := "1001#Seoul#Yangcheon-gu#Seoul#Seodaemun-gu"
	for i := 0; i < b.N; i++ {
		if _, err := core.ParseLocString(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHaversine times the distance primitive under everything.
func BenchmarkHaversine(b *testing.B) {
	p := geo.Point{Lat: 37.5665, Lon: 126.9780}
	q := geo.Point{Lat: 35.1796, Lon: 129.0756}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.DistanceKm(q)
	}
	if sink == 0 {
		b.Fatal("no distance computed")
	}
}

// BenchmarkStoragePut times crawl-store appends.
func BenchmarkStoragePut(b *testing.B) {
	dir := b.TempDir()
	st, err := storage.Open(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put(fmt.Sprintf("tweet/%012d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeocodeResolve times a gazetteer point resolution (R-tree path).
func BenchmarkGeocodeResolve(b *testing.B) {
	e := getEnv(b)
	pts := e.geoPoints
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.gaz.ResolvePoint(pts[i%len(pts)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurstDetect times the Toretter burst scan over a day of reports.
func BenchmarkBurstDetect(b *testing.B) {
	base := time.Date(2011, 10, 5, 0, 0, 0, 0, time.UTC)
	var times []time.Time
	for i := 0; i < 1000; i++ {
		times = append(times, base.Add(time.Duration(i)*90*time.Second))
	}
	for i := 0; i < 50; i++ {
		times = append(times, base.Add(14*time.Hour).Add(time.Duration(i)*10*time.Second))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := eventdetect.DetectBursts(times, 10*time.Minute, 10, 4); len(got) == 0 {
			b.Fatal("burst not found")
		}
	}
}

// BenchmarkGeohashEncode times the spatial-key primitive.
func BenchmarkGeohashEncode(b *testing.B) {
	p := geo.Point{Lat: 37.5172, Lon: 126.8664}
	for i := 0; i < b.N; i++ {
		if h := geo.Encode(p, 8); len(h) != 8 {
			b.Fatal("bad hash")
		}
	}
}

// BenchmarkRTreeBuild compares incremental insertion against STR bulk load
// for the gazetteer-sized dataset.
func BenchmarkRTreeBuild(b *testing.B) {
	e := getEnv(b)
	items := make([]gis.Item, 0, e.gaz.Len())
	for _, d := range e.gaz.Districts() {
		items = append(items, gis.Item{Bounds: d.Bounds(), Value: d.ID()})
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt := gis.NewRTree()
			for _, it := range items {
				rt.Insert(it)
			}
		}
	})
	b.Run("str-bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rt := gis.BulkLoadSTR(items, 4, 16); rt.Len() != len(items) {
				b.Fatal("bad bulk load")
			}
		}
	})
}

// BenchmarkStorageBatchCommit compares N separate puts against one batch.
func BenchmarkStorageBatchCommit(b *testing.B) {
	val := make([]byte, 200)
	b.Run("20-puts", func(b *testing.B) {
		st, err := storage.Open(b.TempDir(), storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 20; j++ {
				if err := st.Put(fmt.Sprintf("k%d/%d", i, j), val); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("1-batch-of-20", func(b *testing.B) {
		st, err := storage.Open(b.TempDir(), storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		for i := 0; i < b.N; i++ {
			batch := st.NewBatch()
			for j := 0; j < 20; j++ {
				batch.Put(fmt.Sprintf("k%d/%d", i, j), val)
			}
			if err := batch.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTemporalProfile times the extension's posting-behaviour analysis.
func BenchmarkTemporalProfile(b *testing.B) {
	times := make([]time.Time, 200)
	base := time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := range times {
		times[i] = base.Add(time.Duration(i*97) * time.Minute)
	}
	for i := 0; i < b.N; i++ {
		p := temporal.BuildProfile(1, times, temporal.KST)
		if p.Total != 200 {
			b.Fatal("bad profile")
		}
		if _, err := temporal.Burstiness(times); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHomePrediction times the content/GPS home predictor per user.
func BenchmarkHomePrediction(b *testing.B) {
	e := getEnv(b)
	pred := &homeloc.Predictor{
		Gaz: e.gaz,
		Resolver: geocode.NewDirectResolver(func(p geo.Point, slack float64) (geocode.Location, error) {
			d, err := e.gaz.ResolvePoint(p, slack)
			if err != nil {
				return geocode.Location{}, err
			}
			return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
		}, 10, 65536),
	}
	var tweets []*twitter.Tweet
	e.dataset.Service.EachTweet(func(t *twitter.Tweet) bool {
		if t.Geo != nil {
			tweets = append(tweets, t)
		}
		return len(tweets) < 30
	})
	if len(tweets) == 0 {
		b.Skip("no geo tweets in bench env")
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(ctx, tweets); err != nil {
			b.Fatal(err)
		}
	}
}
