package stir

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// analyzeSmall is shared fixture plumbing: a small but statistically
// meaningful Korean dataset.
func analyzeSmall(t testing.TB, seed int64, users int) (*Dataset, *Result) {
	t.Helper()
	ds, err := NewKoreanDataset(DatasetOptions{Seed: seed, Users: users})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

func TestDatasetAnalyzeEndToEnd(t *testing.T) {
	_, res := analyzeSmall(t, 1, 4000)
	if res.Funnel.RawUsers != 4000 {
		t.Fatalf("RawUsers = %d", res.Funnel.RawUsers)
	}
	if res.Analysis.Users == 0 {
		t.Fatal("no users survived the funnel")
	}
	if res.Analysis.Users != res.Funnel.FinalUsers {
		t.Fatalf("analysis users %d != funnel final %d", res.Analysis.Users, res.Funnel.FinalUsers)
	}
	// Paper shape: Top-1 is the largest single Top group.
	top1 := res.Analysis.Stat(Top1).UserShare
	for _, g := range []Group{Top2, Top3, Top4, Top5, TopPlus} {
		if res.Analysis.Stat(g).UserShare > top1 {
			t.Fatalf("%v share exceeds Top-1", g)
		}
	}
}

func TestReliabilityWeightsFromResult(t *testing.T) {
	_, res := analyzeSmall(t, 3, 3000)
	w := res.ReliabilityWeights(WeightMatchShare)
	if len(w) != len(res.Groupings) {
		t.Fatalf("weights = %d, groupings = %d", len(w), len(res.Groupings))
	}
	for id, v := range w {
		if v < 0 || v > 1 {
			t.Fatalf("weight[%d] = %v out of [0,1]", id, v)
		}
	}
	// Hard form only rewards Top-1.
	hard := res.ReliabilityWeights(WeightHardTop1)
	for _, g := range res.Groupings {
		want := 0.0
		if g.Group == Top1 {
			want = 1
		}
		if hard[g.UserID] != want {
			t.Fatalf("hard weight of %v user = %v", g.Group, hard[g.UserID])
		}
	}
}

func TestFormatters(t *testing.T) {
	_, res := analyzeSmall(t, 5, 2000)
	out := FormatAnalysis(&res.Analysis)
	for _, needle := range []string{"Top-1", "None", "Fig. 7", "Fig. 6", "overall match share"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("FormatAnalysis missing %q:\n%s", needle, out)
		}
	}
	fun := FormatFunnel(&res.Funnel)
	for _, needle := range []string{"crawled users", "final users", "GPS"} {
		if !strings.Contains(fun, needle) {
			t.Fatalf("FormatFunnel missing %q:\n%s", needle, fun)
		}
	}
}

func TestWorldDataset(t *testing.T) {
	ds, err := NewWorldDataset(DatasetOptions{Seed: 7, Users: 1500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.Users == 0 {
		t.Fatal("world dataset produced no final users")
	}
	if ds.Kind != "world" {
		t.Fatalf("Kind = %q", ds.Kind)
	}
}

func TestEventWeightingImprovesEstimate(t *testing.T) {
	ds, err := NewKoreanDataset(DatasetOptions{Seed: 11, Users: 4000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opts := EventOptions{Seed: 23, Method: MethodParticle, GeoFraction: 0.05}
	truth, err := ds.InjectEvent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Reports < 30 {
		t.Fatalf("too few event reports (%d) for a meaningful comparison", truth.Reports)
	}
	unweighted, err := ds.EstimateEvent(context.Background(), truth, res, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := ds.EstimateEvent(context.Background(), truth, res,
		res.ReliabilityWeights(WeightMatchShare), opts)
	if err != nil {
		t.Fatal(err)
	}
	if unweighted.Observations == 0 || weighted.Observations == 0 {
		t.Fatal("estimators used no observations")
	}
	// The central claim: reliability weighting should not make the estimate
	// worse, and the weighted error should be city-scale.
	if weighted.ErrorKm > unweighted.ErrorKm+5 {
		t.Fatalf("weighted %.1f km much worse than unweighted %.1f km",
			weighted.ErrorKm, unweighted.ErrorKm)
	}
	if weighted.ErrorKm > 60 {
		t.Fatalf("weighted estimate %.1f km off", weighted.ErrorKm)
	}
}

func TestEstimateEventValidation(t *testing.T) {
	ds, err := NewKoreanDataset(DatasetOptions{Seed: 1, Users: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EstimateEvent(context.Background(), nil, nil, nil, EventOptions{}); err == nil {
		t.Fatal("missing truth/result accepted")
	}
}

func TestDatasetOptionDefaults(t *testing.T) {
	var o DatasetOptions
	o.fill()
	if o.Seed != 1 || o.Users != 5200 {
		t.Fatalf("defaults = %+v", o)
	}
	var e EventOptions
	e.fill("korean")
	if e.Keyword != "earthquake" || e.RadiusKm != 40 || e.Epicenter.Lat == 0 {
		t.Fatalf("event defaults = %+v", e)
	}
	var ew EventOptions
	ew.fill("world")
	if ew.Epicenter == e.Epicenter {
		t.Fatal("world default epicentre should differ")
	}
}

// TestEmbeddedGeocodeMatchesDefault pins the end-to-end contract of the
// geofast swap: AnalyzeWith on the embedded grid resolver produces the same
// funnel, groupings and analysis — byte-for-byte under JSON — as the default
// R-tree DirectResolver path.
func TestEmbeddedGeocodeMatchesDefault(t *testing.T) {
	ds, res := analyzeSmall(t, 3, 1500)
	fast, err := ds.AnalyzeWith(context.Background(), AnalyzeOptions{EmbeddedGeocode: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("embedded-geocode result diverges from default:\nembedded %s\ndefault  %s", got, want)
	}
}
