package stir_test

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"stir"
)

// TestMetricsFacade runs an analysis and checks the snapshot and handler both
// surface the funnel through the default registry.
func TestMetricsFacade(t *testing.T) {
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 7, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	snap := stir.Metrics()
	m, ok := snap.Get("stir_funnel", "stage", "raw_users")
	if !ok || m.Value != float64(res.Funnel.RawUsers) {
		t.Fatalf("stir_funnel{stage=raw_users} = %+v ok=%v, want %d", m, ok, res.Funnel.RawUsers)
	}

	srv := httptest.NewServer(stir.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `stir_funnel{stage="final_users"}`) {
		t.Fatalf("scrape missing funnel gauge:\n%.500s", body)
	}
}
