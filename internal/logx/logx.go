// Package logx is STIR's structured logger: one key=value line per event,
// stamped with timestamp, level, service, and — when the context carries an
// active span — the trace ID, so a log line and its distributed trace at
// /debug/trace cross-reference each other. It replaces the bare log.Printf
// calls in the daemon mains; the trace middleware's slow-request log and the
// overload server's lifecycle messages both feed through it.
//
// A nil *Logger is a no-op, matching the obs/trace convention, so components
// can take an optional logger without guards.
package logx

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"stir/internal/obs/trace"
)

// Levels, in increasing severity.
const (
	LevelDebug = "debug"
	LevelInfo  = "info"
	LevelWarn  = "warn"
	LevelError = "error"
)

// Logger writes structured key=value lines. Safe for concurrent use.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	service string
	now     func() time.Time
}

// New builds a logger writing to w (nil means os.Stderr), stamping service
// on every line.
func New(w io.Writer, service string) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{w: w, service: service, now: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (l *Logger) SetClock(now func() time.Time) {
	if l == nil || now == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Log emits one line at level with alternating key, value pairs. Values are
// formatted with %v and quoted when they contain spaces, quotes, or '='. A
// context carrying an active trace span contributes trace=<id>.
func (l *Logger) Log(ctx context.Context, level, msg string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.Grow(128)
	l.mu.Lock()
	ts := l.now().UTC()
	l.mu.Unlock()
	b.WriteString("ts=")
	b.WriteString(ts.Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level)
	if l.service != "" {
		b.WriteString(" service=")
		writeValue(&b, l.service)
	}
	if ctx != nil {
		if sp := trace.FromContext(ctx); sp != nil {
			b.WriteString(" trace=")
			b.WriteString(sp.TraceID().String())
		}
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		writeValue(&b, fmt.Sprintf("%v", kv[i+1]))
	}
	if len(kv)%2 == 1 { // dangling key: surface it rather than drop it
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[len(kv)-1])
		b.WriteString("=MISSING")
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// Debug, Info, Warn and Error emit at their respective levels.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelDebug, msg, kv...)
}
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) { l.Log(ctx, LevelInfo, msg, kv...) }
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) { l.Log(ctx, LevelWarn, msg, kv...) }
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.Log(ctx, LevelError, msg, kv...)
}

// Printf adapts the logger to the classic log.Printf shape components like
// overload.ServerOptions.Logf expect: the formatted string becomes the msg
// of an info-level line.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.Log(nil, LevelInfo, fmt.Sprintf(format, args...))
}

// Fatal logs msg at error level and exits 1 — the structured stand-in for
// log.Fatal in daemon mains.
func (l *Logger) Fatal(msg string, kv ...any) {
	l.Log(nil, LevelError, msg, kv...)
	osExit(1)
}

// osExit is swappable so tests can observe Fatal without dying.
var osExit = os.Exit

// writeValue writes v, quoting when it contains characters that would break
// key=value tokenization.
func writeValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}
