package logx

import (
	"context"
	"strings"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

func TestLogLine(t *testing.T) {
	var b strings.Builder
	l := New(&b, "stir")
	l.SetClock(fixedClock)
	l.Info(context.Background(), "started", "addr", ":8080", "shards", 4)
	got := b.String()
	want := `ts=2026-08-08T12:00:00Z level=info service=stir msg=started addr=:8080 shards=4` + "\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLogQuoting(t *testing.T) {
	var b strings.Builder
	l := New(&b, "s")
	l.SetClock(fixedClock)
	l.Warn(nil, "two words", "err", `broken "pipe" x=1`)
	got := b.String()
	if !strings.Contains(got, `msg="two words"`) {
		t.Fatalf("msg not quoted: %q", got)
	}
	if !strings.Contains(got, `err="broken \"pipe\" x=1"`) {
		t.Fatalf("value not quoted: %q", got)
	}
}

func TestLogTraceID(t *testing.T) {
	tr := trace.New(trace.Options{Service: "s", Sample: 1, Metrics: obs.NewRegistry()})
	ctx, sp := tr.Root(context.Background(), "op")
	defer sp.End()

	var b strings.Builder
	l := New(&b, "s")
	l.SetClock(fixedClock)
	l.Info(ctx, "traced")
	if !strings.Contains(b.String(), " trace="+sp.TraceID().String()+" ") {
		t.Fatalf("line lacks trace ID: %q", b.String())
	}

	b.Reset()
	l.Info(context.Background(), "untraced")
	if strings.Contains(b.String(), " trace=") {
		t.Fatalf("untraced line carries trace ID: %q", b.String())
	}
}

func TestDanglingKey(t *testing.T) {
	var b strings.Builder
	l := New(&b, "s")
	l.SetClock(fixedClock)
	l.Error(nil, "oops", "orphan")
	if !strings.Contains(b.String(), "orphan=MISSING") {
		t.Fatalf("dangling key dropped: %q", b.String())
	}
}

func TestPrintfAdapter(t *testing.T) {
	var b strings.Builder
	l := New(&b, "twitterd")
	l.SetClock(fixedClock)
	l.Printf("listening on %s", ":9001")
	got := b.String()
	if !strings.Contains(got, "level=info") || !strings.Contains(got, `msg="listening on :9001"`) {
		t.Fatalf("Printf line = %q", got)
	}
}

func TestNilLogger(t *testing.T) {
	var l *Logger
	l.Info(context.Background(), "nothing")
	l.Printf("nothing %d", 1)
	l.SetClock(fixedClock)
}

func TestFatal(t *testing.T) {
	code := -1
	old := osExit
	osExit = func(c int) { code = c }
	defer func() { osExit = old }()

	var b strings.Builder
	l := New(&b, "s")
	l.SetClock(fixedClock)
	l.Fatal("boom", "err", "down")
	if code != 1 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(b.String(), "level=error") || !strings.Contains(b.String(), "err=down") {
		t.Fatalf("fatal line = %q", b.String())
	}
}
