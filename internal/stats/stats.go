// Package stats provides the descriptive statistics the analysis and the
// experiment harness report: moments, quantiles, histograms, rank and linear
// correlation, and bootstrap confidence intervals.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty reports a statistic of an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch reports paired samples of different lengths.
var ErrLengthMismatch = errors.New("stats: sample length mismatch")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Pearson returns the linear correlation of paired samples.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the rank correlation of paired samples (average ranks for
// ties).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return Pearson(rx, ry)
}

// ranks assigns 1-based average ranks.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Histogram counts samples into uniform bins over [min,max]; samples outside
// clamp into the end bins.
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram with the given bin count.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 || max <= min {
		return nil, errors.New("stats: bad histogram shape")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Min) / (h.Max - h.Min))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.N++
}

// Share returns the fraction of samples in bin i.
func (h *Histogram) Share(i int) float64 {
	if h.N == 0 || i < 0 || i >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BootstrapCI estimates a (1-alpha) confidence interval for statistic f by
// resampling xs with replacement rounds times, deterministically from seed.
func BootstrapCI(xs []float64, f func([]float64) float64, rounds int, alpha float64, seed int64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if rounds <= 0 {
		rounds = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, errors.New("stats: alpha out of (0,1)")
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, rounds)
	buf := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = f(buf)
	}
	lo, err = Quantile(vals, alpha/2)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Quantile(vals, 1-alpha/2)
	return lo, hi, err
}
