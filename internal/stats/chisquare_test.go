package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Reference values from standard χ² tables.
	cases := []struct {
		x, k, want float64
	}{
		{3.841, 1, 0.95},
		{5.991, 2, 0.95},
		{7.815, 3, 0.95},
		{0.0, 4, 0.0},
		{18.307, 10, 0.95},
		{2.706, 1, 0.90},
	}
	for _, tc := range cases {
		got := chiSquareCDF(tc.x, tc.k)
		if math.Abs(got-tc.want) > 0.001 {
			t.Errorf("chiSquareCDF(%v, %v) = %.4f, want %.4f", tc.x, tc.k, got, tc.want)
		}
	}
}

func TestChiSquareGoFPerfectFit(t *testing.T) {
	observed := []int{50, 30, 20}
	expected := []float64{0.5, 0.3, 0.2}
	stat, p, err := ChiSquareGoF(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || p < 0.999 {
		t.Fatalf("perfect fit: stat=%v p=%v", stat, p)
	}
}

func TestChiSquareGoFBadFit(t *testing.T) {
	// Heavily skewed observations against a uniform expectation.
	observed := []int{100, 0, 0, 0}
	expected := []float64{0.25, 0.25, 0.25, 0.25}
	stat, p, err := ChiSquareGoF(observed, expected)
	if err != nil {
		t.Fatal(err)
	}
	if stat < 100 || p > 1e-6 {
		t.Fatalf("bad fit not detected: stat=%v p=%v", stat, p)
	}
}

func TestChiSquareGoFSampledFromExpected(t *testing.T) {
	// Draw a large multinomial sample from the expected distribution; the
	// p-value should usually be comfortably above 0.01.
	expected := []float64{0.46, 0.13, 0.04, 0.02, 0.01, 0.01, 0.33}
	rng := rand.New(rand.NewSource(5))
	rejected := 0
	for trial := 0; trial < 50; trial++ {
		observed := make([]int, len(expected))
		for i := 0; i < 2000; i++ {
			r := rng.Float64()
			acc := 0.0
			for j, e := range expected {
				acc += e
				if r < acc {
					observed[j]++
					break
				}
			}
		}
		_, p, err := ChiSquareGoF(observed, expected)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.01 {
			rejected++
		}
	}
	if rejected > 4 {
		t.Fatalf("rejected %d/50 true-null samples at α=0.01", rejected)
	}
}

func TestChiSquareGoFValidation(t *testing.T) {
	if _, _, err := ChiSquareGoF(nil, nil); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("empty err = %v", err)
	}
	if _, _, err := ChiSquareGoF([]int{1}, []float64{0.5, 0.5}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatch err = %v", err)
	}
	if _, _, err := ChiSquareGoF([]int{0, 0}, []float64{0.5, 0.5}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("zero-total err = %v", err)
	}
	if _, _, err := ChiSquareGoF([]int{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("negative observation accepted")
	}
	if _, _, err := ChiSquareGoF([]int{1, 1}, []float64{0.9, 0.9}); !errors.Is(err, ErrBadExpected) {
		t.Fatalf("non-normalised shares err = %v", err)
	}
	// Zero expected share with observations → impossible fit.
	stat, p, err := ChiSquareGoF([]int{5, 5}, []float64{0, 1})
	if err != nil || !math.IsInf(stat, 1) || p != 0 {
		t.Fatalf("impossible fit: stat=%v p=%v err=%v", stat, p, err)
	}
	// Zero expected share with zero observations is fine.
	if _, _, err := ChiSquareGoF([]int{0, 10}, []float64{0, 1}); err != nil {
		t.Fatalf("empty zero-bin rejected: %v", err)
	}
}
