package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || !almost(m, 5) {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || !almost(v, 32.0/7) {
		t.Fatalf("Variance = %v, %v", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || !almost(sd, math.Sqrt(32.0/7)) {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty mean accepted")
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("single-sample variance accepted")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{3, 1, 2}
	med, err := Median(xs)
	if err != nil || !almost(med, 2) {
		t.Fatalf("Median = %v, %v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if !almost(q0, 1) || !almost(q1, 3) {
		t.Fatalf("extremes = %v, %v", q0, q1)
	}
	q25, _ := Quantile([]float64{1, 2, 3, 4}, 0.25)
	if !almost(q25, 1.75) {
		t.Fatalf("q25 = %v", q25)
	}
	one, _ := Quantile([]float64{42}, 0.7)
	if !almost(one, 42) {
		t.Fatalf("single-sample quantile = %v", one)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("bad q accepted")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty quantile accepted")
	}
	// Quantile must not mutate its input.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1) {
		t.Fatalf("perfect anti-correlation = %v", r)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestSpearmanMonotonic(t *testing.T) {
	// Any monotone transform has rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := Spearman(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("Spearman = %v, %v", r, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	r, err := Spearman(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("tied Spearman = %v, %v", r, err)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10, 15, -3} {
		h.Add(x)
	}
	if h.N != 8 {
		t.Fatalf("N = %d", h.N)
	}
	// Bins: [0,2)(incl clamped -3): 0,1.9,-3 → 3; [2,4): 2 → 1; [4,6): 5 → 1;
	// [8,10](incl clamped 10,15): 9.99,10,15 → 3.
	want := []int{3, 1, 1, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if !almost(h.Share(0), 3.0/8) {
		t.Fatalf("Share(0) = %v", h.Share(0))
	}
	if h.Share(-1) != 0 || h.Share(99) != 0 {
		t.Fatal("out-of-range share should be 0")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	mean := func(s []float64) float64 { m, _ := Mean(s); return m }
	lo, hi, err := BootstrapCI(xs, mean, 500, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("CI inverted: [%v,%v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v,%v] misses true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI [%v,%v] too wide for n=500", lo, hi)
	}
	// Determinism.
	lo2, hi2, _ := BootstrapCI(xs, mean, 500, 0.05, 7)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
	if _, _, err := BootstrapCI(nil, mean, 10, 0.05, 1); err == nil {
		t.Fatal("empty bootstrap accepted")
	}
	if _, _, err := BootstrapCI(xs, mean, 10, 1.5, 1); err == nil {
		t.Fatal("bad alpha accepted")
	}
}
