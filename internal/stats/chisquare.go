package stats

import (
	"errors"
	"math"
)

// Chi-squared goodness of fit: does an observed group histogram match an
// expected distribution? The experiment suite uses it to verify the Top-k
// distribution is stable across generator seeds.

// ErrBadExpected reports unusable expected shares.
var ErrBadExpected = errors.New("stats: expected shares must be positive and sum to ~1")

// ChiSquareGoF returns the chi-squared statistic and p-value for observed
// counts against expected shares. Bins with expected share zero must have
// zero observations (otherwise the fit is impossible and p=0 is returned).
// Degrees of freedom are len(observed)-1.
func ChiSquareGoF(observed []int, expectedShares []float64) (stat, p float64, err error) {
	if len(observed) == 0 || len(observed) != len(expectedShares) {
		return 0, 0, ErrLengthMismatch
	}
	total := 0
	for _, o := range observed {
		if o < 0 {
			return 0, 0, errors.New("stats: negative observation")
		}
		total += o
	}
	if total == 0 {
		return 0, 0, ErrEmpty
	}
	var shareSum float64
	for _, e := range expectedShares {
		if e < 0 {
			return 0, 0, ErrBadExpected
		}
		shareSum += e
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		return 0, 0, ErrBadExpected
	}
	df := -1
	for i, o := range observed {
		exp := expectedShares[i] * float64(total)
		if exp == 0 {
			if o != 0 {
				return math.Inf(1), 0, nil
			}
			continue // empty bin contributes nothing, not even df
		}
		df++
		d := float64(o) - exp
		stat += d * d / exp
	}
	if df <= 0 {
		return stat, 1, nil
	}
	p = 1 - chiSquareCDF(stat, float64(df))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return stat, p, nil
}

// chiSquareCDF is P(X ≤ x) for X ~ χ²(k): the regularised lower incomplete
// gamma P(k/2, x/2).
func chiSquareCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(k/2, x/2)
}

// regIncGammaLower computes P(a,x) using the series for x < a+1 and the
// continued fraction for the complement otherwise (Numerical Recipes 6.2).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
