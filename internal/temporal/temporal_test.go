package temporal

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var day0 = time.Date(2011, 9, 5, 0, 0, 0, 0, time.UTC) // a Monday

func atHour(h int) time.Time { return day0.Add(time.Duration(h) * time.Hour) }

func TestBuildProfileBasics(t *testing.T) {
	times := []time.Time{atHour(10), atHour(10), atHour(14), atHour(22)}
	p := BuildProfile(7, times, time.UTC)
	if p.UserID != 7 || p.Total != 4 {
		t.Fatalf("profile = %+v", p)
	}
	if p.HourCounts[10] != 2 || p.HourCounts[14] != 1 || p.HourCounts[22] != 1 {
		t.Fatalf("hour counts = %v", p.HourCounts)
	}
	if p.DayCounts[1] != 4 { // Monday
		t.Fatalf("day counts = %v", p.DayCounts)
	}
	if p.PeakHour() != 10 {
		t.Fatalf("peak = %d", p.PeakHour())
	}
}

func TestTimezoneShift(t *testing.T) {
	// 23:00 UTC is 08:00 KST next day.
	times := []time.Time{day0.Add(23 * time.Hour)}
	utc := BuildProfile(1, times, time.UTC)
	kst := BuildProfile(1, times, KST)
	if utc.PeakHour() != 23 {
		t.Fatalf("utc peak = %d", utc.PeakHour())
	}
	if kst.PeakHour() != 8 {
		t.Fatalf("kst peak = %d", kst.PeakHour())
	}
	if BuildProfile(1, times, nil).PeakHour() != 23 {
		t.Fatal("nil loc should mean UTC")
	}
}

func TestEmptyProfile(t *testing.T) {
	p := BuildProfile(1, nil, nil)
	if p.PeakHour() != -1 || p.HourEntropy() != 0 || p.WeekendShare() != 0 {
		t.Fatalf("empty profile stats wrong: %+v", p)
	}
	if p.Class() != Uniform {
		t.Fatalf("empty class = %v", p.Class())
	}
}

func TestHourEntropyExtremes(t *testing.T) {
	// All in one hour → entropy 0.
	var times []time.Time
	for i := 0; i < 50; i++ {
		times = append(times, atHour(9))
	}
	p := BuildProfile(1, times, nil)
	if p.HourEntropy() != 0 {
		t.Fatalf("concentrated entropy = %v", p.HourEntropy())
	}
	// One in each hour → entropy 1.
	times = nil
	for h := 0; h < 24; h++ {
		times = append(times, atHour(h))
	}
	p = BuildProfile(1, times, nil)
	if math.Abs(p.HourEntropy()-1) > 1e-12 {
		t.Fatalf("uniform entropy = %v", p.HourEntropy())
	}
	if p.Class() != Uniform {
		t.Fatalf("uniform class = %v", p.Class())
	}
}

func TestActivityClasses(t *testing.T) {
	mk := func(hours ...int) Profile {
		var times []time.Time
		for _, h := range hours {
			for i := 0; i < 10; i++ {
				times = append(times, atHour(h))
			}
		}
		return BuildProfile(1, times, nil)
	}
	cases := []struct {
		p    Profile
		want ActivityClass
	}{
		{mk(10, 11, 14, 16), Daytime},
		{mk(19, 20, 22), Evening},
		{mk(1, 2, 3), Night},
		{mk(7, 8), Morning},
	}
	for i, tc := range cases {
		if got := tc.p.Class(); got != tc.want {
			t.Errorf("case %d: Class = %v, want %v", i, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[ActivityClass]string{
		Uniform: "uniform", Daytime: "daytime", Evening: "evening",
		Night: "night", Morning: "morning", ActivityClass(99): "unknown",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), w)
		}
	}
}

func TestWeekendShare(t *testing.T) {
	sat := time.Date(2011, 9, 10, 12, 0, 0, 0, time.UTC)
	times := []time.Time{day0.Add(10 * time.Hour), sat, sat.Add(time.Hour)}
	p := BuildProfile(1, times, nil)
	if math.Abs(p.WeekendShare()-2.0/3) > 1e-12 {
		t.Fatalf("weekend share = %v", p.WeekendShare())
	}
}

func TestBurstinessPeriodic(t *testing.T) {
	var times []time.Time
	for i := 0; i < 50; i++ {
		times = append(times, day0.Add(time.Duration(i)*time.Hour))
	}
	b, err := Burstiness(times)
	if err != nil {
		t.Fatal(err)
	}
	if b > -0.99 {
		t.Fatalf("periodic burstiness = %v, want ~-1", b)
	}
}

func TestBurstinessBursty(t *testing.T) {
	// Long silences punctuated by rapid volleys.
	var times []time.Time
	cur := day0
	r := rand.New(rand.NewSource(1))
	for burst := 0; burst < 20; burst++ {
		cur = cur.Add(time.Duration(10+r.Intn(200)) * time.Hour)
		for i := 0; i < 10; i++ {
			cur = cur.Add(time.Duration(1+r.Intn(20)) * time.Second)
			times = append(times, cur)
		}
	}
	b, err := Burstiness(times)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.5 {
		t.Fatalf("bursty burstiness = %v, want > 0.5", b)
	}
}

func TestBurstinessErrorsAndBounds(t *testing.T) {
	if _, err := Burstiness([]time.Time{day0, day0.Add(time.Hour)}); !errors.Is(err, ErrTooFewEvents) {
		t.Fatalf("too-few err = %v", err)
	}
	// All simultaneous events: zero gaps, defined result.
	b, err := Burstiness([]time.Time{day0, day0, day0})
	if err != nil || b != 0 {
		t.Fatalf("degenerate burstiness = %v, %v", b, err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(100)
		times := make([]time.Time, n)
		for i := range times {
			times[i] = day0.Add(time.Duration(r.Int63n(int64(30 * 24 * time.Hour))))
		}
		b, err := Burstiness(times)
		if err != nil {
			return false
		}
		return b >= -1-1e-9 && b <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveDays(t *testing.T) {
	times := []time.Time{
		day0.Add(2 * time.Hour),
		day0.Add(3 * time.Hour),
		day0.Add(26 * time.Hour),
	}
	if got := ActiveDays(times, time.UTC); got != 2 {
		t.Fatalf("ActiveDays = %d", got)
	}
	// 23:30 UTC on one day is the next day in KST.
	edge := []time.Time{day0.Add(23*time.Hour + 30*time.Minute)}
	if ActiveDays(edge, time.UTC) != 1 || ActiveDays(edge, KST) != 1 {
		t.Fatal("single event must be one day in any zone")
	}
	if ActiveDays(nil, nil) != 0 {
		t.Fatal("no events, no days")
	}
}
