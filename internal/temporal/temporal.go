// Package temporal analyses posting behaviour over time — the companion
// study to the spatial-correlation paper (the same group's "A Temporal
// Analysis of Posting Behavior in Social Media Streams"). STIR uses it as an
// extension: temporal regularity is a second, independent signal of how
// much a user's self-reported attributes can be trusted, and the library
// lets the two be correlated.
package temporal

import (
	"errors"
	"math"
	"sort"
	"time"
)

// ActivityClass buckets a user's dominant posting period.
type ActivityClass int

// Activity classes by local posting hour.
const (
	// Uniform posting spreads across the whole day (high hour entropy).
	Uniform ActivityClass = iota
	// Daytime concentrates in 09:00-18:00.
	Daytime
	// Evening concentrates in 18:00-24:00.
	Evening
	// Night concentrates in 00:00-06:00.
	Night
	// Morning concentrates in 06:00-09:00.
	Morning
)

// String implements fmt.Stringer.
func (c ActivityClass) String() string {
	switch c {
	case Uniform:
		return "uniform"
	case Daytime:
		return "daytime"
	case Evening:
		return "evening"
	case Night:
		return "night"
	case Morning:
		return "morning"
	default:
		return "unknown"
	}
}

// Profile is one user's temporal posting profile.
type Profile struct {
	UserID     int64
	HourCounts [24]int
	DayCounts  [7]int // Sunday = 0
	Total      int
}

// BuildProfile accumulates posting timestamps into a profile. loc selects
// the local timezone (nil means UTC; the Korean dataset should use KST).
func BuildProfile(userID int64, times []time.Time, loc *time.Location) Profile {
	if loc == nil {
		loc = time.UTC
	}
	p := Profile{UserID: userID}
	for _, t := range times {
		lt := t.In(loc)
		p.HourCounts[lt.Hour()]++
		p.DayCounts[int(lt.Weekday())]++
		p.Total++
	}
	return p
}

// KST is the fixed Korea Standard Time zone used for the Korean dataset.
var KST = time.FixedZone("KST", 9*60*60)

// PeakHour returns the hour of day with the most posts (ties favour the
// earlier hour); -1 for an empty profile.
func (p Profile) PeakHour() int {
	if p.Total == 0 {
		return -1
	}
	best, bestCount := 0, p.HourCounts[0]
	for h := 1; h < 24; h++ {
		if p.HourCounts[h] > bestCount {
			best, bestCount = h, p.HourCounts[h]
		}
	}
	return best
}

// HourEntropy returns the normalised Shannon entropy of the hour histogram
// in [0,1]: 0 means all posts in one hour, 1 means perfectly uniform.
func (p Profile) HourEntropy() float64 {
	if p.Total == 0 {
		return 0
	}
	var h float64
	for _, c := range p.HourCounts {
		if c == 0 {
			continue
		}
		f := float64(c) / float64(p.Total)
		h -= f * math.Log2(f)
	}
	return h / math.Log2(24)
}

// periodShare sums the share of posts within [from,to) hours.
func (p Profile) periodShare(from, to int) float64 {
	if p.Total == 0 {
		return 0
	}
	var c int
	for h := from; h < to; h++ {
		c += p.HourCounts[h]
	}
	return float64(c) / float64(p.Total)
}

// Class buckets the profile by its dominant period; profiles with hour
// entropy above 0.9 are Uniform regardless.
func (p Profile) Class() ActivityClass {
	if p.Total == 0 || p.HourEntropy() > 0.9 {
		return Uniform
	}
	type period struct {
		share float64
		class ActivityClass
		width float64
	}
	periods := []period{
		{p.periodShare(9, 18), Daytime, 9},
		{p.periodShare(18, 24), Evening, 6},
		{p.periodShare(0, 6), Night, 6},
		{p.periodShare(6, 9), Morning, 3},
	}
	best := periods[0]
	bestDensity := best.share / best.width
	for _, pr := range periods[1:] {
		if d := pr.share / pr.width; d > bestDensity {
			best, bestDensity = pr, d
		}
	}
	return best.class
}

// WeekendShare returns the fraction of posts on Saturday/Sunday.
func (p Profile) WeekendShare() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.DayCounts[0]+p.DayCounts[6]) / float64(p.Total)
}

// ErrTooFewEvents reports a burstiness query on fewer than three events.
var ErrTooFewEvents = errors.New("temporal: need at least 3 events")

// Burstiness returns the Goh-Barabási burstiness of the inter-arrival
// times: (σ-μ)/(σ+μ) in [-1,1]. -1 is perfectly periodic, 0 is Poisson,
// values near 1 are extremely bursty.
func Burstiness(times []time.Time) (float64, error) {
	if len(times) < 3 {
		return 0, ErrTooFewEvents
	}
	ts := append([]time.Time(nil), times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	gaps := make([]float64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i].Sub(ts[i-1]).Seconds())
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var varr float64
	for _, g := range gaps {
		d := g - mean
		varr += d * d
	}
	varr /= float64(len(gaps))
	sigma := math.Sqrt(varr)
	if sigma+mean == 0 {
		return 0, nil
	}
	return (sigma - mean) / (sigma + mean), nil
}

// ActiveDays returns how many distinct calendar days (in loc) have posts.
func ActiveDays(times []time.Time, loc *time.Location) int {
	if loc == nil {
		loc = time.UTC
	}
	days := make(map[string]struct{})
	for _, t := range times {
		days[t.In(loc).Format("2006-01-02")] = struct{}{}
	}
	return len(days)
}
