// Package ratelimit provides the fixed-window request budget used by the
// simulated Twitter API and the reverse-geocoding service: N requests per
// window, with the window reset time reported so clients can sleep until it.
package ratelimit

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Limiter is a fixed-window rate limiter.
type Limiter struct {
	mu       sync.Mutex
	limit    int
	window   time.Duration
	used     int
	resetAt  time.Time
	now      func() time.Time
	disabled bool
}

// New allows limit requests per window. A non-positive limit disables
// limiting (used by tests and offline pipelines).
func New(limit int, window time.Duration) *Limiter {
	return &Limiter{
		limit:    limit,
		window:   window,
		now:      time.Now,
		disabled: limit <= 0,
	}
}

// SetClock overrides the limiter's time source; tests use this to avoid
// sleeping through real windows.
func (r *Limiter) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Status describes the current window.
type Status struct {
	Limit     int
	Remaining int
	ResetAt   time.Time
}

// SetHeaders writes the standard X-RateLimit-* headers for the window. A
// disabled limiter (Limit 0) writes nothing, matching endpoints that do not
// advertise budgets.
func (st Status) SetHeaders(h http.Header) {
	if st.Limit <= 0 {
		return
	}
	h.Set("X-RateLimit-Limit", strconv.Itoa(st.Limit))
	h.Set("X-RateLimit-Remaining", strconv.Itoa(st.Remaining))
	h.Set("X-RateLimit-Reset", strconv.FormatInt(st.ResetAt.Unix(), 10))
}

// RetryAfterSeconds returns the whole seconds a 429 response should advertise
// in Retry-After: the time until the window resets, rounded up, never less
// than one (Retry-After has second granularity, and "0" invites an immediate
// retry into the same exhausted window).
func (st Status) RetryAfterSeconds(now time.Time) int {
	wait := st.ResetAt.Sub(now)
	if wait <= 0 {
		return 1
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Allow consumes one request if the budget permits, returning the resulting
// status and whether the request may proceed.
func (r *Limiter) Allow() (Status, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return Status{Limit: 0, Remaining: 1 << 30}, true
	}
	// Reset at the advertised instant, not after it: Retry-After and
	// X-RateLimit-Reset both promise the budget is back at resetAt, so a
	// client that sleeps exactly that long must be admitted.
	now := r.now()
	if !now.Before(r.resetAt) {
		r.used = 0
		r.resetAt = now.Add(r.window)
	}
	st := Status{Limit: r.limit, ResetAt: r.resetAt}
	if r.used >= r.limit {
		st.Remaining = 0
		return st, false
	}
	r.used++
	st.Remaining = r.limit - r.used
	return st, true
}
