// Package ratelimit provides the fixed-window request budget used by the
// simulated Twitter API and the reverse-geocoding service: N requests per
// window, with the window reset time reported so clients can sleep until it.
// KeyedLimiter layers per-client windows on top (keyed by bearer token,
// falling back to remote IP), so one hot client cannot drain a server's
// whole shared budget.
package ratelimit

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Limiter is a fixed-window rate limiter.
type Limiter struct {
	mu       sync.Mutex
	limit    int
	window   time.Duration
	used     int
	resetAt  time.Time
	now      func() time.Time
	disabled bool
}

// New allows limit requests per window. A non-positive limit disables
// limiting (used by tests and offline pipelines).
func New(limit int, window time.Duration) *Limiter {
	return &Limiter{
		limit:    limit,
		window:   window,
		now:      time.Now,
		disabled: limit <= 0,
	}
}

// SetClock overrides the limiter's time source; tests use this to avoid
// sleeping through real windows.
func (r *Limiter) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Status describes the current window.
type Status struct {
	Limit     int
	Remaining int
	ResetAt   time.Time
}

// SetHeaders writes the standard X-RateLimit-* headers for the window. A
// disabled limiter (Limit 0) writes nothing, matching endpoints that do not
// advertise budgets.
func (st Status) SetHeaders(h http.Header) {
	if st.Limit <= 0 {
		return
	}
	h.Set("X-RateLimit-Limit", strconv.Itoa(st.Limit))
	h.Set("X-RateLimit-Remaining", strconv.Itoa(st.Remaining))
	h.Set("X-RateLimit-Reset", strconv.FormatInt(st.ResetAt.Unix(), 10))
}

// RetryAfterSeconds returns the whole seconds a 429 response should advertise
// in Retry-After: the time until the window resets, rounded up, never less
// than one (Retry-After has second granularity, and "0" invites an immediate
// retry into the same exhausted window).
func (st Status) RetryAfterSeconds(now time.Time) int {
	wait := st.ResetAt.Sub(now)
	if wait <= 0 {
		return 1
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Allow consumes one request if the budget permits, returning the resulting
// status and whether the request may proceed.
func (r *Limiter) Allow() (Status, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.disabled {
		return Status{Limit: 0, Remaining: 1 << 30}, true
	}
	// Reset at the advertised instant, not after it: Retry-After and
	// X-RateLimit-Reset both promise the budget is back at resetAt, so a
	// client that sleeps exactly that long must be admitted.
	now := r.now()
	if !now.Before(r.resetAt) {
		r.used = 0
		r.resetAt = now.Add(r.window)
	}
	st := Status{Limit: r.limit, ResetAt: r.resetAt}
	if r.used >= r.limit {
		st.Remaining = 0
		return st, false
	}
	r.used++
	st.Remaining = r.limit - r.used
	return st, true
}

// DefaultMaxKeys bounds how many client windows a KeyedLimiter tracks.
const DefaultMaxKeys = 4096

// KeyedLimiter is a fixed-window limiter per client key: each key gets its
// own budget of limit requests per window. Use ClientKey to derive the key
// from a request (bearer token, else remote IP). Expired windows are swept
// when the table fills, and the oldest window is evicted if sweeping is not
// enough, so the table stays bounded under key churn.
type KeyedLimiter struct {
	mu       sync.Mutex
	limit    int
	window   time.Duration
	now      func() time.Time
	disabled bool
	maxKeys  int
	clients  map[string]*clientWindow
}

// clientWindow is one key's current fixed window.
type clientWindow struct {
	used    int
	resetAt time.Time
}

// NewKeyed allows limit requests per window per client key. A non-positive
// limit disables limiting.
func NewKeyed(limit int, window time.Duration) *KeyedLimiter {
	return &KeyedLimiter{
		limit:    limit,
		window:   window,
		now:      time.Now,
		disabled: limit <= 0,
		maxKeys:  DefaultMaxKeys,
		clients:  make(map[string]*clientWindow),
	}
}

// SetClock overrides the limiter's time source for tests.
func (k *KeyedLimiter) SetClock(now func() time.Time) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.now = now
}

// SetMaxKeys adjusts the tracked-client bound (non-positive restores the
// default).
func (k *KeyedLimiter) SetMaxKeys(n int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if n <= 0 {
		n = DefaultMaxKeys
	}
	k.maxKeys = n
}

// Keys reports how many client windows are currently tracked.
func (k *KeyedLimiter) Keys() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.clients)
}

// Allow consumes one request from key's window if its budget permits,
// returning the per-client status (suitable for Status.SetHeaders) and
// whether the request may proceed.
func (k *KeyedLimiter) Allow(key string) (Status, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.disabled {
		return Status{Limit: 0, Remaining: 1 << 30}, true
	}
	now := k.now()
	cw, ok := k.clients[key]
	if !ok {
		if len(k.clients) >= k.maxKeys {
			k.evictLocked(now)
		}
		cw = &clientWindow{}
		k.clients[key] = cw
	}
	// Same reset-at-the-advertised-instant discipline as Limiter.Allow: a
	// client that sleeps exactly until resetAt must be admitted.
	if !now.Before(cw.resetAt) {
		cw.used = 0
		cw.resetAt = now.Add(k.window)
	}
	st := Status{Limit: k.limit, ResetAt: cw.resetAt}
	if cw.used >= k.limit {
		st.Remaining = 0
		return st, false
	}
	cw.used++
	st.Remaining = k.limit - cw.used
	return st, true
}

// evictLocked drops every expired window; if none had expired, it evicts
// the window closest to expiry (the least useful entry to keep).
func (k *KeyedLimiter) evictLocked(now time.Time) {
	oldestKey, oldest := "", time.Time{}
	dropped := false
	for key, cw := range k.clients {
		if !now.Before(cw.resetAt) {
			delete(k.clients, key)
			dropped = true
			continue
		}
		if oldestKey == "" || cw.resetAt.Before(oldest) {
			oldestKey, oldest = key, cw.resetAt
		}
	}
	if !dropped && oldestKey != "" {
		delete(k.clients, oldestKey)
	}
}

// ClientKey identifies the caller for per-client limiting: the bearer token
// when the request carries one (each credential gets its own budget, however
// many connections it opens), else the remote IP.
func ClientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok && strings.TrimSpace(tok) != "" {
			return "token:" + strings.TrimSpace(tok)
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host
}
