package ratelimit

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestKeyedIndependentBudgets(t *testing.T) {
	kl := NewKeyed(2, time.Minute)
	now := t0
	kl.SetClock(func() time.Time { return now })

	// Client a exhausts its budget; client b is untouched.
	for i := 0; i < 2; i++ {
		if _, ok := kl.Allow("token:a"); !ok {
			t.Fatalf("a request %d denied", i)
		}
	}
	if _, ok := kl.Allow("token:a"); ok {
		t.Fatal("a's third request should be limited")
	}
	st, ok := kl.Allow("token:b")
	if !ok {
		t.Fatal("b denied despite a fresh budget")
	}
	if st.Limit != 2 || st.Remaining != 1 {
		t.Fatalf("b status = %+v, want Limit 2 Remaining 1", st)
	}

	// a's window resets on schedule.
	now = now.Add(2 * time.Minute)
	if _, ok := kl.Allow("token:a"); !ok {
		t.Fatal("a denied after window reset")
	}
}

func TestKeyedDisabled(t *testing.T) {
	kl := NewKeyed(0, time.Minute)
	for i := 0; i < 100; i++ {
		if _, ok := kl.Allow("token:a"); !ok {
			t.Fatal("disabled keyed limiter denied a request")
		}
	}
	if kl.Keys() != 0 {
		t.Fatalf("disabled limiter tracked %d keys, want 0", kl.Keys())
	}
}

func TestKeyedStatusDrivesHeaders(t *testing.T) {
	kl := NewKeyed(5, time.Minute)
	now := t0
	kl.SetClock(func() time.Time { return now })
	st, ok := kl.Allow("token:a")
	if !ok {
		t.Fatal("denied")
	}
	h := make(http.Header)
	st.SetHeaders(h)
	if got := h.Get("X-RateLimit-Remaining"); got != "4" {
		t.Fatalf("X-RateLimit-Remaining = %q, want 4", got)
	}
	if h.Get("X-RateLimit-Limit") != "5" {
		t.Fatalf("X-RateLimit-Limit = %q, want 5", h.Get("X-RateLimit-Limit"))
	}
}

func TestKeyedEviction(t *testing.T) {
	kl := NewKeyed(1, time.Minute)
	kl.SetMaxKeys(3)
	now := t0
	kl.SetClock(func() time.Time { return now })

	kl.Allow("a")
	kl.Allow("b")
	kl.Allow("c")
	if kl.Keys() != 3 {
		t.Fatalf("keys = %d, want 3", kl.Keys())
	}

	// All three windows are live, so a fourth key evicts exactly one (the
	// earliest-expiring) rather than growing past the bound.
	kl.Allow("d")
	if kl.Keys() != 3 {
		t.Fatalf("keys after live eviction = %d, want 3", kl.Keys())
	}

	// Once the windows expire, a new key sweeps them all.
	now = now.Add(2 * time.Minute)
	kl.Allow("e")
	if got := kl.Keys(); got != 1 {
		t.Fatalf("keys after expiry sweep = %d, want 1", got)
	}
}

func TestKeyedEvictionDoesNotResetSurvivors(t *testing.T) {
	kl := NewKeyed(1, time.Minute)
	kl.SetMaxKeys(2)
	now := t0
	kl.SetClock(func() time.Time { return now })

	kl.Allow("a")
	now = now.Add(time.Second)
	kl.Allow("b") // b expires after a
	kl.Allow("c") // table full: evicts a (earliest resetAt)

	// b's exhausted budget must have survived the eviction.
	if _, ok := kl.Allow("b"); ok {
		t.Fatal("b's window was reset by an unrelated eviction")
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("GET", "/1/statuses/sample.json", nil)
	r.RemoteAddr = "203.0.113.9:4512"
	if got := ClientKey(r); got != "ip:203.0.113.9" {
		t.Fatalf("ip key = %q", got)
	}

	r.Header.Set("Authorization", "Bearer crawler-7")
	if got := ClientKey(r); got != "token:crawler-7" {
		t.Fatalf("token key = %q", got)
	}

	// Non-bearer auth falls back to IP; so does a bare (portless) address.
	r.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
	if got := ClientKey(r); got != "ip:203.0.113.9" {
		t.Fatalf("basic-auth key = %q", got)
	}
	r.Header.Del("Authorization")
	r.RemoteAddr = "203.0.113.9"
	if got := ClientKey(r); got != "ip:203.0.113.9" {
		t.Fatalf("portless key = %q", got)
	}
}
