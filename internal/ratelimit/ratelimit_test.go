package ratelimit

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func TestFixedWindow(t *testing.T) {
	rl := New(2, time.Minute)
	now := t0
	rl.SetClock(func() time.Time { return now })
	if _, ok := rl.Allow(); !ok {
		t.Fatal("first request denied")
	}
	st, ok := rl.Allow()
	if !ok || st.Remaining != 0 {
		t.Fatalf("second request: ok=%v st=%+v", ok, st)
	}
	if st.Limit != 2 {
		t.Fatalf("Limit = %d", st.Limit)
	}
	if _, ok := rl.Allow(); ok {
		t.Fatal("third request should be limited")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := rl.Allow(); !ok {
		t.Fatal("window reset should admit requests")
	}
}

func TestDisabled(t *testing.T) {
	free := New(0, time.Minute)
	for i := 0; i < 1000; i++ {
		if _, ok := free.Allow(); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
	neg := New(-5, time.Minute)
	if _, ok := neg.Allow(); !ok {
		t.Fatal("negative-limit limiter should be disabled")
	}
}

func TestResetAtAdvertised(t *testing.T) {
	rl := New(1, 10*time.Minute)
	now := t0
	rl.SetClock(func() time.Time { return now })
	st, _ := rl.Allow()
	if !st.ResetAt.Equal(t0.Add(10 * time.Minute)) {
		t.Fatalf("ResetAt = %v", st.ResetAt)
	}
	// Denied requests report the same reset.
	st2, ok := rl.Allow()
	if ok || !st2.ResetAt.Equal(st.ResetAt) {
		t.Fatalf("denied status = %+v ok=%v", st2, ok)
	}
}

func TestConcurrentBudget(t *testing.T) {
	rl := New(100, time.Hour)
	var wg sync.WaitGroup
	var mu sync.Mutex
	allowed := 0
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, ok := rl.Allow(); ok {
					mu.Lock()
					allowed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if allowed != 100 {
		t.Fatalf("allowed = %d, want exactly 100", allowed)
	}
}
