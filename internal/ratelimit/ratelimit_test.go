package ratelimit

import (
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func TestFixedWindow(t *testing.T) {
	rl := New(2, time.Minute)
	now := t0
	rl.SetClock(func() time.Time { return now })
	if _, ok := rl.Allow(); !ok {
		t.Fatal("first request denied")
	}
	st, ok := rl.Allow()
	if !ok || st.Remaining != 0 {
		t.Fatalf("second request: ok=%v st=%+v", ok, st)
	}
	if st.Limit != 2 {
		t.Fatalf("Limit = %d", st.Limit)
	}
	if _, ok := rl.Allow(); ok {
		t.Fatal("third request should be limited")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := rl.Allow(); !ok {
		t.Fatal("window reset should admit requests")
	}
}

func TestDisabled(t *testing.T) {
	free := New(0, time.Minute)
	for i := 0; i < 1000; i++ {
		if _, ok := free.Allow(); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
	neg := New(-5, time.Minute)
	if _, ok := neg.Allow(); !ok {
		t.Fatal("negative-limit limiter should be disabled")
	}
}

func TestResetAtAdvertised(t *testing.T) {
	rl := New(1, 10*time.Minute)
	now := t0
	rl.SetClock(func() time.Time { return now })
	st, _ := rl.Allow()
	if !st.ResetAt.Equal(t0.Add(10 * time.Minute)) {
		t.Fatalf("ResetAt = %v", st.ResetAt)
	}
	// Denied requests report the same reset.
	st2, ok := rl.Allow()
	if ok || !st2.ResetAt.Equal(st.ResetAt) {
		t.Fatalf("denied status = %+v ok=%v", st2, ok)
	}
}

func TestConcurrentBudget(t *testing.T) {
	rl := New(100, time.Hour)
	var wg sync.WaitGroup
	var mu sync.Mutex
	allowed := 0
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, ok := rl.Allow(); ok {
					mu.Lock()
					allowed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if allowed != 100 {
		t.Fatalf("allowed = %d, want exactly 100", allowed)
	}
}

func TestSetHeaders(t *testing.T) {
	st := Status{Limit: 5, Remaining: 2, ResetAt: t0.Add(time.Minute)}
	h := make(http.Header)
	st.SetHeaders(h)
	if h.Get("X-RateLimit-Limit") != "5" || h.Get("X-RateLimit-Remaining") != "2" {
		t.Fatalf("headers = %v", h)
	}
	if h.Get("X-RateLimit-Reset") != strconv.FormatInt(t0.Add(time.Minute).Unix(), 10) {
		t.Fatalf("reset header = %q", h.Get("X-RateLimit-Reset"))
	}
	// A disabled limiter's status advertises nothing.
	empty := make(http.Header)
	Status{Limit: 0, Remaining: 1 << 30}.SetHeaders(empty)
	if len(empty) != 0 {
		t.Fatalf("disabled status wrote headers: %v", empty)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	st := Status{ResetAt: t0.Add(90 * time.Second)}
	cases := []struct {
		now  time.Time
		want int
	}{
		{t0, 90},
		{t0.Add(89*time.Second + 500*time.Millisecond), 1}, // rounds up
		{t0.Add(89 * time.Second), 1},
		{t0.Add(90 * time.Second), 1},  // at reset: still advertise 1
		{t0.Add(120 * time.Second), 1}, // past reset: never 0 or negative
		{t0.Add(30 * time.Second), 60},
	}
	for _, c := range cases {
		if got := st.RetryAfterSeconds(c.now); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.now.Sub(t0), got, c.want)
		}
	}
}

// TestWindowResetRestoresBudget pins the reset semantics the Retry-After
// header promises: once the advertised reset passes, the full budget is back.
func TestWindowResetRestoresBudget(t *testing.T) {
	rl := New(3, time.Minute)
	now := t0
	rl.SetClock(func() time.Time { return now })
	var st Status
	for i := 0; i < 3; i++ {
		st, _ = rl.Allow()
	}
	denied, ok := rl.Allow()
	if ok {
		t.Fatal("budget should be exhausted")
	}
	wait := denied.RetryAfterSeconds(now)
	now = now.Add(time.Duration(wait) * time.Second)
	for i := 0; i < 3; i++ {
		if _, ok := rl.Allow(); !ok {
			t.Fatalf("request %d after advertised reset denied", i)
		}
	}
	if !denied.ResetAt.Equal(st.ResetAt) {
		t.Fatalf("denied reset %v != allowed reset %v", denied.ResetAt, st.ResetAt)
	}
}
