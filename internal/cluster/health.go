package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"stir/internal/storage"
)

// Self-healing membership: the router probes every member's
// /cluster/v1/hello on a fixed heartbeat and drives a per-worker
// Alive → Suspect → Down state machine off the silence since the last
// successful contact. Suspect invokes the existing journal-defer path (the
// worker's share of the stream journals instead of burning forward retries);
// Down optionally invokes the crash-recovery path automatically
// (RemoveCrashed — re-shard from the corpse's checkpoint store plus journal
// replay). A probe that succeeds against a Suspect/Down member triggers the
// rejoin path on its own: breaker reset, journal replay past the worker's
// durable cursor, epoch bump.
//
// Every timing decision flows through the Clock seam, so the unit tests
// drive transitions by advancing a ManualClock and calling HealthTick —
// no wall-time sleeps, everything seeded and deterministic.

// Failure-detector defaults.
const (
	DefaultHeartbeat    = 2 * time.Second
	DefaultSuspectAfter = 6 * time.Second
	DefaultDownAfter    = 30 * time.Second
)

// Clock is the failure detector's time source. Production uses the wall
// clock; tests inject a ManualClock and advance it explicitly.
type Clock interface {
	Now() time.Time
}

// wallClock is the production Clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// ManualClock is a Clock tests advance by hand, making every detector
// transition a pure function of (probe results, advances) — no sleeps.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at t0.
func NewManualClock(t0 time.Time) *ManualClock { return &ManualClock{t: t0} }

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// HealthState is one worker's detector state.
type HealthState int32

// The detector states, in escalation order.
const (
	HealthAlive HealthState = iota
	HealthSuspect
	HealthDown
)

// String names the state for logs, metrics labels and the members view.
func (s HealthState) String() string {
	switch s {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	default:
		return "unknown"
	}
}

// health is one worker's detector record, embedded in workerRef and guarded
// by the ref's mu.
type health struct {
	state   HealthState
	lastOK  time.Time // last successful hello (or join time)
	lastErr string    // most recent probe failure, "" after success
}

// healthSnapshot reads the record consistently.
func (w *workerRef) healthSnapshot() health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.health
}

// RunHealth drives HealthTick on the configured heartbeat until ctx ends.
// Run it in a goroutine next to the router's server; it owns its ticker and
// leaks nothing after ctx cancels (pinned by the goroutine-leak guard).
func (r *Router) RunHealth(ctx context.Context) {
	t := time.NewTicker(r.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.HealthTick(ctx)
		}
	}
}

// HealthTick runs one synchronous failure-detector pass: probe every member
// in name order, refresh contact times, and apply state transitions. It is
// the unit RunHealth loops on and the seam deterministic tests call
// directly. Safe to call concurrently with ingest and scatter.
func (r *Router) HealthTick(ctx context.Context) {
	now := r.opts.Clock.Now()
	r.mu.RLock()
	names := make([]string, 0, len(r.workers))
	for n := range r.workers {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		w := r.workers[name]
		r.mu.RUnlock()
		if w == nil {
			continue // removed since the snapshot (failover, leave)
		}
		h, err := r.hello(ctx, w.baseURL())
		if err == nil {
			r.reg.Counter("stir_cluster_health_probes_total", "worker", name, "result", "ok").Inc()
			r.probeOK(ctx, w, h, now)
		} else {
			r.reg.Counter("stir_cluster_health_probes_total", "worker", name, "result", "fail").Inc()
			r.probeFailed(ctx, w, err, now)
		}
	}
}

// probeOK refreshes the contact time and, when the worker was anything but
// a healthy member (Suspect, Down, or merely marked down by a forward
// failure), heals it through the rejoin path. A worker reporting a
// disk-degraded checkpoint store is handled separately: it is alive and
// serving reads, so it never escalates through Suspect/Down — its forwards
// just defer to the journal until a probe reports the store healthy again.
func (r *Router) probeOK(ctx context.Context, w *workerRef, h helloResponse, now time.Time) {
	w.mu.Lock()
	w.health.lastOK = now
	w.health.lastErr = ""
	state := w.health.state
	up := w.up
	wasDegraded := w.degraded
	w.mu.Unlock()
	if h.Degraded {
		r.probeDegraded(ctx, w, state, wasDegraded)
		return
	}
	if wasDegraded {
		r.healDegraded(ctx, w, h)
		return
	}
	if state == HealthAlive && up {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.workers[w.name] != w {
		return // replaced or removed while we probed
	}
	if err := r.rejoinLocked(ctx, w, w.baseURL(), h); err != nil {
		r.log.Warn(ctx, "auto-rejoin failed", "worker", w.name, "state", state.String(), "err", err)
		return
	}
	r.setHealthLocked(ctx, w, HealthAlive)
}

// probeDegraded handles a successful probe whose hello reports a
// disk-degraded checkpoint store. The worker is suspect-for-writes only:
// up stays (or turns) true so scatter reads keep including it, the degraded
// flag makes forwardAll journal its share, and health pins at Alive — the
// worker is answering, its disk is the problem. Auto-failover fires only
// when the journal starts evicting while degraded: at that point deferred
// writes are being lost and re-sharding onto workers with disk headroom
// loses less than waiting.
func (r *Router) probeDegraded(ctx context.Context, w *workerRef, state HealthState, wasDegraded bool) {
	if !wasDegraded {
		w.mu.Lock()
		w.degraded = true
		w.up = true
		w.mu.Unlock()
		r.mDegraded(w.name).Inc()
		r.mu.Lock()
		r.setHealthLocked(ctx, w, HealthAlive)
		r.mu.Unlock()
		r.log.Warn(ctx, "worker disk-degraded: forwards defer to journal, reads stay scattered",
			"worker", w.name, "prev_state", state.String())
		// Baseline the eviction counter at the moment degradation is first
		// seen: only entries lost WHILE degraded argue for failover. Evictions
		// from an earlier outage already had their reckoning.
		w.jMu.Lock()
		w.evictSeen = w.evicted
		w.jMu.Unlock()
		return
	}
	w.jMu.Lock()
	evicted := w.evicted
	evicting := evicted > w.evictSeen
	w.evictSeen = evicted
	w.jMu.Unlock()
	if evicting && r.opts.AutoFailover {
		r.log.Warn(ctx, "degraded worker's journal is evicting: auto-failover",
			"worker", w.name, "evicted", evicted)
		r.autoFailover(ctx, w.name)
	}
}

// healDegraded replays the journal tail a disk-degraded worker deferred and
// clears the write-defer flag. The forward lock is held across the tail
// snapshot and the replay — concurrent ingests journal under the same lock,
// so no chunk can slip between the snapshot and the first live forward. A
// replay failure leaves the flag set; the next probe retries.
func (r *Router) healDegraded(ctx context.Context, w *workerRef, h helloResponse) {
	w.fwdMu.Lock()
	defer w.fwdMu.Unlock()
	tail := w.journalTail(h.DurableSeq)
	replayed, err := r.replayTail(ctx, w, tail)
	if err != nil {
		r.log.Warn(ctx, "disk-heal replay failed (worker stays write-deferred)",
			"worker", w.name, "replayed", replayed, "err", err)
		return
	}
	w.mu.Lock()
	w.degraded = false
	w.up = true
	w.mu.Unlock()
	r.mHealed(w.name).Inc()
	if replayed > 0 {
		r.reg.Counter("stir_cluster_replayed_total", "worker", w.name).Add(int64(replayed))
	}
	r.log.Info(ctx, "worker healed from disk degradation",
		"worker", w.name, "replayed", replayed, "durable_seq", h.DurableSeq)
}

// probeFailed records the failure and escalates Alive → Suspect → Down as
// the silence since the last successful contact crosses the thresholds. A
// Down member with auto-failover enabled is removed through the
// crash-recovery path (retried on every tick until it succeeds or the
// worker answers again).
func (r *Router) probeFailed(ctx context.Context, w *workerRef, err error, now time.Time) {
	w.mu.Lock()
	w.health.lastErr = err.Error()
	silence := now.Sub(w.health.lastOK)
	state := w.health.state
	w.mu.Unlock()
	switch {
	case silence >= r.opts.DownAfter:
		if state != HealthDown {
			w.setUp(false)
			r.mu.Lock()
			r.setHealthLocked(ctx, w, HealthDown)
			r.mu.Unlock()
		}
		if r.opts.AutoFailover {
			r.autoFailover(ctx, w.name)
		}
	case silence >= r.opts.SuspectAfter:
		if state == HealthAlive {
			// The journal-defer path: forwards stop burning retries and
			// queue for replay the moment the worker answers again.
			w.setUp(false)
			r.mu.Lock()
			r.setHealthLocked(ctx, w, HealthSuspect)
			r.mu.Unlock()
		}
	}
}

// setHealthLocked applies one state transition, counts it, and surfaces the
// full membership picture in the router log. Callers hold r.mu (any mode)
// so the summary is consistent with the transition.
func (r *Router) setHealthLocked(ctx context.Context, w *workerRef, to HealthState) {
	w.mu.Lock()
	from := w.health.state
	w.health.state = to
	lastErr := w.health.lastErr
	w.mu.Unlock()
	if from == to {
		return
	}
	r.reg.Counter("stir_cluster_health_transitions_total", "worker", w.name, "to", to.String()).Inc()
	r.log.Info(ctx, "worker health transition",
		"worker", w.name, "from", from.String(), "to", to.String(),
		"epoch", r.epoch.Load(), "members", r.membersSummaryLocked(), "last_err", lastErr)
}

// autoFailover runs the Down → RemoveCrashed path: recover the corpse's
// users from its checkpoint store when the Checkpoint seam can open one
// (shared-storage deployments), or from journal replay alone when it
// cannot. Failure leaves the worker Down and journaling; the next tick
// retries.
func (r *Router) autoFailover(ctx context.Context, name string) {
	var ckpt *storage.Store
	if r.opts.Checkpoint != nil {
		st, err := r.opts.Checkpoint(name)
		if err != nil {
			r.log.Warn(ctx, "auto-failover: checkpoint store unrecoverable, journal-only recovery",
				"worker", name, "err", err)
		} else {
			ckpt = st
		}
	}
	if ckpt != nil {
		defer ckpt.Close()
	}
	if err := r.RemoveCrashed(ctx, name, ckpt); err != nil {
		r.reg.Counter("stir_cluster_health_failovers_total", "worker", name, "result", "error").Inc()
		r.log.Warn(ctx, "auto-failover failed (will retry next tick)", "worker", name, "err", err)
		return
	}
	r.reg.Counter("stir_cluster_health_failovers_total", "worker", name, "result", "ok").Inc()
}

// membersSummaryLocked renders membership as "w1=alive w2=suspect …" for
// transition log lines. Callers hold r.mu.
func (r *Router) membersSummaryLocked() string {
	names := r.ring.Workers()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		w := r.workers[n]
		if w == nil {
			out += n + "=?"
			continue
		}
		out += n + "=" + w.healthSnapshot().state.String()
	}
	return out
}
