package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/resilience/fault"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
	"stir/internal/twitter"
)

// TestClusterPartitionChaosConverges is the self-healing capstone. One
// worker falls behind an asymmetric network partition that keeps DELIVERING
// its requests while eating the responses — the nastiest failure mode: the
// worker applies writes nobody can ack. The failure detector walks it
// Alive → Suspect (journal-defer) → Down, then fails it over automatically
// out of its checkpoint store (the shared-disk seam) plus journal replay. A
// zombie hop still holding the pre-failover epoch is fenced with 412 and
// never applied. The partition heals, a replacement process resumes from
// the store and rejoins — a fresh join that overwrites its partitions from
// the current owners and wipes the residue it no longer owns. After the
// rest of the stream, the merged answer is byte-identical to the batch
// pipeline: zero acked writes lost, zero stale-epoch writes applied, every
// transition counted. The whole schedule derives from STIR_CLUSTER_SEED and
// a manual clock — rerunning a failure replays it exactly.
func TestClusterPartitionChaosConverges(t *testing.T) {
	leaktest.Check(t)
	seed := seedFromEnv(2026) + 13
	rnd := rand.New(rand.NewSource(seed))
	ds := testDataset(t, 500, 23)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)

	clk := NewManualClock(time.Unix(1700000000, 0))
	reg := obs.NewRegistry()
	part := fault.NewPartition(seed, reg)
	victimFS := vfs.NewFault(vfs.FaultConfig{Seed: seed + 3})
	r := testRouter(t, reg, func(o *Options) {
		o.HTTP = &http.Client{Transport: part.RoundTripper(nil)}
		o.Clock = clk
		o.Seed = seed
		o.ForwardBatch = 32
		o.ForwardAttempts = 2
		o.AutoFailover = true
		// The shared-disk recovery seam: failover reopens the victim's
		// checkpoint store, so its durable users survive the removal even
		// though its journal was trimmed past them.
		o.Checkpoint = func(name string) (*storage.Store, error) {
			return storage.Open("ckpt", storage.Options{FS: victimFS, Metrics: obs.Discard})
		}
	})
	w1reg := obs.NewRegistry()
	w1 := startWorkerReg(t, ds, "w1", w1reg)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	victim := startWorker(t, ds, "w3", victimFS)
	join(t, r, w1)
	join(t, r, w2)
	join(t, r, victim)
	host3 := hostOf(t, victim.srv.URL)

	// Phase 1: ~40% of the stream with periodic durable checkpoints, so the
	// victim's journal is trimmed — after this, only its store knows the
	// checkpointed tweets.
	ctx := context.Background()
	batch := 48
	cut := len(tweets)*2/5 + rnd.Intn(len(tweets)/10)
	fed := 0
	for fed < cut {
		n := batch
		if n > cut-fed {
			n = cut - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded+rep.Deferred != n {
			t.Fatalf("lost tweets mid-stream: %+v", rep)
		}
		fed += n
		if rnd.Intn(4) == 0 {
			r.CheckpointAll(ctx)
		}
	}
	// A durable cut exists before the trouble starts: everything the victim
	// aggregated so far is in its store, and its journal is trimmed past it.
	r.CheckpointAll(ctx)

	// The asymmetric partition drops: requests still reach w3, every
	// response dies on the way back. w3 keeps applying unacked writes — the
	// at-most-once ambiguity the journal + tweet-ID dedup must absorb.
	part.Set(host3, fault.Link{DropResponses: true})

	// Phase 2: stream through the partition. The first failed forward marks
	// w3 down; everything after defers to its journal.
	mid := fed + (len(tweets)-fed)/2
	for fed < mid {
		n := batch
		if n > mid-fed {
			n = mid - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded+rep.Deferred != n {
			t.Fatalf("lost tweets during the partition: %+v", rep)
		}
		fed += n
	}
	if reg.Counter("stir_cluster_deferred_total", "worker", "w3").Value() == 0 {
		t.Fatal("partition deferred nothing for w3")
	}

	// The detector escalates on pure clock time: Suspect first…
	clk.Advance(DefaultSuspectAfter + time.Second)
	r.HealthTick(ctx)
	if got := r.Members().Members[2]; got.Health != "suspect" {
		t.Fatalf("want w3 suspect, got %+v", got)
	}
	// …then Down. The zombie process dies with the partition (its unacked
	// tail lives in the journal), and auto-failover recovers the rest from
	// the shared checkpoint store.
	epochBefore := r.Epoch()
	victim.kill()
	clk.Advance(DefaultDownAfter)
	r.HealthTick(ctx)
	if v := reg.Counter("stir_cluster_health_failovers_total", "worker", "w3", "result", "ok").Value(); v != 1 {
		t.Fatalf("auto-failover counted %d times, want 1", v)
	}
	m := r.Members()
	if len(m.Members) != 2 || m.Epoch <= epochBefore {
		t.Fatalf("failover should shrink membership and bump the epoch: %+v (was %d)", m, epochBefore)
	}

	// A zombie hop from before the failover — an in-flight forward that sat
	// on the wire across the membership change — is fenced, counted, and
	// never applied.
	fake := *tweets[0]
	fake.ID = 1 << 60
	zombie := mustJSON(t, ingestRequest{Seq: 0, Tweets: []*twitter.Tweet{&fake}})
	if got := fenceDo(t, http.MethodPost, w1.srv.URL+"/cluster/v1/ingest", FormatSeq(epochBefore), zombie); got != http.StatusPreconditionFailed {
		t.Fatalf("stale-epoch zombie hop: status %d, want 412", got)
	}
	if v := w1reg.Counter("stir_cluster_fenced_total", "worker", "w1", "route", "ingest").Value(); v != 1 {
		t.Fatalf("zombie fence counted %d times, want 1", v)
	}

	// Phase 3: the stream keeps flowing through the shrunk, healthy ring.
	for fed < len(tweets) {
		n := batch
		if n > len(tweets)-fed {
			n = len(tweets) - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded != n {
			t.Fatalf("post-failover ring dropping: %+v", rep)
		}
		fed += n
	}

	// Heal: a replacement process resumes from the same store and rejoins.
	// It arrives carrying stale users, so the join overwrites everything it
	// now owns from the current owners and wipes the rest as residue.
	part.Heal(host3)
	victimFS.Restart()
	replacement := startWorker(t, ds, "w3", victimFS)
	defer replacement.stop()
	if err := r.AddWorker(ctx, "w3", replacement.srv.URL); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
	if reg.Counter("stir_cluster_handoffs_total", "reason", "wipe").Value() != 1 {
		t.Fatal("stale rejoiner's residue was not wiped")
	}
	r.CheckpointAll(ctx)

	// Convergence: byte-identical to batch. This is simultaneously the
	// zero-acked-write-loss proof and the zero-stale-write proof — a single
	// lost tweet or the fenced fabrication showing up would break it.
	assertClusterMatchesBatch(t, r, res)

	// And the books balance: the detector saw the whole arc.
	for _, want := range []struct {
		to string
		n  int64
	}{{"suspect", 1}, {"down", 1}} {
		if v := reg.Counter("stir_cluster_health_transitions_total", "worker", "w3", "to", want.to).Value(); v != want.n {
			t.Fatalf("transition to %s counted %v times, want %v", want.to, v, want.n)
		}
	}
	if reg.Counter("stir_cluster_journal_evicted_total", "worker", "w3").Value() != 0 {
		t.Fatal("journal evicted entries — depth too small for the schedule")
	}
}
