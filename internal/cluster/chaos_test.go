package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
)

// seedFromEnv reads the cluster chaos seed (STIR_CLUSTER_SEED), so a failing
// schedule replays bit-for-bit: the same kill point, the same torn
// checkpoint, the same replay.
func seedFromEnv(def int64) int64 {
	if v, err := strconv.ParseInt(os.Getenv("STIR_CLUSTER_SEED"), 10, 64); err == nil {
		return v
	}
	return def
}

// TestClusterChaosKillWorkerConverges is the capstone: a worker is
// SIGKILL-equivalently destroyed mid-ingest — its listener vanishes, its
// in-memory state is discarded, and its checkpoint store's filesystem powers
// off at a seeded mutation boundary (so the last checkpoint write may be
// torn). The router marks it down and journals its share of the stream. A
// replacement process then reopens the store (salvaging whatever the torn
// write left), rejoins under the same name, and the router replays the
// journal tail past the store's durable cursor — the overlap with the
// checkpoint is absorbed by tweet-ID dedup. After the rest of the stream,
// the merged cluster groupings must be byte-identical to the batch
// pipeline, with every deferral and replay visible in the metrics.
func TestClusterChaosKillWorkerConverges(t *testing.T) {
	seed := seedFromEnv(2026)
	rnd := rand.New(rand.NewSource(seed))
	ds := testDataset(t, 500, 13)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)

	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.ForwardBatch = 32
		o.ForwardAttempts = 2
		o.ScatterTimeout = 2 * time.Second
		o.Seed = seed
	})

	// Two durable bystanders and one victim. The victim's filesystem powers
	// off at a seeded boundary, so whichever checkpoint write is in flight
	// at that moment tears exactly as a yanked power cord would tear it.
	w1 := startWorker(t, ds, "w1", vfs.NewFault(vfs.FaultConfig{Seed: seed + 1}))
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", vfs.NewFault(vfs.FaultConfig{Seed: seed + 2}))
	defer w2.stop()
	crashAt := 400 + rnd.Int63n(4000)
	victimFS := vfs.NewFault(vfs.FaultConfig{Seed: seed + 3, CrashAt: crashAt})
	victim := startWorker(t, ds, "w3", victimFS)
	join(t, r, w1)
	join(t, r, w2)
	join(t, r, victim)

	// Phase 1: stream the first ~60% in small batches, checkpointing as we
	// go. The victim's store may power off under one of these checkpoints;
	// a checkpoint error from it is exactly what a dying disk produces, so
	// it is tolerated — the journal keeps everything past the last durable
	// cut.
	ctx := context.Background()
	batch := 48
	killPoint := len(tweets)*3/5 + rnd.Intn(len(tweets)/10)
	fed := 0
	for fed < killPoint {
		n := batch
		if n > killPoint-fed {
			n = killPoint - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded+rep.Deferred != n {
			t.Fatalf("lost tweets mid-stream: %+v (batch of %d)", rep, n)
		}
		fed += n
		if rnd.Intn(4) == 0 {
			r.CheckpointAll(ctx) // victim errors here once its disk is gone
		}
	}

	// SIGKILL. No goodbye checkpoint, no export — the process is gone.
	victim.kill()
	r.MarkDown("w3")

	// Mid-outage: scatter-gather degrades instead of failing, blaming the
	// dead shard by name.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var groups GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &groups)
	if !groups.Partial || len(groups.Errors) != 1 || groups.Errors[0].Worker != "w3" {
		t.Fatalf("mid-outage /v1/groups should be partial blaming w3: %+v", groups)
	}

	// Phase 2: the stream keeps flowing while the shard is dead. The
	// victim's tweets defer into its journal.
	mid := fed + (len(tweets)-fed)/2
	for fed < mid {
		n := batch
		if n > mid-fed {
			n = mid - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded+rep.Deferred != n {
			t.Fatalf("lost tweets during outage: %+v", rep)
		}
		fed += n
	}
	if reg.Counter("stir_cluster_deferred_total", "worker", "w3").Value() == 0 {
		t.Fatal("outage deferred nothing — the kill point missed every w3 tweet?")
	}

	// Replacement process: power the filesystem back on (torn tail and
	// all), reopen the store, and rejoin under the same name. The engine
	// resumes from the last durable checkpoint; the router replays the
	// journal past its cursor.
	victimFS.Restart()
	restarted := startWorker(t, ds, "w3", victimFS)
	defer restarted.stop()
	if err := r.AddWorker(ctx, "w3", restarted.srv.URL); err != nil {
		t.Fatalf("rejoin after crash: %v", err)
	}
	if reg.Counter("stir_cluster_handoffs_total", "reason", "rejoin").Value() != 1 {
		t.Fatal("rejoin not recorded in stir_cluster_handoffs_total")
	}
	if reg.Counter("stir_cluster_replayed_total", "worker", "w3").Value() == 0 {
		t.Fatal("rejoin replayed nothing — journal lost?")
	}

	// Phase 3: the rest of the stream through the healed ring.
	for fed < len(tweets) {
		n := batch
		if n > len(tweets)-fed {
			n = len(tweets) - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded != n {
			t.Fatalf("healed ring still dropping: %+v", rep)
		}
		fed += n
	}

	// Convergence: the merged cluster answer is byte-identical to batch.
	assertClusterMatchesBatch(t, r, res)
	var g2 GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &g2)
	if g2.Partial || g2.Users != res.Analysis.Users || g2.Tweets != res.Analysis.Tweets {
		t.Fatalf("healed /v1/groups: %+v, batch users=%d tweets=%d",
			g2, res.Analysis.Users, res.Analysis.Tweets)
	}

	// Accounting: every deferral was replayed or is still journaled for a
	// down worker — and with the ring healed and drained, nothing may
	// remain unaccounted. The victim's checkpoint counters survived too.
	deferred := reg.Counter("stir_cluster_deferred_total", "worker", "w3").Value()
	replayed := reg.Counter("stir_cluster_replayed_total", "worker", "w3").Value()
	if deferred == 0 || replayed == 0 {
		t.Fatalf("accounting hole: deferred=%d replayed=%d", deferred, replayed)
	}
	if evicted := reg.Counter("stir_cluster_journal_evicted_total", "worker", "w3").Value(); evicted != 0 {
		t.Fatalf("journal evicted %d entries — depth too small for the test", evicted)
	}
}

// TestClusterCrashRecoveryFromCheckpointStore exercises the other recovery
// path: the dead worker never comes back, and the router redistributes its
// users straight out of its checkpoint store (shared-storage recovery),
// replaying the journal tail past the store's cursor through the shrunk
// ring.
func TestClusterCrashRecoveryFromCheckpointStore(t *testing.T) {
	seed := seedFromEnv(2026) + 7
	ds := testDataset(t, 400, 17)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) { o.Seed = seed })
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	victimFS := vfs.NewFault(vfs.FaultConfig{Seed: seed})
	victim := startWorker(t, ds, "w2", victimFS)
	join(t, r, w1)
	join(t, r, victim)

	ctx := context.Background()
	cut := len(tweets) * 2 / 3
	feed(t, r, tweets[:cut], 64)
	// A durable cut exists, then more tweets arrive that only the journal
	// and the victim's memory know about.
	r.CheckpointAll(ctx)
	feed(t, r, tweets[cut:], 64)
	victim.kill()
	r.MarkDown("w2")

	// The store outlived the process (shared disk): reopen and recover.
	store, err := storage.Open("ckpt", storage.Options{FS: victimFS, Metrics: obs.Discard})
	if err != nil {
		t.Fatalf("reopen dead worker's store: %v", err)
	}
	if err := r.RemoveCrashed(ctx, "w2", store); err != nil {
		t.Fatalf("RemoveCrashed: %v", err)
	}
	if got := reg.Counter("stir_cluster_handoffs_total", "reason", "crash").Value(); got == 0 {
		t.Fatal("crash recovery recorded no handoffs")
	}
	assertClusterMatchesBatch(t, r, res)
	if got, want := w1.eng.Stats().Users, res.Analysis.Users; got != want {
		t.Fatalf("survivor owns %d users, batch has %d", got, want)
	}
}

// TestClusterReplicatedIngest runs replicas=2: every tweet lands on two
// workers, one dies, and the answer stays exact with zero deferrals needed
// for correctness — the surviving replica has everything.
func TestClusterReplicatedIngest(t *testing.T) {
	ds := testDataset(t, 300, 23)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) { o.Replicas = 2 })
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	w3 := startWorker(t, ds, "w3", nil)
	join(t, r, w1)
	join(t, r, w2)
	join(t, r, w3)

	tweets := allTweets(ds)
	ctx := context.Background()
	for i := 0; i < len(tweets); i += 50 {
		end := i + 50
		if end > len(tweets) {
			end = len(tweets)
		}
		rep := r.IngestBatch(ctx, tweets[i:end])
		if rep.Unrouted > 0 || rep.Deferred > 0 {
			t.Fatalf("replicated ingest dropped: %+v", rep)
		}
	}
	assertClusterMatchesBatch(t, r, res)

	// Kill one worker: with two replicas per partition, the merged answer
	// over the survivors is still exact.
	w3.kill()
	r.MarkDown("w3")
	gs, errs := r.Groupings(ctx)
	if len(errs) != 1 || errs[0].Worker != "w3" {
		t.Fatalf("want exactly w3 reported down, got %+v", errs)
	}
	if got, want := mustJSON(t, gs), mustJSON(t, res.Groupings); string(got) != string(want) {
		t.Fatalf("replicated cluster lost users with one replica down: %d vs %d",
			len(gs), len(res.Groupings))
	}
}
