package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"stir/internal/core"
	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/stream"
	"stir/internal/twitter"
)

// Scatter-gather: the router answers the same /v1 query API a single worker
// serves, by fanning the question out to every worker and merging. A worker
// that is down or times out degrades the answer instead of failing it — the
// response carries partial=true plus one WorkerError per missing shard, and
// the HTTP status stays 200 as long as at least one shard answered.

// GroupsResult is the cluster-wide /v1/groups answer.
type GroupsResult struct {
	Users               int             `json:"users"`
	Tweets              int             `json:"tweets"`
	Groups              []GroupStatView `json:"groups"`
	OverallAvgDistricts float64         `json:"overall_avg_districts"`
	OverallMatchShare   float64         `json:"overall_match_share"`
	Workers             int             `json:"workers"`
	WorkersOK           int             `json:"workers_ok"`
	Partial             bool            `json:"partial"`
	Errors              []WorkerError   `json:"errors,omitempty"`
}

// GroupStatView mirrors the worker-side per-group row.
type GroupStatView struct {
	Group                string  `json:"group"`
	Users                int     `json:"users"`
	UserShare            float64 `json:"user_share"`
	Tweets               int     `json:"tweets"`
	TweetShare           float64 `json:"tweet_share"`
	AvgDistinctDistricts float64 `json:"avg_distinct_districts"`
	AvgMatchShare        float64 `json:"avg_match_share"`
}

// StatsResult is the cluster-wide /v1/stats answer: worker counters summed,
// plus the router's own routing counters.
type StatsResult struct {
	Workers   int           `json:"workers"`
	WorkersOK int           `json:"workers_ok"`
	Partial   bool          `json:"partial"`
	Errors    []WorkerError `json:"errors,omitempty"`

	Users           int   `json:"users"`
	RejectedUsers   int   `json:"rejected_users"`
	Ingested        int64 `json:"ingested"`
	Processed       int64 `json:"processed"`
	NonGeo          int64 `json:"non_geo"`
	GeocodeFailures int64 `json:"geocode_failures"`
	ProfileErrors   int64 `json:"profile_errors"`
	ResolveErrors   int64 `json:"resolve_errors"`
	Duplicates      int64 `json:"duplicates"`
	Dropped         int64 `json:"dropped"`
	Checkpoints     int64 `json:"checkpoints"`

	RouterSeq int64 `json:"router_seq"`
}

// gather fans one request out to every worker (up or not — a down worker
// yields an error entry without a network call) under the fan-out semaphore
// and the per-worker scatter timeout.
func gather[T any](r *Router, ctx context.Context, path string) (map[string]T, []WorkerError) {
	r.mu.RLock()
	workers := make([]*workerRef, 0, len(r.workers))
	for _, w := range r.workers {
		workers = append(workers, w)
	}
	r.mu.RUnlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].name < workers[j].name })
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  = make(map[string]T, len(workers))
		errs []WorkerError
	)
	for _, w := range workers {
		if !w.isUp() {
			// Under mu: goroutines spawned for earlier workers may already be
			// appending their own errors.
			mu.Lock()
			errs = append(errs, WorkerError{Worker: w.name, Error: "down (awaiting rejoin)"})
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			cctx, cancel := context.WithTimeout(ctx, r.opts.ScatterTimeout)
			defer cancel()
			var v T
			if err := r.doJSON(cctx, http.MethodGet, w.baseURL()+path, nil, &v); err != nil {
				mu.Lock()
				errs = append(errs, WorkerError{Worker: w.name, Error: err.Error()})
				mu.Unlock()
				r.reg.Counter("stir_cluster_scatter_errors_total", "worker", w.name).Inc()
				return
			}
			mu.Lock()
			out[w.name] = v
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	sort.Slice(errs, func(i, j int) bool { return errs[i].Worker < errs[j].Worker })
	return out, errs
}

// Groupings gathers and merges every worker's per-user groupings. With
// replicas > 1 a user appears on several workers; the copy with the most
// tweets wins (on a drained cluster the replicas are identical, so the merge
// is exact). The slice is sorted by user ID — the batch pipeline's order.
func (r *Router) Groupings(ctx context.Context) ([]core.UserGrouping, []WorkerError) {
	perWorker, errs := gather[[]core.UserGrouping](r, ctx, "/cluster/v1/groupings")
	names := make([]string, 0, len(perWorker))
	for n := range perWorker {
		names = append(names, n)
	}
	sort.Strings(names)
	byUser := make(map[int64]core.UserGrouping)
	for _, n := range names {
		for _, g := range perWorker[n] {
			if have, ok := byUser[g.UserID]; !ok || g.TotalTweets > have.TotalTweets {
				byUser[g.UserID] = g
			}
		}
	}
	out := make([]core.UserGrouping, 0, len(byUser))
	for _, g := range byUser {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out, errs
}

// Groups computes the cluster-wide §IV analysis from the merged groupings.
func (r *Router) Groups(ctx context.Context) (GroupsResult, int) {
	gs, errs := r.Groupings(ctx)
	r.mu.RLock()
	total := len(r.workers)
	r.mu.RUnlock()
	res := GroupsResult{
		Workers:   total,
		WorkersOK: total - len(errs),
		Partial:   len(errs) > 0,
		Errors:    errs,
	}
	a := core.Analyze(gs)
	res.Users, res.Tweets = a.Users, a.Tweets
	res.OverallAvgDistricts, res.OverallMatchShare = a.OverallAvgDistricts, a.OverallMatchShare
	res.Groups = make([]GroupStatView, 0, core.NumGroups)
	for _, g := range a.Groups {
		res.Groups = append(res.Groups, GroupStatView{
			Group:                g.Group.String(),
			Users:                g.Users,
			UserShare:            g.UserShare,
			Tweets:               g.Tweets,
			TweetShare:           g.TweetShare,
			AvgDistinctDistricts: g.AvgDistinctDistricts,
			AvgMatchShare:        g.AvgMatchShare,
		})
	}
	status := http.StatusOK
	if total > 0 && res.WorkersOK == 0 {
		status = http.StatusServiceUnavailable
	}
	return res, status
}

// Stats sums every worker's ingestion counters.
func (r *Router) Stats(ctx context.Context) (StatsResult, int) {
	perWorker, errs := gather[stream.Stats](r, ctx, "/v1/stats")
	r.mu.RLock()
	total := len(r.workers)
	r.mu.RUnlock()
	res := StatsResult{
		Workers:   total,
		WorkersOK: total - len(errs),
		Partial:   len(errs) > 0,
		Errors:    errs,
		RouterSeq: r.seq.Load(),
	}
	for _, s := range perWorker {
		res.Users += s.Users
		res.RejectedUsers += s.RejectedUsers
		res.Ingested += s.Ingested
		res.Processed += s.Processed
		res.NonGeo += s.NonGeo
		res.GeocodeFailures += s.GeocodeFailures
		res.ProfileErrors += s.ProfileErrors
		res.ResolveErrors += s.ResolveErrors
		res.Duplicates += s.Duplicates
		res.Dropped += s.Dropped
		res.Checkpoints += s.Checkpoints
	}
	status := http.StatusOK
	if total > 0 && res.WorkersOK == 0 {
		status = http.StatusServiceUnavailable
	}
	return res, status
}

// User answers /v1/users/{id} by asking the owning replicas in primary-first
// order; the first definite answer (found or not-found) wins, and only when
// every owner errors does the lookup fail.
func (r *Router) User(ctx context.Context, id twitter.UserID) (stream.UserView, int, []WorkerError) {
	r.mu.RLock()
	ring := r.ring
	workers := make(map[string]*workerRef, len(r.workers))
	for n, w := range r.workers {
		workers[n] = w
	}
	r.mu.RUnlock()
	part := PartitionOf(id, r.opts.Partitions)
	owners := ring.Owners(part, r.opts.Replicas)
	if len(owners) == 0 {
		return stream.UserView{}, http.StatusServiceUnavailable,
			[]WorkerError{{Worker: "", Error: "no workers in the ring"}}
	}
	var errs []WorkerError
	for _, o := range owners {
		w := workers[o]
		if w == nil || !w.isUp() {
			errs = append(errs, WorkerError{Worker: o, Error: "down (awaiting rejoin)"})
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, r.opts.ScatterTimeout)
		var view stream.UserView
		err := r.doJSON(cctx, http.MethodGet, w.baseURL()+"/v1/users/"+strconv.FormatInt(int64(id), 10), nil, &view)
		cancel()
		if err == nil {
			return view, http.StatusOK, nil
		}
		if se, ok := errStatus(err); ok && se == http.StatusNotFound {
			return stream.UserView{}, http.StatusNotFound, nil
		}
		errs = append(errs, WorkerError{Worker: o, Error: err.Error()})
	}
	return stream.UserView{}, http.StatusServiceUnavailable, errs
}

// errStatus unwraps a resilience.StatusError-shaped failure.
func errStatus(err error) (int, bool) {
	var se *resilience.StatusError
	if errors.As(err, &se) {
		return se.Status, true
	}
	return 0, false
}

// RingView is the admin view of membership.
type RingView struct {
	Partitions int              `json:"partitions"`
	Replicas   int              `json:"replicas"`
	Workers    []RingWorkerView `json:"workers"`
}

// RingWorkerView is one worker's row in the admin view.
type RingWorkerView struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Up           bool   `json:"up"`
	Degraded     bool   `json:"degraded,omitempty"`
	Partitions   int    `json:"partitions"`
	JournalDepth int    `json:"journal_depth"`
	DurableSeq   int64  `json:"durable_seq"`
	AckedSeq     int64  `json:"acked_seq"`
	Evicted      int64  `json:"journal_evicted"`
}

// RingState reports current membership, ownership spread and journal state.
func (r *Router) RingState() RingView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v := RingView{Partitions: r.opts.Partitions, Replicas: r.opts.Replicas}
	for _, name := range r.ring.Workers() {
		w := r.workers[name]
		if w == nil {
			continue
		}
		w.mu.Lock()
		url, up, degraded := w.url, w.up, w.degraded
		w.mu.Unlock()
		w.jMu.Lock()
		depth, durable, acked, evicted := len(w.journal), w.durableSeq, w.ackedSeq, w.evicted
		w.jMu.Unlock()
		v.Workers = append(v.Workers, RingWorkerView{
			Name:         name,
			URL:          url,
			Up:           up,
			Degraded:     degraded,
			Partitions:   len(r.ring.PartsOwnedBy(name, r.opts.Replicas)),
			JournalDepth: depth,
			DurableSeq:   durable,
			AckedSeq:     acked,
			Evicted:      evicted,
		})
	}
	return v
}

// Handler returns the router's HTTP surface:
//
//	POST /v1/ingest              route a batch of tweets to their shards
//	GET  /v1/groups              cluster-wide §IV statistics (partial-tolerant)
//	GET  /v1/stats               summed worker counters (partial-tolerant)
//	GET  /v1/users/{id}          single-user lookup via the owning replicas
//	GET  /cluster/v1/ring        membership + journal state
//	GET  /cluster/v1/members     failure-detector state, epoch, cursors
//	POST /cluster/v1/join        ?name=&url= — join or rejoin a worker
//	POST /cluster/v1/leave       ?name= — graceful departure with handoff
//	POST /cluster/v1/checkpoint  checkpoint every worker, trim journals
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", r.handleIngest)
	mux.HandleFunc("/v1/groups", r.scatterHandler("/v1/groups", func(ctx context.Context) (any, int) {
		res, status := r.Groups(ctx)
		return res, status
	}))
	mux.HandleFunc("/v1/stats", r.scatterHandler("/v1/stats", func(ctx context.Context) (any, int) {
		res, status := r.Stats(ctx)
		return res, status
	}))
	mux.HandleFunc("/v1/users/", r.handleUser)
	mux.HandleFunc("/cluster/v1/ring", func(w http.ResponseWriter, req *http.Request) {
		jsonReply(w, http.StatusOK, r.RingState())
	})
	mux.HandleFunc("/cluster/v1/members", func(w http.ResponseWriter, req *http.Request) {
		jsonReply(w, http.StatusOK, r.Members())
	})
	mux.HandleFunc("/cluster/v1/join", r.handleJoin)
	mux.HandleFunc("/cluster/v1/leave", r.handleLeave)
	mux.HandleFunc("/cluster/v1/checkpoint", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
			return
		}
		errs := r.CheckpointAll(req.Context())
		jsonReply(w, http.StatusOK, map[string]any{"errors": errs})
	})
	return obs.InstrumentHandler(r.reg, "router", routerRoute, mux)
}

func routerRoute(req *http.Request) string {
	if strings.HasPrefix(req.URL.Path, "/v1/users/") {
		return "/v1/users/{id}"
	}
	return req.URL.Path
}

// scatterHandler wraps one fan-out route with the scatter latency histogram
// (exemplar-linked to the request's trace).
func (r *Router) scatterHandler(route string, fn func(context.Context) (any, int)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
			return
		}
		start := time.Now()
		res, status := fn(req.Context())
		r.reg.Histogram("stir_cluster_scatter_seconds", obs.DefBuckets, "route", route).
			ObserveWithExemplar(time.Since(start).Seconds(), obs.ExemplarFromContext(req.Context()), start)
		jsonReply(w, status, res)
	}
}

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	var tweets []*twitter.Tweet
	if err := decodeJSON(req, &tweets); err != nil {
		jsonReply(w, http.StatusBadRequest, httpError{Error: "bad batch: " + err.Error()})
		return
	}
	rep := r.IngestBatch(req.Context(), tweets)
	status := http.StatusOK
	if rep.Unrouted > 0 && rep.Forwarded == 0 && rep.Deferred == 0 {
		status = http.StatusServiceUnavailable
	}
	jsonReply(w, status, rep)
}

func (r *Router) handleUser(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	idStr := strings.TrimPrefix(req.URL.Path, "/v1/users/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || idStr == "" {
		jsonReply(w, http.StatusBadRequest, httpError{Error: "invalid user id"})
		return
	}
	start := time.Now()
	view, status, errs := r.User(req.Context(), twitter.UserID(id))
	r.reg.Histogram("stir_cluster_scatter_seconds", obs.DefBuckets, "route", "/v1/users/{id}").
		ObserveWithExemplar(time.Since(start).Seconds(), obs.ExemplarFromContext(req.Context()), start)
	switch status {
	case http.StatusOK:
		jsonReply(w, http.StatusOK, view)
	case http.StatusNotFound:
		jsonReply(w, http.StatusNotFound, httpError{Error: "unknown user"})
	default:
		jsonReply(w, status, map[string]any{"error": "all owners unreachable", "errors": errs})
	}
}

func (r *Router) handleJoin(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	name := req.URL.Query().Get("name")
	url := req.URL.Query().Get("url")
	if err := r.AddWorker(req.Context(), name, url); err != nil {
		jsonReply(w, http.StatusBadGateway, httpError{Error: err.Error()})
		return
	}
	jsonReply(w, http.StatusOK, map[string]string{"joined": name})
}

func (r *Router) handleLeave(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		jsonReply(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	name := req.URL.Query().Get("name")
	if err := r.Leave(req.Context(), name); err != nil {
		jsonReply(w, http.StatusBadGateway, httpError{Error: err.Error()})
		return
	}
	jsonReply(w, http.StatusOK, map[string]string{"left": name})
}

func decodeJSON(req *http.Request, v any) error {
	return json.NewDecoder(req.Body).Decode(v)
}
