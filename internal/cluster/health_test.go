package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stir"
	"stir/internal/leaktest"
	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/resilience/fault"
	"stir/internal/stream"
	"stir/internal/textnorm"
)

// The failure-detector tests drive every transition through the Clock seam:
// a ManualClock advances, HealthTick runs synchronously, and the state
// machine's output is asserted — no wall-time sleeps anywhere.

func hostOf(t testing.TB, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// startWorkerReg is startWorker with a caller-owned metrics registry, so
// worker-side series (the fence counter) can be asserted.
func startWorkerReg(t testing.TB, ds *stir.Dataset, name string, reg *obs.Registry) *testWorker {
	t.Helper()
	resolver := stream.NewGazetteerResolver(ds.Gazetteer, 10)
	eng, err := stream.New(stream.Config{
		Profiles: stream.NewProfileResolver(stream.ServiceLookup(ds.Service),
			textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
		Resolver:       resolver,
		DedupByTweetID: true,
		Metrics:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("worker %s: engine: %v", name, err)
	}
	w := NewWorker(name, eng, reg)
	return &testWorker{name: name, eng: eng, srv: httptest.NewServer(w.Handler())}
}

// lockedBuffer collects router log lines across goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHealthDetectorSuspectDownRejoin walks one worker through the whole
// detector life cycle behind an injected network partition: Alive → (silence)
// → Suspect with forwards deferring to the journal → Down → (partition
// heals) → automatic rejoin with journal replay — and the cluster's final
// answer is byte-identical to batch.
func TestHealthDetectorSuspectDownRejoin(t *testing.T) {
	leaktest.Check(t)
	ds := testDataset(t, 300, 29)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)

	clk := NewManualClock(time.Unix(1700000000, 0))
	part := fault.NewPartition(29, obs.Discard)
	reg := obs.NewRegistry()
	logs := &lockedBuffer{}
	r := testRouter(t, reg, func(o *Options) {
		o.HTTP = &http.Client{Transport: part.RoundTripper(nil)}
		o.Clock = clk
		o.ForwardAttempts = 2
		o.Log = logx.New(logs, "test-router")
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	join(t, r, w1)
	join(t, r, w2)

	ctx := context.Background()
	half := len(tweets) / 2
	feed(t, r, tweets[:half], 64)

	// Cut w2 off: requests die on the wire, the server never sees them.
	host2 := hostOf(t, w2.srv.URL)
	part.Set(host2, fault.Link{DropRequests: true})

	// Inside the suspect window the worker stays Alive — one lost probe is
	// not a failure.
	r.HealthTick(ctx)
	if got := r.Members().Members[1]; got.Health != "alive" {
		t.Fatalf("one missed probe already escalated: %+v", got)
	}

	// Past SuspectAfter: Suspect, marked down, forwards defer.
	clk.Advance(DefaultSuspectAfter + time.Second)
	r.HealthTick(ctx)
	m := r.Members()
	if m.Members[1].Name != "w2" || m.Members[1].Health != "suspect" || m.Members[1].Up {
		t.Fatalf("want w2 suspect+down after silence, got %+v", m.Members[1])
	}
	if m.Members[1].LastErr == "" {
		t.Fatal("suspect member should carry its probe error")
	}
	sent := part.Sent(host2)
	rep := r.IngestBatch(ctx, tweets[half:])
	if rep.Deferred == 0 || rep.Forwarded+rep.Deferred != len(tweets)-half {
		t.Fatalf("suspect worker should journal its share: %+v", rep)
	}
	if part.Sent(host2) != sent {
		t.Fatalf("suspect worker still receives forwards: sent %d → %d", sent, part.Sent(host2))
	}

	// Past DownAfter: Down (no auto-failover configured — it stays a member
	// and keeps journaling).
	clk.Advance(DefaultDownAfter)
	r.HealthTick(ctx)
	if got := r.Members().Members[1]; got.Health != "down" {
		t.Fatalf("want w2 down, got %+v", got)
	}
	if n := len(r.Members().Members); n != 2 {
		t.Fatalf("down without auto-failover must keep membership, got %d members", n)
	}

	// Heal the partition: the next probe succeeds and the detector rejoins
	// the worker on its own — breaker reset, journal replayed, Alive again.
	part.Heal(host2)
	r.HealthTick(ctx)
	got := r.Members().Members[1]
	if got.Health != "alive" || !got.Up {
		t.Fatalf("healed worker should auto-rejoin, got %+v", got)
	}
	if reg.Counter("stir_cluster_replayed_total", "worker", "w2").Value() == 0 {
		t.Fatal("auto-rejoin replayed nothing — deferred tweets lost?")
	}
	assertClusterMatchesBatch(t, r, res)

	// The state machine's full path is counted and logged.
	for _, to := range []string{"suspect", "down", "alive"} {
		if v := reg.Counter("stir_cluster_health_transitions_total", "worker", "w2", "to", to).Value(); v != 1 {
			t.Fatalf("transition to %s counted %d times, want 1", to, v)
		}
	}
	if reg.Counter("stir_cluster_health_probes_total", "worker", "w2", "result", "fail").Value() < 3 {
		t.Fatal("failed probes not counted")
	}
	if out := logs.String(); !bytes.Contains([]byte(out), []byte("worker health transition")) {
		t.Fatalf("state transitions missing from router log:\n%s", out)
	}
	// Epoch: one bump per join plus one for the rejoin.
	if e := r.Epoch(); e != 3 {
		t.Fatalf("epoch after join+join+rejoin = %d, want 3", e)
	}
}

// TestHealthAutoFailover drives a partitioned worker to Down with
// auto-failover on: the detector removes it through the crash-recovery path
// (journal-only here — no checkpoint store), the survivor absorbs its users,
// and the answer still matches batch exactly.
func TestHealthAutoFailover(t *testing.T) {
	ds := testDataset(t, 250, 37)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)

	clk := NewManualClock(time.Unix(1700000000, 0))
	part := fault.NewPartition(37, obs.Discard)
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.HTTP = &http.Client{Transport: part.RoundTripper(nil)}
		o.Clock = clk
		o.ForwardAttempts = 2
		o.AutoFailover = true
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	join(t, r, w1)
	join(t, r, w2)

	ctx := context.Background()
	feed(t, r, tweets, 64)

	part.Set(hostOf(t, w2.srv.URL), fault.Link{DropRequests: true})
	clk.Advance(DefaultDownAfter + time.Second)
	r.HealthTick(ctx)

	m := r.Members()
	if len(m.Members) != 1 || m.Members[0].Name != "w1" {
		t.Fatalf("auto-failover should have removed w2: %+v", m)
	}
	if v := reg.Counter("stir_cluster_health_failovers_total", "worker", "w2", "result", "ok").Value(); v != 1 {
		t.Fatalf("failover counted %d times, want 1", v)
	}
	// No store: every one of w2's tweets came back out of the journal.
	if reg.Counter("stir_cluster_replayed_total", "worker", "w2").Value() == 0 {
		t.Fatal("journal-only failover replayed nothing")
	}
	assertClusterMatchesBatch(t, r, res)
	if got, want := w1.eng.Stats().Users, res.Analysis.Users; got != want {
		t.Fatalf("survivor owns %d users, batch has %d", got, want)
	}
	// join + join + crash removal.
	if e := r.Epoch(); e != 3 {
		t.Fatalf("epoch after failover = %d, want 3", e)
	}
}

// TestHealthFailoverLastWorkerGuard partitions the whole fleet: the first
// worker fails over (its journal re-routes to the second), the second hits
// the last-worker guard — an error, counted, with the member kept for
// retries — and when the partition heals, the survivor rejoins and replays
// everything, landing on the exact batch answer alone.
func TestHealthFailoverLastWorkerGuard(t *testing.T) {
	ds := testDataset(t, 150, 41)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	clk := NewManualClock(time.Unix(1700000000, 0))
	part := fault.NewPartition(41, obs.Discard)
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.HTTP = &http.Client{Transport: part.RoundTripper(nil)}
		o.Clock = clk
		o.ForwardAttempts = 2
		o.AutoFailover = true
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	join(t, r, w1)
	join(t, r, w2)
	feed(t, r, tweets, 64)

	host1, host2 := hostOf(t, w1.srv.URL), hostOf(t, w2.srv.URL)
	part.Set(host1, fault.Link{DropRequests: true})
	part.Set(host2, fault.Link{DropRequests: true})
	ctx := context.Background()
	clk.Advance(DefaultDownAfter + time.Second)
	r.HealthTick(ctx)

	// w1 (probed first) failed over: its journal re-routed into w2's journal
	// across the partition. w2's own failover then hit the last-worker guard.
	if v := reg.Counter("stir_cluster_health_failovers_total", "worker", "w1", "result", "ok").Value(); v != 1 {
		t.Fatalf("w1 failover: got %d, want 1", v)
	}
	if v := reg.Counter("stir_cluster_health_failovers_total", "worker", "w2", "result", "error").Value(); v != 1 {
		t.Fatalf("last-worker failover should count one error, got %d", v)
	}
	m := r.Members()
	if len(m.Members) != 1 || m.Members[0].Name != "w2" || m.Members[0].Health != "down" {
		t.Fatalf("guard should keep the last member, down, for retries: %+v", m)
	}

	// Heal: the probe succeeds, the survivor rejoins and replays both its
	// own journal and w1's re-routed one — nothing acked was lost.
	part.HealAll()
	clk.Advance(time.Second)
	r.HealthTick(ctx)
	if got := r.Members().Members[0]; got.Health != "alive" || !got.Up {
		t.Fatalf("survivor should heal, got %+v", got)
	}
	assertClusterMatchesBatch(t, r, res)
	if got, want := w2.eng.Stats().Users, res.Analysis.Users; got != want {
		t.Fatalf("survivor owns %d users, batch has %d", got, want)
	}
}

// countingTransport counts round trips headed at one host.
type countingTransport struct {
	host string
	n    atomic.Int64
}

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == c.host {
		c.n.Add(1)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestMarkDownDefersWithoutHTTP is the no-wasted-budget regression: once a
// worker is marked down, its forwards defer to the journal without a single
// HTTP attempt — no retry burn, no breaker churn, nothing on the wire.
func TestMarkDownDefersWithoutHTTP(t *testing.T) {
	ds := testDataset(t, 200, 43)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	ct := &countingTransport{}
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.HTTP = &http.Client{Transport: ct}
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	join(t, r, w1)
	join(t, r, w2)
	ct.host = hostOf(t, w2.srv.URL)

	ctx := context.Background()
	half := len(tweets) / 2
	feed(t, r, tweets[:half], 64)

	r.MarkDown("w2")
	before := ct.n.Load()
	rep := r.IngestBatch(ctx, tweets[half:])
	if rep.Deferred == 0 || rep.Forwarded+rep.Deferred != len(tweets)-half {
		t.Fatalf("marked-down worker should defer its share: %+v", rep)
	}
	if after := ct.n.Load(); after != before {
		t.Fatalf("marked-down worker still got %d HTTP attempts", after-before)
	}
	if reg.Counter("stir_cluster_deferred_total", "worker", "w2").Value() == 0 {
		t.Fatal("deferral not counted")
	}

	// Rejoin replays the deferred share and the answer is exact.
	join(t, r, w2)
	assertClusterMatchesBatch(t, r, res)
}

// TestMembersEndpoint reads the admin view over HTTP and checks it carries
// the operator's triage fields.
func TestMembersEndpoint(t *testing.T) {
	ds := testDataset(t, 80, 47)
	r := testRouter(t, obs.NewRegistry(), nil)
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	join(t, r, w1)
	feed(t, r, allTweets(ds), 64)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var m MembersView
	getJSON(t, srv.URL+"/cluster/v1/members", http.StatusOK, &m)
	if m.Epoch != 1 || len(m.Members) != 1 {
		t.Fatalf("members view: %+v", m)
	}
	row := m.Members[0]
	if row.Name != "w1" || row.Health != "alive" || !row.Up || row.URL == "" {
		t.Fatalf("member row: %+v", row)
	}
	if len(row.Partitions) == 0 {
		t.Fatalf("sole member should own every partition: %+v", row)
	}
	if row.LastOK == "" {
		t.Fatal("member row missing last_ok")
	}
	if row.AckedSeq == 0 {
		t.Fatalf("acked cursor missing after a fed stream: %+v", row)
	}
}

// TestRunHealthStopsCleanly pins the production loop's shutdown: cancelling
// the context stops the ticker goroutine (the leak guard fails the test
// otherwise).
func TestRunHealthStopsCleanly(t *testing.T) {
	leaktest.Check(t)
	r := testRouter(t, obs.NewRegistry(), func(o *Options) {
		o.Heartbeat = time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		r.RunHealth(ctx)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunHealth did not stop after cancel")
	}
}

var _ io.Writer = (*lockedBuffer)(nil)
