package cluster

// MembersView is the admin membership answer: the failure detector's state
// per worker next to the forwarding/journal cursors the operator needs to
// judge it ("suspect with a deep journal and a stale cursor" reads very
// differently from "suspect, journal empty, cursor current").
type MembersView struct {
	Epoch   int64        `json:"epoch"`
	Members []MemberView `json:"members"`
}

// MemberView is one worker's membership row.
type MemberView struct {
	Name   string `json:"name"`
	URL    string `json:"url"`
	Health string `json:"health"`
	Up     bool   `json:"up"`
	// Degraded flags a disk-degraded checkpoint store: the worker serves
	// reads but its forwards defer to the journal.
	Degraded     bool   `json:"degraded,omitempty"`
	LastOK       string `json:"last_ok"`
	LastErr      string `json:"last_err,omitempty"`
	DurableSeq   int64  `json:"durable_seq"`
	AckedSeq     int64  `json:"acked_seq"`
	JournalDepth int    `json:"journal_depth"`
	Partitions   []int  `json:"partitions"`
}

// Members reports the failure detector's view of every worker, in ring
// order.
func (r *Router) Members() MembersView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v := MembersView{Epoch: r.epoch.Load()}
	for _, name := range r.ring.Workers() {
		w := r.workers[name]
		if w == nil {
			continue
		}
		w.mu.Lock()
		url, up, degraded, h := w.url, w.up, w.degraded, w.health
		w.mu.Unlock()
		w.jMu.Lock()
		depth, durable, acked := len(w.journal), w.durableSeq, w.ackedSeq
		w.jMu.Unlock()
		v.Members = append(v.Members, MemberView{
			Name:         name,
			URL:          url,
			Health:       h.state.String(),
			Up:           up,
			Degraded:     degraded,
			LastOK:       h.lastOK.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			LastErr:      h.lastErr,
			DurableSeq:   durable,
			AckedSeq:     acked,
			JournalDepth: depth,
			Partitions:   r.ring.PartsOwnedBy(name, r.opts.Replicas),
		})
	}
	return v
}
