package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/storage/vfs"
)

// diskSeedFromEnv reads the disk-exhaustion chaos seed (STIR_DISK_SEED), so
// `make disk-chaos` can sweep schedules while a failure replays exactly.
func diskSeedFromEnv(def int64) int64 {
	if v, err := strconv.ParseInt(os.Getenv("STIR_DISK_SEED"), 10, 64); err == nil {
		return v
	}
	return def
}

// TestDiskExhaustionChaosConverges is the resource-exhaustion capstone
// (DESIGN.md §16): one worker's disk fills mid-stream. Its checkpoints defer
// (counted, cursor pinned), its store degrades to read-only, the router
// learns it from a hello probe and turns suspect-for-writes — new tweets for
// that worker stay journaled while reads keep scattering across the full
// ring. Readiness goes down, liveness and metrics stay up. Then the external
// pressure lifts, the store recovers, the next probe heals the worker and
// replays the journal tail — and the merged cluster answer is byte-identical
// to the batch pipeline with zero acked-synced records lost and zero journal
// evictions.
func TestDiskExhaustionChaosConverges(t *testing.T) {
	leaktest.Check(t)
	seed := diskSeedFromEnv(2026)
	ds := testDataset(t, 400, 13)
	ctx := context.Background()
	res, err := ds.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)

	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.ForwardBatch = 32
		o.Seed = seed
	})
	w1 := startWorker(t, ds, "w1", vfs.NewFault(vfs.FaultConfig{Seed: seed + 1}))
	defer w1.stop()
	// The victim's device holds plenty at first; an external tenant will
	// fill it mid-stream.
	const capacity = 1 << 20
	victimFS := vfs.NewFault(vfs.FaultConfig{Seed: seed + 2, DiskCapacity: capacity})
	victim := startWorker(t, ds, "w2", victimFS)
	defer victim.stop()
	join(t, r, w1)
	join(t, r, victim)

	// Phase 1: a healthy stream with a durable cut.
	cut := len(tweets) * 3 / 5
	feed(t, r, tweets[:cut], 48)
	if errs := r.CheckpointAll(ctx); len(errs) != 0 {
		t.Fatalf("healthy checkpoint errored: %+v", errs)
	}

	// The device fills. The next checkpoint hits ENOSPC, defers (cursor not
	// advanced), and flips the store read-only degraded.
	victimFS.Mem().AddExternalUsage(capacity)
	if errs := r.CheckpointAll(ctx); len(errs) == 0 {
		t.Fatal("checkpoint on a full disk reported success")
	}
	if got := victim.eng.Stats().CheckpointsDeferred; got == 0 {
		t.Fatal("full disk produced no checkpoint deferrals")
	}
	if !victim.eng.Degraded() {
		t.Fatal("victim engine must report disk degradation")
	}

	// The router's next probe learns the degradation from hello: the worker
	// turns suspect-for-writes but stays Alive (its reads are fine).
	r.HealthTick(ctx)
	if got := reg.Counter("stir_cluster_degraded_total", "worker", "w2").Value(); got != 1 {
		t.Fatalf("stir_cluster_degraded_total{w2} = %v, want 1", got)
	}
	sawDegraded := false
	for _, m := range r.Members().Members {
		if m.Name == "w2" {
			sawDegraded = m.Degraded
			if m.Health != HealthAlive.String() {
				t.Fatalf("degraded worker health = %s, want alive (it answers probes)", m.Health)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("members view does not show w2 degraded")
	}

	// The acceptance contract for the daemon surface: /readyz answers 503
	// (state degraded) while /healthz and /metrics keep answering 200 — the
	// same obs wiring daemon.WatchDegraded drives in the real processes.
	ready := &obs.Readiness{}
	ready.SetDegraded(victim.eng.Degraded())
	rz := httptest.NewServer(obs.ReadyzHandler("worker", ready))
	defer rz.Close()
	hz := httptest.NewServer(obs.HealthzHandler("worker"))
	defer hz.Close()
	mz := httptest.NewServer(obs.Handler(reg))
	defer mz.Close()
	wantStatus := func(url string, want int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, want)
		}
	}
	wantStatus(rz.URL, http.StatusServiceUnavailable)
	wantStatus(hz.URL, http.StatusOK)
	wantStatus(mz.URL, http.StatusOK)

	// Phase 2: the stream keeps flowing. The victim's share defers into its
	// journal (no tweet lost), while scatter reads still cover both workers.
	deferredBefore := reg.Counter("stir_cluster_deferred_total", "worker", "w2").Value()
	mid := cut + (len(tweets)-cut)/2
	for fed := cut; fed < mid; {
		n := 48
		if n > mid-fed {
			n = mid - fed
		}
		rep := r.IngestBatch(ctx, tweets[fed:fed+n])
		if rep.Forwarded+rep.Deferred != n {
			t.Fatalf("lost tweets while degraded: %+v (batch of %d)", rep, n)
		}
		fed += n
	}
	if reg.Counter("stir_cluster_deferred_total", "worker", "w2").Value() == deferredBefore {
		t.Fatal("degradation deferred nothing — every tweet routed around w2?")
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var groups GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &groups)
	if groups.Partial || len(groups.Errors) != 0 {
		t.Fatalf("degraded worker must keep serving reads, got partial: %+v", groups.Errors)
	}

	// The pressure lifts; the store recovers; the next probe heals the
	// worker and replays the journal tail past its durable cursor.
	victimFS.Mem().AddExternalUsage(-capacity)
	if err := victim.store.TryRecover(); err != nil {
		t.Fatalf("TryRecover after space freed: %v", err)
	}
	if victim.eng.Degraded() {
		t.Fatal("engine still degraded after store recovery")
	}
	r.HealthTick(ctx)
	if got := reg.Counter("stir_cluster_degraded_healed_total", "worker", "w2").Value(); got != 1 {
		t.Fatalf("stir_cluster_degraded_healed_total{w2} = %v, want 1", got)
	}
	if reg.Counter("stir_cluster_replayed_total", "worker", "w2").Value() == 0 {
		t.Fatal("heal replayed nothing — deferred tweets lost?")
	}
	ready.SetDegraded(victim.eng.Degraded())
	wantStatus(rz.URL, http.StatusOK)

	// Phase 3: the rest of the stream through the healed ring, then a clean
	// checkpoint — and byte-identical convergence with the batch pipeline.
	feed(t, r, tweets[mid:], 48)
	if errs := r.CheckpointAll(ctx); len(errs) != 0 {
		t.Fatalf("post-heal checkpoint errored: %+v", errs)
	}
	assertClusterMatchesBatch(t, r, res)
	var g2 GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &g2)
	if g2.Partial || g2.Users != res.Analysis.Users || g2.Tweets != res.Analysis.Tweets {
		t.Fatalf("healed /v1/groups: %+v, batch users=%d tweets=%d",
			g2, res.Analysis.Users, res.Analysis.Tweets)
	}

	// Zero acked-synced loss: nothing was evicted from the journal, so every
	// deferred tweet reached the worker.
	if evicted := reg.Counter("stir_cluster_journal_evicted_total", "worker", "w2").Value(); evicted != 0 {
		t.Fatalf("journal evicted %d entries during the outage", evicted)
	}
}

// TestDegradedAutoFailoverOnlyWhenEvicting pins the failover policy for
// disk-degraded workers: as long as the journal absorbs the deferred writes,
// the router waits for the disk to heal — re-sharding would lose nothing but
// costs a handoff. Only once the journal starts evicting (deferred writes
// actually being lost) does -auto-failover give up on the worker.
func TestDegradedAutoFailoverOnlyWhenEvicting(t *testing.T) {
	leaktest.Check(t)
	seed := diskSeedFromEnv(2026) + 101
	ds := testDataset(t, 120, 29)
	ctx := context.Background()
	tweets := allTweets(ds)

	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.ForwardBatch = 16
		o.JournalDepth = 64 // tiny: sustained deferral must evict
		o.AutoFailover = true
		o.Seed = seed
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	const capacity = 1 << 19
	victimFS := vfs.NewFault(vfs.FaultConfig{Seed: seed + 1, DiskCapacity: capacity})
	victim := startWorker(t, ds, "w2", victimFS)
	defer victim.stop()
	join(t, r, w1)
	join(t, r, victim)

	feed(t, r, tweets[:len(tweets)/2], 32)
	victimFS.Mem().AddExternalUsage(capacity)
	r.CheckpointAll(ctx) // defers; store degrades
	if !victim.eng.Degraded() {
		t.Fatal("victim engine must be degraded")
	}
	r.HealthTick(ctx)

	// While the journal holds everything, ticks must NOT fail the worker
	// over, no matter how many pass.
	for i := 0; i < 5; i++ {
		r.HealthTick(ctx)
	}
	if got := reg.Counter("stir_cluster_health_failovers_total", "worker", "w2", "result", "ok").Value(); got != 0 {
		t.Fatalf("failover fired with zero journal evictions (%v)", got)
	}

	// Overflow the tiny journal: deferred writes are now being lost, so the
	// next probe must fail the worker over to the survivors.
	half := tweets[len(tweets)/2:]
	for i := 0; i < 10; i++ {
		r.IngestBatch(ctx, half)
		time.Sleep(time.Millisecond)
	}
	if reg.Counter("stir_cluster_journal_evicted_total", "worker", "w2").Value() == 0 {
		t.Fatal("journal never evicted — depth too large for the test")
	}
	r.HealthTick(ctx)
	if got := reg.Counter("stir_cluster_health_failovers_total", "worker", "w2", "result", "ok").Value(); got == 0 {
		t.Fatal("failover did not fire once the journal was evicting")
	}
	names := map[string]bool{}
	for _, m := range r.Members().Members {
		names[m.Name] = true
	}
	if names["w2"] {
		t.Fatal("evicting degraded worker still in the ring after failover")
	}
}
