package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stir"
	"stir/internal/core"
	"stir/internal/obs"
	"stir/internal/storage"
	"stir/internal/storage/vfs"
	"stir/internal/stream"
	"stir/internal/textnorm"
	"stir/internal/twitter"
)

// The cluster's correctness anchor mirrors the stream engine's: after every
// membership change, failure, and replay, the merged cluster-wide groupings
// must be byte-for-byte the batch pipeline's output over the same tweets.

func testDataset(t testing.TB, users int, seed int64) *stir.Dataset {
	t.Helper()
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Users: users, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func allTweets(ds *stir.Dataset) []*twitter.Tweet {
	var out []*twitter.Tweet
	ds.Service.EachTweet(func(tw *twitter.Tweet) bool {
		out = append(out, tw)
		return true
	})
	return out
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testWorker is one worker process: engine, optional fault-backed store, and
// an HTTP listener standing in for the worker daemon.
type testWorker struct {
	name  string
	flt   *vfs.Fault
	store *storage.Store // nil without flt; the disk-chaos suite recovers through it
	eng   *stream.Engine
	srv   *httptest.Server
}

// startWorker boots a worker. A non-nil flt gives it a checkpoint store on
// that fault filesystem (the store opens from whatever the FS holds, so a
// restarted FS resumes the previous checkpoint).
func startWorker(t testing.TB, ds *stir.Dataset, name string, flt *vfs.Fault) *testWorker {
	t.Helper()
	var store *storage.Store
	if flt != nil {
		var err error
		store, err = storage.Open("ckpt", storage.Options{FS: flt, Metrics: obs.Discard})
		if err != nil {
			t.Fatalf("worker %s: open store: %v", name, err)
		}
	}
	resolver := stream.NewGazetteerResolver(ds.Gazetteer, 10)
	eng, err := stream.New(stream.Config{
		Profiles: stream.NewProfileResolver(stream.ServiceLookup(ds.Service),
			textnorm.NewRefiner(ds.Gazetteer), resolver, ds.Gazetteer),
		Resolver:       resolver,
		DedupByTweetID: true,
		Store:          store,
		Metrics:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("worker %s: engine: %v", name, err)
	}
	w := NewWorker(name, eng, obs.NewRegistry())
	return &testWorker{name: name, flt: flt, store: store, eng: eng, srv: httptest.NewServer(w.Handler())}
}

func (w *testWorker) stop() {
	w.srv.Close()
	w.eng.Close()
}

// kill is the SIGKILL-equivalent: the listener vanishes mid-flight and the
// engine's in-memory state is discarded without a checkpoint. Only what the
// store's filesystem already holds survives.
func (w *testWorker) kill() {
	w.srv.CloseClientConnections()
	w.srv.Close()
	w.eng.Close()
}

func testRouter(t testing.TB, reg *obs.Registry, mutate func(*Options)) *Router {
	t.Helper()
	opts := Options{
		Partitions:     32,
		ForwardBatch:   64,
		ScatterTimeout: 2 * time.Second,
		HandoffTimeout: 10 * time.Second,
		Metrics:        reg,
	}
	if mutate != nil {
		mutate(&opts)
	}
	return New(opts)
}

func join(t testing.TB, r *Router, w *testWorker) {
	t.Helper()
	if err := r.AddWorker(context.Background(), w.name, w.srv.URL); err != nil {
		t.Fatalf("join %s: %v", w.name, err)
	}
}

// feed pushes tweets through the router in fixed-size batches and fails on
// any drop: with all workers up, nothing may be lost or deferred.
func feed(t testing.TB, r *Router, tweets []*twitter.Tweet, batch int) {
	t.Helper()
	for len(tweets) > 0 {
		n := batch
		if n > len(tweets) {
			n = len(tweets)
		}
		rep := r.IngestBatch(context.Background(), tweets[:n])
		if rep.Forwarded != n || rep.Unrouted > 0 {
			t.Fatalf("ingest: %+v (want %d forwarded)", rep, n)
		}
		tweets = tweets[n:]
	}
}

// assertClusterMatchesBatch checks the merged cluster groupings and their
// analysis against the batch result, byte for byte.
func assertClusterMatchesBatch(t testing.TB, r *Router, res *stir.Result) {
	t.Helper()
	gs, errs := r.Groupings(context.Background())
	if len(errs) > 0 {
		t.Fatalf("gather errors: %+v", errs)
	}
	if got, want := mustJSON(t, gs), mustJSON(t, res.Groupings); !bytes.Equal(got, want) {
		t.Fatalf("cluster groupings diverge from batch: %d vs %d users", len(gs), len(res.Groupings))
	}
	if got, want := mustJSON(t, core.Analyze(gs)), mustJSON(t, res.Analysis); !bytes.Equal(got, want) {
		t.Fatalf("cluster analysis not byte-identical:\ncluster %s\nbatch   %s", got, want)
	}
}

func TestClusterScatterGatherMatchesBatch(t *testing.T) {
	ds := testDataset(t, 600, 5)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := testRouter(t, reg, nil)
	var workers []*testWorker
	for _, name := range []string{"w1", "w2", "w3"} {
		w := startWorker(t, ds, name, nil)
		defer w.stop()
		workers = append(workers, w)
		join(t, r, w)
	}
	feed(t, r, allTweets(ds), 97)
	assertClusterMatchesBatch(t, r, res)

	// Every worker holds a strict, non-empty subset of the users.
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var stats StatsResult
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Partial || stats.WorkersOK != 3 {
		t.Fatalf("stats degraded with all workers up: %+v", stats)
	}
	if stats.Users != res.Analysis.Users {
		t.Fatalf("summed users = %d, batch has %d", stats.Users, res.Analysis.Users)
	}
	var groups GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &groups)
	if groups.Partial || groups.Users != res.Analysis.Users || groups.Tweets != res.Analysis.Tweets {
		t.Fatalf("groups mismatch: %+v", groups)
	}

	// Single-user lookup routes to the owner.
	u := res.Groupings[0]
	var view stream.UserView
	getJSON(t, srv.URL+"/v1/users/"+jsonNum(u.UserID), http.StatusOK, &view)
	if view.UserID != u.UserID || view.TotalTweets != u.TotalTweets {
		t.Fatalf("user view %+v does not match batch grouping %+v", view, u)
	}
	getJSON(t, srv.URL+"/v1/users/999999999", http.StatusNotFound, nil)
}

func jsonNum(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func getJSON(t testing.TB, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestClusterJoinLeaveHandoffConverges(t *testing.T) {
	ds := testDataset(t, 600, 9)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	reg := obs.NewRegistry()
	r := testRouter(t, reg, nil)
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	join(t, r, w1)

	// Half the stream lands on a one-worker cluster.
	feed(t, r, tweets[:len(tweets)/2], 83)

	// A second worker joins mid-stream: its partitions migrate over.
	w2 := startWorker(t, ds, "w2", nil)
	defer w2.stop()
	join(t, r, w2)
	if got := reg.Counter("stir_cluster_handoffs_total", "reason", "join").Value(); got == 0 {
		t.Fatal("join moved no partitions")
	}
	// Rest of the stream flows through the two-worker ring.
	feed(t, r, tweets[len(tweets)/2:], 83)
	assertClusterMatchesBatch(t, r, res)
	if w2.eng.Stats().Users == 0 {
		t.Fatal("joined worker owns no users — handoff did nothing")
	}

	// w1 leaves gracefully; everything must flow back to w2.
	if err := r.Leave(context.Background(), "w1"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	w1.stop()
	assertClusterMatchesBatch(t, r, res)
	if got, want := w2.eng.Stats().Users, res.Analysis.Users; got < want {
		t.Fatalf("after leave, w2 has %d grouped users, batch has %d", got, want)
	}
	if got := reg.Counter("stir_cluster_handoffs_total", "reason", "leave").Value(); got == 0 {
		t.Fatal("leave recorded no handoffs")
	}
}

func TestClusterScatterPartialDegradation(t *testing.T) {
	ds := testDataset(t, 400, 11)
	reg := obs.NewRegistry()
	r := testRouter(t, reg, func(o *Options) {
		o.ForwardAttempts = 1
		o.ScatterTimeout = 500 * time.Millisecond
	})
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	w2 := startWorker(t, ds, "w2", nil)
	join(t, r, w1)
	join(t, r, w2)
	feed(t, r, allTweets(ds), 64)

	before, _ := r.Groupings(context.Background())

	// One shard dies. Queries must degrade, not fail.
	w2.kill()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var groups GroupsResult
	getJSON(t, srv.URL+"/v1/groups", http.StatusOK, &groups)
	if !groups.Partial || groups.WorkersOK != 1 || len(groups.Errors) != 1 || groups.Errors[0].Worker != "w2" {
		t.Fatalf("want partial result blaming w2, got %+v", groups)
	}
	if groups.Users == 0 || groups.Users >= len(before) {
		t.Fatalf("partial answer should carry w1's shard only: %d users of %d", groups.Users, len(before))
	}
	var stats StatsResult
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &stats)
	if !stats.Partial || stats.WorkersOK != 1 {
		t.Fatalf("stats not partial: %+v", stats)
	}

	// Ingest while a shard is down: its tweets defer to the journal. The
	// whole collection goes through again (idempotent — dedup absorbs it),
	// which guarantees some of it routes to the dead shard.
	rep := r.IngestBatch(context.Background(), allTweets(ds))
	if rep.Deferred == 0 || len(rep.Errors) == 0 {
		t.Fatalf("ingest against a dead shard must defer and account: %+v", rep)
	}
	if reg.Counter("stir_cluster_deferred_total", "worker", "w2").Value() == 0 {
		t.Fatal("deferred tweets not counted")
	}

	// Both shards down: now the answer is gone and the status says so.
	w1.srv.CloseClientConnections()
	w1.srv.Close()
	getJSON(t, srv.URL+"/v1/groups", http.StatusServiceUnavailable, &groups)
	if groups.WorkersOK != 0 {
		t.Fatalf("all workers dead but WorkersOK = %d", groups.WorkersOK)
	}
}

func TestRouterRingStateAndLastWorkerGuard(t *testing.T) {
	ds := testDataset(t, 50, 3)
	r := testRouter(t, obs.NewRegistry(), nil)
	w1 := startWorker(t, ds, "w1", nil)
	defer w1.stop()
	join(t, r, w1)
	if err := r.Leave(context.Background(), "w1"); err == nil {
		t.Fatal("removing the last worker must be refused")
	}
	if err := r.Leave(context.Background(), "ghost"); err == nil {
		t.Fatal("leaving an unknown worker must be refused")
	}
	v := r.RingState()
	if len(v.Workers) != 1 || v.Workers[0].Name != "w1" || !v.Workers[0].Up {
		t.Fatalf("ring state: %+v", v)
	}
	if v.Workers[0].Partitions != 32 {
		t.Fatalf("single worker should own every partition, owns %d", v.Workers[0].Partitions)
	}
}
