package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/stream"
	"stir/internal/twitter"
)

// EpochHeader carries the router's membership generation on every cluster
// hop. Workers keep a high-water mark of the epochs they have seen and
// reject anything older with 412: a router (or a replayed in-flight hop)
// holding a pre-failover view of the ring cannot apply stale writes or serve
// stale scatter shards. A missing header passes — rolling upgrades and bare
// curl keep working.
const EpochHeader = "X-Stir-Epoch"

// Worker is the cluster-facing surface of one stream worker: the existing
// engine plus the handoff and forward-ingest endpoints the router drives.
//
//	POST /cluster/v1/ingest      apply a forwarded batch (seq-stamped)
//	POST /cluster/v1/checkpoint  force a durable checkpoint, return its cursor
//	GET  /cluster/v1/hello       identity + durable cursor (join handshake)
//	GET  /cluster/v1/groupings   full per-user groupings (scatter-gather merge)
//	GET  /cluster/v1/export      serialise the users of a partition set
//	POST /cluster/v1/import      install a handoff payload
//	POST /cluster/v1/drop        release the users of a partition set
//
// The /v1 query API (groups, users, stats) stays mounted alongside, so one
// worker address serves both per-worker queries and cluster plumbing.
type Worker struct {
	name string
	eng  *stream.Engine
	reg  *obs.Registry

	mu      sync.Mutex
	lastSeq int64 // highest applied forward sequence

	// epoch is the fence watermark: the highest membership generation any
	// router has presented. Monotonic (CAS-advanced), never reset.
	epoch atomic.Int64
}

// NewWorker wraps an engine for cluster duty. The engine should run with
// DedupByTweetID on — journal replay after a crash depends on it.
func NewWorker(name string, eng *stream.Engine, reg *obs.Registry) *Worker {
	return &Worker{name: name, eng: eng, reg: obs.Or(reg), lastSeq: ParseSeq(eng.Cursor())}
}

// Engine returns the wrapped engine.
func (w *Worker) Engine() *stream.Engine { return w.eng }

// Name returns the worker's cluster name.
func (w *Worker) Name() string { return w.name }

// Epoch returns the fence watermark — the highest membership generation this
// worker has seen.
func (w *Worker) Epoch() int64 { return w.epoch.Load() }

// advanceEpoch raises the watermark to at least e.
func (w *Worker) advanceEpoch(e int64) {
	for {
		cur := w.epoch.Load()
		if e <= cur || w.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// fence enforces the epoch watermark on one request. It returns false after
// writing a 412 when the request carries a generation older than the
// watermark; otherwise it advances the watermark and lets the request
// through. 412 maps onto resilience.ClassPermanent on the router, so a
// zombie's forwards die immediately instead of burning retries.
func (w *Worker) fence(rw http.ResponseWriter, r *http.Request, route string) bool {
	raw := r.Header.Get(EpochHeader)
	if raw == "" {
		return true
	}
	e, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: "bad " + EpochHeader + ": " + raw})
		return false
	}
	if cur := w.epoch.Load(); e < cur {
		w.reg.Counter("stir_cluster_fenced_total", "worker", w.name, "route", route).Inc()
		if sp := trace.FromContext(r.Context()); sp != nil {
			sp.Annotate("fenced", "stale epoch "+raw)
		}
		jsonReply(rw, http.StatusPreconditionFailed, httpError{
			Error: "stale epoch " + raw + " (watermark " + strconv.FormatInt(cur, 10) + ")",
		})
		return false
	}
	w.advanceEpoch(e)
	return true
}

// ParseSeq decodes a forward-sequence cursor; empty or malformed means 0
// ("replay everything").
func ParseSeq(s string) int64 {
	if s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// FormatSeq encodes a forward sequence as an engine cursor.
func FormatSeq(n int64) string { return strconv.FormatInt(n, 10) }

// ingestRequest is one forwarded batch: tweets in delivery order plus the
// router's sequence number of the last tweet.
type ingestRequest struct {
	Seq    int64            `json:"seq"`
	Tweets []*twitter.Tweet `json:"tweets"`
}

// ingestResponse acknowledges a batch. DurableSeq is the highest sequence
// covered by a committed checkpoint — the router trims its journal to it.
type ingestResponse struct {
	Accepted   int   `json:"accepted"`
	Refused    int   `json:"refused"`
	Seq        int64 `json:"seq"`
	DurableSeq int64 `json:"durable_seq"`
}

// helloResponse is the join handshake: who the worker is and where its
// durable state ends.
type helloResponse struct {
	Name       string `json:"name"`
	DurableSeq int64  `json:"durable_seq"`
	Users      int    `json:"users"`
	// Epoch is the worker's fence watermark; a freshly restarted router
	// adopts the highest one it hears so its own forwards pass the fences.
	Epoch int64 `json:"epoch"`
	// Degraded reports a disk-degraded checkpoint store: the worker keeps
	// serving reads, but the router should defer its forwards to the journal
	// until the store heals.
	Degraded bool `json:"degraded,omitempty"`
}

// Handler returns the worker's full HTTP surface: cluster endpoints plus the
// engine's /v1 query API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/ingest", w.fenced("ingest", w.handleIngest))
	mux.HandleFunc("/cluster/v1/checkpoint", w.fenced("checkpoint", w.handleCheckpoint))
	mux.HandleFunc("/cluster/v1/hello", w.handleHello)
	mux.HandleFunc("/cluster/v1/groupings", w.fenced("groupings", w.handleGroupings))
	mux.HandleFunc("/cluster/v1/export", w.fenced("export", w.handleExport))
	mux.HandleFunc("/cluster/v1/import", w.fenced("import", w.handleImport))
	mux.HandleFunc("/cluster/v1/drop", w.fenced("drop", w.handleDrop))
	mux.Handle("/v1/", w.fenced("query", w.eng.Handler().ServeHTTP))
	return mux
}

// fenced wraps a handler with the epoch check. Hello stays unfenced: it is
// the probe and handshake route, and a partitioned worker must keep
// answering it so the detector can heal the membership.
func (w *Worker) fenced(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if !w.fence(rw, r, route) {
			return
		}
		next(rw, r)
	}
}

func (w *Worker) handleIngest(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	if w.eng.CheckpointStalled() {
		// The memory-only dirty window is exhausted while checkpoints defer
		// on a full disk: accepting more would grow un-checkpointable state
		// without bound. 503 keeps the batch in the router's journal; it
		// replays when the store heals. (This is the backstop — the router
		// normally stops forwarding as soon as a probe reports degraded.)
		w.reg.Counter("stir_cluster_ingest_shed_total", "worker", w.name).Inc()
		jsonReply(rw, http.StatusServiceUnavailable, httpError{
			Error: "disk degraded: checkpoint dirty window exhausted",
		})
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: "bad batch: " + err.Error()})
		return
	}
	accepted, refused := 0, 0
	for _, t := range req.Tweets {
		if t == nil {
			continue
		}
		if w.eng.Ingest(t) {
			accepted++
		} else {
			refused++
		}
	}
	if refused > 0 {
		// The engine is closing; the router must not treat this batch as
		// applied or its journal trim would lose the refused tweets.
		jsonReply(rw, http.StatusServiceUnavailable, httpError{Error: "engine closed mid-batch"})
		return
	}
	w.mu.Lock()
	if req.Seq > w.lastSeq {
		w.lastSeq = req.Seq
		w.eng.SetCursor(FormatSeq(req.Seq))
	}
	seq := w.lastSeq
	w.mu.Unlock()
	jsonReply(rw, http.StatusOK, ingestResponse{
		Accepted:   accepted,
		Seq:        seq,
		DurableSeq: ParseSeq(w.eng.DurableCursor()),
	})
}

func (w *Worker) handleCheckpoint(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	if err := w.eng.Checkpoint(); err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, map[string]int64{"durable_seq": ParseSeq(w.eng.DurableCursor())})
}

func (w *Worker) handleHello(rw http.ResponseWriter, r *http.Request) {
	// Hello advances the watermark (the router teaches new generations on
	// the probe path) but never fences — see fenced.
	if raw := r.Header.Get(EpochHeader); raw != "" {
		if e, err := strconv.ParseInt(raw, 10, 64); err == nil {
			w.advanceEpoch(e)
		}
	}
	jsonReply(rw, http.StatusOK, helloResponse{
		Name:       w.name,
		DurableSeq: ParseSeq(w.eng.DurableCursor()),
		Users:      w.eng.Stats().Users,
		Epoch:      w.epoch.Load(),
		Degraded:   w.eng.Degraded(),
	})
}

func (w *Worker) handleGroupings(rw http.ResponseWriter, r *http.Request) {
	w.eng.Drain()
	jsonReply(rw, http.StatusOK, w.eng.Groupings())
}

// partSet parses the partitions/parts query params shared by export and drop.
func partSet(r *http.Request) (partitions int, parts map[int]bool, err error) {
	partitions, err = strconv.Atoi(r.URL.Query().Get("partitions"))
	if err != nil || partitions <= 0 {
		return 0, nil, errBadParts
	}
	parts = make(map[int]bool)
	for _, s := range strings.Split(r.URL.Query().Get("parts"), ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, perr := strconv.Atoi(s)
		if perr != nil || p < 0 || p >= partitions {
			return 0, nil, errBadParts
		}
		parts[p] = true
	}
	if len(parts) == 0 {
		return 0, nil, errBadParts
	}
	return partitions, parts, nil
}

var errBadParts = &badPartsError{}

type badPartsError struct{}

func (*badPartsError) Error() string {
	return "want ?partitions=N&parts=i,j,... with 0 <= part < N"
}

func (w *Worker) handleExport(rw http.ResponseWriter, r *http.Request) {
	partitions, parts, err := partSet(r)
	if err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	h, err := w.eng.ExportUsers(func(id twitter.UserID) bool {
		return parts[PartitionOf(id, partitions)]
	})
	if err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, h)
}

func (w *Worker) handleImport(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	var h stream.Handoff
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: "bad handoff: " + err.Error()})
		return
	}
	if err := w.eng.ImportUsers(h); err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, map[string]int{"imported": h.Len()})
}

func (w *Worker) handleDrop(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	partitions, parts, err := partSet(r)
	if err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	users, rejected := w.eng.DropUsers(func(id twitter.UserID) bool {
		return parts[PartitionOf(id, partitions)]
	})
	jsonReply(rw, http.StatusOK, map[string]int{"users": users, "rejected": rejected})
}

type httpError struct {
	Error string `json:"error"`
}

func jsonReply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
