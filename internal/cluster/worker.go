package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"stir/internal/obs"
	"stir/internal/stream"
	"stir/internal/twitter"
)

// Worker is the cluster-facing surface of one stream worker: the existing
// engine plus the handoff and forward-ingest endpoints the router drives.
//
//	POST /cluster/v1/ingest      apply a forwarded batch (seq-stamped)
//	POST /cluster/v1/checkpoint  force a durable checkpoint, return its cursor
//	GET  /cluster/v1/hello       identity + durable cursor (join handshake)
//	GET  /cluster/v1/groupings   full per-user groupings (scatter-gather merge)
//	GET  /cluster/v1/export      serialise the users of a partition set
//	POST /cluster/v1/import      install a handoff payload
//	POST /cluster/v1/drop        release the users of a partition set
//
// The /v1 query API (groups, users, stats) stays mounted alongside, so one
// worker address serves both per-worker queries and cluster plumbing.
type Worker struct {
	name string
	eng  *stream.Engine
	reg  *obs.Registry

	mu      sync.Mutex
	lastSeq int64 // highest applied forward sequence
}

// NewWorker wraps an engine for cluster duty. The engine should run with
// DedupByTweetID on — journal replay after a crash depends on it.
func NewWorker(name string, eng *stream.Engine, reg *obs.Registry) *Worker {
	return &Worker{name: name, eng: eng, reg: obs.Or(reg), lastSeq: ParseSeq(eng.Cursor())}
}

// Engine returns the wrapped engine.
func (w *Worker) Engine() *stream.Engine { return w.eng }

// Name returns the worker's cluster name.
func (w *Worker) Name() string { return w.name }

// ParseSeq decodes a forward-sequence cursor; empty or malformed means 0
// ("replay everything").
func ParseSeq(s string) int64 {
	if s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// FormatSeq encodes a forward sequence as an engine cursor.
func FormatSeq(n int64) string { return strconv.FormatInt(n, 10) }

// ingestRequest is one forwarded batch: tweets in delivery order plus the
// router's sequence number of the last tweet.
type ingestRequest struct {
	Seq    int64            `json:"seq"`
	Tweets []*twitter.Tweet `json:"tweets"`
}

// ingestResponse acknowledges a batch. DurableSeq is the highest sequence
// covered by a committed checkpoint — the router trims its journal to it.
type ingestResponse struct {
	Accepted   int   `json:"accepted"`
	Refused    int   `json:"refused"`
	Seq        int64 `json:"seq"`
	DurableSeq int64 `json:"durable_seq"`
}

// helloResponse is the join handshake: who the worker is and where its
// durable state ends.
type helloResponse struct {
	Name       string `json:"name"`
	DurableSeq int64  `json:"durable_seq"`
	Users      int    `json:"users"`
}

// Handler returns the worker's full HTTP surface: cluster endpoints plus the
// engine's /v1 query API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/ingest", w.handleIngest)
	mux.HandleFunc("/cluster/v1/checkpoint", w.handleCheckpoint)
	mux.HandleFunc("/cluster/v1/hello", w.handleHello)
	mux.HandleFunc("/cluster/v1/groupings", w.handleGroupings)
	mux.HandleFunc("/cluster/v1/export", w.handleExport)
	mux.HandleFunc("/cluster/v1/import", w.handleImport)
	mux.HandleFunc("/cluster/v1/drop", w.handleDrop)
	mux.Handle("/v1/", w.eng.Handler())
	return mux
}

func (w *Worker) handleIngest(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: "bad batch: " + err.Error()})
		return
	}
	accepted, refused := 0, 0
	for _, t := range req.Tweets {
		if t == nil {
			continue
		}
		if w.eng.Ingest(t) {
			accepted++
		} else {
			refused++
		}
	}
	if refused > 0 {
		// The engine is closing; the router must not treat this batch as
		// applied or its journal trim would lose the refused tweets.
		jsonReply(rw, http.StatusServiceUnavailable, httpError{Error: "engine closed mid-batch"})
		return
	}
	w.mu.Lock()
	if req.Seq > w.lastSeq {
		w.lastSeq = req.Seq
		w.eng.SetCursor(FormatSeq(req.Seq))
	}
	seq := w.lastSeq
	w.mu.Unlock()
	jsonReply(rw, http.StatusOK, ingestResponse{
		Accepted:   accepted,
		Seq:        seq,
		DurableSeq: ParseSeq(w.eng.DurableCursor()),
	})
}

func (w *Worker) handleCheckpoint(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	if err := w.eng.Checkpoint(); err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, map[string]int64{"durable_seq": ParseSeq(w.eng.DurableCursor())})
}

func (w *Worker) handleHello(rw http.ResponseWriter, r *http.Request) {
	jsonReply(rw, http.StatusOK, helloResponse{
		Name:       w.name,
		DurableSeq: ParseSeq(w.eng.DurableCursor()),
		Users:      w.eng.Stats().Users,
	})
}

func (w *Worker) handleGroupings(rw http.ResponseWriter, r *http.Request) {
	w.eng.Drain()
	jsonReply(rw, http.StatusOK, w.eng.Groupings())
}

// partSet parses the partitions/parts query params shared by export and drop.
func partSet(r *http.Request) (partitions int, parts map[int]bool, err error) {
	partitions, err = strconv.Atoi(r.URL.Query().Get("partitions"))
	if err != nil || partitions <= 0 {
		return 0, nil, errBadParts
	}
	parts = make(map[int]bool)
	for _, s := range strings.Split(r.URL.Query().Get("parts"), ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, perr := strconv.Atoi(s)
		if perr != nil || p < 0 || p >= partitions {
			return 0, nil, errBadParts
		}
		parts[p] = true
	}
	if len(parts) == 0 {
		return 0, nil, errBadParts
	}
	return partitions, parts, nil
}

var errBadParts = &badPartsError{}

type badPartsError struct{}

func (*badPartsError) Error() string {
	return "want ?partitions=N&parts=i,j,... with 0 <= part < N"
}

func (w *Worker) handleExport(rw http.ResponseWriter, r *http.Request) {
	partitions, parts, err := partSet(r)
	if err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	h, err := w.eng.ExportUsers(func(id twitter.UserID) bool {
		return parts[PartitionOf(id, partitions)]
	})
	if err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, h)
}

func (w *Worker) handleImport(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	var h stream.Handoff
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: "bad handoff: " + err.Error()})
		return
	}
	if err := w.eng.ImportUsers(h); err != nil {
		jsonReply(rw, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	jsonReply(rw, http.StatusOK, map[string]int{"imported": h.Len()})
}

func (w *Worker) handleDrop(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonReply(rw, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	partitions, parts, err := partSet(r)
	if err != nil {
		jsonReply(rw, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	users, rejected := w.eng.DropUsers(func(id twitter.UserID) bool {
		return parts[PartitionOf(id, partitions)]
	})
	jsonReply(rw, http.StatusOK, map[string]int{"users": users, "rejected": rejected})
}

type httpError struct {
	Error string `json:"error"`
}

func jsonReply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
