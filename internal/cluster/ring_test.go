package cluster

import (
	"testing"

	"stir/internal/twitter"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	r1 := NewRing(256, names)
	r2 := NewRing(256, []string{"delta", "beta", "alpha", "gamma", "beta"}) // order + dups
	counts := map[string]int{}
	for p := 0; p < 256; p++ {
		o1, o2 := r1.Owner(p), r2.Owner(p)
		if o1 != o2 {
			t.Fatalf("partition %d: owner depends on construction order (%s vs %s)", p, o1, o2)
		}
		counts[o1]++
	}
	for _, n := range names {
		if counts[n] < 256/len(names)/3 {
			t.Fatalf("lopsided spread: %v", counts)
		}
	}
}

func TestRingMembershipMovesOnlyAffectedPartitions(t *testing.T) {
	base := NewRing(256, []string{"a", "b", "c", "d"})
	grown := base.With("e")
	moved := 0
	for p := 0; p < 256; p++ {
		if base.Owner(p) != grown.Owner(p) {
			moved++
			// Every moved partition must have moved TO the new worker;
			// rendezvous hashing never reshuffles between survivors.
			if grown.Owner(p) != "e" {
				t.Fatalf("partition %d moved %s -> %s, not to the joiner",
					p, base.Owner(p), grown.Owner(p))
			}
		}
	}
	if moved == 0 || moved > 256/2 {
		t.Fatalf("join moved %d partitions, want roughly 1/5 of 256", moved)
	}
	// Removing the joiner restores the original assignment exactly.
	shrunk := grown.Without("e")
	for p := 0; p < 256; p++ {
		if base.Owner(p) != shrunk.Owner(p) {
			t.Fatalf("partition %d did not return to its pre-join owner", p)
		}
	}
}

func TestRingOwnersReplicasDistinct(t *testing.T) {
	r := NewRing(64, []string{"a", "b", "c"})
	for p := 0; p < 64; p++ {
		owners := r.Owners(p, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("partition %d: owners %v", p, owners)
		}
		// Asking for more replicas than members returns all members.
		if got := len(r.Owners(p, 10)); got != 3 {
			t.Fatalf("partition %d: want all 3 members, got %d", p, got)
		}
	}
	if NewRing(8, nil).Owner(0) != "" {
		t.Fatal("empty ring must have no owner")
	}
}

// TestRingReplicasExceedWorkers pins the over-replication semantics: asking
// for more owners than members yields every member exactly once (never
// duplicates, never an error), so a replicas=3 cluster degraded to one
// worker routes everything to it and PartsOwnedBy covers the whole space
// for each member.
func TestRingReplicasExceedWorkers(t *testing.T) {
	solo := NewRing(32, []string{"only"})
	for p := 0; p < 32; p++ {
		owners := solo.Owners(p, 3)
		if len(owners) != 1 || owners[0] != "only" {
			t.Fatalf("partition %d: owners %v, want [only]", p, owners)
		}
	}
	if got := len(solo.PartsOwnedBy("only", 3)); got != 32 {
		t.Fatalf("sole member owns %d of 32 partitions under replicas=3", got)
	}
	duo := NewRing(32, []string{"a", "b"})
	for p := 0; p < 32; p++ {
		owners := duo.Owners(p, 5)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("partition %d: owners %v, want both members once", p, owners)
		}
	}
	for _, n := range []string{"a", "b"} {
		if got := len(duo.PartsOwnedBy(n, 5)); got != 32 {
			t.Fatalf("%s owns %d of 32 partitions under replicas=5", n, got)
		}
	}
	// Degenerate requests stay safe.
	if got := solo.Owners(0, 0); got != nil {
		t.Fatalf("zero replicas produced owners %v", got)
	}
	if got := NewRing(8, nil).Owners(0, 3); got != nil {
		t.Fatalf("empty ring produced owners %v", got)
	}
}

func TestPartitionOfSpread(t *testing.T) {
	counts := make([]int, 16)
	for id := twitter.UserID(1); id <= 4096; id++ {
		counts[PartitionOf(id, 16)]++
	}
	for p, c := range counts {
		if c < 4096/16/2 || c > 4096/16*2 {
			t.Fatalf("partition %d holds %d of 4096 sequential IDs", p, c)
		}
	}
}

func TestSeqCursorRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 42, 1 << 40} {
		if got := ParseSeq(FormatSeq(n)); got != n {
			t.Fatalf("round-trip %d -> %d", n, got)
		}
	}
	if ParseSeq("") != 0 || ParseSeq("garbage") != 0 || ParseSeq("-5") != 0 {
		t.Fatal("malformed cursors must parse as 0 (replay everything)")
	}
}
