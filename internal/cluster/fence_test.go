package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"stir/internal/obs"
	"stir/internal/twitter"
)

// fenceDo sends one request with an explicit epoch header and returns the
// status code.
func fenceDo(t testing.TB, method, url string, epoch string, body []byte) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != "" {
		req.Header.Set(EpochHeader, epoch)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestWorkerEpochFence drives the watermark directly: newer epochs advance
// it, stale ones bounce with 412 (counted, per route), hello teaches but
// never fences, and headerless requests pass for compatibility.
func TestWorkerEpochFence(t *testing.T) {
	ds := testDataset(t, 40, 53)
	reg := obs.NewRegistry()
	w := startWorkerReg(t, ds, "wf", reg)
	defer w.stop()
	base := w.srv.URL

	empty := mustJSON(t, ingestRequest{})
	if got := fenceDo(t, http.MethodPost, base+"/cluster/v1/ingest", "5", empty); got != http.StatusOK {
		t.Fatalf("epoch 5 on a fresh worker: status %d", got)
	}
	// Stale epoch on a state-bearing route: fenced.
	if got := fenceDo(t, http.MethodGet, base+"/cluster/v1/groupings", "4", nil); got != http.StatusPreconditionFailed {
		t.Fatalf("stale epoch should 412, got %d", got)
	}
	if v := reg.Counter("stir_cluster_fenced_total", "worker", "wf", "route", "groupings").Value(); v != 1 {
		t.Fatalf("fence not counted: %d", v)
	}
	// The /v1 query surface is fenced too — a stale router must not serve
	// stale scatter shards.
	if got := fenceDo(t, http.MethodGet, base+"/v1/stats", "4", nil); got != http.StatusPreconditionFailed {
		t.Fatalf("stale epoch on /v1 should 412, got %d", got)
	}
	if v := reg.Counter("stir_cluster_fenced_total", "worker", "wf", "route", "query").Value(); v != 1 {
		t.Fatalf("query fence not counted: %d", v)
	}
	// Hello answers a stale caller (it is the heal path) without regressing
	// the watermark, and reports the watermark back.
	var h helloResponse
	req, _ := http.NewRequest(http.MethodGet, base+"/cluster/v1/hello", nil)
	req.Header.Set(EpochHeader, "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hello with stale epoch: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Epoch != 5 {
		t.Fatalf("hello reports epoch %d, want the watermark 5", h.Epoch)
	}
	// Hello advances on newer epochs (the router teaches over the probe).
	if got := fenceDo(t, http.MethodGet, base+"/cluster/v1/hello", "9", nil); got != http.StatusOK {
		t.Fatalf("hello with newer epoch: status %d", got)
	}
	// Epoch 5 writes are now stale.
	if got := fenceDo(t, http.MethodPost, base+"/cluster/v1/ingest", "5", empty); got != http.StatusPreconditionFailed {
		t.Fatalf("pre-advance epoch should now 412, got %d", got)
	}
	// Compatibility: no header passes; garbage is a caller bug, 400.
	if got := fenceDo(t, http.MethodGet, base+"/cluster/v1/groupings", "", nil); got != http.StatusOK {
		t.Fatalf("headerless request should pass, got %d", got)
	}
	if got := fenceDo(t, http.MethodGet, base+"/cluster/v1/groupings", "not-a-number", nil); got != http.StatusBadRequest {
		t.Fatalf("malformed epoch should 400, got %d", got)
	}
}

// TestStaleRouterFenced runs the zombie-router scenario end to end: router A
// hands the fleet over to router B (B adopts A's generation from the hello
// and bumps past it), then A — still holding the old epoch — tries to push a
// write. The worker fences it with 412, A's retry budget is not burned
// (permanent error), and the fabricated tweet never reaches the dataset:
// B's answer stays byte-identical to batch.
func TestStaleRouterFenced(t *testing.T) {
	ds := testDataset(t, 200, 59)
	res, err := ds.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tweets := allTweets(ds)
	wreg := obs.NewRegistry()
	w1 := startWorkerReg(t, ds, "w1", wreg)
	defer w1.stop()

	regA := obs.NewRegistry()
	routerA := testRouter(t, regA, func(o *Options) { o.ForwardAttempts = 3 })
	join(t, routerA, w1)
	feed(t, routerA, tweets[:len(tweets)/2], 64)
	if routerA.Epoch() != 1 {
		t.Fatalf("router A epoch %d, want 1", routerA.Epoch())
	}

	// Router B is the replacement (a router restart): it starts at epoch 0,
	// adopts the fleet's generation from the hello handshake, and bumps past
	// it on join — its own forwards pass the fence immediately.
	routerB := testRouter(t, obs.NewRegistry(), nil)
	join(t, routerB, w1)
	if routerB.Epoch() != 2 {
		t.Fatalf("router B should adopt 1 and bump to 2, got %d", routerB.Epoch())
	}
	feed(t, routerB, tweets[len(tweets)/2:], 64)

	// A's zombie scatter reads are fenced as stale (checked before the
	// fenced write below marks the worker down on A's side).
	if _, errs := routerA.Groupings(context.Background()); len(errs) != 1 ||
		!strings.Contains(errs[0].Error, "Precondition Failed") {
		t.Fatalf("zombie scatter should be fenced: %+v", errs)
	}

	// Zombie A wakes up with a write that exists nowhere in the dataset.
	fake := *tweets[0]
	fake.ID = 1 << 60
	rep := routerA.IngestBatch(context.Background(), []*twitter.Tweet{&fake})
	if rep.Forwarded != 0 || rep.Deferred != 1 {
		t.Fatalf("zombie write must be refused and deferred, got %+v", rep)
	}
	if len(rep.Errors) != 1 || !strings.Contains(rep.Errors[0].Error, "Precondition Failed") {
		t.Fatalf("zombie should die on the 412, got %+v", rep.Errors)
	}
	if v := wreg.Counter("stir_cluster_fenced_total", "worker", "w1", "route", "ingest").Value(); v != 1 {
		t.Fatalf("fence count %d — a permanent 412 must not be retried", v)
	}

	// The fabricated tweet was fenced, not applied: B's merged answer is
	// still exactly the batch pipeline's.
	assertClusterMatchesBatch(t, routerB, res)
}

// TestWorkerPartSetErrors pins the export/drop parameter parser's failure
// modes: non-numeric, out-of-range, negative, and empty part lists all
// answer 400 without touching the engine.
func TestWorkerPartSetErrors(t *testing.T) {
	ds := testDataset(t, 40, 61)
	w := startWorker(t, ds, "wp", nil)
	defer w.stop()

	cases := []struct {
		name  string
		query string
	}{
		{"missing partitions", "/cluster/v1/export?parts=1"},
		{"non-numeric partitions", "/cluster/v1/export?partitions=many&parts=1"},
		{"zero partitions", "/cluster/v1/export?partitions=0&parts=0"},
		{"negative partitions", "/cluster/v1/export?partitions=-4&parts=1"},
		{"non-numeric part", "/cluster/v1/export?partitions=8&parts=one"},
		{"part out of range", "/cluster/v1/export?partitions=8&parts=8"},
		{"negative part", "/cluster/v1/export?partitions=8&parts=-1"},
		{"empty part list", "/cluster/v1/export?partitions=8&parts="},
		{"only separators", "/cluster/v1/export?partitions=8&parts=,,"},
		{"drop shares the parser", "/cluster/v1/drop?partitions=8&parts=nope"},
	}
	for _, tc := range cases {
		method := http.MethodGet
		if strings.Contains(tc.query, "drop") {
			method = http.MethodPost
		}
		if got := fenceDo(t, method, w.srv.URL+tc.query, "", nil); got != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, got)
		}
	}

	// The happy path still round-trips, so the parser is strict, not broken:
	// every partition of an 8-way split exports the whole population.
	for _, tw := range allTweets(ds) {
		w.eng.Ingest(tw)
	}
	w.eng.Drain()
	var total int
	for p := 0; p < 8; p++ {
		var h struct {
			Users []json.RawMessage `json:"users"`
		}
		getJSON(t, w.srv.URL+"/cluster/v1/export?partitions=8&parts="+FormatSeq(int64(p)), http.StatusOK, &h)
		total += len(h.Users)
	}
	if total == 0 || total != w.eng.Stats().Users {
		t.Fatalf("8-way export covered %d users, engine has %d", total, w.eng.Stats().Users)
	}
}
