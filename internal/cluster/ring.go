// Package cluster turns the single-process stream engine into a horizontally
// partitioned deployment: a router daemon consistent-hashes users across N
// stream workers (each running its own internal/stream engine with its own
// checkpoint store), scatter-gathers the /v1 query API with partial-result
// degradation, and migrates shards between workers on join/leave/crash via
// the engine's handoff and checkpoint seams. The defining property is
// robustness: a worker can be SIGKILLed mid-ingest and the cluster still
// converges to the exact batch answer — the router replays its journal from
// the dead worker's durable checkpoint cursor, and the engine's
// DedupByTweetID makes the overlap idempotent.
package cluster

import (
	"sort"

	"stir/internal/twitter"
)

// DefaultPartitions is the hash-space granularity: users map to one of this
// many partitions, and partitions map to workers. More partitions than
// workers keeps handoff increments small and the spread even.
const DefaultPartitions = 64

// PartitionOf routes a user to a partition. The mixer matches the stream
// engine's shard hash family, so sequential synthetic IDs spread evenly.
func PartitionOf(id twitter.UserID, partitions int) int {
	return int(splitmix64(uint64(id)) % uint64(partitions))
}

// Ring assigns partitions to workers by rendezvous (highest-random-weight)
// hashing: each (worker, partition) pair gets a deterministic score and the
// top scorers own the partition. Membership changes move only the partitions
// whose top scorer changed — the consistent-hashing property — with no
// virtual-node bookkeeping. A Ring is immutable; membership changes build a
// new one.
type Ring struct {
	partitions int
	names      []string // sorted, deduplicated
	hashes     []uint64 // per-name seed, parallel to names
}

// NewRing builds a ring over the given worker names. Partitions defaults to
// DefaultPartitions when <= 0.
func NewRing(partitions int, names []string) *Ring {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	uniq := make(map[string]bool, len(names))
	var sorted []string
	for _, n := range names {
		if n == "" || uniq[n] {
			continue
		}
		uniq[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{partitions: partitions, names: sorted, hashes: make([]uint64, len(sorted))}
	for i, n := range sorted {
		r.hashes[i] = splitmix64(fnv64(n))
	}
	return r
}

// Partitions returns the ring's partition count.
func (r *Ring) Partitions() int { return r.partitions }

// Workers returns the member names in sorted order (a copy).
func (r *Ring) Workers() []string { return append([]string(nil), r.names...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.names) }

// With returns a new ring with name added.
func (r *Ring) With(name string) *Ring {
	return NewRing(r.partitions, append(r.Workers(), name))
}

// Without returns a new ring with name removed.
func (r *Ring) Without(name string) *Ring {
	var names []string
	for _, n := range r.names {
		if n != name {
			names = append(names, n)
		}
	}
	return NewRing(r.partitions, names)
}

// score is the rendezvous weight of worker i for a partition.
func (r *Ring) score(i, part int) uint64 {
	return splitmix64(r.hashes[i] ^ splitmix64(uint64(part)+0x51ed270b))
}

// Owners returns the top-n distinct workers for a partition in descending
// score order — the partition's replicaset, primary first. Fewer than n
// members returns them all.
func (r *Ring) Owners(part, n int) []string {
	if len(r.names) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	type cand struct {
		name  string
		score uint64
	}
	cands := make([]cand, len(r.names))
	for i, name := range r.names {
		cands[i] = cand{name: name, score: r.score(i, part)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].name < cands[j].name
	})
	out := make([]string, n)
	for i := range out {
		out[i] = cands[i].name
	}
	return out
}

// Owner returns the partition's primary worker ("" on an empty ring).
func (r *Ring) Owner(part int) string {
	o := r.Owners(part, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// PartsOwnedBy lists the partitions whose replicaset (of size replicas)
// includes name.
func (r *Ring) PartsOwnedBy(name string, replicas int) []int {
	var parts []int
	for p := 0; p < r.partitions; p++ {
		for _, o := range r.Owners(p, replicas) {
			if o == name {
				parts = append(parts, p)
				break
			}
		}
	}
	return parts
}

// splitmix64 matches the stream engine's mixer, so router-side partition
// math and worker-side shard math draw from the same hash family.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over a worker name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
