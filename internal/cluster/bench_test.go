package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/stream"
	"stir/internal/twitter"
)

// Cluster baselines (recorded in BENCH_cluster.json): routed ingest
// throughput and scatter-gather latency at 1, 2 and 4 workers. The routed
// path pays one JSON round-trip per ForwardBatch, so per-tweet cost is
// dominated by encoding + loopback HTTP — the point of the baseline is the
// scaling shape across worker counts, not the absolute number.

type benchResolver struct{ places []core.Place }

func (r benchResolver) Reverse(_ context.Context, p geo.Point) (geocode.Location, error) {
	pl := r.places[int(p.Lat)%len(r.places)]
	return geocode.Location{State: pl.State, County: pl.County}, nil
}

func benchPlaces(n int) []core.Place {
	out := make([]core.Place, n)
	for i := range out {
		out[i] = core.Place{State: fmt.Sprintf("S%d", i%4), County: fmt.Sprintf("C%d", i)}
	}
	return out
}

// benchCluster boots n workers joined to a fresh router, all on synthetic
// profiles/resolvers (no dataset, no disk).
func benchCluster(b *testing.B, n int) (*Router, func()) {
	b.Helper()
	places := benchPlaces(16)
	r := New(Options{Partitions: 64, ForwardBatch: 512, Metrics: obs.NewRegistry(),
		ScatterTimeout: 5 * time.Second})
	var stops []func()
	for i := 0; i < n; i++ {
		eng, err := stream.New(stream.Config{
			Profiles: func(_ context.Context, id twitter.UserID) (core.Place, bool, error) {
				return places[int(id)%len(places)], true, nil
			},
			Resolver:       benchResolver{places: places},
			DedupByTweetID: true,
			Metrics:        obs.Discard,
		})
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("w%d", i+1)
		srv := httptest.NewServer(NewWorker(name, eng, obs.Discard).Handler())
		if err := r.AddWorker(context.Background(), name, srv.URL); err != nil {
			b.Fatal(err)
		}
		stops = append(stops, func() { srv.Close(); eng.Close() })
	}
	return r, func() {
		for _, s := range stops {
			s()
		}
	}
}

func benchTweets(n int) []*twitter.Tweet {
	const users = 2048
	out := make([]*twitter.Tweet, n)
	for i := range out {
		out[i] = &twitter.Tweet{
			ID:     twitter.TweetID(i + 1),
			UserID: twitter.UserID(i%users + 1),
			Geo:    &twitter.GeoTag{Lat: float64(i % 30), Lon: 1},
		}
	}
	return out
}

// BenchmarkClusterIngest measures routed ingest throughput (tweets/sec
// through IngestBatch, including journal + forward + ack) at each worker
// count.
func BenchmarkClusterIngest(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r, stop := benchCluster(b, workers)
			defer stop()
			tweets := benchTweets(4096)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				n := len(tweets)
				if n > b.N-sent {
					n = b.N - sent
				}
				rep := r.IngestBatch(ctx, tweets[:n])
				if rep.Forwarded != n {
					b.Fatalf("ingest dropped: %+v", rep)
				}
				sent += n
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tweets/sec")
		})
	}
}

// BenchmarkClusterScatterGroups measures the /v1/groups scatter-gather
// round-trip at each worker count, reporting p50 and p99 latency over the
// sampled iterations.
func BenchmarkClusterScatterGroups(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r, stop := benchCluster(b, workers)
			defer stop()
			tweets := benchTweets(8192)
			if rep := r.IngestBatch(context.Background(), tweets); rep.Forwarded != len(tweets) {
				b.Fatalf("seed ingest dropped: %+v", rep)
			}
			ctx := context.Background()
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res, status := r.Groups(ctx)
				lat = append(lat, time.Since(start))
				if status != 200 || res.Partial {
					b.Fatalf("degraded scatter in a healthy bench: status=%d %+v", status, res)
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-us")
			b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-us")
		})
	}
}
