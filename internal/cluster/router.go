package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stir/internal/logx"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/overload"
	"stir/internal/resilience"
	"stir/internal/storage"
	"stir/internal/stream"
	"stir/internal/twitter"
)

// Router defaults.
const (
	DefaultReplicas       = 1
	DefaultJournalDepth   = 1 << 16
	DefaultForwardBatch   = 256
	DefaultMaxFanout      = 8
	DefaultHandoffTimeout = 30 * time.Second
	DefaultScatterTimeout = 5 * time.Second
)

// Options configures a Router.
type Options struct {
	// Partitions is the hash-space granularity (default DefaultPartitions).
	// It must match across the cluster's lifetime — it is baked into every
	// handoff filter.
	Partitions int
	// Replicas is each partition's owner-set size: every tweet forwards to
	// this many workers, and scatter-gather tolerates Replicas-1 of them
	// being down without going partial (default 1).
	Replicas int
	// JournalDepth caps the per-worker replay journal; overflowing entries
	// are evicted oldest-first and counted — an evicted entry can no longer
	// be replayed, so exact convergence is at risk (default 65536).
	JournalDepth int
	// ForwardBatch caps tweets per forward POST (default 256).
	ForwardBatch int
	// ForwardAttempts bounds retries of one idempotent forward (default 3).
	ForwardAttempts int
	// HandoffTimeout bounds one handoff leg: export, import or drop
	// (default 30s).
	HandoffTimeout time.Duration
	// ScatterTimeout bounds one worker's scatter-gather answer (default 5s).
	ScatterTimeout time.Duration
	// MaxFanout bounds concurrent outbound calls (default 8).
	MaxFanout int
	// Seed fixes the retry-jitter streams (default 1).
	Seed int64
	// HTTP overrides the outbound client (default: no global timeout;
	// per-call contexts bound every request).
	HTTP *http.Client
	// Metrics receives the stir_cluster_* series (nil means obs.Default).
	Metrics *obs.Registry
	// Tracer opens root spans for handoffs and replays. Nil disables.
	Tracer *trace.Tracer
	// Log receives membership and handoff events (nil builds a discard-free
	// stderr logger under "stir-router").
	Log *logx.Logger

	// Heartbeat is the failure detector's probe interval for RunHealth
	// (default 2s).
	Heartbeat time.Duration
	// SuspectAfter is the probe silence after which a worker turns Suspect
	// and its forwards defer to the journal (default 6s).
	SuspectAfter time.Duration
	// DownAfter is the probe silence after which a worker turns Down —
	// the auto-failover threshold (default 30s).
	DownAfter time.Duration
	// AutoFailover removes a Down worker through the crash-recovery path
	// (checkpoint-store restore via Checkpoint when available, journal
	// replay always) without operator intervention. Off by default: enable
	// it with replicas > 1 or shared checkpoint storage, where failover
	// cannot lose durable state.
	AutoFailover bool
	// Checkpoint opens a dead worker's checkpoint store for auto-failover
	// recovery (the shared-storage seam). Nil means journal-only recovery.
	Checkpoint func(name string) (*storage.Store, error)
	// Clock is the failure detector's time source (nil means wall clock).
	// Tests inject a ManualClock so transitions are deterministic.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.Partitions <= 0 {
		o.Partitions = DefaultPartitions
	}
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.JournalDepth <= 0 {
		o.JournalDepth = DefaultJournalDepth
	}
	if o.ForwardBatch <= 0 {
		o.ForwardBatch = DefaultForwardBatch
	}
	if o.ForwardAttempts <= 0 {
		o.ForwardAttempts = 3
	}
	if o.HandoffTimeout <= 0 {
		o.HandoffTimeout = DefaultHandoffTimeout
	}
	if o.ScatterTimeout <= 0 {
		o.ScatterTimeout = DefaultScatterTimeout
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = DefaultMaxFanout
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HTTP == nil {
		o.HTTP = &http.Client{}
	}
	if o.Log == nil {
		o.Log = logx.New(nil, "stir-router")
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = DefaultSuspectAfter
	}
	if o.DownAfter <= 0 {
		o.DownAfter = DefaultDownAfter
	}
	if o.Clock == nil {
		o.Clock = wallClock{}
	}
	return o
}

// jentry is one journaled forward: a tweet and the per-worker sequence it
// was (or will be) delivered under.
type jentry struct {
	seq   int64
	tweet *twitter.Tweet
}

// workerRef is the router's view of one worker.
type workerRef struct {
	name string

	// mu guards url/up/degraded; fwdMu serialises forwards so per-worker
	// sequence order holds; jMu guards the journal. Lock order:
	// fwdMu > jMu and fwdMu > mu.
	mu  sync.Mutex
	url string
	up  bool
	// degraded marks a worker whose checkpoint store is disk-degraded: it
	// still answers probes and scatter reads (up stays true), but forwards
	// defer to the journal until a probe reports the store healthy again.
	degraded bool
	fwdMu    sync.Mutex

	policy  *resilience.Policy
	breaker *resilience.Breaker

	jMu        sync.Mutex
	journal    []jentry
	durableSeq int64 // highest seq covered by the worker's last checkpoint
	ackedSeq   int64 // highest seq the worker acknowledged applying
	evicted    int64 // journal entries lost to overflow
	evictSeen  int64 // eviction watermark at the previous degraded probe

	// health is the failure detector's record for this worker (guarded by
	// mu, like url/up).
	health health
}

func (w *workerRef) baseURL() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.url
}

func (w *workerRef) isUp() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.up
}

func (w *workerRef) setUp(up bool) {
	w.mu.Lock()
	w.up = up
	w.mu.Unlock()
}

func (w *workerRef) isDegraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degraded
}

// journalAppend journals one tweet under the next per-worker slot, evicting
// the oldest entry when the depth cap is hit.
func (w *workerRef) journalAppend(e jentry, depth int, evictCtr *obs.Counter) {
	w.jMu.Lock()
	if len(w.journal) >= depth {
		w.journal = w.journal[1:]
		w.evicted++
		evictCtr.Inc()
	}
	w.journal = append(w.journal, e)
	w.jMu.Unlock()
}

// journalTrim drops entries a durable checkpoint covers.
func (w *workerRef) journalTrim(durableSeq int64) {
	w.jMu.Lock()
	if durableSeq > w.durableSeq {
		w.durableSeq = durableSeq
		i := 0
		for i < len(w.journal) && w.journal[i].seq <= durableSeq {
			i++
		}
		w.journal = w.journal[i:]
	}
	w.jMu.Unlock()
}

// journalTail copies the entries after seq, in order.
func (w *workerRef) journalTail(seq int64) []jentry {
	w.jMu.Lock()
	defer w.jMu.Unlock()
	var out []jentry
	for _, e := range w.journal {
		if e.seq > seq {
			out = append(out, e)
		}
	}
	return out
}

func (w *workerRef) journalDepth() int {
	w.jMu.Lock()
	defer w.jMu.Unlock()
	return len(w.journal)
}

// WorkerError is one worker's failure inside a partial result.
type WorkerError struct {
	Worker string `json:"worker"`
	Error  string `json:"error"`
}

// Router consistent-hashes users across stream workers, forwards ingest with
// retries and per-worker breakers, journals forwards for crash replay, and
// scatter-gathers the /v1 query API with partial-result degradation. All
// methods are safe for concurrent use.
type Router struct {
	opts   Options
	reg    *obs.Registry
	tracer *trace.Tracer
	log    *logx.Logger
	sem    chan struct{}
	seq    atomic.Int64

	// epoch is the membership generation: bumped on every ring change
	// (join, rejoin, leave, crash removal) and stamped on every outbound
	// hop so workers can fence writes from a router holding a stale view.
	epoch atomic.Int64

	// mu guards membership and the ring. Handoffs (join/leave/crash
	// recovery) hold it for the whole migration, pausing ingest and scatter
	// so per-user delivery order survives the ownership change.
	mu      sync.RWMutex
	workers map[string]*workerRef
	ring    *Ring

	mHandoff  func(reason string) *obs.Counter
	mEvicted  func(worker string) *obs.Counter
	mDeferred func(worker string) *obs.Counter
	mDegraded func(worker string) *obs.Counter
	mHealed   func(worker string) *obs.Counter
}

// NewRouter builds an empty router; workers join via AddWorker.
func New(opts Options) *Router {
	opts = opts.withDefaults()
	reg := obs.Or(opts.Metrics)
	r := &Router{
		opts:    opts,
		reg:     reg,
		tracer:  opts.Tracer,
		log:     opts.Log,
		sem:     make(chan struct{}, opts.MaxFanout),
		workers: make(map[string]*workerRef),
		ring:    NewRing(opts.Partitions, nil),
	}
	r.mHandoff = func(reason string) *obs.Counter {
		return reg.Counter("stir_cluster_handoffs_total", "reason", reason)
	}
	r.mEvicted = func(worker string) *obs.Counter {
		return reg.Counter("stir_cluster_journal_evicted_total", "worker", worker)
	}
	r.mDeferred = func(worker string) *obs.Counter {
		return reg.Counter("stir_cluster_deferred_total", "worker", worker)
	}
	r.mDegraded = func(worker string) *obs.Counter {
		return reg.Counter("stir_cluster_degraded_total", "worker", worker)
	}
	r.mHealed = func(worker string) *obs.Counter {
		return reg.Counter("stir_cluster_degraded_healed_total", "worker", worker)
	}
	reg.GaugeFunc("stir_cluster_partitions", func() float64 { return float64(opts.Partitions) })
	reg.GaugeFunc("stir_cluster_workers", func() float64 {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return float64(len(r.workers))
	})
	reg.GaugeFunc("stir_cluster_workers_up", func() float64 {
		r.mu.RLock()
		defer r.mu.RUnlock()
		n := 0
		for _, w := range r.workers {
			if w.isUp() {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("stir_cluster_epoch", func() float64 {
		return float64(r.epoch.Load())
	})
	return r
}

// Epoch returns the current membership generation.
func (r *Router) Epoch() int64 { return r.epoch.Load() }

// bumpEpochLocked advances the membership generation after a ring change.
// Callers hold r.mu, so the new epoch is visible before any forward routed
// by the new ring leaves the router.
func (r *Router) bumpEpochLocked(ctx context.Context, reason string) int64 {
	e := r.epoch.Add(1)
	r.log.Info(ctx, "cluster epoch bumped", "epoch", e, "reason", reason,
		"members", r.membersSummaryLocked())
	return e
}

// adoptEpoch raises the router's epoch to at least e — a restarted router
// learns the pre-crash generation from the first worker hello instead of
// restarting at zero (which every worker would fence).
func (r *Router) adoptEpoch(e int64) {
	for {
		cur := r.epoch.Load()
		if e <= cur || r.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Ring returns the current ring (immutable snapshot).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// newWorkerRef builds the per-worker forwarding machinery.
func (r *Router) newWorkerRef(name, url string) *workerRef {
	w := &workerRef{name: name, url: url, up: true}
	w.health.lastOK = r.opts.Clock.Now()
	w.breaker = resilience.NewBreaker("cluster_"+name, resilience.BreakerOptions{Metrics: r.reg})
	w.policy = &resilience.Policy{
		Name:        "cluster_forward",
		MaxAttempts: r.opts.ForwardAttempts,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    time.Second,
		Seed:        r.opts.Seed,
		Breaker:     w.breaker,
		Metrics:     r.reg,
	}
	return w
}

// registerWorkerGauges publishes pull-mode views for one worker name. The
// closures resolve the ref through the map on every read, so a replacement
// worker under the same name keeps the series accurate.
func (r *Router) registerWorkerGauges(name string) {
	lookup := func() *workerRef {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.workers[name]
	}
	r.reg.GaugeFunc("stir_cluster_shard_queue_depth", func() float64 {
		if w := lookup(); w != nil {
			return float64(w.journalDepth())
		}
		return 0
	}, "worker", name)
	r.reg.GaugeFunc("stir_cluster_worker_up", func() float64 {
		if w := lookup(); w != nil && w.isUp() {
			return 1
		}
		return 0
	}, "worker", name)
	r.reg.GaugeFunc("stir_cluster_health_state", func() float64 {
		if w := lookup(); w != nil {
			return float64(w.healthSnapshot().state)
		}
		return -1
	}, "worker", name)
	r.reg.GaugeFunc("stir_cluster_worker_degraded", func() float64 {
		if w := lookup(); w != nil && w.isDegraded() {
			return 1
		}
		return 0
	}, "worker", name)
}

// doJSON performs one traced, deadline-stamped request and decodes the JSON
// reply into out (when non-nil). Non-2xx maps onto resilience.StatusError so
// the retry policy classifies 5xx/sheds transient and honours Retry-After.
func (r *Router) doJSON(ctx context.Context, method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return resilience.MarkPermanent(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	overload.SetDeadlineHeader(req)
	trace.Inject(req)
	req.Header.Set(EpochHeader, strconv.FormatInt(r.epoch.Load(), 10))
	resp, err := r.opts.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		se := &resilience.StatusError{Status: resp.StatusCode}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				se.Wait = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s: %w", url, err)
	}
	return nil
}

// IngestReport accounts one IngestBatch call.
type IngestReport struct {
	// Forwarded tweets were acknowledged by a live owner.
	Forwarded int `json:"forwarded"`
	// Deferred tweets are journaled for a down worker and will be replayed
	// when it (or its replacement) rejoins.
	Deferred int `json:"deferred"`
	// Unrouted tweets had no owner at all (empty ring).
	Unrouted int           `json:"unrouted"`
	Errors   []WorkerError `json:"errors,omitempty"`
}

// IngestBatch routes tweets to their owners and forwards them. Forwards are
// idempotent (workers dedup by tweet ID), so transient failures retry
// against the same replica; a worker that stays unreachable is marked down,
// its tweets stay journaled, and they replay at rejoin.
func (r *Router) IngestBatch(ctx context.Context, tweets []*twitter.Tweet) IngestReport {
	r.mu.RLock()
	ring := r.ring
	workers := make(map[string]*workerRef, len(r.workers))
	for n, w := range r.workers {
		workers[n] = w
	}
	r.mu.RUnlock()
	return r.ingestRouted(ctx, ring, workers, tweets)
}

// ingestRouted is IngestBatch against an explicit membership snapshot, so
// handoffs can replay while holding the membership lock.
func (r *Router) ingestRouted(ctx context.Context, ring *Ring, workers map[string]*workerRef, tweets []*twitter.Tweet) IngestReport {
	var rep IngestReport
	if ring.Len() == 0 {
		rep.Unrouted = len(tweets)
		return rep
	}
	byOwner := make(map[string][]*twitter.Tweet)
	for _, t := range tweets {
		if t == nil {
			continue
		}
		part := PartitionOf(t.UserID, r.opts.Partitions)
		owners := ring.Owners(part, r.opts.Replicas)
		if len(owners) == 0 {
			rep.Unrouted++
			continue
		}
		for _, o := range owners {
			byOwner[o] = append(byOwner[o], t)
		}
	}
	names := make([]string, 0, len(byOwner))
	for n := range byOwner {
		names = append(names, n)
	}
	sort.Strings(names)
	var (
		wg   sync.WaitGroup
		rmu  sync.Mutex
		reps = make([]IngestReport, len(names))
	)
	for i, name := range names {
		w := workers[name]
		if w == nil {
			rmu.Lock()
			rep.Unrouted += len(byOwner[name])
			rmu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, w *workerRef, batch []*twitter.Tweet) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			reps[i] = r.forwardAll(ctx, w, batch)
		}(i, w, byOwner[name])
	}
	wg.Wait()
	for _, sub := range reps {
		rep.Forwarded += sub.Forwarded
		rep.Deferred += sub.Deferred
		rep.Errors = append(rep.Errors, sub.Errors...)
	}
	return rep
}

// forwardAll journals and delivers one worker's share of a batch, in
// ForwardBatch-sized chunks. The per-worker forward lock serialises delivery
// so sequence order (and per-user tweet order) holds.
func (r *Router) forwardAll(ctx context.Context, w *workerRef, tweets []*twitter.Tweet) IngestReport {
	var rep IngestReport
	w.fwdMu.Lock()
	defer w.fwdMu.Unlock()
	evict := r.mEvicted(w.name)
	for len(tweets) > 0 {
		n := r.opts.ForwardBatch
		if n > len(tweets) {
			n = len(tweets)
		}
		chunk := tweets[:n]
		tweets = tweets[n:]
		var lastSeq int64
		for _, t := range chunk {
			seq := r.seq.Add(1)
			w.journalAppend(jentry{seq: seq, tweet: t}, r.opts.JournalDepth, evict)
			lastSeq = seq
		}
		if w.isDegraded() {
			// Disk-degraded: the worker still serves reads, but its
			// checkpoint store cannot make new state durable. The chunk
			// stays journaled and replays when the store heals.
			rep.Deferred += len(chunk)
			r.mDeferred(w.name).Add(int64(len(chunk)))
			continue
		}
		if !w.isUp() {
			rep.Deferred += len(chunk)
			r.mDeferred(w.name).Add(int64(len(chunk)))
			continue
		}
		if err := r.forwardChunk(ctx, w, lastSeq, chunk); err != nil {
			// The chunk (and the rest of the batch) stays journaled; the
			// worker is down until it rejoins and replays.
			w.setUp(false)
			rep.Deferred += len(chunk)
			r.mDeferred(w.name).Add(int64(len(chunk)))
			rep.Errors = append(rep.Errors, WorkerError{Worker: w.name, Error: err.Error()})
			r.reg.Counter("stir_cluster_forward_errors_total", "worker", w.name).Inc()
			r.log.Warn(ctx, "worker marked down", "worker", w.name, "err", err)
			continue
		}
		rep.Forwarded += len(chunk)
		r.reg.Counter("stir_cluster_forwarded_total", "worker", w.name).Add(int64(len(chunk)))
	}
	return rep
}

// forwardChunk delivers one seq-stamped chunk with retries and trims the
// journal to the worker's durable cursor from the ack.
func (r *Router) forwardChunk(ctx context.Context, w *workerRef, seq int64, tweets []*twitter.Tweet) error {
	body, err := json.Marshal(ingestRequest{Seq: seq, Tweets: tweets})
	if err != nil {
		return err
	}
	url := w.baseURL() + "/cluster/v1/ingest"
	var ack ingestResponse
	err = w.policy.Do(ctx, func(ctx context.Context) error {
		cctx, cancel := context.WithTimeout(ctx, r.opts.ScatterTimeout)
		defer cancel()
		return r.doJSON(cctx, http.MethodPost, url, body, &ack)
	})
	if err != nil {
		return err
	}
	w.jMu.Lock()
	if seq > w.ackedSeq {
		w.ackedSeq = seq
	}
	w.jMu.Unlock()
	w.journalTrim(ack.DurableSeq)
	return nil
}

// hello performs the join handshake.
func (r *Router) hello(ctx context.Context, url string) (helloResponse, error) {
	var h helloResponse
	cctx, cancel := context.WithTimeout(ctx, r.opts.ScatterTimeout)
	defer cancel()
	err := r.doJSON(cctx, http.MethodGet, url+"/cluster/v1/hello", nil, &h)
	return h, err
}

// AddWorker joins a worker (or a replacement for a crashed one — same name,
// possibly a new address). A fresh name triggers shard handoff from the
// current owners; a known name is a rejoin: the journal tail past the
// worker's durable checkpoint cursor is replayed, and DedupByTweetID on the
// worker makes the overlap with its checkpoint idempotent.
func (r *Router) AddWorker(ctx context.Context, name, url string) error {
	if name == "" || url == "" {
		return fmt.Errorf("cluster: join needs a name and a url")
	}
	h, err := r.hello(ctx, url)
	if err != nil {
		return fmt.Errorf("cluster: join %s: hello: %w", name, err)
	}
	if h.Name != "" && h.Name != name {
		return fmt.Errorf("cluster: join %s: worker at %s says it is %q", name, url, h.Name)
	}
	ctx, span := r.rootSpan(ctx, "cluster.join")
	defer span.End()
	if span != nil {
		span.Annotate("worker", name)
	}
	// A restarted router begins at epoch 0 while the surviving workers
	// remember the pre-crash generation: adopt the higher one so the fleet
	// does not fence the new router's first forwards.
	r.adoptEpoch(h.Epoch)
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok {
		return r.rejoinLocked(ctx, w, url, h)
	}
	return r.joinLocked(ctx, name, url, h)
}

// rejoinLocked brings a known worker back: reset its breaker, replay the
// journal tail past its durable cursor, and mark it up.
func (r *Router) rejoinLocked(ctx context.Context, w *workerRef, url string, h helloResponse) error {
	w.mu.Lock()
	w.url = url
	w.mu.Unlock()
	// A replacement process restarts from its last durable checkpoint: its
	// acked-but-not-checkpointed suffix died with it. Reset the router's ack
	// watermark so accounting reflects the replay.
	fresh := r.newWorkerRef(w.name, url)
	w.policy, w.breaker = fresh.policy, fresh.breaker
	w.jMu.Lock()
	w.ackedSeq = h.DurableSeq
	w.jMu.Unlock()
	// New generation before the replay, so the replayed chunks carry the
	// post-rejoin epoch and immediately advance the worker's fence watermark
	// past anything a partitioned zombie hop could still be holding.
	r.bumpEpochLocked(ctx, "rejoin")
	// Snapshot the tail and replay under the forward lock: concurrent
	// ingests journal under the same lock, so no chunk can slip between the
	// snapshot and the moment the worker turns up again.
	w.fwdMu.Lock()
	tail := w.journalTail(h.DurableSeq)
	replayed, err := r.replayTail(ctx, w, tail)
	if err == nil {
		w.mu.Lock()
		w.up = true
		w.degraded = h.Degraded
		w.mu.Unlock()
	}
	w.fwdMu.Unlock()
	if err != nil {
		return fmt.Errorf("cluster: rejoin %s: replay: %w", w.name, err)
	}
	w.mu.Lock()
	w.health.lastOK = r.opts.Clock.Now()
	w.health.lastErr = ""
	w.mu.Unlock()
	r.setHealthLocked(ctx, w, HealthAlive)
	r.mHandoff("rejoin").Inc()
	r.reg.Counter("stir_cluster_replayed_total", "worker", w.name).Add(int64(replayed))
	r.log.Printf("worker %s rejoined at %s: replayed %d journaled tweets past durable seq %d",
		w.name, url, replayed, h.DurableSeq)
	return nil
}

// replayTail re-delivers journaled entries to one worker in sequence order.
// The caller holds the worker's forward lock so live traffic queues behind
// the replay, preserving per-user order.
func (r *Router) replayTail(ctx context.Context, w *workerRef, tail []jentry) (int, error) {
	replayed := 0
	for len(tail) > 0 {
		n := r.opts.ForwardBatch
		if n > len(tail) {
			n = len(tail)
		}
		chunk := tail[:n]
		tail = tail[n:]
		tweets := make([]*twitter.Tweet, len(chunk))
		for i, e := range chunk {
			tweets[i] = e.tweet
		}
		if err := r.forwardChunk(ctx, w, chunk[len(chunk)-1].seq, tweets); err != nil {
			return replayed, err
		}
		replayed += len(chunk)
	}
	return replayed, nil
}

// joinLocked admits a brand-new worker: add it to the ring and migrate the
// partitions it now owns from their previous owners (export → import →
// checkpoint → drop), pausing ingest for the duration so per-user order
// survives the ownership flip.
func (r *Router) joinLocked(ctx context.Context, name, url string, h helloResponse) error {
	oldRing := r.ring
	newRing := oldRing.With(name)
	w := r.newWorkerRef(name, url)

	// Partitions whose owner set gains the new worker, grouped by the old
	// primary (the exporter). An empty old ring has nothing to migrate.
	type move struct {
		source string
		parts  []int
	}
	bySource := make(map[string][]int)
	losers := make(map[string][]int) // old owners no longer in the set
	if oldRing.Len() > 0 {
		for p := 0; p < r.opts.Partitions; p++ {
			oldOwners := oldRing.Owners(p, r.opts.Replicas)
			newOwners := newRing.Owners(p, r.opts.Replicas)
			gained := false
			for _, o := range newOwners {
				if o == name {
					gained = true
				}
			}
			if !gained {
				continue
			}
			bySource[oldOwners[0]] = append(bySource[oldOwners[0]], p)
			for _, o := range oldOwners {
				still := false
				for _, n := range newOwners {
					if n == o {
						still = true
					}
				}
				if !still {
					losers[o] = append(losers[o], p)
				}
			}
		}
	}
	moved := 0
	for source, parts := range bySource {
		src := r.workers[source]
		if src == nil || !src.isUp() {
			return fmt.Errorf("cluster: join %s: source %s is down, cannot hand off %d partitions", name, source, len(parts))
		}
		if err := r.migrate(ctx, src, w, parts, false); err != nil {
			return fmt.Errorf("cluster: join %s: %w", name, err)
		}
		moved += len(parts)
	}
	// Old owners that fell out of the replicaset release their copies.
	for loser, parts := range losers {
		lw := r.workers[loser]
		if lw == nil || !lw.isUp() {
			continue
		}
		if err := r.dropParts(ctx, lw, parts); err != nil {
			r.log.Warn(ctx, "drop after join failed", "worker", loser, "err", err)
		}
	}
	r.workers[name] = w
	r.ring = newRing
	// A joiner arriving with users is a survivor of a router restart (the
	// import-overwrites above already refreshed everything it still owns) —
	// clear whatever it holds outside its ownership under the new ring, so
	// partitions that moved away during its previous life don't linger as
	// stale scatter shards.
	if h.Users > 0 {
		owned := make(map[int]bool)
		for _, p := range newRing.PartsOwnedBy(name, r.opts.Replicas) {
			owned[p] = true
		}
		var residue []int
		for p := 0; p < r.opts.Partitions; p++ {
			if !owned[p] {
				residue = append(residue, p)
			}
		}
		if len(residue) > 0 {
			if err := r.dropParts(ctx, w, residue); err != nil {
				r.log.Warn(ctx, "residue drop after join failed", "worker", name, "err", err)
			} else {
				r.mHandoff("wipe").Inc()
			}
		}
	}
	r.bumpEpochLocked(ctx, "join")
	r.registerWorkerGauges(name)
	for i := 0; i < moved; i++ {
		r.mHandoff("join").Inc()
	}
	r.log.Printf("worker %s joined at %s: %d partitions migrated", name, url, moved)
	return nil
}

// Leave gracefully removes a worker: its partitions migrate to the new
// owners under the shrunk ring, then any undelivered journal tail replays
// through normal routing. Ingest pauses for the duration.
func (r *Router) Leave(ctx context.Context, name string) error {
	ctx, span := r.rootSpan(ctx, "cluster.leave")
	defer span.End()
	if span != nil {
		span.Annotate("worker", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[name]
	if !ok {
		return fmt.Errorf("cluster: leave: unknown worker %q", name)
	}
	newRing := r.ring.Without(name)
	if newRing.Len() == 0 {
		return fmt.Errorf("cluster: leave: %s is the last worker", name)
	}
	moved := 0
	if w.isUp() {
		// Per new-owner import sets: partitions the leaver owned, grouped by
		// their next primary.
		gainers := make(map[string][]int)
		for _, p := range r.ring.PartsOwnedBy(name, r.opts.Replicas) {
			for _, o := range newRing.Owners(p, r.opts.Replicas) {
				already := false
				for _, old := range r.ring.Owners(p, r.opts.Replicas) {
					if old == o {
						already = true
					}
				}
				if !already {
					gainers[o] = append(gainers[o], p)
				}
			}
			moved++
		}
		for gainer, parts := range gainers {
			gw := r.workers[gainer]
			if gw == nil || !gw.isUp() {
				return fmt.Errorf("cluster: leave %s: new owner %s is down", name, gainer)
			}
			if err := r.migrate(ctx, w, gw, parts, true); err != nil {
				return fmt.Errorf("cluster: leave %s: %w", name, err)
			}
		}
	}
	// Whatever the leaver never acknowledged replays through the shrunk
	// ring; worker-side tweet-ID dedup absorbs the overlap with the export.
	tail := w.journalTail(w.durableSeq)
	delete(r.workers, name)
	r.ring = newRing
	r.bumpEpochLocked(ctx, "leave")
	if len(tail) > 0 {
		tweets := make([]*twitter.Tweet, len(tail))
		for i, e := range tail {
			tweets[i] = e.tweet
		}
		workers := make(map[string]*workerRef, len(r.workers))
		for n, ref := range r.workers {
			workers[n] = ref
		}
		rep := r.ingestRouted(ctx, newRing, workers, tweets)
		r.reg.Counter("stir_cluster_replayed_total", "worker", name).Add(int64(rep.Forwarded))
	}
	for i := 0; i < moved; i++ {
		r.mHandoff("leave").Inc()
	}
	r.log.Printf("worker %s left: %d partitions migrated", name, moved)
	return nil
}

// RemoveCrashed removes a dead worker whose process is gone for good,
// restoring its users from its last checkpoint store (opened by the caller —
// the shared-storage recovery path) into the surviving owners and replaying
// the journal tail past the checkpoint's cursor. Pass a nil store when the
// checkpoint is unrecoverable: only the journal replays, and everything the
// dead worker had checkpointed is lost (counted, not hidden).
func (r *Router) RemoveCrashed(ctx context.Context, name string, ckpt *storage.Store) error {
	ctx, span := r.rootSpan(ctx, "cluster.recover")
	defer span.End()
	if span != nil {
		span.Annotate("worker", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[name]
	if !ok {
		return fmt.Errorf("cluster: remove: unknown worker %q", name)
	}
	newRing := r.ring.Without(name)
	if newRing.Len() == 0 {
		return fmt.Errorf("cluster: remove: %s is the last worker", name)
	}
	var (
		h      stream.Handoff
		cursor string
	)
	if ckpt != nil {
		var err error
		h, cursor, err = stream.ReadCheckpointHandoff(ckpt)
		if err != nil {
			return fmt.Errorf("cluster: remove %s: read checkpoint: %w", name, err)
		}
	}
	moved := len(r.ring.PartsOwnedBy(name, r.opts.Replicas))
	// Split the restored users across the new owners and import.
	byOwner, err := r.splitHandoff(h, newRing)
	if err != nil {
		return fmt.Errorf("cluster: remove %s: %w", name, err)
	}
	for owner, oh := range byOwner {
		ow := r.workers[owner]
		if ow == nil || !ow.isUp() {
			return fmt.Errorf("cluster: remove %s: new owner %s is down", name, owner)
		}
		if err := r.importInto(ctx, ow, oh); err != nil {
			return fmt.Errorf("cluster: remove %s: import into %s: %w", name, owner, err)
		}
	}
	tail := w.journalTail(ParseSeq(cursor))
	delete(r.workers, name)
	r.ring = newRing
	// Bump before the tail replays: the re-routed tweets carry the new
	// generation, and the dead worker's address — should a zombie process
	// still answer there — can never pass the fence again.
	r.bumpEpochLocked(ctx, "crash")
	if len(tail) > 0 {
		tweets := make([]*twitter.Tweet, len(tail))
		for i, e := range tail {
			tweets[i] = e.tweet
		}
		workers := make(map[string]*workerRef, len(r.workers))
		for n, ref := range r.workers {
			workers[n] = ref
		}
		rep := r.ingestRouted(ctx, newRing, workers, tweets)
		r.reg.Counter("stir_cluster_replayed_total", "worker", name).Add(int64(rep.Forwarded))
	}
	for i := 0; i < moved; i++ {
		r.mHandoff("crash").Inc()
	}
	r.log.Printf("crashed worker %s removed: %d partitions reassigned, %d users restored from checkpoint",
		name, moved, h.Len())
	return nil
}

// MarkDown flags a worker as unreachable without removing it; its tweets
// journal until it rejoins (the failure detector's next successful probe, or
// an explicit AddWorker). Forward failures call this implicitly.
func (r *Router) MarkDown(name string) {
	r.mu.RLock()
	w := r.workers[name]
	summary := r.membersSummaryLocked()
	r.mu.RUnlock()
	if w != nil {
		w.setUp(false)
		r.log.Info(context.Background(), "worker marked down, forwards defer to journal",
			"worker", name, "epoch", r.epoch.Load(), "members", summary)
	}
}

// splitHandoff partitions a handoff payload by new owner under ring. With
// replicas > 1 each user lands on every owner in its partition's set.
func (r *Router) splitHandoff(h stream.Handoff, ring *Ring) (map[string]stream.Handoff, error) {
	out := make(map[string]stream.Handoff)
	for _, raw := range h.Users {
		var peek struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(raw, &peek); err != nil {
			return nil, fmt.Errorf("split handoff: %w", err)
		}
		part := PartitionOf(twitter.UserID(peek.ID), r.opts.Partitions)
		for _, o := range ring.Owners(part, r.opts.Replicas) {
			oh := out[o]
			oh.Users = append(oh.Users, raw)
			out[o] = oh
		}
	}
	for _, id := range h.Rejected {
		part := PartitionOf(twitter.UserID(id), r.opts.Partitions)
		for _, o := range ring.Owners(part, r.opts.Replicas) {
			oh := out[o]
			oh.Rejected = append(oh.Rejected, id)
			out[o] = oh
		}
	}
	return out, nil
}

// migrate moves one partition set from src to dst: export, import, durable
// checkpoint on the importer, then (unless the source is leaving entirely)
// drop on the source.
func (r *Router) migrate(ctx context.Context, src, dst *workerRef, parts []int, srcLeaving bool) error {
	hctx, cancel := context.WithTimeout(ctx, r.opts.HandoffTimeout)
	defer cancel()
	var h stream.Handoff
	if err := r.doJSON(hctx, http.MethodGet, src.baseURL()+exportQuery(r.opts.Partitions, parts), nil, &h); err != nil {
		return fmt.Errorf("export from %s: %w", src.name, err)
	}
	if err := r.importInto(ctx, dst, h); err != nil {
		return fmt.Errorf("import into %s: %w", dst.name, err)
	}
	if !srcLeaving {
		if err := r.dropParts(ctx, src, parts); err != nil {
			return fmt.Errorf("drop on %s: %w", src.name, err)
		}
	}
	return nil
}

// importInto installs a handoff payload on dst and checkpoints it so the
// migrated users survive a crash of their new owner.
func (r *Router) importInto(ctx context.Context, dst *workerRef, h stream.Handoff) error {
	if h.Len() == 0 {
		return nil
	}
	body, err := json.Marshal(h)
	if err != nil {
		return err
	}
	hctx, cancel := context.WithTimeout(ctx, r.opts.HandoffTimeout)
	defer cancel()
	if err := r.doJSON(hctx, http.MethodPost, dst.baseURL()+"/cluster/v1/import", body, nil); err != nil {
		return err
	}
	// Best-effort durability: a store-less worker (tests, ephemeral demos)
	// still accepts the handoff.
	cctx, cancel2 := context.WithTimeout(ctx, r.opts.HandoffTimeout)
	defer cancel2()
	if err := r.doJSON(cctx, http.MethodPost, dst.baseURL()+"/cluster/v1/checkpoint", nil, nil); err != nil {
		r.log.Warn(ctx, "post-import checkpoint failed", "worker", dst.name, "err", err)
	}
	return nil
}

func (r *Router) dropParts(ctx context.Context, w *workerRef, parts []int) error {
	hctx, cancel := context.WithTimeout(ctx, r.opts.HandoffTimeout)
	defer cancel()
	return r.doJSON(hctx, http.MethodPost, w.baseURL()+dropQuery(r.opts.Partitions, parts), nil, nil)
}

func exportQuery(partitions int, parts []int) string {
	return "/cluster/v1/export?partitions=" + strconv.Itoa(partitions) + "&parts=" + joinParts(parts)
}

func dropQuery(partitions int, parts []int) string {
	return "/cluster/v1/drop?partitions=" + strconv.Itoa(partitions) + "&parts=" + joinParts(parts)
}

func joinParts(parts []int) string {
	var b bytes.Buffer
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

// CheckpointAll asks every live worker for a durable checkpoint and trims
// the journals to the returned cursors.
func (r *Router) CheckpointAll(ctx context.Context) []WorkerError {
	r.mu.RLock()
	workers := make([]*workerRef, 0, len(r.workers))
	for _, w := range r.workers {
		workers = append(workers, w)
	}
	r.mu.RUnlock()
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []WorkerError
	)
	for _, w := range workers {
		if !w.isUp() {
			continue
		}
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			r.sem <- struct{}{}
			defer func() { <-r.sem }()
			var ack struct {
				DurableSeq int64 `json:"durable_seq"`
			}
			cctx, cancel := context.WithTimeout(ctx, r.opts.HandoffTimeout)
			defer cancel()
			if err := r.doJSON(cctx, http.MethodPost, w.baseURL()+"/cluster/v1/checkpoint", nil, &ack); err != nil {
				emu.Lock()
				errs = append(errs, WorkerError{Worker: w.name, Error: err.Error()})
				emu.Unlock()
				return
			}
			w.journalTrim(ack.DurableSeq)
		}(w)
	}
	wg.Wait()
	sort.Slice(errs, func(i, j int) bool { return errs[i].Worker < errs[j].Worker })
	return errs
}

// rootSpan opens a traced root when a tracer is configured.
func (r *Router) rootSpan(ctx context.Context, name string) (context.Context, *trace.Span) {
	if r.tracer == nil {
		return ctx, nil
	}
	return r.tracer.Root(ctx, name)
}
