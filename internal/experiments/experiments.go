// Package experiments regenerates every table and figure of the paper's
// evaluation (and the attached STIR slide deck) from the simulated
// substrates. Each Ex function corresponds to one artifact; see DESIGN.md's
// experiment index. cmd/experiments prints the results and the root
// bench_test.go wraps each in a testing.B harness.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stir"
	"stir/internal/core"
	"stir/internal/report"
)

// Scale sets experiment sizes. The paper crawled 52k Korean users; the
// default reproduces it at 1:10, which preserves every distributional shape
// while keeping a full suite run under a minute.
type Scale struct {
	KoreanUsers int
	WorldUsers  int
	Seed        int64
}

// DefaultScale is the 1:10 reproduction scale.
var DefaultScale = Scale{KoreanUsers: 5200, WorldUsers: 4000, Seed: 2012}

// BenchScale is a smaller scale for per-iteration benchmarking.
var BenchScale = Scale{KoreanUsers: 1200, WorldUsers: 900, Seed: 2012}

// Suite carries the shared dataset analyses the individual experiments
// slice. Building it once mirrors the paper: one collection, many readings.
type Suite struct {
	Scale  Scale
	Korean *stir.Result
	World  *stir.Result
	// KoreanDS is retained for event-injection experiments.
	KoreanDS *stir.Dataset
}

var (
	suiteMu    sync.Mutex
	suiteCache = map[Scale]*Suite{}
)

// NewSuite analyses both datasets at the given scale. Results are cached per
// scale because generation + analysis is the expensive step shared by E1-E6.
func NewSuite(ctx context.Context, sc Scale) (*Suite, error) {
	suiteMu.Lock()
	if s, ok := suiteCache[sc]; ok {
		suiteMu.Unlock()
		return s, nil
	}
	suiteMu.Unlock()

	kds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: sc.Seed, Users: sc.KoreanUsers})
	if err != nil {
		return nil, fmt.Errorf("experiments: korean dataset: %w", err)
	}
	kres, err := kds.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	wds, err := stir.NewWorldDataset(stir.DatasetOptions{Seed: sc.Seed + 1, Users: sc.WorldUsers})
	if err != nil {
		return nil, fmt.Errorf("experiments: world dataset: %w", err)
	}
	wres, err := wds.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	s := &Suite{Scale: sc, Korean: kres, World: wres, KoreanDS: kds}
	suiteMu.Lock()
	suiteCache[sc] = s
	suiteMu.Unlock()
	return s, nil
}

// Outcome is one experiment's output: a human-readable report plus the
// paper-vs-measured comparison rows.
type Outcome struct {
	ID          string
	Title       string
	Report      string
	Comparisons []report.Comparison
}

// Holds reports whether every comparison's shape held.
func (o *Outcome) Holds() bool {
	for _, c := range o.Comparisons {
		if !c.Holds {
			return false
		}
	}
	return true
}

// E1Funnel reproduces the §III-B collection funnel (slide "Dataset").
func (s *Suite) E1Funnel() *Outcome {
	f := s.Korean.Funnel
	var b strings.Builder
	b.WriteString(stir.FormatFunnel(&f))
	scaleNote := float64(52000) / float64(s.Scale.KoreanUsers)
	fmt.Fprintf(&b, "\n(scale 1:%.0f of the paper's 52k-user crawl)\n", scaleNote)
	breakdown := map[string]int{}
	for q, n := range f.ProfileBreakdown {
		breakdown[q.String()] = n
	}
	fmt.Fprintf(&b, "profile-quality breakdown: %s\n", SortedBreakdown(breakdown))

	geoRate := rate(f.GeoTweets, f.RawTweets)
	wellRate := rate(f.WellDefinedUsers, f.RawUsers)
	finalRate := rate(f.FinalUsers, f.WellDefinedUsers)
	comps := []report.Comparison{
		{
			Metric: "GPS tweets / all tweets", Paper: "~0.25% (28k of 11.1M)",
			Measured: report.Pct(geoRate), Holds: geoRate > 0.0005 && geoRate < 0.02,
		},
		{
			Metric: "well-defined profiles / crawled users", Paper: "~6% (3k of 52k)",
			Measured: report.Pct(wellRate), Holds: wellRate > 0.03 && wellRate < 0.12,
		},
		{
			Metric: "final users / well-defined users", Paper: "~47% (1.4k of 3k)",
			Measured: report.Pct(finalRate), Holds: finalRate > 0.2 && finalRate < 0.8,
		},
	}
	return &Outcome{ID: "E1", Title: "Collection & refinement funnel (§III-B)", Report: b.String(), Comparisons: comps}
}

// E2Fig6 reproduces Fig. 6: average number of tweet districts per group.
func (s *Suite) E2Fig6() *Outcome {
	a := &s.Korean.Analysis
	chart := report.NewBarChart()
	vals := map[core.Group]float64{}
	for _, g := range stir.Groups() {
		st := a.Stat(g)
		chart.Add(g.String(), st.AvgDistinctDistricts)
		vals[g] = st.AvgDistinctDistricts
	}
	// Shape: non-decreasing across populated Top-k groups; None lower than
	// the deep-Top groups (the paper's "low mobility" observation).
	monotone := roughlyMonotone(a)
	prev := 0.0
	for _, g := range []core.Group{stir.Top1, stir.Top2, stir.Top3, stir.Top4, stir.Top5, stir.TopPlus} {
		if a.Stat(g).Users > 0 && vals[g] > prev {
			prev = vals[g]
		}
	}
	noneBelowDeep := a.Stat(stir.NoneGrp).Users == 0 || vals[stir.NoneGrp] < prev
	comps := []report.Comparison{
		{
			Metric: "avg districts rises with k", Paper: "Top-1 ≈ 3.4 rising to ~7 at Top-+",
			Measured: fmt.Sprintf("Top-1 %.2f … max %.2f", vals[stir.Top1], prev), Holds: monotone,
		},
		{
			Metric: "None group has few districts", Paper: "≈ 2.5, below deep Top-k",
			Measured: fmt.Sprintf("%.2f", vals[stir.NoneGrp]), Holds: noneBelowDeep,
		},
		{
			Metric: "overall average districts", Paper: "small single digits",
			Measured: fmt.Sprintf("%.2f", a.OverallAvgDistricts),
			Holds:    a.OverallAvgDistricts > 1 && a.OverallAvgDistricts < 8,
		},
	}
	return &Outcome{ID: "E2", Title: "Fig. 6 — average tweet districts per group", Report: chart.String(), Comparisons: comps}
}

// E3Fig7 reproduces Fig. 7: user share per group.
func (s *Suite) E3Fig7() *Outcome {
	a := &s.Korean.Analysis
	chart := report.NewBarChart()
	chart.Format = "%.1f%%"
	for _, g := range stir.Groups() {
		chart.Add(g.String(), a.Stat(g).UserShare*100)
	}
	top1 := a.Stat(stir.Top1).UserShare
	none := a.Stat(stir.NoneGrp).UserShare
	decreasing := true
	prev := 1.0
	for _, g := range []core.Group{stir.Top1, stir.Top2, stir.Top3, stir.Top4, stir.Top5} {
		sh := a.Stat(g).UserShare
		if sh > prev+1e-9 {
			decreasing = false
		}
		prev = sh
	}
	comps := []report.Comparison{
		{
			Metric: "Top-1 share (users posting most tweets at home)", Paper: "~46% (\"nearly 50%\")",
			Measured: report.Pct(top1), Holds: top1 > 0.35 && top1 < 0.55,
		},
		{
			Metric: "Top-1 + Top-2 share", Paper: ">60%",
			Measured: report.Pct(a.TopShare(2)), Holds: a.TopShare(2) > 0.55,
		},
		{
			Metric: "None share (never tweet from profile district)", Paper: "~29-30%",
			Measured: report.Pct(none), Holds: none > 0.2 && none < 0.4,
		},
		{
			Metric: "shares decrease Top-1 → Top-5", Paper: "monotone decreasing",
			Measured: boolWord(decreasing), Holds: decreasing,
		},
	}
	return &Outcome{ID: "E3", Title: "Fig. 7 — user share per group", Report: chart.String(), Comparisons: comps}
}

// E4TweetShare reproduces the slide "Number of tweets in each group".
func (s *Suite) E4TweetShare() *Outcome {
	a := &s.Korean.Analysis
	chart := report.NewBarChart()
	chart.Format = "%.1f%%"
	for _, g := range stir.Groups() {
		chart.Add(g.String(), a.Stat(g).TweetShare*100)
	}
	t1users := a.Stat(stir.Top1).UserShare
	t1tweets := a.Stat(stir.Top1).TweetShare
	noneTweets := a.Stat(stir.NoneGrp).TweetShare
	comps := []report.Comparison{
		{
			Metric: "Top-1 tweet share dominates", Paper: "largest bar (~65%)",
			Measured: report.Pct(t1tweets), Holds: largestTweetShare(a) == stir.Top1,
		},
		{
			Metric: "None tweet share below its user share", Paper: "None users tweet little with GPS",
			Measured: fmt.Sprintf("tweets %s vs users %s", report.Pct(noneTweets), report.Pct(a.Stat(stir.NoneGrp).UserShare)),
			Holds:    noneTweets <= a.Stat(stir.NoneGrp).UserShare+0.05,
		},
	}
	_ = t1users
	return &Outcome{ID: "E4", Title: "Slides — tweet share per group", Report: chart.String(), Comparisons: comps}
}

func largestTweetShare(a *stir.Analysis) core.Group {
	best := stir.Top1
	for _, g := range stir.Groups() {
		if a.Stat(g).TweetShare > a.Stat(best).TweetShare {
			best = g
		}
	}
	return best
}

// E5TwoDatasetsUsers reproduces the slide comparing user shares per group
// across the Korean and Lady Gaga datasets.
func (s *Suite) E5TwoDatasetsUsers() *Outcome {
	ka, wa := &s.Korean.Analysis, &s.World.Analysis
	t := report.NewTable("Group", "Korean", "Lady Gaga")
	for _, g := range stir.Groups() {
		t.AddRow(g.String(), report.Pct(ka.Stat(g).UserShare), report.Pct(wa.Stat(g).UserShare))
	}
	kNone, wNone := ka.Stat(stir.NoneGrp).UserShare, wa.Stat(stir.NoneGrp).UserShare
	kTop1, wTop1 := ka.Stat(stir.Top1).UserShare, wa.Stat(stir.Top1).UserShare
	comps := []report.Comparison{
		{
			Metric: "worldwide dataset shifts away from home", Paper: "Lady Gaga None share > Korean",
			Measured: fmt.Sprintf("%s vs %s", report.Pct(wNone), report.Pct(kNone)), Holds: wNone > kNone,
		},
		{
			Metric: "Top-1 still the largest Top group in both", Paper: "yes",
			Measured: fmt.Sprintf("KR %s, LG %s", report.Pct(kTop1), report.Pct(wTop1)),
			Holds:    topIsLargest(ka) && topIsLargest(wa),
		},
	}
	return &Outcome{ID: "E5", Title: "Slides — user share per group, two datasets", Report: t.String(), Comparisons: comps}
}

func topIsLargest(a *stir.Analysis) bool {
	t1 := a.Stat(stir.Top1).UserShare
	for _, g := range []core.Group{stir.Top2, stir.Top3, stir.Top4, stir.Top5, stir.TopPlus} {
		if a.Stat(g).UserShare > t1 {
			return false
		}
	}
	return true
}

// E6TwoDatasetsDistricts reproduces the slide comparing average tweet
// districts per group across both datasets.
func (s *Suite) E6TwoDatasetsDistricts() *Outcome {
	ka, wa := &s.Korean.Analysis, &s.World.Analysis
	t := report.NewTable("Group", "Korean", "Lady Gaga")
	for _, g := range stir.Groups() {
		t.AddRow(g.String(),
			fmt.Sprintf("%.2f", ka.Stat(g).AvgDistinctDistricts),
			fmt.Sprintf("%.2f", wa.Stat(g).AvgDistinctDistricts))
	}
	comps := []report.Comparison{
		{
			Metric: "stream-sampled dataset shows fewer districts/user", Paper: "Lady Gaga below Korean overall",
			Measured: fmt.Sprintf("%.2f vs %.2f", wa.OverallAvgDistricts, ka.OverallAvgDistricts),
			Holds:    wa.OverallAvgDistricts < ka.OverallAvgDistricts,
		},
		{
			Metric: "district count still rises with k in both", Paper: "same trend as Fig. 6",
			Measured: boolWord(roughlyMonotone(ka) && roughlyMonotone(wa)),
			Holds:    roughlyMonotone(ka) && roughlyMonotone(wa),
		},
	}
	return &Outcome{ID: "E6", Title: "Slides — avg districts per group, two datasets", Report: t.String(), Comparisons: comps}
}

// roughlyMonotone checks that the per-group average district count does not
// fall materially as k deepens. Groups with fewer than five users are too
// sparse to constrain (a couple of atypical users own the bar), and small
// dips within sampling noise are tolerated.
func roughlyMonotone(a *stir.Analysis) bool {
	prev := 0.0
	for _, g := range []core.Group{stir.Top1, stir.Top2, stir.Top3, stir.Top4, stir.Top5, stir.TopPlus} {
		st := a.Stat(g)
		if st.Users < 5 {
			continue // too sparse to constrain
		}
		tol := 0.15 * prev
		if tol < 0.6 {
			tol = 0.6
		}
		if st.AvgDistinctDistricts+tol < prev {
			return false
		}
		if st.AvgDistinctDistricts > prev {
			prev = st.AvgDistinctDistricts
		}
	}
	return true
}

// E7Result is one estimator configuration's error.
type E7Result struct {
	Config  string
	ErrorKm float64
	Obs     int
}

// E7EventEstimation reproduces the paper's proposed application (§V, the
// Fig. 2 analogue): earthquake location estimation with unweighted
// profile observations (the Toretter/Twitris assumption) versus
// reliability-weighted observations.
func (s *Suite) E7EventEstimation(ctx context.Context) (*Outcome, error) {
	ds := s.KoreanDS
	res := s.Korean
	opts := stir.EventOptions{
		Seed:        77,
		Method:      stir.MethodParticle,
		GeoFraction: 0.06,
		Epicenter:   stir.Point{Lat: 36.35, Lon: 127.38}, // Daejeon
	}
	truth, err := ds.InjectEvent(opts)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name    string
		weights map[int64]float64
	}{
		{"unweighted profiles (baseline)", nil},
		{"hard Top-1 weights", res.ReliabilityWeights(stir.WeightHardTop1)},
		{"group-prior weights", res.ReliabilityWeights(stir.WeightGroupPrior)},
		{"match-share weights", res.ReliabilityWeights(stir.WeightMatchShare)},
	}
	var rows []E7Result
	t := report.NewTable("Configuration", "Error (km)", "Observations")
	for _, c := range configs {
		est, err := ds.EstimateEvent(ctx, truth, res, c.weights, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: E7 %s: %w", c.name, err)
		}
		rows = append(rows, E7Result{Config: c.name, ErrorKm: est.ErrorKm, Obs: est.Observations})
		t.AddRow(c.name, fmt.Sprintf("%.1f", est.ErrorKm), fmt.Sprint(est.Observations))
	}
	baseline := rows[0].ErrorKm
	bestWeighted := rows[1].ErrorKm
	for _, r := range rows[1:] {
		if r.ErrorKm < bestWeighted {
			bestWeighted = r.ErrorKm
		}
	}
	comps := []report.Comparison{
		{
			Metric: "reliability weighting improves location estimate", Paper: "proposed in §V",
			Measured: fmt.Sprintf("baseline %.1f km → best weighted %.1f km", baseline, bestWeighted),
			Holds:    bestWeighted <= baseline,
		},
		{
			Metric: "weighted estimate is city-scale accurate", Paper: "Fig. 2: estimate near actual centre",
			Measured: fmt.Sprintf("%.1f km", bestWeighted), Holds: bestWeighted < 60,
		},
	}
	return &Outcome{
		ID: "E7", Title: "Event-location estimation with reliability weights (§V)",
		Report: t.String(), Comparisons: comps,
	}, nil
}

// All runs every experiment at the given scale, in order.
func All(ctx context.Context, sc Scale) ([]*Outcome, error) {
	s, err := NewSuite(ctx, sc)
	if err != nil {
		return nil, err
	}
	out := []*Outcome{
		s.E1Funnel(), s.E2Fig6(), s.E3Fig7(), s.E4TweetShare(),
		s.E5TwoDatasetsUsers(), s.E6TwoDatasetsDistricts(),
	}
	e7, err := s.E7EventEstimation(ctx)
	if err != nil {
		return nil, err
	}
	out = append(out, e7)
	return out, nil
}

// FormatAll renders outcomes as a full report with comparison tables.
func FormatAll(outcomes []*Outcome, elapsed time.Duration, sc Scale) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STIR experiment suite — scale: %d Korean / %d world users, seed %d\n\n",
		sc.KoreanUsers, sc.WorldUsers, sc.Seed)
	for _, o := range outcomes {
		fmt.Fprintf(&b, "=== %s: %s ===\n%s\n%s\n", o.ID, o.Title, o.Report,
			report.ComparisonTable(o.Comparisons))
	}
	held, total := 0, 0
	for _, o := range outcomes {
		for _, c := range o.Comparisons {
			total++
			if c.Holds {
				held++
			}
		}
	}
	fmt.Fprintf(&b, "Shape checks: %d/%d hold. Elapsed %s.\n", held, total, elapsed.Round(time.Millisecond))
	return b.String()
}

func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func boolWord(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// SortedBreakdown renders a profile-quality breakdown deterministically;
// used by cmd/experiments and examples.
func SortedBreakdown(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, ", ")
}
