package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"stir"
	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/gis"
	"stir/internal/pipeline"
	"stir/internal/report"
	"stir/internal/twitter"
)

// Ablations for the design choices DESIGN.md calls out. Each returns an
// Outcome like the main experiments; the matching timing benches live in the
// root bench_test.go.

// AblationGranularity compares county-level grouping (the paper's choice:
// metropolitan cities split into gu) against state-level grouping.
func (s *Suite) AblationGranularity(ctx context.Context) (*Outcome, error) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: s.Scale.Seed, Users: s.Scale.KoreanUsers})
	if err != nil {
		return nil, err
	}
	users, tweets := pipeline.CollectFromService(ds.Service)

	run := func(stateLevel bool) (*pipeline.Result, error) {
		p := pipeline.New(gaz, 10)
		p.StateLevel = stateLevel
		return p.Run(ctx, users, tweets)
	}
	county, err := run(false)
	if err != nil {
		return nil, err
	}
	state, err := run(true)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Granularity", "Top-1 share", "None share", "Avg districts")
	t.AddRow("county (si/gu/gun — paper)",
		report.Pct(county.Analysis.Stat(stir.Top1).UserShare),
		report.Pct(county.Analysis.Stat(stir.NoneGrp).UserShare),
		fmt.Sprintf("%.2f", county.Analysis.OverallAvgDistricts))
	t.AddRow("state (province/metro)",
		report.Pct(state.Analysis.Stat(stir.Top1).UserShare),
		report.Pct(state.Analysis.Stat(stir.NoneGrp).UserShare),
		fmt.Sprintf("%.2f", state.Analysis.OverallAvgDistricts))
	comps := []report.Comparison{
		{
			Metric: "coarser grouping inflates Top-1", Paper: "motivates splitting metros into gu",
			Measured: fmt.Sprintf("state %s vs county %s",
				report.Pct(state.Analysis.Stat(stir.Top1).UserShare),
				report.Pct(county.Analysis.Stat(stir.Top1).UserShare)),
			Holds: state.Analysis.Stat(stir.Top1).UserShare > county.Analysis.Stat(stir.Top1).UserShare,
		},
		{
			Metric: "coarser grouping shrinks None", Paper: "commuters inside one metro look 'at home'",
			Measured: fmt.Sprintf("state %s vs county %s",
				report.Pct(state.Analysis.Stat(stir.NoneGrp).UserShare),
				report.Pct(county.Analysis.Stat(stir.NoneGrp).UserShare)),
			Holds: state.Analysis.Stat(stir.NoneGrp).UserShare < county.Analysis.Stat(stir.NoneGrp).UserShare,
		},
	}
	return &Outcome{ID: "A1", Title: "Ablation — grouping granularity", Report: t.String(), Comparisons: comps}, nil
}

// AblationGeocodeCache reports how much of the geocoding load the client
// cache absorbs on a realistic tweet stream.
func AblationGeocodeCache(ctx context.Context, sc Scale) (*Outcome, error) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: sc.Seed, Users: sc.KoreanUsers})
	if err != nil {
		return nil, err
	}
	var points []geo.Point
	ds.Service.EachTweet(func(t *twitter.Tweet) bool {
		if t.Geo != nil {
			points = append(points, geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon})
		}
		return true
	})
	gazFn := func(p geo.Point, slack float64) (geocode.Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return geocode.Location{}, err
		}
		return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
	}
	// County-level grouping tolerates ~1 km quantisation, which is what
	// makes the cache effective; the pipeline's default is finer.
	cached := geocode.NewDirectResolver(gazFn, 10, 65536)
	cached.SetQuantizeDecimals(2)
	tiny := geocode.NewDirectResolver(gazFn, 10, 1) // effectively uncached
	tiny.SetQuantizeDecimals(2)
	for _, p := range points {
		if _, err := cached.Reverse(ctx, p); err != nil && err != geocode.ErrNoMatch {
			return nil, err
		}
		tiny.Reverse(ctx, p)
	}
	cs, ts := cached.Stats(), tiny.Stats()
	hitRate := 0.0
	if cs.Hits+cs.Misses > 0 {
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	t := report.NewTable("Cache", "Hits", "Misses", "Hit rate")
	t.AddRow("LRU 65536", fmt.Sprint(cs.Hits), fmt.Sprint(cs.Misses), report.Pct(hitRate))
	tinyRate := 0.0
	if ts.Hits+ts.Misses > 0 {
		tinyRate = float64(ts.Hits) / float64(ts.Hits+ts.Misses)
	}
	t.AddRow("LRU 1 (ablated)", fmt.Sprint(ts.Hits), fmt.Sprint(ts.Misses), report.Pct(tinyRate))
	comps := []report.Comparison{{
		Metric: "cache absorbs most geocode calls", Paper: "GPS tweets cluster in few districts",
		Measured: report.Pct(hitRate), Holds: hitRate > 0.2,
	}}
	return &Outcome{ID: "A2", Title: "Ablation — geocode client cache", Report: t.String(), Comparisons: comps}, nil
}

// AblationSpatialIndex verifies the three index structures agree and reports
// their shapes; timing lives in BenchmarkAblationSpatialIndex.
func AblationSpatialIndex(sc Scale) (*Outcome, error) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	rt := gis.NewRTree()
	grid := gis.NewGrid(gaz.Bounds(), 48, 48)
	lin := gis.NewLinear()
	for _, d := range gaz.Districts() {
		it := gis.Item{Bounds: d.Bounds(), Value: d.ID()}
		rt.Insert(it)
		grid.Insert(it)
		lin.Insert(it)
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	b := gaz.Bounds()
	agree := true
	queries := 2000
	for i := 0; i < queries; i++ {
		p := geo.Point{
			Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lon: b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
		}
		want := idSet(lin.SearchPoint(p))
		if !sameIDs(idSet(rt.SearchPoint(p)), want) || !sameIDs(idSet(grid.SearchPoint(p)), want) {
			agree = false
			break
		}
	}
	t := report.NewTable("Index", "Items", "Note")
	t.AddRow("r-tree", fmt.Sprint(rt.Len()), fmt.Sprintf("depth %d, fanout 16", rt.Depth()))
	t.AddRow("grid 48x48", fmt.Sprint(grid.Len()), "uniform cells over Korea")
	t.AddRow("linear scan", fmt.Sprint(lin.Len()), "oracle baseline")
	comps := []report.Comparison{{
		Metric: fmt.Sprintf("all indexes agree on %d random lookups", queries),
		Paper:  "correctness precondition", Measured: boolWord(agree), Holds: agree,
	}}
	return &Outcome{ID: "A3", Title: "Ablation — spatial index structures", Report: t.String(), Comparisons: comps}, nil
}

func idSet(items []gis.Item) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, it := range items {
		m[it.Value.(string)] = true
	}
	return m
}

func sameIDs(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// AllAblations runs every ablation at the given scale.
func AllAblations(ctx context.Context, sc Scale) ([]*Outcome, error) {
	s, err := NewSuite(ctx, sc)
	if err != nil {
		return nil, err
	}
	a1, err := s.AblationGranularity(ctx)
	if err != nil {
		return nil, err
	}
	a2, err := AblationGeocodeCache(ctx, sc)
	if err != nil {
		return nil, err
	}
	a3, err := AblationSpatialIndex(sc)
	if err != nil {
		return nil, err
	}
	a4, err := s.AblationMinGeoTweets(ctx)
	if err != nil {
		return nil, err
	}
	return []*Outcome{a1, a2, a3, a4}, nil
}

// AblationMinGeoTweets sweeps the minimum-GPS-tweets threshold the paper
// implicitly set to 1. Requiring more evidence per user shrinks the sample
// but stabilises each user's rank; the headline shares should hold across
// thresholds if the result is real.
func (s *Suite) AblationMinGeoTweets(ctx context.Context) (*Outcome, error) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: s.Scale.Seed, Users: s.Scale.KoreanUsers})
	if err != nil {
		return nil, err
	}
	users, tweets := pipeline.CollectFromService(ds.Service)
	t := report.NewTable("Min GPS tweets", "Final users", "Top-1 share", "None share", "Avg districts")
	type row struct {
		users        int
		top1, none   float64
		avgDistricts float64
	}
	var rows []row
	for _, minGeo := range []int{1, 3, 5, 10} {
		p := pipeline.New(gaz, 10)
		p.MinGeoTweets = minGeo
		res, err := p.Run(ctx, users, tweets)
		if err != nil {
			return nil, err
		}
		a := res.Analysis
		rows = append(rows, row{
			users:        a.Users,
			top1:         a.Stat(stir.Top1).UserShare,
			none:         a.Stat(stir.NoneGrp).UserShare,
			avgDistricts: a.OverallAvgDistricts,
		})
		t.AddRow(fmt.Sprint(minGeo), fmt.Sprint(a.Users),
			report.Pct(a.Stat(stir.Top1).UserShare),
			report.Pct(a.Stat(stir.NoneGrp).UserShare),
			fmt.Sprintf("%.2f", a.OverallAvgDistricts))
	}
	narrowing := true
	for i := 1; i < len(rows); i++ {
		if rows[i].users > rows[i-1].users {
			narrowing = false
		}
	}
	// Avg districts must grow with the evidence floor (users with more geo
	// tweets visit more districts by construction of the distinct count).
	growing := rows[len(rows)-1].avgDistricts > rows[0].avgDistricts
	stable := true
	for _, r := range rows {
		if r.users < 50 {
			continue // share estimates too noisy to constrain
		}
		// Bands are generous: samples shrink fast with the threshold, so a
		// ±15-point swing is already sampling noise at bench scales.
		if r.top1 < 0.30 || r.top1 > 0.70 || r.none < 0.12 || r.none > 0.48 {
			stable = false
		}
	}
	comps := []report.Comparison{
		{
			Metric: "sample narrows as the evidence floor rises", Paper: "funnel logic",
			Measured: fmt.Sprintf("%d → %d users", rows[0].users, rows[len(rows)-1].users),
			Holds:    narrowing,
		},
		{
			Metric: "headline shares stable across thresholds", Paper: "result is not an artifact of min=1",
			Measured: fmt.Sprintf("Top-1 %s→%s, None %s→%s",
				report.Pct(rows[0].top1), report.Pct(rows[len(rows)-1].top1),
				report.Pct(rows[0].none), report.Pct(rows[len(rows)-1].none)),
			Holds: stable,
		},
		{
			Metric: "distinct districts grow with evidence", Paper: "more tweets reveal more places",
			Measured: fmt.Sprintf("%.2f → %.2f", rows[0].avgDistricts, rows[len(rows)-1].avgDistricts),
			Holds:    growing,
		},
	}
	return &Outcome{ID: "A4", Title: "Ablation — minimum GPS tweets per user", Report: t.String(), Comparisons: comps}, nil
}
