package experiments

import (
	"context"
	"testing"

	"stir"
	"stir/internal/stats"
)

// TestSeedStability checks the reproduced Top-k distribution is a property
// of the model, not of one lucky seed: distributions from different seeds
// must be chi-square-compatible with each other, and key shares must stay in
// the paper's bands for every seed.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	seeds := []int64{101, 202, 303}
	type dist struct {
		counts []int
		shares []float64
		total  int
	}
	var dists []dist
	for _, seed := range seeds {
		ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: seed, Users: 2500})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ds.Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		a := &res.Analysis
		d := dist{total: a.Users}
		for _, g := range stir.Groups() {
			d.counts = append(d.counts, a.Stat(g).Users)
			d.shares = append(d.shares, a.Stat(g).UserShare)
		}
		dists = append(dists, d)

		top1 := a.Stat(stir.Top1).UserShare
		none := a.Stat(stir.NoneGrp).UserShare
		if top1 < 0.3 || top1 > 0.6 {
			t.Errorf("seed %d: Top-1 share %.3f outside [0.3,0.6]", seed, top1)
		}
		if none < 0.18 || none > 0.45 {
			t.Errorf("seed %d: None share %.3f outside [0.18,0.45]", seed, none)
		}
	}
	// Each seed's counts against the pooled shares of the others.
	for i, d := range dists {
		var pooledCounts []float64
		var pooledTotal float64
		for j, o := range dists {
			if j == i {
				continue
			}
			for k, c := range o.counts {
				if len(pooledCounts) <= k {
					pooledCounts = append(pooledCounts, 0)
				}
				pooledCounts[k] += float64(c)
			}
			pooledTotal += float64(o.total)
		}
		expected := make([]float64, len(pooledCounts))
		for k := range pooledCounts {
			expected[k] = pooledCounts[k] / pooledTotal
		}
		// Merge sparse deep-Top bins (expected count < 5) into Top-+ to keep
		// the chi-square approximation valid.
		obs, exp := mergeSparse(d.counts, expected, float64(d.total))
		_, p, err := stats.ChiSquareGoF(obs, exp)
		if err != nil {
			t.Fatalf("seed %d: %v", seeds[i], err)
		}
		if p < 0.001 {
			t.Errorf("seed %d: distribution incompatible with other seeds (p=%.5f, obs=%v exp=%v)",
				seeds[i], p, obs, exp)
		}
	}
}

// mergeSparse folds bins with expected counts below 5 into one overflow bin.
func mergeSparse(observed []int, shares []float64, total float64) ([]int, []float64) {
	var obs []int
	var exp []float64
	overflowO, overflowE := 0, 0.0
	for i := range observed {
		if shares[i]*total < 5 {
			overflowO += observed[i]
			overflowE += shares[i]
			continue
		}
		obs = append(obs, observed[i])
		exp = append(exp, shares[i])
	}
	if overflowE > 0 || overflowO > 0 {
		obs = append(obs, overflowO)
		exp = append(exp, overflowE)
	}
	return obs, exp
}
