package experiments

import (
	"context"
	"fmt"
	"time"

	"stir"
	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/homeloc"
	"stir/internal/report"
	"stir/internal/stats"
	"stir/internal/temporal"
	"stir/internal/twitter"
)

// Extensions beyond the paper's artifacts: the authors' follow-up temporal
// analysis (X1) and content-based home-location prediction validated against
// the Top-k reliability groups (X2). Neither reproduces a published figure;
// their checks are internal-consistency assertions.

// X1Temporal profiles posting behaviour and correlates temporal regularity
// with spatial reliability (match share).
func (s *Suite) X1Temporal() (*Outcome, error) {
	byUser := tweetsByUser(s.KoreanDS)
	var entropies, burstinesses, shares []float64
	classCount := map[temporal.ActivityClass]int{}
	for _, g := range s.Korean.Groupings {
		tweets := byUser[twitter.UserID(g.UserID)]
		if len(tweets) < 10 {
			continue
		}
		ttimes := tweetTimes(tweets)
		prof := temporal.BuildProfile(g.UserID, ttimes, temporal.KST)
		classCount[prof.Class()]++
		b, err := temporal.Burstiness(ttimes)
		if err != nil {
			continue
		}
		entropies = append(entropies, prof.HourEntropy())
		burstinesses = append(burstinesses, b)
		shares = append(shares, g.MatchShare())
	}
	if len(shares) < 10 {
		return nil, fmt.Errorf("experiments: X1 has only %d users", len(shares))
	}
	rhoEntropy, err := stats.Spearman(entropies, shares)
	if err != nil {
		return nil, err
	}
	rhoBurst, err := stats.Spearman(burstinesses, shares)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Signal", "Spearman ρ vs match share", "n")
	t.AddRow("hour entropy", fmt.Sprintf("%+.3f", rhoEntropy), fmt.Sprint(len(shares)))
	t.AddRow("burstiness", fmt.Sprintf("%+.3f", rhoBurst), fmt.Sprint(len(shares)))
	classes := map[string]int{}
	for c, n := range classCount {
		classes[c.String()] = n
	}
	reportText := t.String() + "\nactivity classes: " + SortedBreakdown(classes) + "\n"
	comps := []report.Comparison{
		{
			Metric: "rank correlations are well-defined", Paper: "extension (no paper figure)",
			Measured: fmt.Sprintf("ρ_entropy=%+.3f ρ_burst=%+.3f", rhoEntropy, rhoBurst),
			Holds:    rhoEntropy >= -1 && rhoEntropy <= 1 && rhoBurst >= -1 && rhoBurst <= 1,
		},
		{
			Metric:   "synthetic timestamps carry no temporal-spatial coupling",
			Paper:    "generator posts uniformly in time",
			Measured: fmt.Sprintf("|ρ| ≤ 0.3 (entropy %+.3f, burst %+.3f)", rhoEntropy, rhoBurst),
			Holds:    abs(rhoEntropy) <= 0.3 && abs(rhoBurst) <= 0.3,
		},
	}
	return &Outcome{ID: "X1", Title: "Extension — temporal posting behaviour vs spatial reliability", Report: reportText, Comparisons: comps}, nil
}

// X2HomePrediction runs the content/GPS home predictor over the final users
// and checks its agreement with the declared profile tracks the Top-k
// reliability groups.
func (s *Suite) X2HomePrediction(ctx context.Context) (*Outcome, error) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		return nil, err
	}
	pred := &homeloc.Predictor{
		Gaz: gaz,
		Resolver: geocode.NewDirectResolver(func(p geo.Point, slack float64) (geocode.Location, error) {
			d, err := gaz.ResolvePoint(p, slack)
			if err != nil {
				return geocode.Location{}, err
			}
			return geocode.Location{Country: d.Country, State: d.State, County: d.County}, nil
		}, 10, 65536),
	}
	byUser := tweetsByUser(s.KoreanDS)
	agree := map[stir.Group][2]int{} // group -> [agreements, evaluated]
	for _, g := range s.Korean.Groupings {
		id := twitter.UserID(g.UserID)
		profileDistrict := s.Korean.ProfileDistrict[id]
		if profileDistrict == nil {
			continue
		}
		p, err := pred.Predict(ctx, byUser[id])
		if err != nil {
			continue
		}
		cur := agree[g.Group]
		cur[1]++
		if p.District.ID() == profileDistrict.ID() {
			cur[0]++
		}
		agree[g.Group] = cur
	}
	t := report.NewTable("Group", "Agreement with profile", "Users")
	rateOf := func(g stir.Group) float64 {
		c := agree[g]
		if c[1] == 0 {
			return 0
		}
		return float64(c[0]) / float64(c[1])
	}
	for _, g := range stir.Groups() {
		c := agree[g]
		t.AddRow(g.String(), report.Pct(rateOf(g)), fmt.Sprint(c[1]))
	}
	top1, none := rateOf(stir.Top1), rateOf(stir.NoneGrp)
	comps := []report.Comparison{
		{
			Metric:   "independent home estimate agrees with Top-1 profiles",
			Paper:    "Top-1 users really live where they claim",
			Measured: report.Pct(top1), Holds: top1 > 0.8,
		},
		{
			Metric:   "and contradicts None profiles",
			Paper:    "None users' profiles mislead",
			Measured: fmt.Sprintf("Top-1 %s vs None %s", report.Pct(top1), report.Pct(none)),
			Holds:    top1 > none+0.3,
		},
	}
	return &Outcome{ID: "X2", Title: "Extension — content/GPS home prediction vs Top-k groups", Report: t.String(), Comparisons: comps}, nil
}

// Extensions runs the beyond-paper experiments.
func Extensions(ctx context.Context, sc Scale) ([]*Outcome, error) {
	s, err := NewSuite(ctx, sc)
	if err != nil {
		return nil, err
	}
	x1, err := s.X1Temporal()
	if err != nil {
		return nil, err
	}
	x2, err := s.X2HomePrediction(ctx)
	if err != nil {
		return nil, err
	}
	x3, err := s.X3GPSAvailability(ctx)
	if err != nil {
		return nil, err
	}
	return []*Outcome{x1, x2, x3}, nil
}

func tweetsByUser(ds *stir.Dataset) map[twitter.UserID][]*twitter.Tweet {
	out := map[twitter.UserID][]*twitter.Tweet{}
	ds.Service.EachTweet(func(t *twitter.Tweet) bool {
		out[t.UserID] = append(out[t.UserID], t)
		return true
	})
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// tweetTimes extracts creation timestamps.
func tweetTimes(tweets []*twitter.Tweet) []time.Time {
	out := make([]time.Time, len(tweets))
	for i, t := range tweets {
		out[i] = t.CreatedAt
	}
	return out
}

// X3GPSAvailability sweeps how much reliability weighting helps as GPS
// report availability varies: when almost no reports carry coordinates, the
// estimator leans entirely on profiles and weighting matters most; as GPS
// becomes plentiful the gap closes. This quantifies when the paper's
// proposal pays off.
func (s *Suite) X3GPSAvailability(ctx context.Context) (*Outcome, error) {
	ds := s.KoreanDS
	res := s.Korean
	weights := res.ReliabilityWeights(stir.WeightMatchShare)
	t := report.NewTable("GPS fraction", "Unweighted err (km)", "Weighted err (km)", "Reports")
	var rows []errPair
	for i, gf := range []float64{0.02, 0.10, 0.30} {
		opts := stir.EventOptions{
			Seed:        500 + int64(i),
			Method:      stir.MethodParticle,
			GeoFraction: gf,
			Epicenter:   stir.Point{Lat: 35.18, Lon: 129.08}, // Busan
			Keyword:     fmt.Sprintf("aftershock%d", i),      // distinct keyword per sweep point
			// Distinct onsets keep these bursts out of each other's (and
			// E7's) detection windows — the suite's dataset is shared.
			Onset: time.Date(2011, 11, 1+2*i, 9, 0, 0, 0, time.UTC),
		}
		truth, err := ds.InjectEvent(opts)
		if err != nil {
			return nil, err
		}
		unw, err := ds.EstimateEvent(ctx, truth, res, nil, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: X3 unweighted gf=%v: %w", gf, err)
		}
		wst, err := ds.EstimateEvent(ctx, truth, res, weights, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: X3 weighted gf=%v: %w", gf, err)
		}
		rows = append(rows, errPair{unw.ErrorKm, wst.ErrorKm})
		t.AddRow(report.Pct(gf), fmt.Sprintf("%.1f", unw.ErrorKm),
			fmt.Sprintf("%.1f", wst.ErrorKm), fmt.Sprint(truth.Reports))
	}
	// Shape: weighting never hurts much, and both estimators are usable at
	// every availability level.
	neverMuchWorse := true
	allUsable := true
	for _, r := range rows {
		if r.w > r.unw+10 {
			neverMuchWorse = false
		}
		if r.w > 80 || r.unw > 150 {
			allUsable = false
		}
	}
	comps := []report.Comparison{
		{
			Metric: "weighted estimator never materially worse", Paper: "extension of §V",
			Measured: fmt.Sprintf("max weighted-unweighted gap %.1f km", maxGap(rows)),
			Holds:    neverMuchWorse,
		},
		{
			Metric: "estimates stay city-scale at all GPS levels", Paper: "extension of §V",
			Measured: boolWord(allUsable), Holds: allUsable,
		},
	}
	return &Outcome{ID: "X3", Title: "Extension — weighting value vs GPS availability", Report: t.String(), Comparisons: comps}, nil
}

// errPair is one sweep point's unweighted/weighted errors.
type errPair struct{ unw, w float64 }

func maxGap(rows []errPair) float64 {
	m := -1e9
	for _, r := range rows {
		if g := r.w - r.unw; g > m {
			m = g
		}
	}
	return m
}
