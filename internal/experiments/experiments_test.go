package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// testScale keeps the suite fast while staying statistically meaningful.
var testScale = Scale{KoreanUsers: 2500, WorldUsers: 1500, Seed: 2012}

func suite(t testing.TB) *Suite {
	t.Helper()
	s, err := NewSuite(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteCached(t *testing.T) {
	s1 := suite(t)
	s2 := suite(t)
	if s1 != s2 {
		t.Fatal("suite not cached per scale")
	}
}

func TestE1Funnel(t *testing.T) {
	o := suite(t).E1Funnel()
	if !o.Holds() {
		t.Fatalf("E1 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
	if !strings.Contains(o.Report, "crawled users") {
		t.Fatalf("E1 report malformed:\n%s", o.Report)
	}
}

func TestE2Fig6(t *testing.T) {
	o := suite(t).E2Fig6()
	if !o.Holds() {
		t.Fatalf("E2 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestE3Fig7(t *testing.T) {
	o := suite(t).E3Fig7()
	if !o.Holds() {
		t.Fatalf("E3 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestE4TweetShare(t *testing.T) {
	o := suite(t).E4TweetShare()
	if !o.Holds() {
		t.Fatalf("E4 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestE5TwoDatasetsUsers(t *testing.T) {
	o := suite(t).E5TwoDatasetsUsers()
	if !o.Holds() {
		t.Fatalf("E5 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestE6TwoDatasetsDistricts(t *testing.T) {
	o := suite(t).E6TwoDatasetsDistricts()
	if !o.Holds() {
		t.Fatalf("E6 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestE7EventEstimation(t *testing.T) {
	o, err := suite(t).E7EventEstimation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("E7 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestAblationGranularity(t *testing.T) {
	o, err := suite(t).AblationGranularity(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("A1 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestAblationGeocodeCache(t *testing.T) {
	o, err := AblationGeocodeCache(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("A2 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestAblationSpatialIndex(t *testing.T) {
	o, err := AblationSpatialIndex(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("A3 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestFormatAll(t *testing.T) {
	outs, err := All(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 7 {
		t.Fatalf("outcomes = %d, want 7", len(outs))
	}
	text := FormatAll(outs, 1234*time.Millisecond, testScale)
	for _, needle := range []string{"E1", "E7", "Shape checks:", "| Metric |"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("FormatAll missing %q", needle)
		}
	}
}

func TestSortedBreakdown(t *testing.T) {
	got := SortedBreakdown(map[string]int{"b": 2, "a": 1})
	if got != "a=1, b=2" {
		t.Fatalf("SortedBreakdown = %q", got)
	}
}

func TestX1Temporal(t *testing.T) {
	o, err := suite(t).X1Temporal()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("X1 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestX2HomePrediction(t *testing.T) {
	o, err := suite(t).X2HomePrediction(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("X2 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestExtensionsAll(t *testing.T) {
	outs, err := Extensions(context.Background(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("extensions = %d", len(outs))
	}
}

func TestAblationMinGeoTweets(t *testing.T) {
	o, err := suite(t).AblationMinGeoTweets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("A4 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}

func TestX3GPSAvailability(t *testing.T) {
	o, err := suite(t).X3GPSAvailability(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds() {
		t.Fatalf("X3 shape checks failed:\n%s\n%+v", o.Report, o.Comparisons)
	}
}
