// Package gis provides in-memory spatial indexes over rectangles: an R-tree
// with quadratic splits and a uniform grid. STIR uses them to answer
// point-to-district queries inside the reverse geocoder.
package gis

import "stir/internal/geo"

// Item is an indexed entry: a bounding rectangle plus an opaque value
// (typically a district identifier).
type Item struct {
	Bounds geo.Rect
	Value  any
}

// Index is the query contract shared by the R-tree and the grid index.
type Index interface {
	// Insert adds an item.
	Insert(item Item)
	// SearchPoint returns all items whose bounds contain p.
	SearchPoint(p geo.Point) []Item
	// SearchRect returns all items whose bounds intersect r.
	SearchRect(r geo.Rect) []Item
	// Nearest returns up to k items ordered by degree-space distance of
	// their bounds from p.
	Nearest(p geo.Point, k int) []Item
	// Len reports the number of indexed items.
	Len() int
}

// Linear is a brute-force index used as the correctness oracle in tests and
// as the ablation baseline in benchmarks.
type Linear struct {
	items []Item
}

// NewLinear returns an empty linear index.
func NewLinear() *Linear { return &Linear{} }

// Insert implements Index.
func (l *Linear) Insert(item Item) { l.items = append(l.items, item) }

// Len implements Index.
func (l *Linear) Len() int { return len(l.items) }

// SearchPoint implements Index.
func (l *Linear) SearchPoint(p geo.Point) []Item {
	var out []Item
	for _, it := range l.items {
		if it.Bounds.Contains(p) {
			out = append(out, it)
		}
	}
	return out
}

// SearchRect implements Index.
func (l *Linear) SearchRect(r geo.Rect) []Item {
	var out []Item
	for _, it := range l.items {
		if it.Bounds.Intersects(r) {
			out = append(out, it)
		}
	}
	return out
}

// Nearest implements Index.
func (l *Linear) Nearest(p geo.Point, k int) []Item {
	return selectNearest(l.items, p, k)
}

// selectNearest returns up to k items by ascending bound distance using a
// partial selection sort; k is small in practice.
func selectNearest(items []Item, p geo.Point, k int) []Item {
	if k <= 0 || len(items) == 0 {
		return nil
	}
	type cand struct {
		it Item
		d  float64
	}
	cands := make([]cand, len(items))
	for i, it := range items {
		cands[i] = cand{it, it.Bounds.DistanceSqDeg(p)}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Item, 0, k)
	for n := 0; n < k; n++ {
		best := n
		for i := n + 1; i < len(cands); i++ {
			if cands[i].d < cands[best].d {
				best = i
			}
		}
		cands[n], cands[best] = cands[best], cands[n]
		out = append(out, cands[n].it)
	}
	return out
}
