package gis

import (
	"math"
	"sort"

	"stir/internal/geo"
)

// BulkLoadSTR builds an R-tree from items using Sort-Tile-Recursive packing
// (Leutenegger et al. 1997). STR produces near-full, low-overlap nodes, so
// query performance beats incremental insertion for static datasets like the
// gazetteer. The returned tree still supports further Insert/Delete calls.
func BulkLoadSTR(items []Item, minE, maxE int) *RTree {
	t := NewRTreeWithFanout(minE, maxE)
	if len(items) == 0 {
		return t
	}
	leaves := strPackLeaves(items, t.maxEntries)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level, t.maxEntries)
	}
	t.root = level[0]
	t.size = len(items)
	return t
}

// strPackLeaves tiles items into leaf nodes.
func strPackLeaves(items []Item, maxE int) []*rnode {
	sorted := append([]Item(nil), items...)
	// Sort by centre longitude, slice into vertical strips, then sort each
	// strip by centre latitude and cut into nodes.
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Bounds.Center().Lon < sorted[j].Bounds.Center().Lon
	})
	n := len(sorted)
	leafCount := int(math.Ceil(float64(n) / float64(maxE)))
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perStrip := int(math.Ceil(float64(n) / float64(stripCount)))
	var leaves []*rnode
	for s := 0; s < n; s += perStrip {
		e := s + perStrip
		if e > n {
			e = n
		}
		strip := sorted[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Bounds.Center().Lat < strip[j].Bounds.Center().Lat
		})
		for i := 0; i < len(strip); i += maxE {
			j := i + maxE
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &rnode{leaf: true, entries: append([]Item(nil), strip[i:j]...)}
			leaf.bounds = nodeBounds(leaf)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// strPackNodes tiles child nodes into parent nodes, one level up.
func strPackNodes(children []*rnode, maxE int) []*rnode {
	sorted := append([]*rnode(nil), children...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].bounds.Center().Lon < sorted[j].bounds.Center().Lon
	})
	n := len(sorted)
	nodeCount := int(math.Ceil(float64(n) / float64(maxE)))
	stripCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perStrip := int(math.Ceil(float64(n) / float64(stripCount)))
	var parents []*rnode
	for s := 0; s < n; s += perStrip {
		e := s + perStrip
		if e > n {
			e = n
		}
		strip := sorted[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].bounds.Center().Lat < strip[j].bounds.Center().Lat
		})
		for i := 0; i < len(strip); i += maxE {
			j := i + maxE
			if j > len(strip) {
				j = len(strip)
			}
			parent := &rnode{children: append([]*rnode(nil), strip[i:j]...)}
			for _, c := range parent.children {
				c.parent = parent
			}
			parent.bounds = nodeBounds(parent)
			parents = append(parents, parent)
		}
	}
	return parents
}

// Delete removes the first indexed item whose bounds equal bounds and whose
// value satisfies match (nil matches anything). It reports whether an item
// was removed. Underfull nodes after deletion are handled by re-inserting
// their remaining entries, the classic condensation step.
func (t *RTree) Delete(bounds geo.Rect, match func(value any) bool) bool {
	leaf, idx := t.findEntry(t.root, bounds, match)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	return true
}

// findEntry locates the leaf and entry index holding a matching item.
func (t *RTree) findEntry(n *rnode, bounds geo.Rect, match func(any) bool) (*rnode, int) {
	if t.size == 0 || !n.bounds.ContainsRect(bounds) && !n.bounds.Intersects(bounds) {
		return nil, -1
	}
	if n.leaf {
		for i, e := range n.entries {
			if e.Bounds == bounds && (match == nil || match(e.Value)) {
				return n, i
			}
		}
		return nil, -1
	}
	for _, c := range n.children {
		if c.bounds.Intersects(bounds) {
			if leaf, i := t.findEntry(c, bounds, match); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condense shrinks bounds up the path and dissolves underfull nodes by
// re-inserting their contents.
func (t *RTree) condense(n *rnode) {
	var orphanItems []Item
	var orphanNodes []*rnode
	for n.parent != nil {
		parent := n.parent
		under := false
		if n.leaf {
			under = len(n.entries) < t.minEntries
		} else {
			under = len(n.children) < t.minEntries
		}
		if under {
			for i, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:i], parent.children[i+1:]...)
					break
				}
			}
			if n.leaf {
				orphanItems = append(orphanItems, n.entries...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		}
		parent.bounds = nodeBounds(parent)
		n = parent
	}
	// Root special cases: collapse a single-child internal root.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &rnode{leaf: true}
	}
	t.root.bounds = nodeBounds(t.root)
	// Re-insert orphans. Items go through normal insertion; orphan subtrees
	// contribute their leaf items (simplest correct condensation).
	for _, sub := range orphanNodes {
		collectItems(sub, &orphanItems)
	}
	t.size -= len(orphanItems)
	for _, it := range orphanItems {
		t.Insert(it)
	}
}

func collectItems(n *rnode, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}
