package gis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stir/internal/geo"
)

func TestBulkLoadMatchesLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(400)
		items := make([]Item, n)
		ln := NewLinear()
		for i := range items {
			items[i] = Item{Bounds: randRectIn(r, koreaExtent), Value: i}
			ln.Insert(items[i])
		}
		rt := BulkLoadSTR(items, 4, 16)
		if rt.Len() != n {
			return false
		}
		if msg := rt.checkInvariants(); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		for q := 0; q < 20; q++ {
			p := randPointIn(r, koreaExtent)
			if !sameSet(rt.SearchPoint(p), ln.SearchPoint(p)) {
				return false
			}
		}
		box := randRectIn(r, koreaExtent)
		return sameSet(rt.SearchRect(box), ln.SearchRect(box))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	rt := BulkLoadSTR(nil, 4, 16)
	if rt.Len() != 0 {
		t.Fatalf("Len = %d", rt.Len())
	}
	if got := rt.SearchPoint(geo.Point{Lat: 37, Lon: 127}); got != nil {
		t.Fatalf("empty search = %v", got)
	}
	// Still insertable afterwards.
	rt.Insert(Item{Bounds: geo.RectAround(geo.Point{Lat: 37, Lon: 127}, 3), Value: "x"})
	if rt.Len() != 1 {
		t.Fatal("insert after empty bulk load failed")
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	items := make([]Item, 200)
	ln := NewLinear()
	for i := range items {
		items[i] = Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		ln.Insert(items[i])
	}
	rt := BulkLoadSTR(items, 4, 16)
	for i := 200; i < 400; i++ {
		it := Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		rt.Insert(it)
		ln.Insert(it)
	}
	if msg := rt.checkInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for q := 0; q < 50; q++ {
		p := randPointIn(r, koreaExtent)
		if !sameSet(rt.SearchPoint(p), ln.SearchPoint(p)) {
			t.Fatal("bulk-loaded tree diverged after inserts")
		}
	}
}

func TestBulkLoadShallowerThanIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	items := make([]Item, 3000)
	for i := range items {
		items[i] = Item{Bounds: randRectIn(r, koreaExtent), Value: i}
	}
	incr := NewRTree()
	for _, it := range items {
		incr.Insert(it)
	}
	bulk := BulkLoadSTR(items, 4, 16)
	if bulk.Depth() > incr.Depth() {
		t.Fatalf("STR depth %d exceeds incremental depth %d", bulk.Depth(), incr.Depth())
	}
}

func TestDeleteBasic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rt := NewRTree()
	ln := NewLinear()
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		rt.Insert(items[i])
	}
	// Delete every third item.
	kept := 0
	for i, it := range items {
		if i%3 == 0 {
			val := it.Value.(int)
			if !rt.Delete(it.Bounds, func(v any) bool { return v.(int) == val }) {
				t.Fatalf("item %d not found for deletion", i)
			}
		} else {
			ln.Insert(it)
			kept++
		}
	}
	if rt.Len() != kept {
		t.Fatalf("Len = %d, want %d", rt.Len(), kept)
	}
	if msg := rt.checkInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for q := 0; q < 60; q++ {
		p := randPointIn(r, koreaExtent)
		if !sameSet(rt.SearchPoint(p), ln.SearchPoint(p)) {
			t.Fatal("tree diverged from oracle after deletions")
		}
	}
	// Deleting a missing item reports false.
	if rt.Delete(geo.RectAround(geo.Point{Lat: 34, Lon: 125}, 0.01), nil) {
		t.Fatal("phantom delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	rt := NewRTree()
	items := make([]Item, 120)
	for i := range items {
		items[i] = Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		rt.Insert(items[i])
	}
	for i, it := range items {
		val := it.Value.(int)
		if !rt.Delete(it.Bounds, func(v any) bool { return v.(int) == val }) {
			t.Fatalf("delete %d failed", i)
		}
		if msg := rt.checkInvariants(); msg != "" {
			t.Fatalf("after deleting %d: %s", i, msg)
		}
	}
	if rt.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", rt.Len())
	}
	// Tree remains usable.
	rt.Insert(Item{Bounds: geo.RectAround(geo.Point{Lat: 37, Lon: 127}, 2), Value: "again"})
	if got := rt.SearchPoint(geo.Point{Lat: 37, Lon: 127}); len(got) != 1 {
		t.Fatalf("reuse after drain failed: %v", got)
	}
}

func TestDeleteMatchesLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt := NewRTree()
		var live []Item
		for op := 0; op < 300; op++ {
			if len(live) == 0 || r.Float64() < 0.6 {
				it := Item{Bounds: randRectIn(r, koreaExtent), Value: op}
				rt.Insert(it)
				live = append(live, it)
			} else {
				i := r.Intn(len(live))
				it := live[i]
				val := it.Value.(int)
				if !rt.Delete(it.Bounds, func(v any) bool { return v.(int) == val }) {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if rt.Len() != len(live) {
			return false
		}
		if rt.checkInvariants() != "" {
			return false
		}
		ln := NewLinear()
		for _, it := range live {
			ln.Insert(it)
		}
		for q := 0; q < 15; q++ {
			p := randPointIn(r, koreaExtent)
			if !sameSet(rt.SearchPoint(p), ln.SearchPoint(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
