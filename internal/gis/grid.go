package gis

import (
	"math"

	"stir/internal/geo"
)

// Grid is a uniform grid index over a fixed extent. Items are registered in
// every cell their bounds touch. It is the ablation alternative to the R-tree
// for point→district lookups over a country-scale extent.
type Grid struct {
	extent     geo.Rect
	rows, cols int
	cellLat    float64
	cellLon    float64
	cells      [][]int // cell -> item indices
	items      []Item
}

// NewGrid builds a grid over extent with the given resolution. Rows/cols are
// clamped to at least 1.
func NewGrid(extent geo.Rect, rows, cols int) *Grid {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	g := &Grid{
		extent: extent,
		rows:   rows,
		cols:   cols,
		cells:  make([][]int, rows*cols),
	}
	g.cellLat = (extent.MaxLat - extent.MinLat) / float64(rows)
	g.cellLon = (extent.MaxLon - extent.MinLon) / float64(cols)
	if g.cellLat <= 0 {
		g.cellLat = 1e-9
	}
	if g.cellLon <= 0 {
		g.cellLon = 1e-9
	}
	return g
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.items) }

func (g *Grid) rowOf(lat float64) int {
	r := int(math.Floor((lat - g.extent.MinLat) / g.cellLat))
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return r
}

func (g *Grid) colOf(lon float64) int {
	c := int(math.Floor((lon - g.extent.MinLon) / g.cellLon))
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return c
}

// Insert implements Index. Items outside the extent are clamped into the
// boundary cells so they remain findable.
func (g *Grid) Insert(item Item) {
	idx := len(g.items)
	g.items = append(g.items, item)
	r0, r1 := g.rowOf(item.Bounds.MinLat), g.rowOf(item.Bounds.MaxLat)
	c0, c1 := g.colOf(item.Bounds.MinLon), g.colOf(item.Bounds.MaxLon)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			cell := r*g.cols + c
			g.cells[cell] = append(g.cells[cell], idx)
		}
	}
}

// SearchPoint implements Index.
func (g *Grid) SearchPoint(p geo.Point) []Item {
	cell := g.rowOf(p.Lat)*g.cols + g.colOf(p.Lon)
	var out []Item
	for _, idx := range g.cells[cell] {
		if g.items[idx].Bounds.Contains(p) {
			out = append(out, g.items[idx])
		}
	}
	return out
}

// SearchRect implements Index.
func (g *Grid) SearchRect(r geo.Rect) []Item {
	r0, r1 := g.rowOf(r.MinLat), g.rowOf(r.MaxLat)
	c0, c1 := g.colOf(r.MinLon), g.colOf(r.MaxLon)
	seen := make(map[int]struct{})
	var out []Item
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, idx := range g.cells[row*g.cols+col] {
				if _, dup := seen[idx]; dup {
					continue
				}
				seen[idx] = struct{}{}
				if g.items[idx].Bounds.Intersects(r) {
					out = append(out, g.items[idx])
				}
			}
		}
	}
	return out
}

// Nearest implements Index by expanding ring search over cells. Rings keep
// expanding until every unvisited cell is provably farther than the current
// k-th best candidate, so the result matches a full scan.
func (g *Grid) Nearest(p geo.Point, k int) []Item {
	if k <= 0 || len(g.items) == 0 {
		return nil
	}
	pr, pc := g.rowOf(p.Lat), g.colOf(p.Lon)
	maxRing := g.rows
	if g.cols > maxRing {
		maxRing = g.cols
	}
	minCell := math.Min(g.cellLat, g.cellLon)
	seen := make(map[int]struct{})
	var cands []Item
	for ring := 0; ring <= maxRing; ring++ {
		g.collectRing(pr, pc, ring, seen, &cands)
		if len(cands) < k {
			continue
		}
		// Any item first reachable at ring+1 lies at least ring*minCell
		// degrees away on some axis; stop once that exceeds the current
		// k-th best distance.
		kth := kthDistSq(cands, p, k)
		reach := float64(ring) * minCell
		if reach*reach > kth {
			break
		}
	}
	return selectNearest(cands, p, k)
}

// kthDistSq returns the k-th smallest squared bound distance among cands.
func kthDistSq(cands []Item, p geo.Point, k int) float64 {
	best := selectNearest(cands, p, k)
	return best[len(best)-1].Bounds.DistanceSqDeg(p)
}

// collectRing appends items registered in cells at Chebyshev distance ring
// from (pr,pc), returning how many new items were added.
func (g *Grid) collectRing(pr, pc, ring int, seen map[int]struct{}, cands *[]Item) int {
	added := 0
	for r := pr - ring; r <= pr+ring; r++ {
		if r < 0 || r >= g.rows {
			continue
		}
		for c := pc - ring; c <= pc+ring; c++ {
			if c < 0 || c >= g.cols {
				continue
			}
			// Only the ring boundary; interior was already visited.
			if ring > 0 && r != pr-ring && r != pr+ring && c != pc-ring && c != pc+ring {
				continue
			}
			for _, idx := range g.cells[r*g.cols+c] {
				if _, dup := seen[idx]; dup {
					continue
				}
				seen[idx] = struct{}{}
				*cands = append(*cands, g.items[idx])
				added++
			}
		}
	}
	return added
}
