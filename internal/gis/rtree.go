package gis

import (
	"container/heap"

	"stir/internal/geo"
)

// RTree is an in-memory R-tree with quadratic node splits (Guttman 1984).
// It is not safe for concurrent mutation; concurrent reads are fine once
// loading has finished, which matches STIR's load-once/query-many gazetteer
// usage.
type RTree struct {
	root       *rnode
	size       int
	minEntries int
	maxEntries int
}

const (
	defaultMaxEntries = 16
	defaultMinEntries = 4
)

type rnode struct {
	parent   *rnode
	bounds   geo.Rect
	leaf     bool
	entries  []Item   // populated when leaf
	children []*rnode // populated when !leaf
}

// NewRTree returns an empty R-tree with default fan-out.
func NewRTree() *RTree {
	return NewRTreeWithFanout(defaultMinEntries, defaultMaxEntries)
}

// NewRTreeWithFanout returns an empty R-tree with the given min/max node
// occupancy. Out-of-range values are clamped so that 2 <= min <= max/2.
func NewRTreeWithFanout(minE, maxE int) *RTree {
	if maxE < 4 {
		maxE = 4
	}
	if minE < 2 {
		minE = 2
	}
	if minE > maxE/2 {
		minE = maxE / 2
	}
	return &RTree{
		root:       &rnode{leaf: true},
		minEntries: minE,
		maxEntries: maxE,
	}
}

// Len implements Index.
func (t *RTree) Len() int { return t.size }

// Insert implements Index.
func (t *RTree) Insert(item Item) {
	leaf := t.chooseLeaf(t.root, item.Bounds)
	leaf.entries = append(leaf.entries, item)
	if t.size == 0 {
		leaf.bounds = item.Bounds
	}
	t.size++
	for n := leaf; n != nil; n = n.parent {
		n.bounds = n.bounds.Union(item.Bounds)
	}
	if len(leaf.entries) > t.maxEntries {
		t.splitAndPropagate(leaf)
	}
}

// chooseLeaf descends to the leaf whose bounds need the least enlargement.
func (t *RTree) chooseLeaf(n *rnode, r geo.Rect) *rnode {
	for !n.leaf {
		best := n.children[0]
		bestEnl := enlargement(best.bounds, r)
		for _, c := range n.children[1:] {
			enl := enlargement(c.bounds, r)
			if enl < bestEnl || (enl == bestEnl && c.bounds.Area() < best.bounds.Area()) {
				best, bestEnl = c, enl
			}
		}
		n = best
	}
	return n
}

func enlargement(have, add geo.Rect) float64 {
	return have.Union(add).Area() - have.Area()
}

func nodeBounds(n *rnode) geo.Rect {
	var b geo.Rect
	first := true
	if n.leaf {
		for _, e := range n.entries {
			if first {
				b, first = e.Bounds, false
			} else {
				b = b.Union(e.Bounds)
			}
		}
	} else {
		for _, c := range n.children {
			if first {
				b, first = c.bounds, false
			} else {
				b = b.Union(c.bounds)
			}
		}
	}
	return b
}

// splitAndPropagate splits an overfull node, propagating splits rootward.
func (t *RTree) splitAndPropagate(n *rnode) {
	for {
		a, b := t.split(n)
		parent := n.parent
		if parent == nil {
			t.root = &rnode{
				children: []*rnode{a, b},
				bounds:   a.bounds.Union(b.bounds),
			}
			a.parent, b.parent = t.root, t.root
			return
		}
		for i, c := range parent.children {
			if c == n {
				parent.children[i] = a
				break
			}
		}
		parent.children = append(parent.children, b)
		a.parent, b.parent = parent, parent
		for m := parent; m != nil; m = m.parent {
			m.bounds = nodeBounds(m)
		}
		if len(parent.children) <= t.maxEntries {
			return
		}
		n = parent
	}
}

// split performs Guttman's quadratic split on n, returning two new nodes.
func (t *RTree) split(n *rnode) (a, b *rnode) {
	if n.leaf {
		rects := make([]geo.Rect, len(n.entries))
		for i, e := range n.entries {
			rects[i] = e.Bounds
		}
		g1, g2 := quadraticPartition(rects, t.minEntries)
		a = &rnode{leaf: true}
		b = &rnode{leaf: true}
		for _, i := range g1 {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range g2 {
			b.entries = append(b.entries, n.entries[i])
		}
	} else {
		rects := make([]geo.Rect, len(n.children))
		for i, c := range n.children {
			rects[i] = c.bounds
		}
		g1, g2 := quadraticPartition(rects, t.minEntries)
		a = &rnode{}
		b = &rnode{}
		for _, i := range g1 {
			child := n.children[i]
			child.parent = a
			a.children = append(a.children, child)
		}
		for _, i := range g2 {
			child := n.children[i]
			child.parent = b
			b.children = append(b.children, child)
		}
	}
	a.bounds = nodeBounds(a)
	b.bounds = nodeBounds(b)
	return a, b
}

// quadraticPartition partitions rect indices into two groups using Guttman's
// quadratic seeds + least-enlargement assignment, respecting minimum size.
func quadraticPartition(rects []geo.Rect, minSize int) (g1, g2 []int) {
	seed1, seed2 := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, seed1, seed2 = waste, i, j
			}
		}
	}
	g1 = []int{seed1}
	g2 = []int{seed2}
	b1, b2 := rects[seed1], rects[seed2]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seed1 && i != seed2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		if len(g1)+len(remaining) == minSize {
			g1 = append(g1, remaining...)
			break
		}
		if len(g2)+len(remaining) == minSize {
			g2 = append(g2, remaining...)
			break
		}
		bestIdx, bestDiff, bestTo1 := -1, -1.0, true
		for pos, i := range remaining {
			d1 := enlargement(b1, rects[i])
			d2 := enlargement(b2, rects[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = pos
				bestTo1 = d1 < d2 || (d1 == d2 && b1.Area() <= b2.Area())
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if bestTo1 {
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
		} else {
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
		}
	}
	return g1, g2
}

// SearchPoint implements Index.
func (t *RTree) SearchPoint(p geo.Point) []Item {
	if t.size == 0 {
		return nil
	}
	var out []Item
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.bounds.Contains(p) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.Bounds.Contains(p) {
					out = append(out, e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// SearchRect implements Index.
func (t *RTree) SearchRect(r geo.Rect) []Item {
	if t.size == 0 {
		return nil
	}
	var out []Item
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.bounds.Intersects(r) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.Bounds.Intersects(r) {
					out = append(out, e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// nnEntry is a best-first search frontier element: either a node or an item.
type nnEntry struct {
	dist float64
	node *rnode
	item *Item
}

type nnHeap []nnEntry

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return
}

// Nearest implements Index using best-first traversal.
func (t *RTree) Nearest(p geo.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap{{dist: t.root.bounds.DistanceSqDeg(p), node: t.root}}
	var out []Item
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(nnEntry)
		switch {
		case e.item != nil:
			out = append(out, *e.item)
		case e.node.leaf:
			for i := range e.node.entries {
				it := &e.node.entries[i]
				heap.Push(h, nnEntry{dist: it.Bounds.DistanceSqDeg(p), item: it})
			}
		default:
			for _, c := range e.node.children {
				heap.Push(h, nnEntry{dist: c.bounds.DistanceSqDeg(p), node: c})
			}
		}
	}
	return out
}

// Depth returns the height of the tree (1 for a lone leaf root); exposed for
// tests and diagnostics.
func (t *RTree) Depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}

// checkInvariants validates structural invariants, returning a description of
// the first violation found ("" when healthy). Used by tests.
func (t *RTree) checkInvariants() string {
	var walk func(n *rnode, depth int) (int, string)
	walk = func(n *rnode, depth int) (int, string) {
		if n.leaf {
			for _, e := range n.entries {
				if !n.bounds.ContainsRect(e.Bounds) {
					return depth, "leaf bounds do not cover entry"
				}
			}
			return depth, ""
		}
		if len(n.children) == 0 {
			return depth, "internal node with no children"
		}
		leafDepth := -1
		for _, c := range n.children {
			if c.parent != n {
				return depth, "child parent pointer mismatch"
			}
			if !n.bounds.ContainsRect(c.bounds) {
				return depth, "node bounds do not cover child"
			}
			d, msg := walk(c, depth+1)
			if msg != "" {
				return d, msg
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if d != leafDepth {
				return d, "leaves at different depths"
			}
		}
		return leafDepth, ""
	}
	_, msg := walk(t.root, 0)
	return msg
}
