package gis

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stir/internal/geo"
)

// koreaExtent approximates the paper's study area.
var koreaExtent = geo.Rect{MinLat: 33, MinLon: 124, MaxLat: 39, MaxLon: 132}

func randRectIn(r *rand.Rand, extent geo.Rect) geo.Rect {
	lat := extent.MinLat + r.Float64()*(extent.MaxLat-extent.MinLat)
	lon := extent.MinLon + r.Float64()*(extent.MaxLon-extent.MinLon)
	return geo.RectAround(geo.Point{Lat: lat, Lon: lon}, 0.5+r.Float64()*20)
}

func randPointIn(r *rand.Rand, extent geo.Rect) geo.Point {
	return geo.Point{
		Lat: extent.MinLat + r.Float64()*(extent.MaxLat-extent.MinLat),
		Lon: extent.MinLon + r.Float64()*(extent.MaxLon-extent.MinLon),
	}
}

func buildIndexes(r *rand.Rand, n int) (*RTree, *Grid, *Linear) {
	rt := NewRTree()
	gr := NewGrid(koreaExtent, 32, 32)
	ln := NewLinear()
	for i := 0; i < n; i++ {
		it := Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		rt.Insert(it)
		gr.Insert(it)
		ln.Insert(it)
	}
	return rt, gr, ln
}

func valueSet(items []Item) map[int]bool {
	m := make(map[int]bool, len(items))
	for _, it := range items {
		m[it.Value.(int)] = true
	}
	return m
}

func sameSet(a, b []Item) bool {
	sa, sb := valueSet(a), valueSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

func TestRTreeMatchesLinearSearchPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt, gr, ln := buildIndexes(r, 200)
		for i := 0; i < 30; i++ {
			p := randPointIn(r, koreaExtent)
			want := ln.SearchPoint(p)
			if !sameSet(rt.SearchPoint(p), want) {
				return false
			}
			if !sameSet(gr.SearchPoint(p), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeMatchesLinearSearchRect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt, gr, ln := buildIndexes(r, 200)
		for i := 0; i < 20; i++ {
			q := randRectIn(r, koreaExtent)
			want := ln.SearchRect(q)
			if !sameSet(rt.SearchRect(q), want) {
				return false
			}
			if !sameSet(gr.SearchRect(q), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func nearestDists(items []Item, p geo.Point) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = it.Bounds.DistanceSqDeg(p)
	}
	return out
}

func TestNearestMatchesLinearDistances(t *testing.T) {
	// Nearest may tie-break differently between implementations, so compare
	// the distance sequences rather than the identities.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rt, gr, ln := buildIndexes(r, 150)
		for i := 0; i < 10; i++ {
			p := randPointIn(r, koreaExtent)
			k := 1 + r.Intn(8)
			want := nearestDists(ln.Nearest(p, k), p)
			gotRT := nearestDists(rt.Nearest(p, k), p)
			gotGR := nearestDists(gr.Nearest(p, k), p)
			if len(gotRT) != len(want) || len(gotGR) != len(want) {
				return false
			}
			for j := range want {
				if gotRT[j]-want[j] > 1e-12 || want[j]-gotRT[j] > 1e-12 {
					return false
				}
				if gotGR[j]-want[j] > 1e-12 || want[j]-gotGR[j] > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeInvariantsAfterInserts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rt := NewRTree()
	for i := 0; i < 2000; i++ {
		rt.Insert(Item{Bounds: randRectIn(r, koreaExtent), Value: i})
		if i%251 == 0 {
			if msg := rt.checkInvariants(); msg != "" {
				t.Fatalf("after %d inserts: %s", i+1, msg)
			}
		}
	}
	if msg := rt.checkInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if rt.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", rt.Len())
	}
	if rt.Depth() < 3 {
		t.Fatalf("Depth = %d, expected a multi-level tree for 2000 items", rt.Depth())
	}
}

func TestRTreeEmpty(t *testing.T) {
	rt := NewRTree()
	if got := rt.SearchPoint(geo.Point{Lat: 37, Lon: 127}); got != nil {
		t.Fatalf("empty SearchPoint = %v", got)
	}
	if got := rt.SearchRect(koreaExtent); got != nil {
		t.Fatalf("empty SearchRect = %v", got)
	}
	if got := rt.Nearest(geo.Point{}, 5); got != nil {
		t.Fatalf("empty Nearest = %v", got)
	}
	if rt.Len() != 0 || rt.Depth() != 1 {
		t.Fatal("empty tree shape wrong")
	}
}

func TestRTreeSingleItem(t *testing.T) {
	rt := NewRTree()
	b := geo.RectAround(geo.Point{Lat: 37.5, Lon: 127}, 5)
	rt.Insert(Item{Bounds: b, Value: "only"})
	hits := rt.SearchPoint(geo.Point{Lat: 37.5, Lon: 127})
	if len(hits) != 1 || hits[0].Value != "only" {
		t.Fatalf("hits = %v", hits)
	}
	if got := rt.SearchPoint(geo.Point{Lat: 35, Lon: 129}); len(got) != 0 {
		t.Fatalf("miss returned %v", got)
	}
}

func TestRTreeFanoutClamping(t *testing.T) {
	rt := NewRTreeWithFanout(100, 2)
	if rt.maxEntries < 4 || rt.minEntries < 2 || rt.minEntries > rt.maxEntries/2 {
		t.Fatalf("fanout not clamped: min=%d max=%d", rt.minEntries, rt.maxEntries)
	}
	// Tree must still work.
	r := rand.New(rand.NewSource(3))
	ln := NewLinear()
	for i := 0; i < 300; i++ {
		it := Item{Bounds: randRectIn(r, koreaExtent), Value: i}
		rt.Insert(it)
		ln.Insert(it)
	}
	p := randPointIn(r, koreaExtent)
	if !sameSet(rt.SearchPoint(p), ln.SearchPoint(p)) {
		t.Fatal("clamped-fanout tree disagrees with oracle")
	}
}

func TestNearestOrderingIsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rt, _, _ := buildIndexes(r, 300)
	p := randPointIn(r, koreaExtent)
	got := nearestDists(rt.Nearest(p, 20), p)
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("Nearest distances not ascending: %v", got)
	}
}

func TestGridOutOfExtentClamped(t *testing.T) {
	gr := NewGrid(koreaExtent, 8, 8)
	// Item fully outside the extent should still be insertable and findable
	// via rect search touching the boundary cell.
	out := geo.RectAround(geo.Point{Lat: 50, Lon: 140}, 5)
	gr.Insert(Item{Bounds: out, Value: "out"})
	hits := gr.SearchRect(out)
	if len(hits) != 1 {
		t.Fatalf("out-of-extent item not found: %v", hits)
	}
}

func TestGridDegenerateExtent(t *testing.T) {
	gr := NewGrid(geo.Rect{MinLat: 37, MaxLat: 37, MinLon: 127, MaxLon: 127}, 4, 4)
	gr.Insert(Item{Bounds: geo.RectAround(geo.Point{Lat: 37, Lon: 127}, 1), Value: 1})
	if got := gr.SearchPoint(geo.Point{Lat: 37, Lon: 127}); len(got) != 1 {
		t.Fatalf("degenerate-extent grid lookup = %v", got)
	}
}

func TestNearestKLargerThanN(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rt, gr, ln := buildIndexes(r, 10)
	p := randPointIn(r, koreaExtent)
	for name, idx := range map[string]Index{"rtree": rt, "grid": gr, "linear": ln} {
		if got := idx.Nearest(p, 50); len(got) != 10 {
			t.Errorf("%s: Nearest k>n returned %d items, want 10", name, len(got))
		}
	}
}

func ExampleRTree() {
	rt := NewRTree()
	rt.Insert(Item{Bounds: geo.RectAround(geo.Point{Lat: 37.57, Lon: 126.98}, 5), Value: "Jongno-gu"})
	rt.Insert(Item{Bounds: geo.RectAround(geo.Point{Lat: 35.18, Lon: 129.08}, 5), Value: "Busanjin-gu"})
	hits := rt.SearchPoint(geo.Point{Lat: 37.57, Lon: 126.98})
	fmt.Println(len(hits), hits[0].Value)
	// Output: 1 Jongno-gu
}
