package geocode

import (
	"context"
	"fmt"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geofast"
)

// EmbeddedResolver answers Reverse straight out of a compiled geofast grid:
// no HTTP hop, no XML, no LRU churn — constant and no-match cells resolve in
// a handful of instructions, and only boundary cells walk the gazetteer's
// R-tree. It quantises coordinates exactly like the HTTP client and
// DirectResolver, so swapping it in changes no grouping output.
type EmbeddedResolver struct {
	grid  *Grid
	quant int
}

// Grid aliases the compiled geofast lookup structure so embedders that
// already hold one (the server's fast path, the CLI) can share it.
type Grid = geofast.Grid

// NewEmbeddedResolver wraps a compiled grid as a Resolver.
func NewEmbeddedResolver(grid *geofast.Grid) *EmbeddedResolver {
	return &EmbeddedResolver{grid: grid, quant: 3}
}

// CompileEmbedded compiles gaz into a grid and wraps it in one call. slackKm
// follows the resolver convention: 0 means the 10 km default, negative
// disables the nearest-district fallback.
func CompileEmbedded(gaz *admin.Gazetteer, slackKm float64) (*EmbeddedResolver, error) {
	grid, err := geofast.Compile(gaz, geofast.Options{SlackKm: slackKm})
	if err != nil {
		return nil, err
	}
	return NewEmbeddedResolver(grid), nil
}

// Grid exposes the backing grid (for metrics registration and stats).
func (e *EmbeddedResolver) Grid() *geofast.Grid { return e.grid }

// Reverse implements Resolver. Points are quantised to the client lattice
// first, so results are byte-identical to DirectResolver/Client over the
// same gazetteer and slack.
func (e *EmbeddedResolver) Reverse(_ context.Context, p geo.Point) (Location, error) {
	q := quantizePoint(p, e.quant)
	d, ok := e.grid.Resolve(q.Lat, q.Lon)
	if !ok {
		return Location{}, fmt.Errorf("%w: %s", ErrNoMatch, p)
	}
	return Location{Country: d.Country, State: d.State, County: d.County}, nil
}

// SetQuantizeDecimals adjusts the coordinate quantisation, mirroring
// DirectResolver.
func (e *EmbeddedResolver) SetQuantizeDecimals(n int) { e.quant = n }

// Stats implements StatsProvider over the grid's lookup counters: Hits are
// grid-speed answers (constant + definite no-match cells), Misses are
// boundary-cell fallbacks into the R-tree, Entries is the cell count.
func (e *EmbeddedResolver) Stats() CacheStats {
	st := e.grid.Stats()
	return CacheStats{
		Hits:    st.Fast + st.NoMatch,
		Misses:  st.Boundary,
		Entries: st.Cells,
	}
}

var (
	_ Resolver      = (*EmbeddedResolver)(nil)
	_ StatsProvider = (*EmbeddedResolver)(nil)
)
