// Package geocode implements the reverse-geocoding service the paper used
// (the Yahoo! Open API) and a caching client for it. The server resolves a
// latitude/longitude pair to an administrative district through the gazetteer
// and answers with the same XML shape the paper's Fig. 5 shows:
//
//	<ResultSet>
//	  <Result>
//	    <location>
//	      <country>KR</country>
//	      <state>Seoul</state>
//	      <county>Yangcheon-gu</county>
//	      <town></town>
//	    </location>
//	  </Result>
//	</ResultSet>
//
// The client quantises coordinates, caches responses in an LRU, and rides out
// the service's rate limits — all behaviours the collection pipeline needs
// when geocoding tens of thousands of tweet coordinates through a metered
// third-party API.
package geocode

import (
	"encoding/xml"
	"fmt"
)

// Location is the <location> element of a response.
type Location struct {
	Country string `xml:"country"`
	State   string `xml:"state"`
	County  string `xml:"county"`
	Town    string `xml:"town"`
}

// Result is the <Result> element.
type Result struct {
	Location Location `xml:"location"`
	// Quality grades the match: "exact" when the point fell inside the
	// district extent, "nearest" when slack matching was used.
	Quality string `xml:"quality,attr"`
}

// ResultSet is the response document root.
type ResultSet struct {
	XMLName xml.Name `xml:"ResultSet"`
	Error   int      `xml:"Error"`
	Message string   `xml:"ErrorMessage,omitempty"`
	Results []Result `xml:"Result"`
}

// Error codes in ResultSet.Error.
const (
	CodeOK         = 0
	CodeBadRequest = 400
	CodeNoMatch    = 404
	CodeThrottled  = 429
)

// Marshal renders the result set as an XML document.
func (rs *ResultSet) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(rs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("geocode: marshal: %w", err)
	}
	return append([]byte(xml.Header), b...), nil
}

// UnmarshalResultSet parses an XML response document.
func UnmarshalResultSet(b []byte) (*ResultSet, error) {
	var rs ResultSet
	if err := xml.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("geocode: unmarshal: %w", err)
	}
	return &rs, nil
}
