package geocode

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"stir/internal/geo"
	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/overload"
	"stir/internal/resilience"
)

// Client calls a geocode Server with quantisation, caching, and a
// resilience.Policy that rides out rate limits (429 with Retry-After),
// transient network errors and 5xx responses — the full failure surface a
// metered third-party geocoder exposes. It also supports a direct
// (in-process) resolver so offline pipelines can skip HTTP entirely while
// exercising the same cache.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// QuantizeDecimals rounds coordinates before lookup/caching; 3 decimals
	// (~110 m) is plenty for county-level grouping. Negative disables.
	QuantizeDecimals int
	// MaxBackoff caps one rate-limit sleep.
	MaxBackoff time.Duration
	// MaxRetries bounds retries per call.
	MaxRetries int
	// Retry overrides the retry policy built from MaxBackoff/MaxRetries.
	Retry *resilience.Policy
	// Breaker, when set, gates every request so a dead geocoder fails fast
	// instead of stalling the pipeline behind full backoff ladders.
	Breaker *resilience.Breaker
	// Metrics receives request/throttle/backoff series (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry

	cache   *lruCache[Location]
	sleep   func(context.Context, time.Duration) error
	polOnce sync.Once
	pol     *resilience.Policy
}

// ErrNoMatch reports a point no district is near.
var ErrNoMatch = errors.New("geocode: no district near point")

// NewClient returns a caching client for the server at baseURL.
func NewClient(baseURL string, cacheSize int) *Client {
	return &Client{
		BaseURL:          baseURL,
		HTTP:             &http.Client{Timeout: 15 * time.Second},
		QuantizeDecimals: 3,
		MaxBackoff:       2 * time.Second,
		MaxRetries:       6,
		cache:            newLRUCache[Location](cacheSize),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// quantize rounds the point for cache keying.
func (c *Client) quantize(p geo.Point) geo.Point {
	if c.QuantizeDecimals < 0 {
		return p
	}
	scale := 1.0
	for i := 0; i < c.QuantizeDecimals; i++ {
		scale *= 10
	}
	round := func(v float64) float64 {
		if v >= 0 {
			return float64(int64(v*scale+0.5)) / scale
		}
		return float64(int64(v*scale-0.5)) / scale
	}
	return geo.Point{Lat: round(p.Lat), Lon: round(p.Lon)}
}

func cacheKey(p geo.Point) string { return p.String() }

// Reverse resolves p to a Location, consulting the cache first.
func (c *Client) Reverse(ctx context.Context, p geo.Point) (Location, error) {
	q := c.quantize(p)
	key := cacheKey(q)
	if loc, ok := c.cache.Get(key); ok {
		return loc, nil
	}
	loc, err := c.fetch(ctx, q)
	if err != nil {
		return Location{}, err
	}
	c.cache.Put(key, loc)
	return loc, nil
}

// policy resolves the client's retry policy once: the explicit Retry
// override, or one built from MaxBackoff/MaxRetries.
func (c *Client) policy() *resilience.Policy {
	c.polOnce.Do(func() {
		if c.Retry != nil {
			c.pol = c.Retry
			if c.pol.Breaker == nil {
				c.pol.Breaker = c.Breaker
			}
			return
		}
		retries := c.MaxRetries
		if retries <= 0 {
			retries = 6
		}
		maxB := c.MaxBackoff
		if maxB <= 0 {
			maxB = 2 * time.Second
		}
		c.pol = &resilience.Policy{
			Name:        "geocode_client",
			MaxAttempts: retries + 1,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    maxB,
			Breaker:     c.Breaker,
			Metrics:     c.Metrics,
			Sleep:       c.sleep,
		}
	})
	return c.pol
}

// throttled is a 429 response carrying the server-advertised wait; the
// retry policy classifies it transient and honours the hint.
type throttled struct{ wait time.Duration }

func (e *throttled) Error() string             { return "geocode client: rate limited" }
func (e *throttled) HTTPStatus() int           { return http.StatusTooManyRequests }
func (e *throttled) RetryAfter() time.Duration { return e.wait }

func (c *Client) fetch(ctx context.Context, p geo.Point) (Location, error) {
	reg := obs.Or(c.Metrics)
	params := url.Values{
		"lat": {strconv.FormatFloat(p.Lat, 'f', 6, 64)},
		"lon": {strconv.FormatFloat(p.Lon, 'f', 6, 64)},
	}
	endpoint := c.BaseURL + "/v1/reverse?" + params.Encode()
	var loc Location
	ctx, sp := trace.Start(ctx, "geocode.reverse")
	defer sp.End()
	err := c.policy().Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		overload.SetDeadlineHeader(req)
		trace.Inject(req)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return fmt.Errorf("geocode client: %w", err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("geocode client: read: %w", err)
		}
		if ferr := c.faultFrom(resp, body, reg); ferr != nil {
			return ferr
		}
		rs, err := UnmarshalResultSet(body)
		if err != nil {
			return fmt.Errorf("geocode client: parse: %w", err)
		}
		switch rs.Error {
		case CodeOK:
			if len(rs.Results) == 0 {
				return errors.New("geocode client: empty result set")
			}
			loc = rs.Results[0].Location
			return nil
		case CodeNoMatch:
			return fmt.Errorf("%w: %s", ErrNoMatch, p)
		default:
			return fmt.Errorf("geocode client: server error %d: %s", rs.Error, rs.Message)
		}
	})
	if err != nil {
		if sp != nil {
			sp.Annotate("error", err.Error())
		}
		return Location{}, err
	}
	return loc, nil
}

// faultFrom converts a throttle or server-failure response into its typed
// retryable error (nil when resp is fine). 429s count and carry the
// advertised wait; 5xx becomes a transient StatusError.
func (c *Client) faultFrom(resp *http.Response, _ []byte, reg *obs.Registry) error {
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := retryAfterHint(resp, c.MaxBackoff)
		reg.Counter("geocode_client_throttled_total").Inc()
		reg.Histogram("geocode_client_backoff_seconds", obs.DefBuckets).ObserveDuration(wait)
		reg.Counter("geocode_client_retries_total").Inc()
		return &throttled{wait: wait}
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		// Carry a Retry-After when the server sent one: a 503 shed with a
		// hint is cooperative backpressure (resilience.IsThrottle), which
		// backs off without feeding the breaker.
		var wait time.Duration
		if raw := resp.Header.Get("Retry-After"); raw != "" {
			if secs, err := strconv.Atoi(raw); err == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
				if maxB := c.MaxBackoff; maxB > 0 && wait > maxB {
					wait = maxB
				}
				reg.Counter("geocode_client_throttled_total").Inc()
			}
		}
		return &resilience.StatusError{Status: resp.StatusCode, Wait: wait}
	}
	return nil
}

// retryAfterHint derives the server-advertised wait from the rate-limit
// headers, capped at maxB.
func retryAfterHint(resp *http.Response, maxB time.Duration) time.Duration {
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	wait := 10 * time.Millisecond
	if raw := resp.Header.Get("Retry-After"); raw != "" {
		if secs, err := strconv.Atoi(raw); err == nil {
			if d := time.Duration(secs) * time.Second; d > wait {
				wait = d
			}
		}
	}
	if raw := resp.Header.Get("X-RateLimit-Reset"); raw != "" {
		if unix, err := strconv.ParseInt(raw, 10, 64); err == nil {
			if until := time.Until(time.Unix(unix, 0)); until > wait {
				wait = until
			}
		}
	}
	if wait > maxB {
		wait = maxB
	}
	return wait
}

// Stats exposes cache effectiveness counters.
func (c *Client) Stats() CacheStats { return c.cache.Stats() }

// Resolver is the narrow interface the pipeline consumes: anything that maps
// a point to a Location. Client implements it over HTTP; DirectResolver
// implements it in-process.
type Resolver interface {
	Reverse(ctx context.Context, p geo.Point) (Location, error)
}

// StatsProvider is the one shape every cache-bearing geocode component
// exposes — the HTTP client, the in-process DirectResolver, and the server's
// resolution memo — so ablations and dashboards read a single struct
// regardless of which path resolved the points.
type StatsProvider interface {
	Stats() CacheStats
}

var (
	_ StatsProvider = (*Client)(nil)
	_ StatsProvider = (*DirectResolver)(nil)
	_ StatsProvider = (*Server)(nil)
)

// RegisterCacheMetrics publishes p's cache counters on reg as pull-mode
// gauges labelled cache=name. Registration is idempotent: re-registering the
// same name rebinds the gauges to the new provider, so rebuilding a resolver
// never duplicates series.
func RegisterCacheMetrics(reg *obs.Registry, name string, p StatsProvider) {
	if p == nil {
		return
	}
	reg = obs.Or(reg)
	reg.GaugeFunc("geocode_cache_hits", func() float64 { return float64(p.Stats().Hits) }, "cache", name)
	reg.GaugeFunc("geocode_cache_misses", func() float64 { return float64(p.Stats().Misses) }, "cache", name)
	reg.GaugeFunc("geocode_cache_evictions", func() float64 { return float64(p.Stats().Evictions) }, "cache", name)
	reg.GaugeFunc("geocode_cache_entries", func() float64 { return float64(p.Stats().Entries) }, "cache", name)
}

// DirectResolver resolves points straight through a gazetteer, with the same
// caching as the HTTP client. Offline pipelines and benchmarks use it.
type DirectResolver struct {
	Gaz     GazetteerFunc
	SlackKm float64
	cache   *lruCache[Location]
	quant   int
}

// GazetteerFunc adapts admin.Gazetteer.ResolvePoint without importing the
// package here (avoids a dependency cycle when admin wants geocode types).
type GazetteerFunc func(p geo.Point, slackKm float64) (Location, error)

// NewDirectResolver builds an in-process resolver with an LRU of cacheSize.
func NewDirectResolver(fn GazetteerFunc, slackKm float64, cacheSize int) *DirectResolver {
	return &DirectResolver{Gaz: fn, SlackKm: slackKm, cache: newLRUCache[Location](cacheSize), quant: 3}
}

// Reverse implements Resolver.
func (d *DirectResolver) Reverse(_ context.Context, p geo.Point) (Location, error) {
	q := quantizePoint(p, d.quant)
	key := cacheKey(q)
	if loc, ok := d.cache.Get(key); ok {
		return loc, nil
	}
	loc, err := d.Gaz(q, d.SlackKm)
	if err != nil {
		return Location{}, fmt.Errorf("%w: %s", ErrNoMatch, p)
	}
	d.cache.Put(key, loc)
	return loc, nil
}

// Stats exposes cache effectiveness counters.
func (d *DirectResolver) Stats() CacheStats { return d.cache.Stats() }

func quantizePoint(p geo.Point, decimals int) geo.Point {
	c := Client{QuantizeDecimals: decimals}
	return c.quantize(p)
}

// SetQuantizeDecimals adjusts the resolver's coordinate quantisation (cache
// cell size): 3 ≈ 110 m (default), 2 ≈ 1.1 km — coarse enough for
// county-level grouping and far more cache-effective.
func (d *DirectResolver) SetQuantizeDecimals(n int) { d.quant = n }

// BatchReverse resolves many points through the batch endpoint, splitting
// into server-sized chunks and consulting/filling the cache per point.
// Quantised-identical points are deduplicated before hitting the wire: a
// batch of N copies of one coordinate costs one line in one request. The
// returned slice is parallel to pts; unresolvable points hold a zero
// Location with ok=false in the parallel bool slice.
func (c *Client) BatchReverse(ctx context.Context, pts []geo.Point) ([]Location, []bool, error) {
	locs := make([]Location, len(pts))
	oks := make([]bool, len(pts))
	// Resolve cache hits first; collect the misses, deduplicated on the
	// quantised cache key. fanout maps each unique missing key to every
	// original index that needs its answer, in first-seen order.
	var missKeys []string
	var missPts []geo.Point
	fanout := make(map[string][]int)
	for i, p := range pts {
		q := c.quantize(p)
		key := cacheKey(q)
		if loc, ok := c.cache.Get(key); ok {
			locs[i], oks[i] = loc, true
			continue
		}
		if _, seen := fanout[key]; !seen {
			missKeys = append(missKeys, key)
			missPts = append(missPts, q)
		}
		fanout[key] = append(fanout[key], i)
	}
	const chunk = 100
	for start := 0; start < len(missKeys); start += chunk {
		end := start + chunk
		if end > len(missKeys) {
			end = len(missKeys)
		}
		var body strings.Builder
		for j := start; j < end; j++ {
			if j > start {
				body.WriteByte('\n')
			}
			fmt.Fprintf(&body, "%.6f,%.6f", missPts[j].Lat, missPts[j].Lon)
		}
		rs, err := c.postBatch(ctx, body.String())
		if err != nil {
			return nil, nil, err
		}
		if len(rs.Results) != end-start {
			return nil, nil, fmt.Errorf("geocode client: batch returned %d results for %d points", len(rs.Results), end-start)
		}
		for j := start; j < end; j++ {
			r := rs.Results[j-start]
			if r.Quality == "none" || r.Location == (Location{}) {
				continue
			}
			for _, i := range fanout[missKeys[j]] {
				locs[i], oks[i] = r.Location, true
			}
			c.cache.Put(missKeys[j], r.Location)
		}
	}
	return locs, oks, nil
}

func (c *Client) postBatch(ctx context.Context, body string) (*ResultSet, error) {
	reg := obs.Or(c.Metrics)
	var out *ResultSet
	ctx, sp := trace.Start(ctx, "geocode.reverse_batch")
	defer sp.End()
	err := c.policy().Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/reverse_batch", strings.NewReader(body))
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		overload.SetDeadlineHeader(req)
		trace.Inject(req)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return fmt.Errorf("geocode client: batch: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("geocode client: batch read: %w", err)
		}
		if ferr := c.faultFrom(resp, raw, reg); ferr != nil {
			return ferr
		}
		rs, err := UnmarshalResultSet(raw)
		if err != nil {
			return fmt.Errorf("geocode client: batch parse: %w", err)
		}
		if rs.Error != CodeOK {
			return fmt.Errorf("geocode client: batch error %d: %s", rs.Error, rs.Message)
		}
		out = rs
		return nil
	})
	if err != nil {
		if sp != nil {
			sp.Annotate("error", err.Error())
		}
		return nil, err
	}
	return out, nil
}
