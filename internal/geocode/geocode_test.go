package geocode

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
)

func startGeocode(t *testing.T, opts ServerOptions) (*httptest.Server, *Client) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(gaz, opts))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, 1024)
	c.MaxBackoff = 100 * time.Millisecond
	c.MaxRetries = 30
	return srv, c
}

func TestXMLRoundTrip(t *testing.T) {
	rs := &ResultSet{
		Error: CodeOK,
		Results: []Result{{
			Quality:  "exact",
			Location: Location{Country: "KR", State: "Seoul", County: "Yangcheon-gu", Town: ""},
		}},
	}
	b, err := rs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "<county>Yangcheon-gu</county>") {
		t.Fatalf("xml missing county element:\n%s", b)
	}
	if !strings.HasPrefix(string(b), "<?xml") {
		t.Fatal("xml header missing")
	}
	rs2, err := UnmarshalResultSet(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Results) != 1 || rs2.Results[0].Location != rs.Results[0].Location {
		t.Fatalf("roundtrip = %+v", rs2)
	}
	if _, err := UnmarshalResultSet([]byte("<bad")); err == nil {
		t.Fatal("bad xml accepted")
	}
}

func TestReverseKnownPoint(t *testing.T) {
	_, c := startGeocode(t, ServerOptions{})
	loc, err := c.Reverse(context.Background(), geo.Point{Lat: 37.517, Lon: 126.866})
	if err != nil {
		t.Fatal(err)
	}
	if loc.State != "Seoul" || loc.County != "Yangcheon-gu" {
		t.Fatalf("loc = %+v, want Seoul/Yangcheon-gu", loc)
	}
}

func TestReverseNoMatch(t *testing.T) {
	_, c := startGeocode(t, ServerOptions{SlackKm: 5})
	_, err := c.Reverse(context.Background(), geo.Point{Lat: 37.5, Lon: 131.9}) // open sea
	if !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
}

func TestReverseBadRequest(t *testing.T) {
	srv, _ := startGeocode(t, ServerOptions{})
	for _, q := range []string{"", "lat=abc&lon=1", "lat=1", "lat=95&lon=0"} {
		resp, err := http.Get(srv.URL + "/v1/reverse?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestClientCaching(t *testing.T) {
	var served int
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(gaz, ServerOptions{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, 64)

	p := geo.Point{Lat: 37.5172, Lon: 126.8664}
	for i := 0; i < 10; i++ {
		// Jitter below the quantisation step: all ten hit one cache slot.
		jp := geo.Point{Lat: p.Lat + float64(i)*1e-5, Lon: p.Lon}
		if _, err := c.Reverse(context.Background(), jp); err != nil {
			t.Fatal(err)
		}
	}
	if served > 2 {
		t.Fatalf("server saw %d requests, cache should have absorbed most", served)
	}
	st := c.Stats()
	if st.Hits < 8 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestClientRateLimitRecovery(t *testing.T) {
	_, c := startGeocode(t, ServerOptions{Limit: 3, Window: 150 * time.Millisecond})
	c.QuantizeDecimals = -1 // defeat the cache so every call hits the server
	for i := 0; i < 10; i++ {
		p := geo.Point{Lat: 37.51 + float64(i)*0.001, Lon: 126.87}
		if _, err := c.Reverse(context.Background(), p); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestQuantize(t *testing.T) {
	c := &Client{QuantizeDecimals: 3}
	q := c.quantize(geo.Point{Lat: 37.51749, Lon: -126.86449})
	if q.Lat != 37.517 || q.Lon != -126.864 {
		t.Fatalf("quantize = %v", q)
	}
	off := &Client{QuantizeDecimals: -1}
	p := geo.Point{Lat: 37.123456789, Lon: 1}
	if got := off.quantize(p); got != p {
		t.Fatalf("disabled quantise changed point: %v", got)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache[Location](2)
	c.Put("a", Location{County: "A"})
	c.Put("b", Location{County: "B"})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Put("c", Location{County: "C"}) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be cached")
	}
	// Overwrite existing key keeps size stable.
	c.Put("a", Location{County: "A2"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, _ := c.Get("a")
	if got.County != "A2" {
		t.Fatalf("overwrite lost: %+v", got)
	}
}

func TestLRUCacheZeroCapacity(t *testing.T) {
	c := newLRUCache[Location](0)
	c.Put("a", Location{})
	if c.Len() != 1 {
		t.Fatal("capacity should clamp to 1")
	}
	c.Put("b", Location{})
	if c.Len() != 1 {
		t.Fatal("should evict to stay at capacity")
	}
}

func TestDirectResolver(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	fn := func(p geo.Point, slack float64) (Location, error) {
		calls++
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return Location{}, err
		}
		return Location{Country: d.Country, State: d.State, County: d.County}, nil
	}
	r := NewDirectResolver(fn, 10, 128)
	p := geo.Point{Lat: 37.517, Lon: 126.866}
	for i := 0; i < 5; i++ {
		loc, err := r.Reverse(context.Background(), p)
		if err != nil || loc.County != "Yangcheon-gu" {
			t.Fatalf("direct resolve = %+v, %v", loc, err)
		}
	}
	if calls != 1 {
		t.Fatalf("gazetteer called %d times, cache should hold it to 1", calls)
	}
	if _, err := r.Reverse(context.Background(), geo.Point{Lat: 0, Lon: 0}); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("ocean point err = %v", err)
	}
}

func TestServerQualityAttr(t *testing.T) {
	srv, _ := startGeocode(t, ServerOptions{SlackKm: 50})
	// A point in the sea near Busan should resolve as "nearest".
	resp, err := http.Get(fmt.Sprintf("%s/v1/reverse?lat=%f&lon=%f", srv.URL, 35.05, 129.35))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rs ResultSet
	if err := xmlDecode(resp, &rs); err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 1 || rs.Results[0].Quality != "nearest" {
		t.Fatalf("ResultSet = %+v, want quality=nearest", rs)
	}
}

func xmlDecode(resp *http.Response, rs *ResultSet) error {
	buf := new(strings.Builder)
	if _, err := copyResp(buf, resp); err != nil {
		return err
	}
	got, err := UnmarshalResultSet([]byte(buf.String()))
	if err != nil {
		return err
	}
	*rs = *got
	return nil
}

func copyResp(dst *strings.Builder, resp *http.Response) (int64, error) {
	b := make([]byte, 4096)
	var n int64
	for {
		m, err := resp.Body.Read(b)
		dst.Write(b[:m])
		n += int64(m)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func TestBatchReverse(t *testing.T) {
	_, c := startGeocode(t, ServerOptions{})
	pts := []geo.Point{
		{Lat: 37.517, Lon: 126.866}, // Yangcheon-gu
		{Lat: 35.163, Lon: 129.164}, // Haeundae-gu
		{Lat: 37.5, Lon: 131.9},     // open sea, unresolvable
		{Lat: 36.35, Lon: 127.42},   // Daejeon
	}
	locs, oks, err := c.BatchReverse(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 || len(oks) != 4 {
		t.Fatalf("lengths = %d/%d", len(locs), len(oks))
	}
	if !oks[0] || locs[0].County != "Yangcheon-gu" {
		t.Fatalf("pts[0] = %+v ok=%v", locs[0], oks[0])
	}
	if !oks[1] || locs[1].County != "Haeundae-gu" {
		t.Fatalf("pts[1] = %+v ok=%v", locs[1], oks[1])
	}
	if oks[2] {
		t.Fatalf("open-sea point resolved: %+v", locs[2])
	}
	if !oks[3] || locs[3].State != "Daejeon" {
		t.Fatalf("pts[3] = %+v ok=%v", locs[3], oks[3])
	}
}

func TestBatchReverseUsesOneToken(t *testing.T) {
	// 80 points against a limit of 2 tokens: must succeed in one batch call.
	_, c := startGeocode(t, ServerOptions{Limit: 2, Window: time.Hour})
	var pts []geo.Point
	for i := 0; i < 80; i++ {
		pts = append(pts, geo.Point{Lat: 37.4 + float64(i)*0.002, Lon: 126.9})
	}
	_, oks, err := c.BatchReverse(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, ok := range oks {
		if ok {
			resolved++
		}
	}
	if resolved < 70 {
		t.Fatalf("only %d/80 resolved", resolved)
	}
}

func TestBatchReverseCacheInteraction(t *testing.T) {
	_, c := startGeocode(t, ServerOptions{})
	p := geo.Point{Lat: 37.517, Lon: 126.866}
	// Seed the cache with a single reverse, then batch over duplicates.
	if _, err := c.Reverse(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	locs, oks, err := c.BatchReverse(context.Background(), []geo.Point{p, p, p})
	if err != nil {
		t.Fatal(err)
	}
	for i := range locs {
		if !oks[i] || locs[i].County != "Yangcheon-gu" {
			t.Fatalf("cached batch entry %d = %+v ok=%v", i, locs[i], oks[i])
		}
	}
	st := c.Stats()
	if st.Hits < 3 {
		t.Fatalf("cache stats = %+v, wanted hits from batch", st)
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	srv, _ := startGeocode(t, ServerOptions{})
	// GET not allowed.
	resp, err := http.Get(srv.URL + "/v1/reverse_batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/reverse_batch", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(""); got != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", got)
	}
	if got := post("garbage"); got != http.StatusBadRequest {
		t.Fatalf("garbage status = %d", got)
	}
	if got := post("95,200"); got != http.StatusBadRequest {
		t.Fatalf("out-of-range status = %d", got)
	}
	var big strings.Builder
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&big, "37.5,127.0\n")
	}
	if got := post(strings.TrimSpace(big.String())); got != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d", got)
	}
}
