package geocode

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache from string keys to
// Location values. It exists because reverse-geocoding the same quantised
// coordinate repeatedly would burn the metered API budget: GPS tweets cluster
// in a few districts, so the hit rate is high.
type lruCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type lruEntry struct {
	key string
	val Location
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached location and whether it was present.
func (c *lruCache) Get(key string) (Location, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Location{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a location, evicting the least recently used entry when full.
func (c *lruCache) Put(key string, val Location) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
		}
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
