package geocode

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache from string keys to
// values of any type. It exists because reverse-geocoding the same quantised
// coordinate repeatedly would burn the metered API budget: GPS tweets cluster
// in a few districts, so the hit rate is high. The client caches Locations;
// the server memoises whole resolutions (location plus match quality).
type lruCache[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value and whether it was present.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores a value, evicting the least recently used entry when full.
func (c *lruCache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry[V]).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Evictions    int64
	Entries      int
}

func (c *lruCache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
