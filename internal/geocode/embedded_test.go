package geocode

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stir/internal/admin"
	"stir/internal/geo"
)

func koreaDirectAndEmbedded(t *testing.T, slackKm float64) (*DirectResolver, *EmbeddedResolver) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	direct := NewDirectResolver(func(p geo.Point, slack float64) (Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return Location{}, err
		}
		return Location{Country: d.Country, State: d.State, County: d.County}, nil
	}, slackKm, 65536)
	embedded, err := CompileEmbedded(gaz, slackKm)
	if err != nil {
		t.Fatal(err)
	}
	return direct, embedded
}

// TestEmbeddedResolverMatchesDirect pins the embedded resolver's contract:
// for any point, Reverse answers exactly what the DirectResolver (the
// R-tree walk the pipeline used before) answers — same Location, same
// ErrNoMatch — because both quantise identically and the grid is proven
// equivalent to ResolvePoint.
func TestEmbeddedResolverMatchesDirect(t *testing.T) {
	direct, embedded := koreaDirectAndEmbedded(t, 10)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	ext := embedded.Grid().Extent()
	dLat := ext.MaxLat - ext.MinLat
	dLon := ext.MaxLon - ext.MinLon
	probes := []geo.Point{
		{Lat: 37.5665, Lon: 126.9780}, // Seoul
		{Lat: 35.1796, Lon: 129.0756}, // Busan
		{Lat: 37.5, Lon: 131.9},       // open sea
		{Lat: 0, Lon: -150},           // far away
	}
	for i := 0; i < 3000; i++ {
		probes = append(probes, geo.Point{
			Lat: ext.MinLat - 0.05*dLat + rng.Float64()*1.1*dLat,
			Lon: ext.MinLon - 0.05*dLon + rng.Float64()*1.1*dLon,
		})
	}
	for _, p := range probes {
		dLoc, dErr := direct.Reverse(ctx, p)
		eLoc, eErr := embedded.Reverse(ctx, p)
		if (dErr == nil) != (eErr == nil) {
			t.Fatalf("point %v: direct err=%v, embedded err=%v", p, dErr, eErr)
		}
		if dErr != nil {
			if !errors.Is(eErr, ErrNoMatch) {
				t.Fatalf("point %v: embedded error %v is not ErrNoMatch", p, eErr)
			}
			continue
		}
		if dLoc != eLoc {
			t.Fatalf("point %v: direct=%+v embedded=%+v", p, dLoc, eLoc)
		}
	}
	st := embedded.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("embedded stats not counting: %+v", st)
	}
}

// TestServerFastMatchesExact pins the geocoded fast path: a Fast server and
// an exact server answer byte-identical XML (quality attribute included) on
// a sweep covering constant, single-check, boundary and no-match cells.
func TestServerFastMatchesExact(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	exact := httptest.NewServer(NewServer(gaz, ServerOptions{}))
	t.Cleanup(exact.Close)
	fast := httptest.NewServer(NewServer(gaz, ServerOptions{Fast: true}))
	t.Cleanup(fast.Close)

	fetch := func(base string, lat, lon float64) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/reverse?lat=%v&lon=%v", base, lat, lon))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	rng := rand.New(rand.NewSource(23))
	type probe struct{ lat, lon float64 }
	probes := []probe{
		{37.5665, 126.9780}, // Seoul (constant)
		{37.5, 131.9},       // open sea within extent margin
		{38.61, 128.36},     // coast north-east
	}
	for i := 0; i < 400; i++ {
		probes = append(probes, probe{33 + rng.Float64()*6.5, 124.5 + rng.Float64()*7})
	}
	// Seoul seam band: the densest boundary cells.
	for i := 0; i < 200; i++ {
		probes = append(probes, probe{37.4 + rng.Float64()*0.3, 126.8 + rng.Float64()*0.3})
	}
	for _, p := range probes {
		if e, f := fetch(exact.URL, p.lat, p.lon), fetch(fast.URL, p.lat, p.lon); e != f {
			t.Fatalf("point (%v, %v):\nexact: %s\nfast:  %s", p.lat, p.lon, e, f)
		}
	}
}

// TestBatchReverseDedupSendsUniquePoints is the satellite regression: a
// batch of quantised-identical points must reach the wire as a single line,
// and every original index still gets its answer.
func TestBatchReverseDedupSendsUniquePoints(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(gaz, ServerOptions{})
	var batchLines, batchCalls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/reverse_batch") {
			raw, err := io.ReadAll(r.Body)
			if err != nil {
				t.Errorf("read batch body: %v", err)
			}
			r.Body = io.NopCloser(bytes.NewReader(raw))
			batchCalls++
			batchLines += len(strings.Split(strings.TrimSpace(string(raw)), "\n"))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, 1024)

	// 64 copies of one Seoul coordinate with jitter below the quantisation
	// step, plus one distinct Busan point and one no-match point.
	pts := make([]geo.Point, 0, 66)
	for i := 0; i < 64; i++ {
		pts = append(pts, geo.Point{Lat: 37.5665 + float64(i)*1e-6, Lon: 126.9780})
	}
	pts = append(pts, geo.Point{Lat: 35.1796, Lon: 129.0756})
	pts = append(pts, geo.Point{Lat: 37.5, Lon: 131.9}) // open sea: no match
	locs, oks, err := c.BatchReverse(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if batchCalls != 1 {
		t.Fatalf("batch calls = %d, want 1", batchCalls)
	}
	if batchLines != 3 {
		t.Fatalf("server saw %d batch lines, want 3 (64 duplicates deduplicated)", batchLines)
	}
	for i := 0; i < 64; i++ {
		if !oks[i] || locs[i].County != locs[0].County || locs[i] != locs[0] {
			t.Fatalf("duplicate %d: ok=%v loc=%+v, want the shared Seoul answer", i, oks[i], locs[i])
		}
	}
	if !oks[64] || locs[64].State == locs[0].State {
		t.Fatalf("distinct point: ok=%v loc=%+v", oks[64], locs[64])
	}
	if oks[65] {
		t.Fatalf("sea point resolved: %+v", locs[65])
	}

	// A second identical batch must be served entirely from the cache.
	calls := batchCalls
	if _, _, err := c.BatchReverse(context.Background(), pts[:64]); err != nil {
		t.Fatal(err)
	}
	if batchCalls != calls {
		t.Fatalf("cached batch still hit the wire (%d calls)", batchCalls)
	}
}
