package geocode

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/geofast"
	"stir/internal/obs"
	"stir/internal/ratelimit"
)

// Server answers reverse-geocoding queries over HTTP:
//
//	GET /v1/reverse?lat=37.517&lon=126.866
//
// responding with a ResultSet XML document. Resolutions are memoised in an
// LRU keyed on the exact coordinates, so hot districts cost one gazetteer
// walk; request counts, latencies and throttle rejections are published on
// the configured metrics registry.
type Server struct {
	gaz     *admin.Gazetteer
	limiter *ratelimit.Limiter
	slackKm float64
	mux     *http.ServeMux
	handler http.Handler
	memo    *lruCache[resolution]
	grid    *geofast.Grid
}

// resolution is one memoised gazetteer answer.
type resolution struct {
	loc     Location
	quality string
	found   bool
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Limit is the fixed-window request budget (0 disables limiting).
	Limit int
	// Window is the limit window (default one hour, like metered geo APIs).
	Window time.Duration
	// SlackKm is how far outside every district extent a point may fall and
	// still resolve to the nearest district (default 10 km; negative
	// disables nearest-match fallback).
	SlackKm float64
	// CacheSize bounds the resolution memo (default 65536; negative
	// disables memoisation).
	CacheSize int
	// Metrics receives the server's request/cache series (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry
	// Fast compiles the gazetteer into a geofast cell grid at startup so
	// most points resolve without a gazetteer walk or memo probe. Results
	// are identical either way; boundary cells still take the exact path.
	Fast bool
}

// NewServer builds a reverse-geocoding server over the gazetteer.
func NewServer(gaz *admin.Gazetteer, opts ServerOptions) *Server {
	if opts.Window <= 0 {
		opts.Window = time.Hour
	}
	if opts.SlackKm == 0 {
		opts.SlackKm = 10
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 65536
	}
	s := &Server{
		gaz:     gaz,
		limiter: ratelimit.New(opts.Limit, opts.Window),
		slackKm: opts.SlackKm,
		mux:     http.NewServeMux(),
	}
	if opts.CacheSize > 0 {
		s.memo = newLRUCache[resolution](opts.CacheSize)
	}
	s.mux.HandleFunc("/v1/reverse", s.handleReverse)
	s.mux.HandleFunc("/v1/reverse_batch", s.handleReverseBatch)
	reg := obs.Or(opts.Metrics)
	s.handler = obs.InstrumentHandler(reg, "geocoded", s.route, s.mux)
	RegisterCacheMetrics(reg, "geocoded", s)
	if opts.Fast {
		// Grid compilation is best-effort: on a gazetteer the grid cannot
		// encode (e.g. >65534 districts) the server just keeps the exact
		// memoised path.
		if grid, err := geofast.Compile(gaz, geofast.Options{SlackKm: s.slackKm}); err == nil {
			s.grid = grid
			geofast.RegisterMetrics(reg, "geocoded", grid)
		}
	}
	return s
}

// route keeps the middleware's route label bounded to registered patterns.
func (s *Server) route(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// Stats implements StatsProvider over the server's resolution memo.
func (s *Server) Stats() CacheStats {
	if s.memo == nil {
		return CacheStats{}
	}
	return s.memo.Stats()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeXML(w http.ResponseWriter, status int, rs *ResultSet) {
	b, err := rs.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	w.Write(b)
}

// allow consumes one rate-limit token, writing the budget headers; on
// exhaustion it answers the 429 itself (with Retry-After) and returns false.
func (s *Server) allow(w http.ResponseWriter) bool {
	st, ok := s.limiter.Allow()
	st.SetHeaders(w.Header())
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(st.RetryAfterSeconds(time.Now())))
		writeXML(w, http.StatusTooManyRequests, &ResultSet{Error: CodeThrottled, Message: "rate limit exceeded"})
	}
	return ok
}

// resolve answers one point: the compiled grid first when present (constant
// and no-match cells skip both the memo and the gazetteer), then the memo,
// then the exact gazetteer walk.
func (s *Server) resolve(p geo.Point) resolution {
	if s.grid != nil {
		switch d, v := s.grid.Lookup(p.Lat, p.Lon); v {
		case geofast.Constant:
			// The point is proven to resolve by containment, so the
			// slack-free phase-1 walk would return d: quality "exact".
			return resolution{
				loc:     Location{Country: d.Country, State: d.State, County: d.County},
				quality: "exact",
				found:   true,
			}
		case geofast.Nearest:
			// Proven to miss phase 1 and win the slack fallback on d.
			return resolution{
				loc:     Location{Country: d.Country, State: d.State, County: d.County},
				quality: "nearest",
				found:   true,
			}
		case geofast.NoMatch:
			return resolution{quality: "none"}
		}
		// Boundary: fall through to the exact memoised path.
	}
	key := p.String()
	if s.memo != nil {
		if res, ok := s.memo.Get(key); ok {
			return res
		}
	}
	res := resolution{quality: "none"}
	d, err := s.gaz.ResolvePoint(p, -1)
	if err == nil {
		res.quality = "exact"
	} else if s.slackKm >= 0 {
		if d, err = s.gaz.ResolvePoint(p, s.slackKm); err == nil {
			res.quality = "nearest"
		}
	}
	if err == nil && d != nil {
		res.found = true
		res.loc = Location{Country: d.Country, State: d.State, County: d.County}
	}
	if s.memo != nil {
		s.memo.Put(key, res)
	}
	return res
}

func (s *Server) handleReverse(w http.ResponseWriter, r *http.Request) {
	if !s.allow(w) {
		return
	}
	lat, err1 := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(r.URL.Query().Get("lon"), 64)
	if err1 != nil || err2 != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "lat and lon are required decimal degrees"})
		return
	}
	p, err := geo.NewPoint(lat, lon)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: err.Error()})
		return
	}
	res := s.resolve(p)
	if !res.found {
		writeXML(w, http.StatusNotFound, &ResultSet{Error: CodeNoMatch, Message: "no district near point"})
		return
	}
	writeXML(w, http.StatusOK, &ResultSet{
		Error:   CodeOK,
		Results: []Result{{Quality: res.quality, Location: res.loc}},
	})
}

// maxBatchPoints bounds one reverse_batch request, like real metered APIs.
const maxBatchPoints = 100

// handleReverseBatch resolves up to 100 newline-separated "lat,lon" pairs
// from a POST body in one rate-limit token. The response ResultSet carries
// one Result per input line, in order; unresolvable points yield a Result
// with empty location and quality "none".
func (s *Server) handleReverseBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeXML(w, http.StatusMethodNotAllowed, &ResultSet{Error: CodeBadRequest, Message: "POST required"})
		return
	}
	if !s.allow(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "unreadable body"})
		return
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 1 && lines[0] == "" {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "empty batch"})
		return
	}
	if len(lines) > maxBatchPoints {
		writeXML(w, http.StatusBadRequest, &ResultSet{
			Error:   CodeBadRequest,
			Message: fmt.Sprintf("batch too large: %d > %d points", len(lines), maxBatchPoints),
		})
		return
	}
	rs := &ResultSet{Error: CodeOK}
	for _, line := range lines {
		parts := strings.SplitN(strings.TrimSpace(line), ",", 2)
		if len(parts) != 2 {
			writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "lines must be lat,lon"})
			return
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		p, err3 := geo.NewPoint(lat, lon)
		if err1 != nil || err2 != nil || err3 != nil {
			writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "invalid coordinates in batch"})
			return
		}
		res := s.resolve(p)
		out := Result{Quality: res.quality}
		if res.found {
			out.Location = res.loc
		}
		rs.Results = append(rs.Results, out)
	}
	writeXML(w, http.StatusOK, rs)
}
