package geocode

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/ratelimit"
)

// Server answers reverse-geocoding queries over HTTP:
//
//	GET /v1/reverse?lat=37.517&lon=126.866
//
// responding with a ResultSet XML document.
type Server struct {
	gaz     *admin.Gazetteer
	limiter *ratelimit.Limiter
	slackKm float64
	mux     *http.ServeMux
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Limit is the fixed-window request budget (0 disables limiting).
	Limit int
	// Window is the limit window (default one hour, like metered geo APIs).
	Window time.Duration
	// SlackKm is how far outside every district extent a point may fall and
	// still resolve to the nearest district (default 10 km; negative
	// disables nearest-match fallback).
	SlackKm float64
}

// NewServer builds a reverse-geocoding server over the gazetteer.
func NewServer(gaz *admin.Gazetteer, opts ServerOptions) *Server {
	if opts.Window <= 0 {
		opts.Window = time.Hour
	}
	if opts.SlackKm == 0 {
		opts.SlackKm = 10
	}
	s := &Server{
		gaz:     gaz,
		limiter: ratelimit.New(opts.Limit, opts.Window),
		slackKm: opts.SlackKm,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/reverse", s.handleReverse)
	s.mux.HandleFunc("/v1/reverse_batch", s.handleReverseBatch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeXML(w http.ResponseWriter, status int, rs *ResultSet) {
	b, err := rs.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	w.Write(b)
}

func (s *Server) handleReverse(w http.ResponseWriter, r *http.Request) {
	st, ok := s.limiter.Allow()
	if st.Limit > 0 {
		w.Header().Set("X-RateLimit-Limit", strconv.Itoa(st.Limit))
		w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(st.Remaining))
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(st.ResetAt.Unix(), 10))
	}
	if !ok {
		writeXML(w, http.StatusTooManyRequests, &ResultSet{Error: CodeThrottled, Message: "rate limit exceeded"})
		return
	}
	lat, err1 := strconv.ParseFloat(r.URL.Query().Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(r.URL.Query().Get("lon"), 64)
	if err1 != nil || err2 != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "lat and lon are required decimal degrees"})
		return
	}
	p, err := geo.NewPoint(lat, lon)
	if err != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: err.Error()})
		return
	}
	// Exact containment first; optionally fall back to nearest-with-slack.
	quality := "exact"
	d, err := s.gaz.ResolvePoint(p, -1)
	if err != nil && s.slackKm >= 0 {
		quality = "nearest"
		d, err = s.gaz.ResolvePoint(p, s.slackKm)
	}
	if err != nil {
		writeXML(w, http.StatusNotFound, &ResultSet{Error: CodeNoMatch, Message: "no district near point"})
		return
	}
	writeXML(w, http.StatusOK, &ResultSet{
		Error: CodeOK,
		Results: []Result{{
			Quality: quality,
			Location: Location{
				Country: d.Country,
				State:   d.State,
				County:  d.County,
			},
		}},
	})
}

// maxBatchPoints bounds one reverse_batch request, like real metered APIs.
const maxBatchPoints = 100

// handleReverseBatch resolves up to 100 newline-separated "lat,lon" pairs
// from a POST body in one rate-limit token. The response ResultSet carries
// one Result per input line, in order; unresolvable points yield a Result
// with empty location and quality "none".
func (s *Server) handleReverseBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeXML(w, http.StatusMethodNotAllowed, &ResultSet{Error: CodeBadRequest, Message: "POST required"})
		return
	}
	st, ok := s.limiter.Allow()
	if st.Limit > 0 {
		w.Header().Set("X-RateLimit-Limit", strconv.Itoa(st.Limit))
		w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(st.Remaining))
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(st.ResetAt.Unix(), 10))
	}
	if !ok {
		writeXML(w, http.StatusTooManyRequests, &ResultSet{Error: CodeThrottled, Message: "rate limit exceeded"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "unreadable body"})
		return
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 1 && lines[0] == "" {
		writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "empty batch"})
		return
	}
	if len(lines) > maxBatchPoints {
		writeXML(w, http.StatusBadRequest, &ResultSet{
			Error:   CodeBadRequest,
			Message: fmt.Sprintf("batch too large: %d > %d points", len(lines), maxBatchPoints),
		})
		return
	}
	rs := &ResultSet{Error: CodeOK}
	for _, line := range lines {
		parts := strings.SplitN(strings.TrimSpace(line), ",", 2)
		if len(parts) != 2 {
			writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "lines must be lat,lon"})
			return
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		p, err3 := geo.NewPoint(lat, lon)
		if err1 != nil || err2 != nil || err3 != nil {
			writeXML(w, http.StatusBadRequest, &ResultSet{Error: CodeBadRequest, Message: "invalid coordinates in batch"})
			return
		}
		res := Result{Quality: "none"}
		d, err := s.gaz.ResolvePoint(p, -1)
		if err == nil {
			res.Quality = "exact"
		} else if s.slackKm >= 0 {
			if d, err = s.gaz.ResolvePoint(p, s.slackKm); err == nil {
				res.Quality = "nearest"
			}
		}
		if d != nil && res.Quality != "none" {
			res.Location = Location{Country: d.Country, State: d.State, County: d.County}
		}
		rs.Results = append(rs.Results, res)
	}
	writeXML(w, http.StatusOK, rs)
}
