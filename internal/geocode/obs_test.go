package geocode

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/obs"
)

// TestStatsProviderUnified locks in the satellite requirement: every
// cache-bearing geocode component answers Stats() with the one CacheStats
// shape, through the one StatsProvider interface.
func TestStatsProviderUnified(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	fn := func(p geo.Point, slack float64) (Location, error) {
		d, err := gaz.ResolvePoint(p, slack)
		if err != nil {
			return Location{}, err
		}
		return Location{Country: d.Country, State: d.State, County: d.County}, nil
	}
	dr := NewDirectResolver(fn, 10, 8)
	seoul := geo.Point{Lat: 37.5665, Lon: 126.978}
	ctx := context.Background()
	if _, err := dr.Reverse(ctx, seoul); err != nil {
		t.Fatal(err)
	}
	if _, err := dr.Reverse(ctx, seoul); err != nil {
		t.Fatal(err)
	}

	providers := map[string]StatsProvider{
		"direct": dr,
		"client": NewClient("http://invalid", 4),
		"server": NewServer(gaz, ServerOptions{Metrics: obs.Discard}),
	}
	for name, p := range providers {
		st := p.Stats() // same shape for all three
		if st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 || st.Entries < 0 {
			t.Errorf("%s: negative stats %+v", name, st)
		}
	}
	if st := dr.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("direct resolver stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	c := newLRUCache[Location](2)
	c.Put("a", Location{})
	c.Put("b", Location{})
	c.Put("c", Location{}) // evicts a
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestRegisterCacheMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := newLRUCache[Location](4)
	c.Put("k", Location{})
	c.Get("k")
	c.Get("missing")
	RegisterCacheMetrics(reg, "test", statsFunc(c.Stats))

	snap := reg.Snapshot()
	want := map[string]float64{
		"geocode_cache_hits":    1,
		"geocode_cache_misses":  1,
		"geocode_cache_entries": 1,
	}
	for name, v := range want {
		m, ok := snap.Get(name, "cache", "test")
		if !ok || m.Value != v {
			t.Errorf("%s = %+v ok=%v, want %v", name, m, ok, v)
		}
	}
}

// statsFunc adapts a plain func to StatsProvider for tests.
type statsFunc func() CacheStats

func (f statsFunc) Stats() CacheStats { return f() }

// TestServerMemoAndMetrics drives the server over HTTP and checks that the
// resolution memo serves repeats, the /metrics-bound registry sees request
// counters, and a 429 carries the full rate-limit header set.
func TestServerMemoAndMetrics(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := NewServer(gaz, ServerOptions{Limit: 3, Metrics: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func() *http.Response {
		resp, err := http.Get(ts.URL + "/v1/reverse?lat=37.5665&lon=126.9780")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	get()
	get()
	if st := srv.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("memo stats = %+v, want 1 hit / 1 miss", st)
	}

	resp := get() // third request exhausts the 3-token budget below
	_ = resp
	resp = get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	for _, h := range []string{"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset", "Retry-After"} {
		if resp.Header.Get(h) == "" {
			t.Errorf("429 missing %s header", h)
		}
	}
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Errorf("X-RateLimit-Remaining = %q, want 0", got)
	}

	snap := reg.Snapshot()
	if m, ok := snap.Get(obs.HTTPRequestsMetric, "service", "geocoded", "route", "/v1/reverse", "class", "2xx"); !ok || m.Value != 3 {
		t.Errorf("request counter = %+v ok=%v, want 3", m, ok)
	}
	if m, ok := snap.Get(obs.HTTPRateLimitedMetric, "service", "geocoded", "route", "/v1/reverse"); !ok || m.Value != 1 {
		t.Errorf("ratelimited counter = %+v ok=%v, want 1", m, ok)
	}
	if m, ok := snap.Get("geocode_cache_hits", "cache", "geocoded"); !ok || m.Value != 2 {
		t.Errorf("cache hits gauge = %+v ok=%v, want 2", m, ok)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `geocode_cache_hits{cache="geocoded"} 2`) {
		t.Fatalf("prometheus exposition missing cache gauge:\n%s", b.String())
	}
}
