package admin

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"stir/internal/geo"
)

func mustKorea(t *testing.T) *Gazetteer {
	t.Helper()
	g, err := NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKoreaGazetteerShape(t *testing.T) {
	g := mustKorea(t)
	states := g.States()
	if len(states) != 17 {
		t.Fatalf("got %d states, want 17 first-level divisions: %v", len(states), states)
	}
	if n := len(g.Counties("Seoul")); n != 25 {
		t.Fatalf("Seoul has %d gu, want 25", n)
	}
	if n := len(g.Counties("Busan")); n != 16 {
		t.Fatalf("Busan has %d districts, want 16", n)
	}
	if g.Len() < 150 {
		t.Fatalf("only %d districts total, want at least 150", g.Len())
	}
}

func TestDistrictIDUnique(t *testing.T) {
	g := mustKorea(t)
	seen := map[string]bool{}
	for _, d := range g.Districts() {
		if seen[d.ID()] {
			t.Fatalf("duplicate district id %s", d.ID())
		}
		seen[d.ID()] = true
	}
}

func TestDuplicateDistrictRejected(t *testing.T) {
	d := &District{Country: "KR", State: "Seoul", County: "Jongno-gu", Center: geo.Point{Lat: 37.57, Lon: 126.98}, RadiusKm: 4}
	if _, err := NewGazetteer([]*District{d, d}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	bad := &District{Country: "KR", State: "X", County: "Y", RadiusKm: 0}
	if _, err := NewGazetteer([]*District{bad}); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestResolvePointAtCenters(t *testing.T) {
	g := mustKorea(t)
	for _, d := range g.Districts() {
		got, err := g.ResolvePoint(d.Center, 0)
		if err != nil {
			t.Fatalf("ResolvePoint(%s center): %v", d.ID(), err)
		}
		// Overlapping approximations may pick a neighbour, but only if its
		// centre is genuinely closer, which cannot happen at d's own centre
		// unless two centres coincide.
		if got.ID() != d.ID() && got.Center.DistanceKm(d.Center) > 0.01 {
			t.Errorf("centre of %s resolved to %s", d.ID(), got.ID())
		}
	}
}

func TestResolvePointKnownPlaces(t *testing.T) {
	g := mustKorea(t)
	cases := []struct {
		name  string
		p     geo.Point
		state string
	}{
		{"gangnam station area", geo.Point{Lat: 37.498, Lon: 127.028}, "Seoul"},
		{"haeundae beach", geo.Point{Lat: 35.159, Lon: 129.160}, "Busan"},
		{"jeju city", geo.Point{Lat: 33.50, Lon: 126.52}, "Jeju"},
		{"suwon", geo.Point{Lat: 37.27, Lon: 127.01}, "Gyeonggi-do"},
	}
	for _, tc := range cases {
		d, err := g.ResolvePoint(tc.p, 5)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if d.State != tc.state {
			t.Errorf("%s: resolved to %s, want state %s", tc.name, d.ID(), tc.state)
		}
	}
}

func TestResolvePointMissAndSlack(t *testing.T) {
	g := mustKorea(t)
	middleOfEastSea := geo.Point{Lat: 37.5, Lon: 131.5}
	if _, err := g.ResolvePoint(middleOfEastSea, -1); err == nil {
		t.Fatal("open-sea point resolved with no slack")
	}
	if _, err := g.ResolvePoint(geo.Point{Lat: 91, Lon: 0}, 5); err == nil {
		t.Fatal("invalid point accepted")
	}
	// A point just outside a rural district should resolve with slack.
	d, err := g.ByID("KR/Jeju/Jeju-si")
	if err != nil {
		t.Fatal(err)
	}
	edge := d.Center.Destination(0, d.RadiusKm+3)
	if _, err := g.ResolvePoint(edge, 10); err != nil {
		t.Fatalf("edge point with slack: %v", err)
	}
}

func TestResolveNameExactAndAliases(t *testing.T) {
	g := mustKorea(t)
	cases := []struct {
		in    string
		state string
	}{
		{"Yangcheon-gu", "Seoul"},
		{"yangcheon gu", "Seoul"},
		{"Yangchun-gu", "Seoul"}, // the paper's own romanisation
		{"양천구", "Seoul"},
		{"  GANGNAM-GU ", "Seoul"},
		{"Uiwang-si", "Gyeonggi-do"},
		{"uiwang", "Gyeonggi-do"},
		{"Haeundae", "Busan"},
		{"bundang", "Gyeonggi-do"},
	}
	for _, tc := range cases {
		ds := g.ResolveName(tc.in)
		if len(ds) == 0 {
			t.Errorf("ResolveName(%q) found nothing", tc.in)
			continue
		}
		found := false
		for _, d := range ds {
			if d.State == tc.state {
				found = true
			}
		}
		if !found {
			t.Errorf("ResolveName(%q) = %v, want state %s", tc.in, ds[0].ID(), tc.state)
		}
	}
	if ds := g.ResolveName("darangland :)"); ds != nil {
		t.Errorf("meaningless name resolved to %v", ds)
	}
}

func TestResolveNameAmbiguous(t *testing.T) {
	g := mustKorea(t)
	// Jung-gu exists in Seoul, Busan, Incheon, Daegu, Daejeon, Ulsan.
	ds := g.ResolveName("Jung-gu")
	if len(ds) < 5 {
		t.Fatalf("Jung-gu should be ambiguous across metros, got %d", len(ds))
	}
	narrowed := g.ResolveNameInState("Jung-gu", "Busan")
	if len(narrowed) != 1 || narrowed[0].State != "Busan" {
		t.Fatalf("ResolveNameInState = %v", narrowed)
	}
}

func TestIsState(t *testing.T) {
	g := mustKorea(t)
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"Seoul", "Seoul", true},
		{"서울", "Seoul", true},
		{"gyeonggi", "Gyeonggi-do", true},
		{"Gyeonggi-do", "Gyeonggi-do", true},
		{"경기도", "Gyeonggi-do", true},
		{"jeju island", "Jeju", true},
		{"Yangcheon-gu", "", false},
		{"Earth", "", false},
	}
	for _, tc := range cases {
		got, ok := g.IsState(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("IsState(%q) = %q,%v want %q,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestWorldGazetteerIncludesKorea(t *testing.T) {
	g, err := NewWorldGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() <= 150 {
		t.Fatalf("world gazetteer too small: %d", g.Len())
	}
	if ds := g.ResolveName("gold coast australia"); len(ds) == 0 {
		t.Error("Gold Coast alias missing")
	}
	if ds := g.ResolveName("Yangcheon-gu"); len(ds) == 0 {
		t.Error("Korean districts missing from world gazetteer")
	}
	d, err := g.ResolvePoint(geo.Point{Lat: 40.71, Lon: -74.0}, 5)
	if err != nil || d.County != "New York City" {
		t.Errorf("NYC point resolved to %v, err %v", d, err)
	}
}

// Property: any point sampled inside a district's radius resolves to a
// district whose centre is at most as far as the sampled district's centre.
func TestResolvePointNearestProperty(t *testing.T) {
	g := mustKorea(t)
	districts := g.Districts()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := districts[r.Intn(len(districts))]
		p := d.Center.Destination(r.Float64()*360, r.Float64()*d.RadiusKm*0.9)
		got, err := g.ResolvePoint(p, 0)
		if err != nil {
			return false
		}
		return got.Center.DistanceKm(p) <= d.Center.DistanceKm(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  Seoul ", "seoul"},
		{"Seoul,  Korea", "seoul korea"},
		{"GOLD COAST. Australia", "gold coast australia"},
		{"a_b", "a b"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := NormalizeName(tc.in); got != tc.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKeyAndID(t *testing.T) {
	d := &District{Country: "KR", State: "Seoul", County: "Yangcheon-gu"}
	if d.Key() != "Seoul#Yangcheon-gu" {
		t.Fatalf("Key = %q", d.Key())
	}
	if d.ID() != "KR/Seoul/Yangcheon-gu" {
		t.Fatalf("ID = %q", d.ID())
	}
}

func TestRandomWeightsPositive(t *testing.T) {
	g := mustKorea(t)
	ds, ws := g.RandomWeights()
	if len(ds) != len(ws) {
		t.Fatal("length mismatch")
	}
	for i, w := range ws {
		if w <= 0 {
			t.Fatalf("district %s has non-positive weight", ds[i].ID())
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	g := mustKorea(t)
	if _, err := g.ByID("KR/Nowhere/None"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestStateCountyNameCompound(t *testing.T) {
	g := mustKorea(t)
	ds := g.ResolveName("Seoul Yangcheon-gu")
	if len(ds) != 1 || !strings.Contains(ds[0].ID(), "Yangcheon") {
		t.Fatalf("compound name resolution = %v", ds)
	}
}

func TestNearestDistricts(t *testing.T) {
	g := mustKorea(t)
	seoulCityHall := geo.Point{Lat: 37.5665, Lon: 126.9780}
	near := g.NearestDistricts(seoulCityHall, 5)
	if len(near) != 5 {
		t.Fatalf("got %d districts", len(near))
	}
	// All five should be Seoul gu, ordered by distance.
	prev := -1.0
	for _, d := range near {
		if d.State != "Seoul" {
			t.Errorf("non-Seoul district %s near city hall", d.ID())
		}
		dist := d.Center.DistanceKm(seoulCityHall)
		if dist < prev {
			t.Fatal("not ordered by distance")
		}
		prev = dist
	}
	if g.NearestDistricts(seoulCityHall, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestNeighborsOf(t *testing.T) {
	g := mustKorea(t)
	d, err := g.ByID("KR/Seoul/Jongno-gu")
	if err != nil {
		t.Fatal(err)
	}
	ns := g.NeighborsOf(d, 4)
	if len(ns) != 4 {
		t.Fatalf("neighbours = %d", len(ns))
	}
	for _, n := range ns {
		if n == d {
			t.Fatal("district is its own neighbour")
		}
		if n.Center.DistanceKm(d.Center) > 15 {
			t.Errorf("neighbour %s is %0.f km away", n.ID(), n.Center.DistanceKm(d.Center))
		}
	}
}
