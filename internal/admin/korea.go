package admin

import "stir/internal/geo"

// Korean administrative hierarchy: 17 first-level divisions (states) and
// their si/gu/gun (counties). Centres and radii are approximate but real;
// populations are rough 2011-era figures in thousands, used only as
// sampling weights by the synthetic population generator.

type countyRow struct {
	name     string
	lat, lon float64
	radiusKm float64
	popK     int
	aliases  []string
}

type stateRow struct {
	name     string
	metro    bool
	aliases  []string
	counties []countyRow
}

var koreaStates = []stateRow{
	{
		name: "Seoul", metro: true,
		aliases: []string{"서울", "서울시", "서울특별시", "seoul city", "seoul korea"},
		counties: []countyRow{
			{"Jongno-gu", 37.573, 126.979, 4.0, 166, nil},
			{"Jung-gu", 37.564, 126.998, 3.0, 127, nil},
			{"Yongsan-gu", 37.532, 126.990, 3.5, 237, []string{"용산구"}},
			{"Seongdong-gu", 37.563, 127.037, 3.5, 296, nil},
			{"Gwangjin-gu", 37.538, 127.082, 3.5, 364, nil},
			{"Dongdaemun-gu", 37.574, 127.040, 3.5, 353, nil},
			{"Jungnang-gu", 37.606, 127.093, 3.5, 413, nil},
			{"Seongbuk-gu", 37.589, 127.017, 3.8, 475, nil},
			{"Gangbuk-gu", 37.640, 127.026, 3.5, 334, nil},
			{"Dobong-gu", 37.669, 127.047, 3.5, 356, nil},
			{"Nowon-gu", 37.654, 127.056, 4.0, 597, []string{"노원구"}},
			{"Eunpyeong-gu", 37.603, 126.929, 4.0, 489, nil},
			{"Seodaemun-gu", 37.579, 126.937, 3.5, 310, []string{"서대문구", "seodaemun"}},
			{"Mapo-gu", 37.566, 126.902, 4.0, 380, []string{"마포구", "hongdae"}},
			{"Yangcheon-gu", 37.517, 126.866, 3.5, 477, []string{"양천구", "yangchun-gu", "yangchun"}},
			{"Gangseo-gu", 37.551, 126.850, 4.5, 567, nil},
			{"Guro-gu", 37.495, 126.888, 3.8, 421, nil},
			{"Geumcheon-gu", 37.457, 126.895, 3.0, 234, nil},
			{"Yeongdeungpo-gu", 37.526, 126.896, 3.8, 397, []string{"영등포구", "yeouido"}},
			{"Dongjak-gu", 37.512, 126.940, 3.5, 393, nil},
			{"Gwanak-gu", 37.478, 126.952, 4.0, 522, []string{"관악구"}},
			{"Seocho-gu", 37.484, 127.033, 4.5, 422, []string{"서초구"}},
			{"Gangnam-gu", 37.517, 127.047, 4.5, 527, []string{"강남구", "gangnam style town"}},
			{"Songpa-gu", 37.515, 127.106, 4.0, 647, []string{"송파구", "jamsil"}},
			{"Gangdong-gu", 37.530, 127.124, 3.8, 456, nil},
		},
	},
	{
		name: "Busan", metro: true,
		aliases: []string{"부산", "부산시", "부산광역시", "pusan", "busan city"},
		counties: []countyRow{
			{"Jung-gu", 35.106, 129.032, 2.0, 45, nil},
			{"Seo-gu", 35.098, 129.024, 3.0, 115, nil},
			{"Dong-gu", 35.129, 129.045, 2.5, 94, nil},
			{"Yeongdo-gu", 35.091, 129.068, 3.5, 135, nil},
			{"Busanjin-gu", 35.163, 129.053, 4.0, 378, []string{"seomyeon"}},
			{"Dongnae-gu", 35.205, 129.084, 3.5, 270, nil},
			{"Nam-gu", 35.136, 129.084, 3.5, 291, nil},
			{"Buk-gu", 35.197, 128.990, 4.0, 300, nil},
			{"Haeundae-gu", 35.163, 129.164, 4.5, 423, []string{"해운대", "haeundae"}},
			{"Saha-gu", 35.104, 128.975, 4.0, 339, nil},
			{"Geumjeong-gu", 35.243, 129.092, 4.5, 245, nil},
			{"Gangseo-gu", 35.212, 128.981, 6.0, 65, nil},
			{"Yeonje-gu", 35.176, 129.080, 2.5, 211, nil},
			{"Suyeong-gu", 35.146, 129.113, 2.5, 176, []string{"gwangalli"}},
			{"Sasang-gu", 35.152, 128.991, 3.5, 244, nil},
			{"Gijang-gun", 35.245, 129.222, 7.0, 110, nil},
		},
	},
	{
		name: "Incheon", metro: true,
		aliases: []string{"인천", "인천광역시", "incheon city"},
		counties: []countyRow{
			{"Jung-gu", 37.474, 126.621, 4.0, 98, []string{"incheon airport"}},
			{"Dong-gu", 37.474, 126.643, 2.0, 75, nil},
			{"Michuhol-gu", 37.464, 126.650, 3.5, 414, []string{"nam-gu incheon"}},
			{"Yeonsu-gu", 37.410, 126.678, 4.0, 288, []string{"songdo"}},
			{"Namdong-gu", 37.447, 126.731, 4.5, 497, nil},
			{"Bupyeong-gu", 37.507, 126.722, 3.8, 560, []string{"부평"}},
			{"Gyeyang-gu", 37.538, 126.738, 4.0, 345, nil},
			{"Seo-gu", 37.546, 126.676, 5.0, 480, nil},
			{"Ganghwa-gun", 37.747, 126.488, 10.0, 68, nil},
			{"Ongjin-gun", 37.300, 126.300, 12.0, 21, nil},
		},
	},
	{
		name: "Daegu", metro: true,
		aliases: []string{"대구", "대구광역시", "daegu city", "taegu"},
		counties: []countyRow{
			{"Jung-gu", 35.869, 128.606, 2.5, 79, nil},
			{"Dong-gu", 35.887, 128.636, 5.0, 345, nil},
			{"Seo-gu", 35.872, 128.559, 3.0, 230, nil},
			{"Nam-gu", 35.846, 128.597, 2.8, 172, nil},
			{"Buk-gu", 35.886, 128.583, 4.5, 444, nil},
			{"Suseong-gu", 35.858, 128.631, 4.5, 455, nil},
			{"Dalseo-gu", 35.830, 128.533, 5.0, 606, nil},
			{"Dalseong-gun", 35.775, 128.431, 9.0, 178, nil},
		},
	},
	{
		name: "Daejeon", metro: true,
		aliases: []string{"대전", "대전광역시", "daejeon city"},
		counties: []countyRow{
			{"Dong-gu", 36.312, 127.455, 4.5, 247, nil},
			{"Jung-gu", 36.326, 127.421, 4.0, 262, nil},
			{"Seo-gu", 36.356, 127.384, 4.5, 500, nil},
			{"Yuseong-gu", 36.362, 127.356, 6.0, 297, []string{"kaist"}},
			{"Daedeok-gu", 36.347, 127.416, 4.0, 210, nil},
		},
	},
	{
		name: "Gwangju", metro: true,
		aliases: []string{"광주", "광주광역시", "gwangju city", "kwangju"},
		counties: []countyRow{
			{"Dong-gu", 35.146, 126.923, 3.5, 103, nil},
			{"Seo-gu", 35.152, 126.890, 3.5, 305, nil},
			{"Nam-gu", 35.133, 126.902, 3.5, 219, nil},
			{"Buk-gu", 35.174, 126.912, 5.0, 450, nil},
			{"Gwangsan-gu", 35.140, 126.794, 6.0, 368, nil},
		},
	},
	{
		name: "Ulsan", metro: true,
		aliases: []string{"울산", "울산광역시", "ulsan city"},
		counties: []countyRow{
			{"Jung-gu", 35.569, 129.333, 3.5, 235, nil},
			{"Nam-gu", 35.544, 129.330, 4.0, 340, nil},
			{"Dong-gu", 35.505, 129.417, 3.5, 178, nil},
			{"Buk-gu", 35.583, 129.361, 4.5, 170, nil},
			{"Ulju-gun", 35.522, 129.243, 10.0, 200, nil},
		},
	},
	{
		name:    "Sejong",
		aliases: []string{"세종", "세종특별자치시", "sejong city"},
		counties: []countyRow{
			{"Sejong-si", 36.480, 127.289, 9.0, 100, nil},
		},
	},
	{
		name:    "Gyeonggi-do",
		aliases: []string{"경기", "경기도", "gyeonggi", "kyonggi", "kyeonggi-do"},
		counties: []countyRow{
			{"Suwon-si", 37.264, 127.029, 6.0, 1100, []string{"수원", "suwon"}},
			{"Seongnam-si", 37.420, 127.127, 5.5, 980, []string{"성남", "bundang"}},
			{"Goyang-si", 37.658, 126.832, 6.0, 960, []string{"고양", "ilsan"}},
			{"Yongin-si", 37.241, 127.178, 8.0, 880, []string{"용인"}},
			{"Bucheon-si", 37.503, 126.766, 4.0, 870, []string{"부천", "bucheon"}},
			{"Ansan-si", 37.322, 126.831, 5.5, 715, []string{"안산"}},
			{"Anyang-si", 37.394, 126.957, 4.0, 620, []string{"안양"}},
			{"Namyangju-si", 37.636, 127.216, 7.0, 590, nil},
			{"Hwaseong-si", 37.199, 126.831, 9.0, 510, []string{"dongtan"}},
			{"Pyeongtaek-si", 36.992, 127.113, 7.0, 430, nil},
			{"Uijeongbu-si", 37.738, 127.034, 4.0, 430, nil},
			{"Siheung-si", 37.380, 126.803, 5.0, 410, nil},
			{"Paju-si", 37.760, 126.780, 8.0, 380, nil},
			{"Gimpo-si", 37.615, 126.716, 6.5, 290, nil},
			{"Gwangmyeong-si", 37.479, 126.865, 3.0, 350, nil},
			{"Gwangju-si", 37.429, 127.255, 7.0, 250, []string{"gwangju gyeonggi"}},
			{"Gunpo-si", 37.361, 126.935, 3.5, 285, nil},
			{"Icheon-si", 37.272, 127.435, 7.5, 200, nil},
			{"Osan-si", 37.150, 127.077, 3.5, 200, nil},
			{"Hanam-si", 37.539, 127.215, 4.0, 150, nil},
			{"Yangju-si", 37.785, 127.046, 6.5, 200, nil},
			{"Guri-si", 37.594, 127.130, 3.0, 195, nil},
			{"Anseong-si", 37.008, 127.280, 8.0, 180, nil},
			{"Pocheon-si", 37.895, 127.200, 9.0, 160, nil},
			{"Uiwang-si", 37.345, 126.968, 3.5, 150, []string{"의왕", "uiwang"}},
			{"Yeoju-si", 37.298, 127.637, 8.0, 110, nil},
			{"Dongducheon-si", 37.903, 127.060, 5.0, 98, nil},
			{"Gwacheon-si", 37.429, 126.988, 3.0, 70, nil},
			{"Yangpyeong-gun", 37.492, 127.488, 10.0, 100, nil},
			{"Gapyeong-gun", 37.831, 127.510, 10.0, 62, nil},
			{"Yeoncheon-gun", 38.096, 127.075, 10.0, 45, nil},
		},
	},
	{
		name:    "Gangwon-do",
		aliases: []string{"강원", "강원도", "gangwon", "kangwon-do"},
		counties: []countyRow{
			{"Chuncheon-si", 37.881, 127.730, 9.0, 276, nil},
			{"Wonju-si", 37.342, 127.920, 9.0, 315, nil},
			{"Gangneung-si", 37.752, 128.876, 9.0, 218, nil},
			{"Donghae-si", 37.525, 129.114, 6.0, 95, nil},
			{"Sokcho-si", 38.207, 128.592, 5.0, 83, nil},
			{"Samcheok-si", 37.450, 129.165, 10.0, 72, nil},
			{"Taebaek-si", 37.164, 128.986, 8.0, 49, nil},
			{"Hongcheon-gun", 37.697, 127.889, 12.0, 70, nil},
			{"Pyeongchang-gun", 37.371, 128.390, 12.0, 44, nil},
			{"Hoengseong-gun", 37.491, 127.985, 10.0, 45, nil},
			{"Yeongwol-gun", 37.183, 128.461, 11.0, 40, nil},
			{"Jeongseon-gun", 37.380, 128.660, 11.0, 39, nil},
			{"Cheorwon-gun", 38.146, 127.313, 11.0, 47, nil},
			{"Hwacheon-gun", 38.106, 127.708, 10.0, 26, nil},
			{"Yanggu-gun", 38.110, 127.990, 10.0, 22, nil},
			{"Inje-gun", 38.069, 128.170, 13.0, 32, nil},
			{"Goseong-gun", 38.380, 128.467, 9.0, 30, nil},
			{"Yangyang-gun", 38.075, 128.619, 9.0, 27, nil},
		},
	},
	{
		name:    "Chungcheongbuk-do",
		aliases: []string{"충북", "충청북도", "chungbuk"},
		counties: []countyRow{
			{"Cheongju-si", 36.642, 127.489, 8.0, 660, nil},
			{"Chungju-si", 36.991, 127.926, 9.0, 207, nil},
			{"Jecheon-si", 37.133, 128.191, 9.0, 136, nil},
			{"Eumseong-gun", 36.940, 127.690, 10.0, 92, nil},
			{"Okcheon-gun", 36.306, 127.571, 10.0, 53, nil},
			{"Boeun-gun", 36.489, 127.729, 10.0, 34, nil},
			{"Yeongdong-gun", 36.175, 127.783, 10.0, 50, nil},
			{"Jeungpyeong-gun", 36.785, 127.581, 5.0, 36, nil},
			{"Jincheon-gun", 36.855, 127.435, 9.0, 67, nil},
			{"Goesan-gun", 36.815, 127.786, 10.0, 38, nil},
			{"Danyang-gun", 36.984, 128.365, 11.0, 31, nil},
		},
	},
	{
		name:    "Chungcheongnam-do",
		aliases: []string{"충남", "충청남도", "chungnam"},
		counties: []countyRow{
			{"Cheonan-si", 36.815, 127.114, 8.0, 575, nil},
			{"Asan-si", 36.790, 127.002, 8.0, 270, nil},
			{"Seosan-si", 36.785, 126.450, 9.0, 163, nil},
			{"Nonsan-si", 36.187, 127.099, 9.0, 127, nil},
			{"Gongju-si", 36.447, 127.119, 10.0, 125, nil},
			{"Dangjin-si", 36.890, 126.628, 9.0, 150, nil},
			{"Boryeong-si", 36.333, 126.613, 9.0, 105, nil},
			{"Gyeryong-si", 36.274, 127.248, 5.0, 43, nil},
			{"Geumsan-gun", 36.109, 127.488, 10.0, 55, nil},
			{"Buyeo-gun", 36.275, 126.910, 10.0, 72, nil},
			{"Seocheon-gun", 36.080, 126.691, 9.0, 57, nil},
			{"Cheongyang-gun", 36.459, 126.802, 9.0, 32, nil},
			{"Hongseong-gun", 36.601, 126.661, 9.0, 88, nil},
			{"Yesan-gun", 36.682, 126.845, 9.0, 84, nil},
			{"Taean-gun", 36.746, 126.298, 10.0, 62, nil},
		},
	},
	{
		name:    "Jeollabuk-do",
		aliases: []string{"전북", "전라북도", "jeonbuk", "chonbuk"},
		counties: []countyRow{
			{"Jeonju-si", 35.824, 127.148, 7.0, 640, nil},
			{"Gunsan-si", 35.968, 126.737, 8.0, 270, nil},
			{"Iksan-si", 35.948, 126.958, 8.0, 305, nil},
			{"Jeongeup-si", 35.570, 126.856, 9.0, 118, nil},
			{"Namwon-si", 35.416, 127.390, 9.0, 86, nil},
			{"Gimje-si", 35.804, 126.881, 9.0, 92, nil},
			{"Wanju-gun", 35.905, 127.162, 11.0, 85, nil},
			{"Jinan-gun", 35.792, 127.425, 11.0, 26, nil},
			{"Muju-gun", 36.007, 127.661, 11.0, 25, nil},
			{"Jangsu-gun", 35.647, 127.521, 10.0, 23, nil},
			{"Imsil-gun", 35.618, 127.289, 10.0, 29, nil},
			{"Sunchang-gun", 35.374, 127.138, 10.0, 29, nil},
			{"Gochang-gun", 35.436, 126.702, 10.0, 59, nil},
			{"Buan-gun", 35.732, 126.733, 10.0, 57, nil},
		},
	},
	{
		name:    "Jeollanam-do",
		aliases: []string{"전남", "전라남도", "jeonnam", "chonnam"},
		counties: []countyRow{
			{"Mokpo-si", 34.812, 126.392, 5.0, 240, nil},
			{"Yeosu-si", 34.760, 127.662, 9.0, 293, nil},
			{"Suncheon-si", 34.951, 127.488, 9.0, 272, nil},
			{"Naju-si", 35.016, 126.711, 9.0, 88, nil},
			{"Gwangyang-si", 34.940, 127.696, 8.0, 145, nil},
			{"Damyang-gun", 35.321, 126.988, 9.0, 47, nil},
			{"Gokseong-gun", 35.282, 127.292, 10.0, 30, nil},
			{"Gurye-gun", 35.202, 127.463, 9.0, 26, nil},
			{"Goheung-gun", 34.611, 127.285, 11.0, 67, nil},
			{"Boseong-gun", 34.771, 127.080, 10.0, 44, nil},
			{"Hwasun-gun", 35.064, 126.987, 10.0, 65, nil},
			{"Jangheung-gun", 34.682, 126.907, 10.0, 40, nil},
			{"Gangjin-gun", 34.642, 126.767, 9.0, 38, nil},
			{"Haenam-gun", 34.573, 126.599, 11.0, 75, nil},
			{"Yeongam-gun", 34.800, 126.697, 10.0, 57, nil},
			{"Muan-gun", 34.990, 126.482, 10.0, 79, nil},
			{"Hampyeong-gun", 35.066, 126.517, 9.0, 34, nil},
			{"Yeonggwang-gun", 35.277, 126.512, 9.0, 55, nil},
			{"Jangseong-gun", 35.302, 126.785, 10.0, 45, nil},
			{"Wando-gun", 34.311, 126.755, 11.0, 52, nil},
			{"Jindo-gun", 34.487, 126.263, 11.0, 32, nil},
			{"Sinan-gun", 34.833, 126.109, 13.0, 42, nil},
		},
	},
	{
		name:    "Gyeongsangbuk-do",
		aliases: []string{"경북", "경상북도", "gyeongbuk", "kyongbuk"},
		counties: []countyRow{
			{"Pohang-si", 36.019, 129.343, 9.0, 510, nil},
			{"Gyeongju-si", 35.856, 129.225, 11.0, 264, nil},
			{"Gumi-si", 36.120, 128.344, 8.0, 400, nil},
			{"Gimcheon-si", 36.140, 128.114, 9.0, 135, nil},
			{"Andong-si", 36.568, 128.730, 11.0, 167, nil},
			{"Yeongju-si", 36.806, 128.624, 9.0, 113, nil},
			{"Sangju-si", 36.411, 128.159, 10.0, 104, nil},
			{"Mungyeong-si", 36.587, 128.187, 10.0, 76, nil},
			{"Gyeongsan-si", 35.825, 128.741, 8.0, 240, nil},
			{"Uiseong-gun", 36.353, 128.697, 12.0, 55, nil},
			{"Cheongsong-gun", 36.436, 129.057, 11.0, 26, nil},
			{"Yeongyang-gun", 36.667, 129.112, 11.0, 18, nil},
			{"Yeongdeok-gun", 36.415, 129.366, 10.0, 40, nil},
			{"Cheongdo-gun", 35.647, 128.734, 10.0, 44, nil},
			{"Goryeong-gun", 35.726, 128.263, 9.0, 34, nil},
			{"Seongju-gun", 35.919, 128.283, 10.0, 45, nil},
			{"Chilgok-gun", 35.995, 128.402, 9.0, 120, nil},
			{"Yecheon-gun", 36.658, 128.453, 10.0, 45, nil},
			{"Bonghwa-gun", 36.893, 128.733, 12.0, 33, nil},
			{"Uljin-gun", 36.993, 129.401, 12.0, 51, nil},
			{"Ulleung-gun", 37.484, 130.906, 6.0, 10, []string{"dokdo", "ulleungdo"}},
		},
	},
	{
		name:    "Gyeongsangnam-do",
		aliases: []string{"경남", "경상남도", "gyeongnam", "kyongnam"},
		counties: []countyRow{
			{"Changwon-si", 35.228, 128.681, 9.0, 1080, []string{"masan", "jinhae"}},
			{"Jinju-si", 35.180, 128.108, 9.0, 335, nil},
			{"Gimhae-si", 35.234, 128.890, 7.0, 500, nil},
			{"Yangsan-si", 35.335, 129.037, 7.0, 255, nil},
			{"Geoje-si", 34.880, 128.621, 9.0, 228, nil},
			{"Tongyeong-si", 34.854, 128.433, 7.0, 139, nil},
			{"Sacheon-si", 35.004, 128.064, 8.0, 113, nil},
			{"Miryang-si", 35.504, 128.747, 9.0, 108, nil},
			{"Uiryeong-gun", 35.322, 128.262, 9.0, 28, nil},
			{"Haman-gun", 35.272, 128.407, 9.0, 66, nil},
			{"Changnyeong-gun", 35.545, 128.492, 10.0, 62, nil},
			{"Goseong-gun", 34.973, 128.322, 10.0, 53, nil},
			{"Namhae-gun", 34.838, 127.893, 9.0, 45, nil},
			{"Hadong-gun", 35.067, 127.751, 10.0, 48, nil},
			{"Sancheong-gun", 35.416, 127.874, 10.0, 35, nil},
			{"Hamyang-gun", 35.520, 127.725, 10.0, 39, nil},
			{"Geochang-gun", 35.687, 127.909, 10.0, 62, nil},
			{"Hapcheon-gun", 35.567, 128.166, 11.0, 47, nil},
		},
	},
	{
		name:    "Jeju",
		aliases: []string{"제주", "제주도", "제주특별자치도", "jeju-do", "jeju island", "cheju"},
		counties: []countyRow{
			{"Jeju-si", 33.499, 126.531, 12.0, 420, nil},
			{"Seogwipo-si", 33.254, 126.560, 12.0, 155, nil},
		},
	},
}

// KoreaDistricts materialises the Korean gazetteer rows into districts.
func KoreaDistricts() []*District {
	var out []*District
	for _, st := range koreaStates {
		for _, c := range st.counties {
			out = append(out, &District{
				Country:    "KR",
				State:      st.name,
				County:     c.name,
				Center:     geo.Point{Lat: c.lat, Lon: c.lon},
				RadiusKm:   c.radiusKm,
				Population: c.popK * 1000,
				Metro:      st.metro,
				Aliases:    c.aliases,
			})
		}
	}
	return out
}

// KoreaStateAliases returns the alias table for first-level divisions; the
// text refiner uses it to recognise state-only (insufficient) locations.
func KoreaStateAliases() map[string][]string {
	out := make(map[string][]string, len(koreaStates))
	for _, st := range koreaStates {
		out[st.name] = st.aliases
	}
	return out
}
