package admin

import "stir/internal/geo"

// Coarse worldwide gazetteer used by the Lady Gaga (Streaming API) dataset.
// "State" holds the sub-national region; "County" holds the city, so the same
// state#county grouping machinery works for both datasets.

type worldRow struct {
	country, state, city string
	lat, lon             float64
	radiusKm             float64
	popK                 int
	aliases              []string
}

var worldCities = []worldRow{
	{"US", "New York", "New York City", 40.713, -74.006, 25, 8300, []string{"nyc", "new york", "manhattan", "brooklyn"}},
	{"US", "California", "Los Angeles", 34.052, -118.244, 30, 3900, []string{"la", "los angeles ca", "hollywood"}},
	{"US", "California", "San Francisco", 37.775, -122.419, 15, 815, []string{"sf", "bay area"}},
	{"US", "California", "San Diego", 32.716, -117.161, 20, 1300, nil},
	{"US", "Illinois", "Chicago", 41.878, -87.630, 25, 2700, []string{"chi-town"}},
	{"US", "Texas", "Houston", 29.760, -95.370, 30, 2100, nil},
	{"US", "Texas", "Dallas", 32.777, -96.797, 25, 1200, nil},
	{"US", "Texas", "Austin", 30.267, -97.743, 18, 800, nil},
	{"US", "Washington", "Seattle", 47.606, -122.332, 18, 620, nil},
	{"US", "Massachusetts", "Boston", 42.360, -71.059, 15, 620, nil},
	{"US", "Florida", "Miami", 25.762, -80.192, 18, 410, nil},
	{"US", "Florida", "Orlando", 28.538, -81.379, 18, 240, nil},
	{"US", "Georgia", "Atlanta", 33.749, -84.388, 20, 430, nil},
	{"US", "Colorado", "Denver", 39.739, -104.990, 18, 620, nil},
	{"US", "Arizona", "Phoenix", 33.448, -112.074, 25, 1450, nil},
	{"US", "Pennsylvania", "Philadelphia", 39.953, -75.165, 18, 1530, []string{"philly"}},
	{"US", "District of Columbia", "Washington", 38.907, -77.037, 15, 600, []string{"washington dc", "dc"}},
	{"US", "Nevada", "Las Vegas", 36.170, -115.140, 18, 590, []string{"vegas"}},
	{"CA", "Ontario", "Toronto", 43.653, -79.383, 20, 2650, nil},
	{"CA", "British Columbia", "Vancouver", 49.283, -123.121, 15, 600, nil},
	{"CA", "Quebec", "Montreal", 45.502, -73.567, 18, 1650, nil},
	{"GB", "England", "London", 51.507, -0.128, 25, 8200, []string{"london uk"}},
	{"GB", "England", "Manchester", 53.481, -2.243, 12, 510, nil},
	{"GB", "Scotland", "Glasgow", 55.861, -4.250, 12, 590, nil},
	{"IE", "Leinster", "Dublin", 53.349, -6.260, 12, 530, nil},
	{"FR", "Ile-de-France", "Paris", 48.857, 2.352, 15, 2200, []string{"paris france"}},
	{"DE", "Berlin", "Berlin", 52.520, 13.405, 18, 3450, nil},
	{"DE", "Bavaria", "Munich", 48.135, 11.582, 12, 1380, []string{"muenchen"}},
	{"ES", "Madrid", "Madrid", 40.417, -3.704, 15, 3200, nil},
	{"ES", "Catalonia", "Barcelona", 41.385, 2.173, 12, 1620, nil},
	{"IT", "Lazio", "Rome", 41.903, 12.496, 15, 2870, []string{"roma"}},
	{"IT", "Lombardy", "Milan", 45.464, 9.190, 12, 1350, []string{"milano"}},
	{"NL", "North Holland", "Amsterdam", 52.370, 4.895, 10, 810, nil},
	{"SE", "Stockholm", "Stockholm", 59.329, 18.069, 12, 900, nil},
	{"RU", "Moscow", "Moscow", 55.756, 37.617, 25, 11500, []string{"moskva"}},
	{"TR", "Istanbul", "Istanbul", 41.008, 28.978, 25, 13500, nil},
	{"EG", "Cairo", "Cairo", 30.044, 31.236, 25, 9100, nil},
	{"NG", "Lagos", "Lagos", 6.524, 3.379, 25, 9000, nil},
	{"ZA", "Gauteng", "Johannesburg", -26.204, 28.047, 20, 4400, []string{"joburg"}},
	{"KE", "Nairobi", "Nairobi", -1.292, 36.822, 18, 3100, nil},
	{"AE", "Dubai", "Dubai", 25.205, 55.271, 20, 1900, nil},
	{"IN", "Maharashtra", "Mumbai", 19.076, 72.878, 25, 12400, []string{"bombay"}},
	{"IN", "Delhi", "New Delhi", 28.614, 77.209, 25, 11000, []string{"delhi"}},
	{"TH", "Bangkok", "Bangkok", 13.756, 100.502, 25, 8300, nil},
	{"SG", "Singapore", "Singapore", 1.352, 103.820, 20, 5200, nil},
	{"ID", "Jakarta", "Jakarta", -6.208, 106.846, 25, 9600, nil},
	{"PH", "Metro Manila", "Manila", 14.600, 120.984, 20, 11850, nil},
	{"HK", "Hong Kong", "Hong Kong", 22.319, 114.170, 18, 7070, nil},
	{"CN", "Shanghai", "Shanghai", 31.230, 121.474, 30, 23000, nil},
	{"CN", "Beijing", "Beijing", 39.904, 116.407, 30, 19600, nil},
	{"JP", "Tokyo", "Tokyo", 35.690, 139.692, 25, 13100, []string{"tokyo japan", "東京"}},
	{"JP", "Osaka", "Osaka", 34.694, 135.502, 18, 2670, nil},
	{"KR", "Seoul", "Seoul-global", 37.567, 126.978, 15, 10400, nil},
	{"AU", "New South Wales", "Sydney", -33.869, 151.209, 25, 4600, nil},
	{"AU", "Victoria", "Melbourne", -37.814, 144.963, 25, 4100, nil},
	{"AU", "Queensland", "Gold Coast", -28.017, 153.400, 18, 540, []string{"gold coast australia"}},
	{"NZ", "Auckland", "Auckland", -36.848, 174.763, 18, 1450, nil},
	{"BR", "Sao Paulo", "Sao Paulo", -23.551, -46.633, 30, 11300, []string{"são paulo", "sampa"}},
	{"BR", "Rio de Janeiro", "Rio de Janeiro", -22.907, -43.173, 25, 6300, []string{"rio"}},
	{"AR", "Buenos Aires", "Buenos Aires", -34.604, -58.382, 25, 2900, nil},
	{"PE", "Lima", "Lima", -12.046, -77.043, 25, 8500, nil},
	{"CO", "Bogota", "Bogota", 4.711, -74.072, 25, 7400, []string{"bogotá"}},
	{"MX", "Mexico City", "Mexico City", 19.433, -99.133, 30, 8850, []string{"cdmx", "df"}},
}

// WorldDistricts materialises the worldwide gazetteer rows into districts.
func WorldDistricts() []*District {
	out := make([]*District, 0, len(worldCities))
	for _, w := range worldCities {
		out = append(out, &District{
			Country:    w.country,
			State:      w.state,
			County:     w.city,
			Center:     geo.Point{Lat: w.lat, Lon: w.lon},
			RadiusKm:   w.radiusKm,
			Population: w.popK * 1000,
			Aliases:    w.aliases,
		})
	}
	return out
}
