// Package admin provides the administrative-district gazetteer STIR groups
// locations by: the Korean hierarchy of provinces / metropolitan cities
// (states) and si/gu/gun (counties) used by the paper's Korean dataset, plus
// a coarse worldwide city gazetteer used by the Lady Gaga dataset.
//
// The gazetteer answers two questions:
//
//   - reverse geocoding: which district contains (or is nearest to) a point;
//   - name resolution: which district a free-text location string refers to.
package admin

import (
	"fmt"
	"strings"

	"stir/internal/geo"
)

// Level describes how precise a district reference is.
type Level int

const (
	// LevelCountry means only the country is known (insufficient for STIR).
	LevelCountry Level = iota
	// LevelState means a province / metropolitan city is known.
	LevelState
	// LevelCounty means a si/gu/gun (or world city) is known — the
	// granularity the paper groups by.
	LevelCounty
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelCountry:
		return "country"
	case LevelState:
		return "state"
	case LevelCounty:
		return "county"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// District is one administrative district (a <state>,<county> pair in the
// paper's Yahoo-API terminology).
type District struct {
	Country    string    // ISO-like country code, e.g. "KR", "US"
	State      string    // province or metropolitan city, e.g. "Seoul"
	County     string    // si/gu/gun or world city, e.g. "Yangcheon-gu"
	Center     geo.Point // representative centre
	RadiusKm   float64   // approximate radius of the district's extent
	Population int       // approximate population, used as a sampling weight
	Metro      bool      // part of a metropolitan city (paper splits these into gu)
	Aliases    []string  // extra spellings seen in free-text profiles
}

// ID returns the district's stable identifier "Country/State/County".
func (d *District) ID() string {
	return d.Country + "/" + d.State + "/" + d.County
}

// Key returns the "state#county" form used in the paper's location strings.
func (d *District) Key() string {
	return d.State + "#" + d.County
}

// Bounds returns a conservative bounding rectangle for the district.
func (d *District) Bounds() geo.Rect {
	return geo.RectAround(d.Center, d.RadiusKm)
}

// ContainsApprox reports whether p falls within the district's approximate
// circular extent.
func (d *District) ContainsApprox(p geo.Point) bool {
	return d.Center.DistanceKm(p) <= d.RadiusKm
}

// NormalizeName lowercases, trims and collapses interior whitespace and
// strips decorative punctuation; it is the canonical form for name lookups.
func NormalizeName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	var b strings.Builder
	lastSpace := false
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t' || r == ',' || r == '.' || r == '_':
			if !lastSpace && b.Len() > 0 {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			b.WriteRune(r)
			lastSpace = false
		}
	}
	return strings.TrimSpace(b.String())
}

// suffixes that Korean romanised district names carry; names are indexed
// both with and without them ("yangcheon-gu", "yangcheon gu", "yangcheon").
var koreanSuffixes = []string{"-gu", "-si", "-gun", "-do"}

// nameForms expands a district name into the spellings a free-text profile
// might use.
func nameForms(name string) []string {
	n := NormalizeName(name)
	forms := []string{n}
	for _, suf := range koreanSuffixes {
		if strings.HasSuffix(n, suf) {
			bare := strings.TrimSuffix(n, suf)
			forms = append(forms, bare, bare+" "+suf[1:])
			break
		}
	}
	return forms
}
