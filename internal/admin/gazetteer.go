package admin

import (
	"errors"
	"fmt"
	"sort"

	"stir/internal/geo"
	"stir/internal/gis"
)

// Gazetteer indexes a set of districts for point and name lookups. Build it
// once with NewGazetteer; lookups are then safe for concurrent use.
type Gazetteer struct {
	districts []*District
	byID      map[string]*District
	byName    map[string][]*District // normalised name form -> candidates
	states    map[string][]*District // state name -> its counties
	index     *gis.RTree
	bounds    geo.Rect
}

// ErrNotFound reports a failed gazetteer lookup.
var ErrNotFound = errors.New("admin: no district found")

// NewGazetteer indexes the given districts. District IDs must be unique.
func NewGazetteer(districts []*District) (*Gazetteer, error) {
	g := &Gazetteer{
		byID:   make(map[string]*District),
		byName: make(map[string][]*District),
		states: make(map[string][]*District),
		index:  gis.NewRTree(),
	}
	for _, d := range districts {
		if d.RadiusKm <= 0 {
			return nil, fmt.Errorf("admin: district %s has non-positive radius", d.ID())
		}
		if _, dup := g.byID[d.ID()]; dup {
			return nil, fmt.Errorf("admin: duplicate district id %s", d.ID())
		}
		g.byID[d.ID()] = d
		g.districts = append(g.districts, d)
		g.states[d.State] = append(g.states[d.State], d)
		g.index.Insert(gis.Item{Bounds: d.Bounds(), Value: d})
		if len(g.districts) == 1 {
			g.bounds = d.Bounds()
		} else {
			g.bounds = g.bounds.Union(d.Bounds())
		}
		g.indexNames(d)
	}
	return g, nil
}

func (g *Gazetteer) indexNames(d *District) {
	add := func(form string) {
		if form == "" {
			return
		}
		list := g.byName[form]
		for _, have := range list {
			if have == d {
				return
			}
		}
		g.byName[form] = append(list, d)
	}
	for _, f := range nameForms(d.County) {
		add(f)
	}
	// "State County" compound, the least ambiguous profile form.
	add(NormalizeName(d.State + " " + d.County))
	for _, a := range d.Aliases {
		for _, f := range nameForms(a) {
			add(f)
		}
	}
}

// NewKoreaGazetteer returns the gazetteer for the paper's Korean dataset.
func NewKoreaGazetteer() (*Gazetteer, error) {
	return NewGazetteer(KoreaDistricts())
}

// NewWorldGazetteer returns the coarse worldwide gazetteer used by the Lady
// Gaga dataset; it includes the Korean districts too, since that stream also
// contains Korean users.
func NewWorldGazetteer() (*Gazetteer, error) {
	all := append(KoreaDistricts(), WorldDistricts()...)
	return NewGazetteer(all)
}

// Districts returns all indexed districts in insertion order.
func (g *Gazetteer) Districts() []*District { return g.districts }

// Len returns the number of indexed districts.
func (g *Gazetteer) Len() int { return len(g.districts) }

// Bounds returns the union of all district bounds.
func (g *Gazetteer) Bounds() geo.Rect { return g.bounds }

// States returns the sorted list of state names.
func (g *Gazetteer) States() []string {
	out := make([]string, 0, len(g.states))
	for s := range g.states {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Counties returns the districts belonging to state, or nil if unknown.
func (g *Gazetteer) Counties(state string) []*District { return g.states[state] }

// ByID returns the district with the given ID.
func (g *Gazetteer) ByID(id string) (*District, error) {
	d, ok := g.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %q", ErrNotFound, id)
	}
	return d, nil
}

// ResolvePoint returns the district containing p. When several approximate
// extents overlap, the district whose centre is closest wins; when none
// contains p, the nearest district within slackKm of its boundary is
// returned. A negative slack disables the fallback.
func (g *Gazetteer) ResolvePoint(p geo.Point, slackKm float64) (*District, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("admin: invalid point %v", p)
	}
	hits := g.index.SearchPoint(p)
	var best *District
	bestD := 0.0
	for _, it := range hits {
		d := it.Value.(*District)
		dist := d.Center.DistanceKm(p)
		if dist > d.RadiusKm {
			continue // in the bounding box but outside the circular extent
		}
		if best == nil || dist < bestD {
			best, bestD = d, dist
		}
	}
	if best != nil {
		return best, nil
	}
	if slackKm < 0 {
		return nil, fmt.Errorf("%w: point %v", ErrNotFound, p)
	}
	// Fallback: nearest few candidates by bounding box, then exact centre
	// distance minus radius (distance to the approximate boundary).
	cands := g.index.Nearest(p, 8)
	for _, it := range cands {
		d := it.Value.(*District)
		over := d.Center.DistanceKm(p) - d.RadiusKm
		if over <= slackKm && (best == nil || over < bestD) {
			best, bestD = d, over
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: point %v (slack %.1f km)", ErrNotFound, p, slackKm)
	}
	return best, nil
}

// ResolveName returns all districts whose name or alias matches the
// normalised form of name. Multiple results mean the name is ambiguous
// (e.g. "Jung-gu" exists in several metropolitan cities).
func (g *Gazetteer) ResolveName(name string) []*District {
	out := g.byName[NormalizeName(name)]
	// Copy to keep internal state immutable for callers.
	if len(out) == 0 {
		return nil
	}
	cp := make([]*District, len(out))
	copy(cp, out)
	return cp
}

// ResolveNameInState narrows ResolveName to districts of the given state.
func (g *Gazetteer) ResolveNameInState(name, state string) []*District {
	var out []*District
	for _, d := range g.ResolveName(name) {
		if d.State == state {
			out = append(out, d)
		}
	}
	return out
}

// IsState reports whether name refers to a first-level division (which the
// paper treats as insufficient when used alone) and returns its canonical
// state name.
func (g *Gazetteer) IsState(name string) (string, bool) {
	n := NormalizeName(name)
	for state := range g.states {
		if NormalizeName(state) == n {
			return state, true
		}
	}
	// Check alias tables (Korean states only; world "states" are regions and
	// rarely appear alone).
	for state, aliases := range KoreaStateAliases() {
		if _, ok := g.states[state]; !ok {
			continue
		}
		for _, a := range aliases {
			if NormalizeName(a) == n {
				return state, true
			}
		}
		// Also match the bare form without the -do suffix.
		for _, f := range nameForms(state) {
			if f == n {
				return state, true
			}
		}
	}
	return "", false
}

// RandomWeights returns the districts and their population weights, for
// weighted sampling by the synthetic generator.
func (g *Gazetteer) RandomWeights() ([]*District, []float64) {
	ws := make([]float64, len(g.districts))
	for i, d := range g.districts {
		w := float64(d.Population)
		if w <= 0 {
			w = 1
		}
		ws[i] = w
	}
	return g.districts, ws
}

// NearestDistricts returns up to k districts ordered by centre distance
// from p (the point may be anywhere).
func (g *Gazetteer) NearestDistricts(p geo.Point, k int) []*District {
	if k <= 0 {
		return nil
	}
	items := g.index.Nearest(p, k*2) // overfetch: bbox order ≠ centre order
	type cand struct {
		d    *District
		dist float64
	}
	cands := make([]cand, 0, len(items))
	for _, it := range items {
		d := it.Value.(*District)
		cands = append(cands, cand{d, d.Center.DistanceKm(p)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]*District, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.d)
	}
	return out
}

// NeighborsOf returns up to k districts nearest to d, excluding d itself.
func (g *Gazetteer) NeighborsOf(d *District, k int) []*District {
	near := g.NearestDistricts(d.Center, k+1)
	out := make([]*District, 0, k)
	for _, n := range near {
		if n == d {
			continue
		}
		out = append(out, n)
		if len(out) == k {
			break
		}
	}
	return out
}
