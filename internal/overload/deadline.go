package overload

import (
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the caller's remaining budget, in whole
// milliseconds, measured when the request left the client. Servers treat it
// as a relative deadline — no clock synchronisation is assumed — and reject
// requests whose budget cannot cover even admission, so doomed work is never
// executed. Zero means "already expired"; an absent or malformed header
// means "no deadline".
const DeadlineHeader = "X-Stir-Deadline-Ms"

// SetDeadlineHeader stamps req with the remaining budget of its context.
// Without a context deadline it leaves the request untouched. The twitter
// and geocode clients call this on every outbound request, which is what
// lets a server drop work the caller has already given up on.
func SetDeadlineHeader(req *http.Request) {
	dl, ok := req.Context().Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// DeadlineFrom parses the propagated deadline off an inbound request,
// returning the remaining budget and whether one was advertised.
func DeadlineFrom(r *http.Request) (time.Duration, bool) {
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}
