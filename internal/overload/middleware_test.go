package overload

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"stir/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestMiddlewareCriticalBypassesSaturatedLimiter(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:     "test",
		MaxInflight: 1,
		QueueDepth:  -1,
		Metrics:     obs.Discard,
	})
	// Saturate the limiter out-of-band: bulk traffic would now shed.
	adm, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer adm.Release()

	h := Middleware(MiddlewareOptions{Service: "test", Limiter: l, Metrics: obs.Discard}, okHandler())
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("%s under saturation: status %d, want 200", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/query", nil))
	if rr.Code != ShedStatus {
		t.Fatalf("bulk under saturation: status %d, want %d", rr.Code, ShedStatus)
	}
}

func TestMiddlewareShedResponseShape(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(LimiterOptions{
		Service:     "shape",
		MaxInflight: 1,
		QueueDepth:  -1,
		Metrics:     reg,
	})
	adm, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer adm.Release()

	h := Middleware(MiddlewareOptions{
		Service:    "shape",
		Limiter:    l,
		RetryAfter: 1500 * time.Millisecond,
		Metrics:    reg,
	}, okHandler())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/query", nil))

	if rr.Code != ShedStatus {
		t.Fatalf("status = %d, want %d", rr.Code, ShedStatus)
	}
	secs, err := strconv.Atoi(rr.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", rr.Header().Get("Retry-After"))
	}
	if secs != 2 {
		t.Fatalf("Retry-After = %d, want 1.5s rounded up to 2", secs)
	}
	var body map[string]string
	if err := json.NewDecoder(rr.Body).Decode(&body); err != nil {
		t.Fatalf("decode shed body: %v", err)
	}
	if body["error"] != "overloaded" || body["reason"] != ShedQueueFull {
		t.Fatalf("shed body = %v, want error=overloaded reason=%s", body, ShedQueueFull)
	}
	m, ok := reg.Snapshot().Get("stir_overload_shed_total", "service", "shape", "reason", ShedQueueFull)
	if !ok || m.Value != 1 {
		t.Fatalf("stir_overload_shed_total{queue_full} = %+v ok=%v, want 1", m, ok)
	}
}

func TestMiddlewareRejectsDoomedDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	called := false
	h := Middleware(MiddlewareOptions{Service: "dl", Metrics: reg},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { called = true }))

	req := httptest.NewRequest("GET", "/v1/query", nil)
	req.Header.Set(DeadlineHeader, "0")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)

	if called {
		t.Fatal("handler ran for a request whose budget had already expired")
	}
	if rr.Code != ShedStatus {
		t.Fatalf("status = %d, want %d", rr.Code, ShedStatus)
	}
	m, ok := reg.Snapshot().Get("stir_overload_shed_total", "service", "dl", "reason", ShedDeadline)
	if !ok || m.Value != 1 {
		t.Fatalf("stir_overload_shed_total{deadline} = %+v ok=%v, want 1", m, ok)
	}
}

func TestMiddlewarePropagatesDeadlineToHandler(t *testing.T) {
	var gotDeadline bool
	var budget time.Duration
	h := Middleware(MiddlewareOptions{Service: "dl", Metrics: obs.Discard},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dl, ok := r.Context().Deadline(); ok {
				gotDeadline = true
				budget = time.Until(dl)
			}
		}))

	req := httptest.NewRequest("GET", "/v1/query", nil)
	req.Header.Set(DeadlineHeader, "250")
	h.ServeHTTP(httptest.NewRecorder(), req)

	if !gotDeadline {
		t.Fatal("handler context carried no deadline despite propagated header")
	}
	if budget <= 0 || budget > 250*time.Millisecond {
		t.Fatalf("handler budget = %v, want within (0, 250ms]", budget)
	}
}

func TestMiddlewareNilLimiterStillPropagates(t *testing.T) {
	// With no limiter the middleware is deadline propagation only: nothing
	// sheds, but doomed requests are still rejected.
	h := Middleware(MiddlewareOptions{Service: "free", Metrics: obs.Discard}, okHandler())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/query", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
}

func TestSetDeadlineHeaderRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/query", nil).WithContext(ctx)
	SetDeadlineHeader(req)

	budget, ok := DeadlineFrom(req)
	if !ok {
		t.Fatal("DeadlineFrom found no header after SetDeadlineHeader")
	}
	if budget <= 0 || budget > 500*time.Millisecond {
		t.Fatalf("round-tripped budget = %v, want within (0, 500ms]", budget)
	}
}

func TestSetDeadlineHeaderNoDeadline(t *testing.T) {
	req := httptest.NewRequest("GET", "/v1/query", nil)
	SetDeadlineHeader(req)
	if req.Header.Get(DeadlineHeader) != "" {
		t.Fatal("header stamped without a context deadline")
	}
	if _, ok := DeadlineFrom(req); ok {
		t.Fatal("DeadlineFrom reported a deadline on a bare request")
	}
}

func TestDeadlineFromMalformed(t *testing.T) {
	for _, raw := range []string{"abc", "-5", "1.5"} {
		req := httptest.NewRequest("GET", "/v1/query", nil)
		req.Header.Set(DeadlineHeader, raw)
		if _, ok := DeadlineFrom(req); ok {
			t.Fatalf("DeadlineFrom(%q) parsed, want rejected", raw)
		}
	}
}

func TestSetDeadlineHeaderExpiredClampsToZero(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/query", nil).WithContext(ctx)
	SetDeadlineHeader(req)
	if got := req.Header.Get(DeadlineHeader); got != "0" {
		t.Fatalf("expired deadline header = %q, want \"0\"", got)
	}
	budget, ok := DeadlineFrom(req)
	if !ok || budget != 0 {
		t.Fatalf("DeadlineFrom = %v,%v, want 0,true", budget, ok)
	}
}
