package overload

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
)

func quietLogf(string, ...any) {}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServerDrainCompletesInflight(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	var drained atomic.Bool

	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})

	srv := NewServer(ServerOptions{
		Service:      "test",
		Addr:         "127.0.0.1:0",
		Handler:      mux,
		DrainTimeout: 5 * time.Second,
		OnDrained: func(ctx context.Context) error {
			drained.Store(true)
			return nil
		},
		Metrics: obs.Discard,
		Logf:    quietLogf,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + srv.Addr().String()

	if !srv.Ready().Ready() {
		t.Fatal("server not ready after start")
	}

	// One request in flight when the drain begins. (No t calls from this
	// goroutine: failures surface as an empty body.)
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			got <- ""
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	cancel()

	// Drain begins: readiness flips while the in-flight request is still
	// being served.
	waitFor(t, func() bool { return !srv.Ready().Ready() })
	if drained.Load() {
		t.Fatal("OnDrained ran while a request was still in flight")
	}

	close(release)
	if body := <-got; body != "done" {
		t.Fatalf("in-flight response = %q, want %q", body, "done")
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v, want nil on clean drain", err)
	}
	if !drained.Load() {
		t.Fatal("OnDrained hook never ran")
	}
}

func TestServerDrainDeadlineForcesClose(t *testing.T) {
	leaktest.Check(t)
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})

	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})

	reg := obs.NewRegistry()
	srv := NewServer(ServerOptions{
		Service:      "forced",
		Addr:         "127.0.0.1:0",
		Handler:      mux,
		DrainTimeout: 50 * time.Millisecond,
		Metrics:      reg,
		Logf:         quietLogf,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	go func() {
		resp, err := http.Get("http://" + srv.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); err != nil {
		t.Fatalf("Run returned %v, want nil after forced close", err)
	}
	m, ok := reg.Snapshot().Get("stir_daemon_drain_forced_total", "service", "forced")
	if !ok || m.Value != 1 {
		t.Fatalf("stir_daemon_drain_forced_total = %+v ok=%v, want 1", m, ok)
	}
}

func TestServerReadyzFlipsHealthzStays(t *testing.T) {
	reg := obs.NewRegistry()
	ready := &obs.Readiness{}
	mux := http.NewServeMux()
	mux.Handle("/healthz", obs.HealthzHandler("lifecycle"))
	mux.Handle("/readyz", obs.ReadyzHandler("lifecycle", ready))

	srv := NewServer(ServerOptions{
		Service: "lifecycle",
		Addr:    "127.0.0.1:0",
		Handler: mux,
		Ready:   ready,
		Metrics: reg,
		Logf:    quietLogf,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + srv.Addr().String()

	if code, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	if m, ok := reg.Snapshot().Get("stir_daemon_ready", "service", "lifecycle"); !ok || m.Value != 1 {
		t.Fatalf("stir_daemon_ready = %+v ok=%v, want 1", m, ok)
	}

	// Flip readiness as Shutdown would, without closing the listener, so the
	// liveness/readiness split is observable over HTTP.
	ready.SetReady(false)
	if code, body := getBody(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d (%s), want 503", code, body)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200: liveness must survive drain", code)
	}
	if m, ok := reg.Snapshot().Get("stir_daemon_ready", "service", "lifecycle"); !ok || m.Value != 0 {
		t.Fatalf("stir_daemon_ready during drain = %+v ok=%v, want 0", m, ok)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestServerSIGTERMDrainsAndReturnsNil(t *testing.T) {
	leaktest.Check(t)
	var drained atomic.Bool
	srv := NewServer(ServerOptions{
		Service: "sigterm",
		Addr:    "127.0.0.1:0",
		Handler: okHandler(),
		OnDrained: func(ctx context.Context) error {
			drained.Store(true)
			return nil
		},
		Signals: []os.Signal{syscall.SIGTERM},
		Metrics: obs.Discard,
		Logf:    quietLogf,
	})
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	// ListenAndServe installs the signal handler before Start binds the
	// listener, so a visible Addr means SIGTERM is safe to send.
	waitFor(t, func() bool { return srv.Addr() != nil })
	if code, _ := getBody(t, "http://"+srv.Addr().String()+"/"); code != http.StatusOK {
		t.Fatalf("pre-signal request = %d, want 200", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("ListenAndServe after SIGTERM = %v, want nil (daemon exits 0)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within 5s of SIGTERM")
	}
	if !drained.Load() {
		t.Fatal("OnDrained hook never ran after SIGTERM")
	}
}

func TestServerStartTwiceFails(t *testing.T) {
	srv := NewServer(ServerOptions{
		Service: "twice",
		Addr:    "127.0.0.1:0",
		Handler: okHandler(),
		Metrics: obs.Discard,
		Logf:    quietLogf,
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := srv.Start(); err == nil {
		t.Fatal("second Start succeeded, want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
