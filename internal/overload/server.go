package overload

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"stir/internal/obs"
)

// Server lifecycle defaults.
const (
	DefaultDrainTimeout      = 10 * time.Second
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// ServerOptions configures the shared daemon lifecycle.
type ServerOptions struct {
	// Service names the daemon in logs and metrics.
	Service string
	// Addr is the listen address (":8030", "127.0.0.1:0", ...).
	Addr string
	// Handler is the full serving surface, normally a Middleware-wrapped mux.
	Handler http.Handler
	// DrainTimeout bounds how long Shutdown waits for in-flight requests
	// before force-closing their connections (default 10s).
	DrainTimeout time.Duration
	// ReadHeaderTimeout guards against slow-loris header dribble (default 5s).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one full request (0 = none; request bodies
	// here are tiny, ReadHeaderTimeout is the real defence).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response. Default 0 — twitterd's
	// statuses/sample stream is legitimately unbounded; request/response
	// daemons like geocoded should set it.
	WriteTimeout time.Duration
	// IdleTimeout reaps idle keep-alive connections (default 2m).
	IdleTimeout time.Duration
	// Ready is flipped unready when draining begins, so /readyz answers 503
	// while in-flight work completes (created when nil; see Ready()).
	Ready *obs.Readiness
	// OnDrained runs after the listener is closed and in-flight requests
	// have finished (or hit the drain deadline): the final-checkpoint /
	// sync hook. Its error is returned from Run/ListenAndServe.
	OnDrained func(context.Context) error
	// Signals are the shutdown triggers ListenAndServe installs
	// (default SIGINT + SIGTERM).
	Signals []os.Signal
	// Metrics receives lifecycle series (nil means obs.Default).
	Metrics *obs.Registry
	// Logf reports lifecycle transitions (default log.Printf; set to a
	// no-op func to silence).
	Logf func(format string, args ...any)
}

// Server runs one STIR daemon's HTTP surface with hardened timeouts and a
// graceful drain: a shutdown signal flips readiness, stops the listener,
// lets in-flight requests finish under DrainTimeout, force-closes
// stragglers, runs the OnDrained hook, and returns nil — so mains exit 0
// and no admitted request is ever dropped without a response.
type Server struct {
	opts  ServerOptions
	reg   *obs.Registry
	srv   *http.Server
	ready *obs.Readiness

	mu       sync.Mutex
	ln       net.Listener
	serveErr chan error
	started  bool
	shutOnce sync.Once
	shutErr  error
}

// NewServer builds the lifecycle around opts, filling defaults.
func NewServer(opts ServerOptions) *Server {
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	if opts.ReadHeaderTimeout <= 0 {
		opts.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if opts.IdleTimeout <= 0 {
		opts.IdleTimeout = DefaultIdleTimeout
	}
	if opts.Ready == nil {
		opts.Ready = &obs.Readiness{}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if len(opts.Signals) == 0 {
		opts.Signals = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	s := &Server{
		opts:     opts,
		reg:      obs.Or(opts.Metrics),
		ready:    opts.Ready,
		serveErr: make(chan error, 1),
	}
	s.srv = &http.Server{
		Handler:           opts.Handler,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
	}
	s.reg.GaugeFunc("stir_daemon_ready", func() float64 {
		if s.ready.Ready() {
			return 1
		}
		return 0
	}, "service", opts.Service)
	return s
}

// Ready exposes the server's readiness flag for /readyz wiring.
func (s *Server) Ready() *obs.Readiness { return s.ready }

// Start binds the listener and serves in the background. It returns once
// the address is bound, so callers can read Addr() immediately.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("overload: server already started")
	}
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = true
	go func() {
		err := s.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.serveErr <- err
	}()
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server once: readiness flips unhealthy, the listener
// closes, in-flight requests get until ctx (callers usually pass a
// DrainTimeout-bounded context) before stragglers are force-closed, and the
// OnDrained hook runs. Subsequent calls return the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		start := time.Now()
		s.ready.SetReady(false)
		s.opts.Logf("%s: draining (readyz now unhealthy)", s.opts.Service)
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// Deadline hit with requests still in flight: force-close them.
			s.srv.Close()
			s.reg.Counter("stir_daemon_drain_forced_total", "service", s.opts.Service).Inc()
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				err = nil
			}
		}
		if s.opts.OnDrained != nil {
			if herr := s.opts.OnDrained(ctx); herr != nil && err == nil {
				err = herr
			}
		}
		s.reg.Histogram("stir_daemon_drain_seconds", obs.DefBuckets, "service", s.opts.Service).
			ObserveDuration(time.Since(start))
		s.opts.Logf("%s: drained in %s", s.opts.Service, time.Since(start).Round(time.Millisecond))
		s.shutErr = err
	})
	return s.shutErr
}

// Run starts the server (unless already started) and blocks until ctx is
// cancelled or the listener fails, then drains under DrainTimeout. A
// cancelled ctx is the normal shutdown path and returns the drain result,
// not ctx.Err().
func (s *Server) Run(ctx context.Context) error {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	select {
	case err := <-s.serveErr:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := s.Shutdown(dctx)
	<-s.serveErr // serve goroutine has exited (ErrServerClosed folded to nil)
	return err
}

// ListenAndServe runs the full daemon lifecycle: serve until one of
// opts.Signals arrives, then drain gracefully and return nil so main exits 0.
func (s *Server) ListenAndServe() error {
	ctx, stop := signal.NotifyContext(context.Background(), s.opts.Signals...)
	defer stop()
	return s.Run(ctx)
}
