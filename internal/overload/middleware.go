package overload

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
)

// Priority is a request's admission class.
type Priority int

const (
	// PriorityBulk requests go through admission control and may be shed.
	PriorityBulk Priority = iota
	// PriorityCritical requests bypass the limiter entirely: health and
	// readiness probes, metrics scrapes, and drain/checkpoint traffic must
	// keep answering precisely when the daemon is at its worst.
	PriorityCritical
)

// DefaultPriority classifies the operational endpoints every STIR daemon
// mounts — including the /debug/ surface (trace ring, pprof), which exists
// precisely to diagnose an overloaded daemon — as critical and everything
// else as bulk.
func DefaultPriority(r *http.Request) Priority {
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		return PriorityCritical
	}
	if strings.HasPrefix(r.URL.Path, "/debug/") {
		return PriorityCritical
	}
	return PriorityBulk
}

// ShedStatus is the status code shed responses carry. 503 (not 429) because
// the *server* is the bottleneck, not the caller's budget; the resilience
// layer classifies it transient either way and honours the Retry-After.
const ShedStatus = http.StatusServiceUnavailable

// MiddlewareOptions configures the admission middleware.
type MiddlewareOptions struct {
	// Service labels the shed counter series.
	Service string
	// Limiter is the admission controller (nil admits everything — the
	// middleware then only propagates deadlines).
	Limiter *Limiter
	// Priority classifies requests (nil = DefaultPriority).
	Priority func(*http.Request) Priority
	// MinService is the smallest propagated budget worth admitting: a
	// request advertising less is rejected at the door (default 1ms).
	MinService time.Duration
	// RetryAfter is the backoff hint stamped on shed responses (default 1s;
	// Retry-After has whole-second granularity, so sub-second hints round up
	// to 1).
	RetryAfter time.Duration
	// Metrics receives stir_overload_shed_total and friends (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry
}

// Middleware wraps next with admission control:
//
//  1. critical requests (DefaultPriority: /healthz, /readyz, /metrics) are
//     served immediately, never queued, never shed;
//  2. a propagated X-Stir-Deadline-Ms is parsed; an already-doomed request
//     is shed at admission (reason "deadline") and the remaining budget is
//     attached to the request context so handlers time out with the caller;
//  3. the limiter admits, queues or sheds (reasons "queue_full",
//     "queue_timeout", "deadline"); sheds answer ShedStatus with a
//     Retry-After hint and count in stir_overload_shed_total{reason}.
func Middleware(opts MiddlewareOptions, next http.Handler) http.Handler {
	reg := obs.Or(opts.Metrics)
	priority := opts.Priority
	if priority == nil {
		priority = DefaultPriority
	}
	minService := opts.MinService
	if minService <= 0 {
		minService = time.Millisecond
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if priority(r) == PriorityCritical {
			next.ServeHTTP(w, r)
			return
		}
		reg.Counter("stir_overload_admitted_total", "service", opts.Service, "outcome", "offered").Inc()
		ctx := r.Context()
		sp := trace.FromContext(ctx) // server span opened by the trace middleware outside
		if budget, ok := DeadlineFrom(r); ok {
			sp.AnnotateDuration("deadline_budget", budget)
			if budget < minService {
				sp.Annotate("shed", ShedDeadline)
				shed(w, reg, opts, ShedDeadline)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
		enqueued := time.Now()
		adm, err := opts.Limiter.Acquire(ctx)
		if sp != nil && opts.Limiter != nil {
			sp.AnnotateDuration("queue_wait", time.Since(enqueued))
		}
		if err != nil {
			var se *ShedError
			if errors.As(err, &se) {
				sp.Annotate("shed", se.Reason)
				shed(w, reg, opts, se.Reason)
				return
			}
			// The caller hung up while we queued; nobody reads the response.
			sp.Annotate("shed", "abandoned")
			reg.Counter("stir_overload_abandoned_total", "service", opts.Service).Inc()
			return
		}
		defer adm.Release()
		next.ServeHTTP(w, r)
	})
}

// shed writes the overload rejection: ShedStatus, a Retry-After hint, and a
// small JSON body naming the reason, counted in stir_overload_shed_total.
func shed(w http.ResponseWriter, reg *obs.Registry, opts MiddlewareOptions, reason string) {
	reg.Counter("stir_overload_shed_total", "service", opts.Service, "reason", reason).Inc()
	hint := opts.RetryAfter
	if hint <= 0 {
		hint = time.Second
	}
	secs := int((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ShedStatus)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": "overloaded", "reason": reason})
}
