package overload_test

// The overload chaos proof: a seeded latency fault storms the handler while
// offered load spikes to 5x, and the admission layer must (1) keep admitted
// latency bounded, (2) never shed the operational endpoints, (3) account for
// every rejection in stir_overload_shed_total, and (4) give the goodput back
// once the storm passes. This is the acceptance test for the whole package:
// if it holds under -race with injected latency, the daemons wired through
// Middleware+Server inherit the same behaviour.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/leaktest"
	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/resilience/fault"
)

// chaosSample is one client-observed request outcome.
type chaosSample struct {
	status  int
	latency time.Duration
}

func TestOverloadChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs ~1.5s of wall-clock load; skipped in -short")
	}
	leaktest.Check(t) // queued waiters and the AIMD window must all unwind

	const (
		target       = 50 * time.Millisecond
		window       = 100 * time.Millisecond
		slowBy       = 60 * time.Millisecond // mean spike latency ~57ms > target
		baseWorkers  = 4
		spikeWorkers = 20 // 5x offered load
	)

	reg := obs.NewRegistry()
	lim := overload.NewLimiter(overload.LimiterOptions{
		Service:       "chaos",
		MaxInflight:   8,
		MinInflight:   4, // the floor keeps recovery from starving at limit 1
		QueueDepth:    8,
		TargetLatency: target,
		MaxQueueWait:  15 * time.Millisecond,
		Window:        window,
		Metrics:       reg,
	})

	inj := fault.New(42, fault.Rates{Slow: 0.95}, reg)
	inj.SlowBy = slowBy
	work := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	degraded := inj.Handler(work)

	var spiking atomic.Bool
	mux := http.NewServeMux()
	mux.Handle("/healthz", obs.HealthzHandler("chaos"))
	mux.Handle("/metrics", obs.Handler(reg))
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		if spiking.Load() {
			degraded.ServeHTTP(w, r)
			return
		}
		work.ServeHTTP(w, r)
	})

	ts := httptest.NewServer(overload.Middleware(overload.MiddlewareOptions{
		Service: "chaos",
		Limiter: lim,
		Metrics: reg,
	}, mux))
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = spikeWorkers

	// runPhase hammers /work with `workers` clients for `dur` and returns
	// every observed outcome.
	runPhase := func(workers int, dur time.Duration) []chaosSample {
		var mu sync.Mutex
		var samples []chaosSample
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					start := time.Now()
					resp, err := client.Get(ts.URL + "/work")
					if err != nil {
						continue // transport error, not a served response
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					mu.Lock()
					samples = append(samples, chaosSample{resp.StatusCode, time.Since(start)})
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return samples
	}

	// The prober plays the load balancer / scrape agent: operational
	// endpoints every ~5ms, across every phase, and they must never shed.
	probeStop := make(chan struct{})
	var probeBad atomic.Int64
	var probeN atomic.Int64
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-probeStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			for _, path := range []string{"/healthz", "/metrics"} {
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				probeN.Add(1)
				if resp.StatusCode != http.StatusOK {
					probeBad.Add(1)
				}
			}
		}
	}()

	baseline := runPhase(baseWorkers, 300*time.Millisecond)

	spiking.Store(true)
	spike := runPhase(spikeWorkers, 600*time.Millisecond)
	spiking.Store(false)

	// One adaptation window to settle, then goodput must be back.
	settle := runPhase(baseWorkers, window)
	recovery := runPhase(baseWorkers, 300*time.Millisecond)

	close(probeStop)
	probeWG.Wait()

	// (1) Admitted requests stayed fast: p99 of served spike traffic is
	// bounded by MaxQueueWait + SlowBy, well under 2x the target latency.
	var admitted []time.Duration
	shed503 := 0
	for _, s := range spike {
		switch s.status {
		case http.StatusOK:
			admitted = append(admitted, s.latency)
		case overload.ShedStatus:
			shed503++
		default:
			t.Errorf("unexpected spike status %d", s.status)
		}
	}
	if len(admitted) == 0 {
		t.Fatal("no spike request was admitted at all")
	}
	sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
	p99 := admitted[len(admitted)*99/100]
	if p99 >= 2*target {
		t.Errorf("admitted p99 during spike = %v, want < %v", p99, 2*target)
	}

	// (2) The spike actually overloaded the server — without sheds the test
	// proves nothing.
	if shed503 == 0 {
		t.Error("spike produced zero sheds; offered load never exceeded capacity")
	}

	// (3) Operational endpoints were probed throughout and never shed.
	if probeN.Load() == 0 {
		t.Fatal("prober made no requests")
	}
	if bad := probeBad.Load(); bad != 0 {
		t.Errorf("%d/%d operational probes failed; /healthz and /metrics must never shed", bad, probeN.Load())
	}

	// (4) Every client-visible 503, in every phase, is accounted for in
	// stir_overload_shed_total — no silent drops, no phantom counts.
	total503 := 0
	for _, phase := range [][]chaosSample{baseline, spike, settle, recovery} {
		for _, s := range phase {
			if s.status == overload.ShedStatus {
				total503++
			}
		}
	}
	var counted float64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "stir_overload_shed_total" && m.Labels["service"] == "chaos" {
			counted += m.Value
		}
	}
	if float64(total503) != counted {
		t.Errorf("clients saw %d sheds but stir_overload_shed_total sums to %v", total503, counted)
	}

	// (5) Goodput recovered within one adaptation window of the storm ending.
	goodput := func(samples []chaosSample) int {
		n := 0
		for _, s := range samples {
			if s.status == http.StatusOK {
				n++
			}
		}
		return n
	}
	base, rec := goodput(baseline), goodput(recovery)
	if base == 0 {
		t.Fatal("baseline served nothing; harness is broken")
	}
	if float64(rec) < 0.7*float64(base) {
		t.Errorf("recovery goodput %d < 70%% of baseline %d: limiter did not recover", rec, base)
	}
	t.Logf("baseline=%d ok, spike=%d ok/%d shed (p99 %v), recovery=%d ok, probes=%d",
		base, goodput(spike), shed503, p99, rec, probeN.Load())
}
