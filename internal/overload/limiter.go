// Package overload is STIR's server-side overload-protection layer. The
// clients gained retries and breakers in the resilience PR, which makes an
// unprotected server *worse* under stress: every timeout comes back as a
// retry, and the collapse amplifies. This package gives every STIR daemon
// the standard serving-system defences:
//
//   - an adaptive concurrency Limiter (AIMD on observed latency against a
//     target, or a fixed cap for deterministic runs) fronting a bounded FIFO
//     wait queue, shedding with 503 + Retry-After once the queue or the
//     caller's deadline would be exceeded;
//   - deadline propagation: clients stamp X-Stir-Deadline-Ms from their
//     context, servers reject doomed requests at admission instead of
//     executing work nobody will read;
//   - priority classes, so /healthz, /readyz and /metrics are never shed
//     while bulk query traffic is;
//   - a graceful Server lifecycle shared by all four daemons: hardened
//     http.Server timeouts, SIGTERM → /readyz flips unhealthy → in-flight
//     drain under a deadline → final-checkpoint hook → clean exit.
//
// Shed/queue/limit activity is published on the internal/obs registry
// (stir_overload_shed_total{reason}, stir_overload_queue_depth,
// stir_overload_limit, stir_overload_inflight), and the shed responses carry
// Retry-After so the resilience layer backs clients off cooperatively
// instead of tripping their breakers.
package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"stir/internal/obs"
)

// Limiter defaults, applied field-by-field when options are zero.
const (
	DefaultMaxInflight  = 64
	DefaultQueueDepth   = 128
	DefaultMaxQueueWait = time.Second
	DefaultWindow       = time.Second
	DefaultBackoff      = 0.75
)

// LimiterOptions configures a Limiter.
type LimiterOptions struct {
	// Service labels the limiter's metric series.
	Service string
	// MaxInflight is the concurrency ceiling — the fixed cap when
	// TargetLatency is zero, the AIMD upper bound otherwise (default 64).
	MaxInflight int
	// MinInflight is the AIMD floor (default 1).
	MinInflight int
	// QueueDepth bounds the FIFO wait queue; an arrival that finds the queue
	// full is shed immediately (default 128; negative disables queueing).
	QueueDepth int
	// TargetLatency turns on AIMD adaptation: each Window, the limit shrinks
	// multiplicatively when the mean observed service latency exceeded the
	// target and grows by one otherwise. Zero keeps the cap fixed — the
	// deterministic mode chaos tests and benchmarks pin.
	TargetLatency time.Duration
	// MaxQueueWait bounds how long one request may sit queued before it is
	// shed (default TargetLatency when adapting, else 1s).
	MaxQueueWait time.Duration
	// Window is the AIMD adaptation period (default 1s).
	Window time.Duration
	// Backoff is the multiplicative-decrease factor in (0,1) (default 0.75).
	Backoff float64
	// Metrics receives the limiter's series (nil means obs.Default;
	// obs.Discard disables).
	Metrics *obs.Registry
	// Now is the adaptation clock, swappable for tests (nil = time.Now).
	Now func() time.Time
}

// Shed reasons, used as the reason label on stir_overload_shed_total and
// carried by ShedError.
const (
	ShedQueueFull    = "queue_full"
	ShedQueueTimeout = "queue_timeout"
	ShedDeadline     = "deadline"
	ShedDraining     = "draining"
)

// ShedError reports an admission rejection and why.
type ShedError struct{ Reason string }

// Error implements error.
func (e *ShedError) Error() string { return "overload: shed (" + e.Reason + ")" }

// waiter states.
const (
	wWaiting = iota
	wAdmitted
	wShed
)

// waiter is one queued Acquire call.
type waiter struct {
	admitted chan struct{}
	state    int
}

// Limiter is an admission controller: at most `limit` requests execute
// concurrently, up to QueueDepth more wait FIFO, and everything beyond that
// is shed. With TargetLatency set the limit adapts (AIMD) to the observed
// service latency, so a slow backend sheds harder instead of queueing
// itself to death. Safe for concurrent use.
type Limiter struct {
	opts LimiterOptions
	reg  *obs.Registry

	mu       sync.Mutex
	limit    float64
	inflight int
	queue    []*waiter
	queued   int // live (non-shed) entries in queue

	windowStart time.Time
	windowSum   time.Duration
	windowN     int
}

// NewLimiter builds a limiter and registers its gauges
// (stir_overload_limit / _inflight / _queue_depth, labelled by service).
func NewLimiter(opts LimiterOptions) *Limiter {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.MinInflight <= 0 {
		opts.MinInflight = 1
	}
	if opts.MinInflight > opts.MaxInflight {
		opts.MinInflight = opts.MaxInflight
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxQueueWait <= 0 {
		if opts.TargetLatency > 0 {
			opts.MaxQueueWait = opts.TargetLatency
		} else {
			opts.MaxQueueWait = DefaultMaxQueueWait
		}
	}
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Backoff <= 0 || opts.Backoff >= 1 {
		opts.Backoff = DefaultBackoff
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	l := &Limiter{
		opts:        opts,
		reg:         obs.Or(opts.Metrics),
		limit:       float64(opts.MaxInflight),
		windowStart: opts.Now(),
	}
	l.reg.GaugeFunc("stir_overload_limit", func() float64 { return l.Limit() }, "service", opts.Service)
	l.reg.GaugeFunc("stir_overload_inflight", func() float64 { return float64(l.Inflight()) }, "service", opts.Service)
	l.reg.GaugeFunc("stir_overload_queue_depth", func() float64 { return float64(l.QueueLen()) }, "service", opts.Service)
	return l
}

// Limit returns the current concurrency limit (fixed or adapted).
func (l *Limiter) Limit() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight returns how many admissions are currently outstanding.
func (l *Limiter) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// QueueLen returns how many requests are waiting for admission.
func (l *Limiter) QueueLen() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queued
}

// Admission is one granted concurrency slot. Release it exactly once.
type Admission struct {
	l     *Limiter
	start time.Time
	once  sync.Once
}

// Release frees the slot, feeding the observed service latency into the
// AIMD window. Safe on nil (a nil Limiter admits everything).
func (a *Admission) Release() {
	if a == nil || a.l == nil {
		return
	}
	a.once.Do(func() { a.l.release(a.l.opts.Now().Sub(a.start)) })
}

// Acquire admits the caller, queues it (FIFO, bounded by QueueDepth and
// MaxQueueWait and ctx), or sheds it with a *ShedError. A ctx that dies
// while queued surfaces as ShedDeadline when the deadline expired and as
// ctx.Err() when the caller cancelled. Acquire on a nil Limiter admits
// unconditionally.
func (l *Limiter) Acquire(ctx context.Context) (*Admission, error) {
	if l == nil {
		return nil, nil
	}
	l.mu.Lock()
	if float64(l.inflight) < l.effLimit() && l.queued == 0 {
		l.inflight++
		l.mu.Unlock()
		return &Admission{l: l, start: l.opts.Now()}, nil
	}
	if l.opts.QueueDepth < 0 || l.queued >= l.opts.QueueDepth {
		l.mu.Unlock()
		return nil, &ShedError{Reason: ShedQueueFull}
	}
	w := &waiter{admitted: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.queued++
	l.mu.Unlock()

	timer := time.NewTimer(l.opts.MaxQueueWait)
	defer timer.Stop()
	select {
	case <-w.admitted:
		return &Admission{l: l, start: l.opts.Now()}, nil
	case <-timer.C:
		if l.cancelWaiter(w) {
			return nil, &ShedError{Reason: ShedQueueTimeout}
		}
		return &Admission{l: l, start: l.opts.Now()}, nil
	case <-ctx.Done():
		if l.cancelWaiter(w) {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, &ShedError{Reason: ShedDeadline}
			}
			return nil, ctx.Err()
		}
		return &Admission{l: l, start: l.opts.Now()}, nil
	}
}

// cancelWaiter marks w shed unless admission already won the race; it
// reports whether the caller lost its slot (true = really shed).
func (l *Limiter) cancelWaiter(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.state == wAdmitted {
		return false
	}
	w.state = wShed
	l.queued--
	return true
}

// effLimit is the integer admission threshold for the current limit.
func (l *Limiter) effLimit() float64 {
	if l.limit < float64(l.opts.MinInflight) {
		return float64(l.opts.MinInflight)
	}
	return l.limit
}

// release returns one slot, rolls the AIMD window, and hands freed capacity
// to the queue head.
func (l *Limiter) release(elapsed time.Duration) {
	l.mu.Lock()
	l.inflight--
	if l.opts.TargetLatency > 0 {
		l.windowSum += elapsed
		l.windowN++
		now := l.opts.Now()
		if now.Sub(l.windowStart) >= l.opts.Window {
			avg := l.windowSum / time.Duration(l.windowN)
			if avg > l.opts.TargetLatency {
				l.limit *= l.opts.Backoff
				if l.limit < float64(l.opts.MinInflight) {
					l.limit = float64(l.opts.MinInflight)
				}
			} else if l.limit < float64(l.opts.MaxInflight) {
				l.limit++
				if l.limit > float64(l.opts.MaxInflight) {
					l.limit = float64(l.opts.MaxInflight)
				}
			}
			l.windowStart = now
			l.windowSum, l.windowN = 0, 0
		}
	}
	l.admitLocked()
	l.mu.Unlock()
}

// admitLocked promotes queued waiters while capacity allows, preserving FIFO
// order and skipping entries that timed out or cancelled.
func (l *Limiter) admitLocked() {
	for len(l.queue) > 0 && float64(l.inflight) < l.effLimit() {
		w := l.queue[0]
		l.queue = l.queue[1:]
		if w.state != wWaiting {
			continue
		}
		w.state = wAdmitted
		l.queued--
		l.inflight++
		close(w.admitted)
	}
	if len(l.queue) == 0 && cap(l.queue) > 64 {
		l.queue = nil
	}
}

// String renders the limiter state for logs.
func (l *Limiter) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("limit %.1f inflight %d queued %d", l.limit, l.inflight, l.queued)
}
