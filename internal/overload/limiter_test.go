package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"stir/internal/obs"
)

// fakeClock is a hand-advanced time source for deterministic AIMD tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestLimiterFixedCapAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:     "test",
		MaxInflight: 2,
		QueueDepth:  -1, // no queue: the third acquire must shed immediately
		Metrics:     obs.Discard,
	})
	a1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	a2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	_, err = l.Acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedQueueFull {
		t.Fatalf("third acquire: got %v, want ShedError(queue_full)", err)
	}
	a1.Release()
	a3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	a2.Release()
	a3.Release()
	if got := l.Inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

func TestLimiterQueuePromotesFIFO(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:      "test",
		MaxInflight:  1,
		QueueDepth:   4,
		MaxQueueWait: 5 * time.Second,
		Metrics:      obs.Discard,
	})
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		// Enqueue strictly in order: wait for waiter i to be queued before
		// launching waiter i+1, so FIFO promotion is observable.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start <- struct{}{}
			adm, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			order <- i
			adm.Release()
		}(i)
		<-start
		waitFor(t, func() bool { return l.QueueLen() == i })
	}

	a.Release()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("admission order = %d,%d, want 1,2", first, second)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:      "test",
		MaxInflight:  1,
		QueueDepth:   1,
		MaxQueueWait: 5 * time.Second,
		Metrics:      obs.Discard,
	})
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer a.Release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		adm, err := l.Acquire(context.Background())
		if err == nil {
			adm.Release()
		}
	}()
	waitFor(t, func() bool { return l.QueueLen() == 1 })

	_, err = l.Acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedQueueFull {
		t.Fatalf("overflow acquire: got %v, want ShedError(queue_full)", err)
	}
	a.Release()
	<-done
}

func TestLimiterQueueTimeoutSheds(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:      "test",
		MaxInflight:  1,
		QueueDepth:   4,
		MaxQueueWait: 10 * time.Millisecond,
		Metrics:      obs.Discard,
	})
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer a.Release()

	_, err = l.Acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedQueueTimeout {
		t.Fatalf("queued acquire: got %v, want ShedError(queue_timeout)", err)
	}
	if got := l.QueueLen(); got != 0 {
		t.Fatalf("queue length after timeout = %d, want 0", got)
	}
}

func TestLimiterDeadlineAndCancelWhileQueued(t *testing.T) {
	l := NewLimiter(LimiterOptions{
		Service:      "test",
		MaxInflight:  1,
		QueueDepth:   4,
		MaxQueueWait: 5 * time.Second,
		Metrics:      obs.Discard,
	})
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer a.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = l.Acquire(ctx)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedDeadline {
		t.Fatalf("deadline acquire: got %v, want ShedError(deadline)", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(cctx)
		errc <- err
	}()
	waitFor(t, func() bool { return l.QueueLen() == 1 })
	ccancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: got %v, want context.Canceled", err)
	}
}

func TestLimiterAIMDAdapts(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterOptions{
		Service:       "test",
		MaxInflight:   8,
		MinInflight:   1,
		QueueDepth:    4,
		TargetLatency: 10 * time.Millisecond,
		Window:        50 * time.Millisecond,
		Backoff:       0.5,
		Metrics:       obs.Discard,
		Now:           clock.Now,
	})
	if got := l.Limit(); got != 8 {
		t.Fatalf("initial limit = %v, want 8", got)
	}

	// One slow request spanning a whole window: mean latency 100ms > 10ms
	// target, so the limit halves.
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	clock.Advance(100 * time.Millisecond)
	a.Release()
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after slow window = %v, want 4", got)
	}

	// Fast requests recover the limit additively, one per window: idle past
	// the window boundary, then serve quickly so the mean stays under target.
	for want := 5.0; want <= 8; want++ {
		clock.Advance(50 * time.Millisecond)
		a, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		clock.Advance(time.Millisecond)
		a.Release()
		if got := l.Limit(); got != want {
			t.Fatalf("limit after fast window = %v, want %v", got, want)
		}
	}

	// The limit never exceeds MaxInflight.
	clock.Advance(50 * time.Millisecond)
	a, err = l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	clock.Advance(time.Millisecond)
	a.Release()
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit capped = %v, want 8", got)
	}
}

func TestLimiterAIMDFloorsAtMinInflight(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterOptions{
		Service:       "test",
		MaxInflight:   4,
		MinInflight:   2,
		QueueDepth:    4,
		TargetLatency: time.Millisecond,
		Window:        10 * time.Millisecond,
		Backoff:       0.1,
		Metrics:       obs.Discard,
		Now:           clock.Now,
	})
	for i := 0; i < 5; i++ {
		a, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		clock.Advance(20 * time.Millisecond)
		a.Release()
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit = %v, want floor 2", got)
	}
}

func TestLimiterNilAndDoubleRelease(t *testing.T) {
	var l *Limiter
	adm, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil limiter acquire: %v", err)
	}
	adm.Release() // nil admission: must not panic
	if got := l.Limit(); got != 0 {
		t.Fatalf("nil limiter limit = %v, want 0", got)
	}

	real := NewLimiter(LimiterOptions{Service: "test", MaxInflight: 1, Metrics: obs.Discard})
	a, err := real.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	a.Release()
	a.Release() // second release is a no-op, not a double-free
	if got := real.Inflight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}

func TestLimiterGauges(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(LimiterOptions{Service: "gauged", MaxInflight: 3, Metrics: reg})
	a, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("stir_overload_limit", "service", "gauged"); !ok || m.Value != 3 {
		t.Fatalf("stir_overload_limit = %+v ok=%v, want 3", m, ok)
	}
	if m, ok := snap.Get("stir_overload_inflight", "service", "gauged"); !ok || m.Value != 1 {
		t.Fatalf("stir_overload_inflight = %+v ok=%v, want 1", m, ok)
	}
	if m, ok := snap.Get("stir_overload_queue_depth", "service", "gauged"); !ok || m.Value != 0 {
		t.Fatalf("stir_overload_queue_depth = %+v ok=%v, want 0", m, ok)
	}
	a.Release()
}

// waitFor polls cond for up to 2s, failing the test on timeout. The limiter
// queues asynchronously, so tests synchronise on observable state.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met within 2s")
}
