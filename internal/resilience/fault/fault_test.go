package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/storage"
)

func TestRollDeterministic(t *testing.T) {
	rates := Rates{Timeout: 0.1, Error5xx: 0.1, Reset: 0.1, Corrupt: 0.1}
	run := func() []Kind {
		inj := New(7, rates, obs.Discard)
		var ks []Kind
		for n := 0; n < 500; n++ {
			k, ok := inj.roll()
			if ok {
				ks = append(ks, k)
			} else {
				ks = append(ks, "")
			}
		}
		return ks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	injected := 0
	for _, k := range a {
		if k != "" {
			injected++
		}
	}
	// 40% total rate over 500 rolls: expect a plausible band, exactly
	// reproducible for this seed.
	if injected < 150 || injected > 250 {
		t.Fatalf("injected %d/500, want ~200", injected)
	}
}

func TestRollRespectsZeroRates(t *testing.T) {
	inj := New(1, Rates{}, obs.Discard)
	for n := 0; n < 100; n++ {
		if _, ok := inj.roll(); ok {
			t.Fatal("zero rates must never inject")
		}
	}
	var nilInj *Injector
	if _, ok := nilInj.roll(); ok {
		t.Fatal("nil injector must never inject")
	}
}

func TestErrClassification(t *testing.T) {
	for _, k := range []Kind{KindTimeout, Kind5xx, KindReset} {
		if !resilience.IsTransient(&Err{Kind: k}) {
			t.Errorf("%s should classify transient", k)
		}
	}
	if resilience.IsTransient(&Err{Kind: KindCorrupt}) {
		t.Error("corrupt should classify permanent")
	}
	if !errors.Is(&Err{Kind: KindReset}, syscall.ECONNRESET) {
		t.Error("reset should unwrap to ECONNRESET")
	}
}

func TestRoundTripperInjects(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(backend.Close)

	// Force each kind with a rate-1 injector.
	for _, tc := range []struct {
		rates Rates
		kind  Kind
	}{
		{Rates{Timeout: 1}, KindTimeout},
		{Rates{Reset: 1}, KindReset},
	} {
		client := &http.Client{Transport: New(1, tc.rates, obs.Discard).RoundTripper(nil)}
		_, err := client.Get(backend.URL)
		var fe *Err
		if err == nil || !errors.As(err, &fe) || fe.Kind != tc.kind {
			t.Fatalf("%s: err = %v, want injected %s", tc.kind, err, tc.kind)
		}
	}

	client := &http.Client{Transport: New(1, Rates{Error5xx: 1}, obs.Discard).RoundTripper(nil)}
	resp, err := client.Get(backend.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("5xx: resp = %v err = %v, want injected 503", resp, err)
	}
	resp.Body.Close()

	client = &http.Client{Transport: New(1, Rates{Corrupt: 1}, obs.Discard).RoundTripper(nil)}
	resp, err = client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == "ok" {
		t.Fatal("corrupt: body untouched")
	}
}

func TestRoundTripperPassThrough(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(backend.Close)
	client := &http.Client{Transport: New(1, Rates{}, obs.Discard).RoundTripper(nil)}
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want ok", body)
	}
}

func TestHandlerInjects(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(New(1, Rates{Error5xx: 1}, obs.Discard).Handler(next))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resp = %v err = %v, want 503", resp, err)
	}
	resp.Body.Close()

	rsrv := httptest.NewServer(New(1, Rates{Reset: 1}, obs.Discard).Handler(next))
	t.Cleanup(rsrv.Close)
	if _, err := http.Get(rsrv.URL); err == nil {
		t.Fatal("reset: want a transport error from the dropped connection")
	}
}

func TestResolverInjects(t *testing.T) {
	direct := geocode.NewDirectResolver(func(p geo.Point, _ float64) (geocode.Location, error) {
		return geocode.Location{Country: "KR", State: "Seoul", County: "Jongno-gu"}, nil
	}, 10, 16)
	reg := obs.NewRegistry()
	r := New(1, Rates{Timeout: 1}, reg).Resolver(direct)
	_, err := r.Reverse(context.Background(), geo.Point{Lat: 37.57, Lon: 126.98})
	var fe *Err
	if !errors.As(err, &fe) || fe.Kind != KindTimeout {
		t.Fatalf("err = %v, want injected timeout", err)
	}
	if m, ok := reg.Snapshot().Get("fault_injected_total", "kind", "timeout"); !ok || m.Value != 1 {
		t.Fatalf("fault_injected_total = %+v ok=%v, want 1", m, ok)
	}

	clean := New(1, Rates{}, obs.Discard).Resolver(direct)
	loc, err := clean.Reverse(context.Background(), geo.Point{Lat: 37.57, Lon: 126.98})
	if err != nil || loc.County != "Jongno-gu" {
		t.Fatalf("pass-through = %+v, %v", loc, err)
	}
}

func TestStoreInjects(t *testing.T) {
	st, err := storage.Open(t.TempDir(), storage.Options{Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	flaky := New(1, Rates{Reset: 1}, obs.Discard).Store(st)
	if err := flaky.Put("k2", []byte("v2")); err == nil {
		t.Fatal("want injected put error")
	}
	if _, err := flaky.Get("k"); err == nil {
		t.Fatal("want injected get error")
	}
	if !flaky.Has("k") {
		t.Fatal("Has passes through")
	}

	clean := New(1, Rates{}, obs.Discard).Store(st)
	v, err := clean.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("pass-through Get = %q, %v", v, err)
	}
}

func TestRatesFromEnv(t *testing.T) {
	t.Setenv(Env5xx, "0.25")
	t.Setenv(EnvSeed, "99")
	r := RatesFromEnv()
	if r.Error5xx != 0.25 || r.Timeout != 0 {
		t.Fatalf("rates = %+v", r)
	}
	if SeedFromEnv(1) != 99 {
		t.Fatal("seed env not read")
	}
	t.Setenv(EnvSeed, "junk")
	if SeedFromEnv(7) != 7 {
		t.Fatal("unparsable seed should fall back")
	}
}

// The retry policy rides out an injected fault schedule end to end: a
// client facing 30% mixed transient faults still completes every request.
func TestRetryRidesOutInjectedFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	t.Cleanup(backend.Close)
	client := &http.Client{Transport: New(1234, Uniform(0.3), obs.Discard).RoundTripper(nil)}
	pol := &resilience.Policy{
		Name: "chaos-unit", MaxAttempts: 10, Metrics: obs.Discard,
		Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
	}
	for n := 0; n < 50; n++ {
		err := pol.Do(context.Background(), func(ctx context.Context) error {
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL, nil)
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return &resilience.StatusError{Status: resp.StatusCode}
			}
			if strings.TrimSpace(string(body)) != "payload" {
				return resilience.MarkTransient(errors.New("corrupt payload"))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("request %d not ridden out: %v", n, err)
		}
	}
}
