// Package fault is STIR's deterministic fault-injection harness. A seeded
// Injector rolls one die per operation and injects timeouts, 5xx responses,
// connection resets or corrupt payloads at configured rates, through
// wrappers for the three seams faults enter the system: an
// http.RoundTripper (client side), an http.Handler (server side), a
// geocode.Resolver and a storage-shaped key-value store. Because the roll
// sequence is seeded, every chaos test replays the exact same fault
// schedule — a failing run is reproducible with nothing but its seed.
//
// Injections are counted in fault_injected_total{kind=...} so a chaos run's
// metrics show what was thrown at the system alongside how it coped.
package fault

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"stir/internal/geo"
	"stir/internal/geocode"
	"stir/internal/obs"
)

// Kind names one injected failure mode.
type Kind string

// The injectable failure modes.
const (
	KindTimeout Kind = "timeout"
	Kind5xx     Kind = "5xx"
	KindReset   Kind = "reset"
	KindCorrupt Kind = "corrupt"
	KindSlow    Kind = "slow"
)

// Rates are per-operation injection probabilities in [0,1]; their sum is
// the total fault rate (and must not exceed 1).
type Rates struct {
	// Timeout injects an i/o timeout (client) or a held-then-failed
	// response (server).
	Timeout float64
	// Error5xx injects a 503 response or a transient upstream error.
	Error5xx float64
	// Reset injects a connection reset.
	Reset float64
	// Corrupt injects a garbage payload (client/server) or a permanent
	// decode-style error (resolver/store).
	Corrupt float64
	// Slow injects pure latency (SlowBy) and then lets the operation
	// succeed — the overload-chaos spike shape: the upstream is alive but
	// degraded, which retries make worse and admission control must absorb.
	Slow float64
}

// Any reports whether any rate is non-zero.
func (r Rates) Any() bool {
	return r.Timeout > 0 || r.Error5xx > 0 || r.Reset > 0 || r.Corrupt > 0 || r.Slow > 0
}

// Uniform spreads a total fault rate evenly over timeout, 5xx and reset
// (the transient kinds) — the common chaos-run shape.
func Uniform(total float64) Rates {
	return Rates{Timeout: total / 3, Error5xx: total / 3, Reset: total / 3}
}

// Env knob names RatesFromEnv and SeedFromEnv read.
const (
	EnvSeed    = "STIR_FAULT_SEED"
	EnvTimeout = "STIR_FAULT_TIMEOUT"
	Env5xx     = "STIR_FAULT_5XX"
	EnvReset   = "STIR_FAULT_RESET"
	EnvCorrupt = "STIR_FAULT_CORRUPT"
	EnvSlow    = "STIR_FAULT_SLOW"
)

// RatesFromEnv reads the STIR_FAULT_* rate knobs (unset or unparsable
// means 0).
func RatesFromEnv() Rates {
	f := func(key string) float64 {
		v, err := strconv.ParseFloat(os.Getenv(key), 64)
		if err != nil || v < 0 {
			return 0
		}
		return v
	}
	return Rates{Timeout: f(EnvTimeout), Error5xx: f(Env5xx), Reset: f(EnvReset), Corrupt: f(EnvCorrupt), Slow: f(EnvSlow)}
}

// SeedFromEnv reads STIR_FAULT_SEED (unset or unparsable means def).
func SeedFromEnv(def int64) int64 {
	if v, err := strconv.ParseInt(os.Getenv(EnvSeed), 10, 64); err == nil {
		return v
	}
	return def
}

// Err is one injected failure. It classifies itself for the resilience
// layer: every kind but corrupt is transient, and the network kinds unwrap
// to the real errno so generic errors.Is checks also see them.
type Err struct{ Kind Kind }

// Error implements error.
func (e *Err) Error() string { return fmt.Sprintf("fault: injected %s", e.Kind) }

// Transient implements resilience.Transienter: a corrupt payload is the one
// kind retrying never fixes (the injector corrupts deterministically, and
// real-world corruption means a broken upstream, not a flaky wire).
func (e *Err) Transient() bool { return e.Kind != KindCorrupt }

// Timeout implements the net.Error shape probes look for.
func (e *Err) Timeout() bool { return e.Kind == KindTimeout }

// Unwrap exposes the underlying errno-style cause.
func (e *Err) Unwrap() error {
	switch e.Kind {
	case KindTimeout:
		return os.ErrDeadlineExceeded
	case KindReset:
		return syscall.ECONNRESET
	default:
		return nil
	}
}

// Injector is a seeded fault source. One die roll decides each operation's
// fate, so a fixed seed replays the exact fault schedule. Safe for
// concurrent use.
type Injector struct {
	// Hold is how long the server-side Handler sits on a request before
	// failing it when injecting a timeout (default 50ms).
	Hold time.Duration
	// SlowBy is the latency one Slow injection adds before the operation
	// proceeds normally (default 25ms).
	SlowBy time.Duration

	rates Rates
	reg   *obs.Registry

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds an injector rolling at rates from seed. reg counts injections
// (nil means obs.Default; obs.Discard disables).
func New(seed int64, rates Rates, reg *obs.Registry) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		Hold:   50 * time.Millisecond,
		SlowBy: 25 * time.Millisecond,
		rates:  rates,
		reg:    obs.Or(reg),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// slow sleeps the injected latency, cut short if ctx dies first.
func (i *Injector) slow(ctx context.Context) {
	d := i.SlowBy
	if d <= 0 {
		d = 25 * time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// roll decides one operation's fate.
func (i *Injector) roll() (Kind, bool) {
	if i == nil || !i.rates.Any() {
		return "", false
	}
	i.mu.Lock()
	u := i.rng.Float64()
	i.mu.Unlock()
	for _, c := range []struct {
		kind Kind
		rate float64
	}{
		{KindTimeout, i.rates.Timeout},
		{Kind5xx, i.rates.Error5xx},
		{KindReset, i.rates.Reset},
		{KindCorrupt, i.rates.Corrupt},
		{KindSlow, i.rates.Slow},
	} {
		if u < c.rate {
			i.reg.Counter("fault_injected_total", "kind", string(c.kind)).Inc()
			return c.kind, true
		}
		u -= c.rate
	}
	return "", false
}

// RoundTripper wraps next (nil means http.DefaultTransport) with client-side
// injection: timeouts and resets replace the round trip's error, 5xx
// replaces its response, corrupt garbles the real response body.
func (i *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{inj: i, next: next}
}

type roundTripper struct {
	inj  *Injector
	next http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	k, ok := rt.inj.roll()
	if !ok {
		return rt.next.RoundTrip(req)
	}
	switch k {
	case KindSlow:
		rt.inj.slow(req.Context())
		return rt.next.RoundTrip(req)
	case KindTimeout, KindReset:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &Err{Kind: k}
	case Kind5xx:
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": {"text/plain"}},
			Body:    io.NopCloser(bytes.NewReader([]byte("fault: injected 5xx"))),
			Request: req,
		}, nil
	default: // KindCorrupt: serve the real response with a garbled body.
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body.Close()
		resp.Body = io.NopCloser(bytes.NewReader([]byte("\x00\xff<corrupt/>{{{")))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
}

// Handler wraps next with server-side injection: 5xx answers 503, reset
// hijacks and drops the connection mid-request, timeout holds the request
// for Hold then answers 504, corrupt serves a garbage 200.
func (i *Injector) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k, ok := i.roll()
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		switch k {
		case KindSlow:
			i.slow(r.Context())
			next.ServeHTTP(w, r)
		case Kind5xx:
			http.Error(w, "fault: injected 5xx", http.StatusServiceUnavailable)
		case KindReset:
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "fault: injected reset", http.StatusServiceUnavailable)
		case KindTimeout:
			hold := i.Hold
			if hold <= 0 {
				hold = 50 * time.Millisecond
			}
			select {
			case <-r.Context().Done():
			case <-time.After(hold):
			}
			http.Error(w, "fault: injected timeout", http.StatusGatewayTimeout)
		default: // KindCorrupt
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write([]byte("\x00\xff<corrupt/>{{{"))
		}
	})
}

// Resolver wraps a geocode.Resolver with injection: transient kinds become
// injected errors, corrupt becomes a permanent decode-style error. The
// wrapped resolver is not consulted on injected calls, keeping its cache
// untouched by faults.
func (i *Injector) Resolver(next geocode.Resolver) geocode.Resolver {
	return &resolver{inj: i, next: next}
}

type resolver struct {
	inj  *Injector
	next geocode.Resolver
}

// Reverse implements geocode.Resolver.
func (r *resolver) Reverse(ctx context.Context, p geo.Point) (geocode.Location, error) {
	if k, ok := r.inj.roll(); ok {
		if k == KindSlow {
			r.inj.slow(ctx)
			return r.next.Reverse(ctx, p)
		}
		return geocode.Location{}, &Err{Kind: k}
	}
	return r.next.Reverse(ctx, p)
}

// KV is the storage.Store surface faults are injected into; *storage.Store
// satisfies it.
type KV interface {
	Put(key string, val []byte) error
	Get(key string) ([]byte, error)
	Has(key string) bool
	Delete(key string) error
}

// Store wraps a KV with injection: transient and 5xx kinds fail the
// operation with an injected error, corrupt garbles the bytes a Get
// returns (Put stays honest — corrupting writes would poison the store
// beyond what a retry can fix).
func (i *Injector) Store(next KV) KV { return &store{inj: i, next: next} }

type store struct {
	inj  *Injector
	next KV
}

func (s *store) Put(key string, val []byte) error {
	if k, ok := s.inj.roll(); ok && k != KindCorrupt {
		if k == KindSlow {
			s.inj.slow(context.Background())
			return s.next.Put(key, val)
		}
		return &Err{Kind: k}
	}
	return s.next.Put(key, val)
}

func (s *store) Get(key string) ([]byte, error) {
	k, ok := s.inj.roll()
	if !ok {
		return s.next.Get(key)
	}
	if k == KindSlow {
		s.inj.slow(context.Background())
		return s.next.Get(key)
	}
	if k == KindCorrupt {
		val, err := s.next.Get(key)
		if err != nil {
			return nil, err
		}
		return []byte("\x00\xff<corrupt/>{{{" + string(val[:0])), nil
	}
	return nil, &Err{Kind: k}
}

func (s *store) Has(key string) bool { return s.next.Has(key) }
func (s *store) Delete(key string) error {
	if k, ok := s.inj.roll(); ok && k != KindCorrupt {
		if k == KindSlow {
			s.inj.slow(context.Background())
			return s.next.Delete(key)
		}
		return &Err{Kind: k}
	}
	return s.next.Delete(key)
}
