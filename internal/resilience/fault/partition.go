package fault

import (
	"io"
	"net/http"
	"sync"
	"time"

	"stir/internal/obs"
)

// Network-partition injection: where the Injector rolls one die per
// operation regardless of destination, a Partition models the *links*
// between this process and named hosts, each direction independently. That
// is the shape real partitions take — and the shape that breaks naive
// failure handling: an asymmetric link (requests die, or requests land but
// responses die) means the far side may have applied work the near side
// believes failed. The cluster's epoch fencing and tweet-ID dedup exist for
// exactly that hazard, and this injector is how the chaos suite proves it.
//
// Like the Injector, the schedule is seeded: probabilistic drops and
// duplicate deliveries draw from one seeded stream, so a failing chaos run
// replays bit-for-bit from nothing but its seed.

// Link describes the injected condition of the directed links between this
// process and one target host. The zero Link is a healthy link.
type Link struct {
	// DropRequests kills the outbound direction: the request never reaches
	// the target, and the caller sees a connection reset. The target stays
	// unaware anything was sent.
	DropRequests bool
	// DropResponses kills the return direction: the target receives and
	// fully processes the request, but the response is lost and the caller
	// sees an i/o timeout. The dangerous half of an asymmetric partition —
	// the work happened, the ack did not.
	DropResponses bool
	// DropRate drops outbound requests probabilistically (seeded), modelling
	// a flaky link rather than a dead one. Applied after DropRequests.
	DropRate float64
	// DupRate delivers the request twice (seeded): the first response is
	// discarded, the second returned — the retransmission double-delivery
	// idempotency probe. Requests whose body cannot be replayed are never
	// duplicated.
	DupRate float64
	// Delay adds a fixed one-way delay before the request is sent,
	// modelling a congested (but alive) link.
	Delay time.Duration
}

// dead reports whether the link injects anything at all.
func (l Link) dead() bool {
	return l.DropRequests || l.DropResponses || l.DropRate > 0 || l.DupRate > 0 || l.Delay > 0
}

// Partition is a seeded, host-keyed partition injector. Set/Heal flip links
// mid-run — the chaos tests partition a worker mid-ingest and heal it later
// — and RoundTripper enforces the current schedule on every outbound
// request. Safe for concurrent use.
type Partition struct {
	mu    sync.Mutex
	rng   *splitRand
	links map[string]Link
	sent  map[string]int64 // round trips that reached the wrapped transport
	reg   *obs.Registry
}

// NewPartition builds a partition controller drawing from seed. reg counts
// injections under fault_partition_total{host,mode} (nil means obs.Default;
// obs.Discard disables).
func NewPartition(seed int64, reg *obs.Registry) *Partition {
	if seed == 0 {
		seed = 1
	}
	return &Partition{
		rng:   newSplitRand(uint64(seed)),
		links: make(map[string]Link),
		sent:  make(map[string]int64),
		reg:   obs.Or(reg),
	}
}

// Set installs the link condition for one host:port (as it appears in the
// request URL). An existing rule for the host is replaced.
func (p *Partition) Set(host string, l Link) {
	p.mu.Lock()
	if l.dead() {
		p.links[host] = l
	} else {
		delete(p.links, host)
	}
	p.mu.Unlock()
}

// Heal restores the link to one host.
func (p *Partition) Heal(host string) { p.Set(host, Link{}) }

// HealAll restores every link.
func (p *Partition) HealAll() {
	p.mu.Lock()
	p.links = make(map[string]Link)
	p.mu.Unlock()
}

// Sent reports how many round trips to host actually reached the wrapped
// transport — dropped-request injections do not count, which is what lets
// tests assert "no bytes reached the wire while the worker was down".
func (p *Partition) Sent(host string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent[host]
}

// RoundTripper wraps next (nil means http.DefaultTransport) with the
// partition schedule.
func (p *Partition) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &partitionTripper{p: p, next: next}
}

type partitionTripper struct {
	p    *Partition
	next http.RoundTripper
}

// decide snapshots the link for host and rolls its probabilistic knobs under
// one lock, so the seeded stream is consumed in a deterministic per-request
// order.
func (p *Partition) decide(host string) (l Link, drop, dup bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l = p.links[host]
	if l.DropRate > 0 && p.rng.float64() < l.DropRate {
		drop = true
	}
	if l.DupRate > 0 && p.rng.float64() < l.DupRate {
		dup = true
	}
	return l, drop, dup
}

func (p *Partition) count(host, mode string) {
	p.reg.Counter("fault_partition_total", "host", host, "mode", mode).Inc()
}

func (p *Partition) markSent(host string) {
	p.mu.Lock()
	p.sent[host]++
	p.mu.Unlock()
}

func (t *partitionTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	l, drop, dup := t.p.decide(host)
	if l.Delay > 0 {
		t.p.count(host, "delay")
		timer := time.NewTimer(l.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
		case <-timer.C:
		}
	}
	if l.DropRequests || drop {
		// The request dies on the wire: the target never sees it.
		if req.Body != nil {
			req.Body.Close()
		}
		t.p.count(host, "drop_request")
		return nil, &Err{Kind: KindReset}
	}
	if dup && (req.Body == nil || req.GetBody != nil) {
		// Deliver twice; the target must treat the replay as idempotent.
		first := req.Clone(req.Context())
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err == nil {
				first.Body = body
				if resp, err := t.next.RoundTrip(first); err == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
					resp.Body.Close()
				}
				t.p.markSent(host)
				t.p.count(host, "dup")
			}
		} else {
			if resp, err := t.next.RoundTrip(first); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
			t.p.markSent(host)
			t.p.count(host, "dup")
		}
	}
	resp, err := t.next.RoundTrip(req)
	t.p.markSent(host)
	if err != nil {
		return resp, err
	}
	if l.DropResponses {
		// The target did the work; the ack dies on the way back.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		t.p.count(host, "drop_response")
		return nil, &Err{Kind: KindTimeout}
	}
	return resp, nil
}

// splitRand is a tiny seeded splitmix64 float source, so the partition
// schedule does not share (and perturb) the Injector's stream.
type splitRand struct{ s uint64 }

func newSplitRand(seed uint64) *splitRand { return &splitRand{s: seed} }

func (r *splitRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitRand) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
