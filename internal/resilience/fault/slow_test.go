package fault

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stir/internal/obs"
)

// TestSlowInjection covers the latency-only fault kind across every seam:
// the operation must still SUCCEED (slow is degradation, not failure — the
// shape the overload chaos test drives), just later.
func TestSlowInjection(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	t.Cleanup(backend.Close)

	inj := New(1, Rates{Slow: 1}, obs.Discard)
	inj.SlowBy = 30 * time.Millisecond

	// Client seam.
	client := &http.Client{Transport: inj.RoundTripper(nil)}
	start := time.Now()
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatalf("slow round trip failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("slow round trip body = %q, want ok", body)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("round trip took %v, want >= injected 30ms", elapsed)
	}

	// Server seam.
	sinj := New(1, Rates{Slow: 1}, obs.Discard)
	sinj.SlowBy = 30 * time.Millisecond
	h := sinj.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "served")
	}))
	start = time.Now()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "served" {
		t.Fatalf("slow handler = %d %q, want 200 served", rr.Code, rr.Body.String())
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("handler took %v, want >= injected 30ms", elapsed)
	}
}

func TestSlowRespectsContext(t *testing.T) {
	inj := New(1, Rates{Slow: 1}, obs.Discard)
	inj.SlowBy = 10 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	inj.slow(ctx)
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("slow ignored a dead context, slept %v", elapsed)
	}
}

func TestSlowRateFromEnv(t *testing.T) {
	t.Setenv(EnvSlow, "0.4")
	if r := RatesFromEnv(); r.Slow != 0.4 {
		t.Fatalf("Slow rate = %v, want 0.4", r.Slow)
	}
	if !(Rates{Slow: 0.1}).Any() {
		t.Fatal("Rates.Any must report a slow-only schedule")
	}
}
