package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync/atomic"
	"syscall"
	"testing"

	"stir/internal/obs"
)

// startEcho boots a server that counts the requests it actually receives
// and echoes the body back.
func startEcho(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var seen atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	}))
	t.Cleanup(srv.Close)
	return srv, &seen
}

func hostOf(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestPartitionDropRequestsNeverReachesServer(t *testing.T) {
	srv, seen := startEcho(t)
	reg := obs.NewRegistry()
	p := NewPartition(1, reg)
	client := &http.Client{Transport: p.RoundTripper(nil)}
	host := hostOf(t, srv.URL)
	p.Set(host, Link{DropRequests: true})

	_, err := client.Post(srv.URL, "text/plain", bytes.NewReader([]byte("hi")))
	if err == nil {
		t.Fatal("dropped request must fail the round trip")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("drop_request should look like a reset, got %v", err)
	}
	if seen.Load() != 0 {
		t.Fatalf("server saw %d requests across a dead A→B link", seen.Load())
	}
	if p.Sent(host) != 0 {
		t.Fatalf("Sent(%s) = %d, want 0", host, p.Sent(host))
	}
	if reg.Counter("fault_partition_total", "host", host, "mode", "drop_request").Value() != 1 {
		t.Fatal("drop_request not counted")
	}

	// Heal: the same client reaches the server again.
	p.Heal(host)
	resp, err := client.Post(srv.URL, "text/plain", bytes.NewReader([]byte("hi")))
	if err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
	resp.Body.Close()
	if seen.Load() != 1 || p.Sent(host) != 1 {
		t.Fatalf("healed link: server saw %d, sent %d", seen.Load(), p.Sent(host))
	}
}

// TestPartitionDropResponsesAppliesButLosesAck is the asymmetric hazard: the
// server processes the request (B received it), but the caller sees a
// timeout (B→A dead). Whatever the request did has happened without an ack.
func TestPartitionDropResponsesAppliesButLosesAck(t *testing.T) {
	srv, seen := startEcho(t)
	reg := obs.NewRegistry()
	p := NewPartition(1, reg)
	client := &http.Client{Transport: p.RoundTripper(nil)}
	host := hostOf(t, srv.URL)
	p.Set(host, Link{DropResponses: true})

	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped response must fail the round trip")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("drop_response should look like a timeout, got %v", err)
	}
	if seen.Load() != 1 {
		t.Fatalf("server must have processed the request, saw %d", seen.Load())
	}
	if reg.Counter("fault_partition_total", "host", host, "mode", "drop_response").Value() != 1 {
		t.Fatal("drop_response not counted")
	}
}

func TestPartitionDupDeliversTwice(t *testing.T) {
	srv, seen := startEcho(t)
	p := NewPartition(7, obs.NewRegistry())
	client := &http.Client{Transport: p.RoundTripper(nil)}
	host := hostOf(t, srv.URL)
	p.Set(host, Link{DupRate: 1})

	resp, err := client.Post(srv.URL, "text/plain", bytes.NewReader([]byte("once")))
	if err != nil {
		t.Fatalf("dup link must still answer: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "once" {
		t.Fatalf("dup returned wrong body %q", body)
	}
	if seen.Load() != 2 {
		t.Fatalf("DupRate=1 should deliver twice, server saw %d", seen.Load())
	}
}

// TestPartitionSeededDropRateReplays proves the probabilistic schedule is a
// pure function of the seed: two controllers with the same seed inject the
// same drops at the same positions; a different seed diverges.
func TestPartitionSeededDropRateReplays(t *testing.T) {
	srv, _ := startEcho(t)
	host := hostOf(t, srv.URL)
	run := func(seed int64) []bool {
		p := NewPartition(seed, obs.Discard)
		client := &http.Client{Transport: p.RoundTripper(nil)}
		p.Set(host, Link{DropRate: 0.4})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b, c := run(42), run(42), run(43)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different drop schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestPartitionUnlistedHostUntouched(t *testing.T) {
	srv, seen := startEcho(t)
	p := NewPartition(1, obs.Discard)
	client := &http.Client{Transport: p.RoundTripper(nil)}
	p.Set("10.0.0.1:1", Link{DropRequests: true})
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("unlisted host must pass through: %v", err)
	}
	resp.Body.Close()
	if seen.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", seen.Load())
	}
}
