// Acceptance chaos runs for the resilience layer: a degraded pipeline run
// under injected geocode faults accounts for every dropped user, and a crawl
// against a flaky API converges to the same store a fault-free crawl builds.
// Every schedule is seeded, so a failure replays bit-for-bit.
package fault_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"stir"
	"stir/internal/obs"
	"stir/internal/resilience/fault"
	"stir/internal/storage"
	"stir/internal/twitter"

	"net/http/httptest"
)

func TestChaosDegradedPipelineAccountsForEveryDrop(t *testing.T) {
	ctx := context.Background()
	ds, err := stir.NewKoreanDataset(stir.DatasetOptions{Seed: 1, Users: 300})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ds.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Strict mode under the same 10% fault schedule must abort...
	faults := stir.AnalyzeOptions{FaultRate: 0.1, FaultSeed: 42}
	if _, err := ds.AnalyzeWith(ctx, faults); err == nil {
		t.Fatal("strict run under injected faults should fail")
	}

	// ...while the degraded run completes and accounts for every drop.
	faults.ContinueOnError = true
	res, err := ds.AnalyzeWith(ctx, faults)
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if len(res.SkippedUsers) == 0 {
		t.Fatal("10% faults over 300 users must skip someone")
	}
	if res.Funnel.SkippedUsers != len(res.SkippedUsers) {
		t.Fatalf("funnel says %d skipped, result lists %d", res.Funnel.SkippedUsers, len(res.SkippedUsers))
	}
	for i := 1; i < len(res.SkippedUsers); i++ {
		if res.SkippedUsers[i] <= res.SkippedUsers[i-1] {
			t.Fatalf("SkippedUsers not sorted/unique at %d: %v", i, res.SkippedUsers)
		}
	}
	// Faults only remove users, and every fault-removed user is recorded:
	// the clean run's finals are exactly the degraded finals plus a subset
	// of the skips.
	if res.Funnel.FinalUsers > clean.Funnel.FinalUsers {
		t.Fatalf("degraded finals %d exceed clean finals %d", res.Funnel.FinalUsers, clean.Funnel.FinalUsers)
	}
	if res.Funnel.FinalUsers+len(res.SkippedUsers) < clean.Funnel.FinalUsers {
		t.Fatalf("finals %d + skipped %d do not cover clean finals %d: users dropped without record",
			res.Funnel.FinalUsers, len(res.SkippedUsers), clean.Funnel.FinalUsers)
	}

	// Same seed, same schedule, same skips.
	again, err := ds.AnalyzeWith(ctx, faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.SkippedUsers, res.SkippedUsers) {
		t.Fatalf("same seed skipped %v then %v", res.SkippedUsers, again.SkippedUsers)
	}
}

// chaosCommunity builds a small crawlable follower graph: a seed, 4 mid
// users, 2 leaves each — 13 users, geo tweets throughout.
func chaosCommunity(t *testing.T) (*twitter.Service, twitter.UserID) {
	t.Helper()
	svc := twitter.NewService()
	t0 := time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)
	seed, err := svc.CreateUser("seed", "Seoul Jongno-gu", "ko", t0)
	if err != nil {
		t.Fatal(err)
	}
	svc.PostTweet(seed.ID, "hello", t0, &twitter.GeoTag{Lat: 37.57, Lon: 126.98})
	for i := 0; i < 4; i++ {
		mid, err := svc.CreateUser("mid", "Seoul Mapo-gu", "ko", t0)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Follow(mid.ID, seed.ID); err != nil {
			t.Fatal(err)
		}
		svc.PostTweet(mid.ID, "mid", t0, &twitter.GeoTag{Lat: 37.55, Lon: 126.9})
		for j := 0; j < 2; j++ {
			leaf, err := svc.CreateUser("leaf", "Bucheon-si", "ko", t0)
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Follow(leaf.ID, mid.ID); err != nil {
				t.Fatal(err)
			}
			svc.PostTweet(leaf.ID, "leaf", t0, nil)
		}
	}
	return svc, seed.ID
}

// crawlStore crawls the API at baseURL into a fresh store and returns the
// collected users and tweets plus the store itself.
func crawlStore(t *testing.T, baseURL string, seed twitter.UserID) (map[twitter.UserID]*twitter.User, map[twitter.UserID][]*twitter.Tweet, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c := twitter.NewClient(baseURL)
	c.MaxBackoff = 20 * time.Millisecond
	c.MaxRetries = 30
	c.Metrics = obs.Discard
	cr := &twitter.Crawler{Client: c, Store: st, Metrics: obs.Discard}
	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatalf("crawl against %s: %v", baseURL, err)
	}
	if res.UsersQuarantined != 0 {
		t.Fatalf("transient-only faults quarantined %d users", res.UsersQuarantined)
	}
	users, tweets, err := twitter.LoadCollected(st)
	if err != nil {
		t.Fatal(err)
	}
	return users, tweets, st
}

func TestChaosFlakyCrawlConvergesToCleanStore(t *testing.T) {
	svc, seed := chaosCommunity(t)

	clean := httptest.NewServer(twitter.NewAPIServer(svc, twitter.ServerOptions{}))
	t.Cleanup(clean.Close)
	cleanUsers, cleanTweets, _ := crawlStore(t, clean.URL, seed)
	if len(cleanUsers) != 13 {
		t.Fatalf("clean crawl collected %d users, want 13", len(cleanUsers))
	}

	// 30% of requests answered with an injected reset or 503, on a fixed
	// schedule.
	inj := fault.New(2026, fault.Rates{Error5xx: 0.15, Reset: 0.15}, obs.Discard)
	flaky := httptest.NewServer(inj.Handler(twitter.NewAPIServer(svc, twitter.ServerOptions{})))
	t.Cleanup(flaky.Close)
	flakyUsers, flakyTweets, st := crawlStore(t, flaky.URL, seed)

	if !reflect.DeepEqual(flakyUsers, cleanUsers) {
		t.Fatalf("flaky crawl stored %d users, clean %d: contents diverge", len(flakyUsers), len(cleanUsers))
	}
	if !reflect.DeepEqual(flakyTweets, cleanTweets) {
		t.Fatalf("flaky crawl tweets diverge from clean crawl")
	}
	q, err := twitter.QuarantinedUsers(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 0 {
		t.Fatalf("quarantined %v despite transient-only faults", q)
	}
}
