package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
)

func noSleep(context.Context, time.Duration) error { return nil }

func traceAnnots(t *testing.T, tr *trace.Tracer) (trace.Record, map[string][]string) {
	t.Helper()
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want exactly 1 for the logical request", len(recs))
	}
	m := map[string][]string{}
	for _, a := range recs[0].Annots {
		m[a.Key] = append(m[a.Key], a.Val)
	}
	return recs[0], m
}

func TestRetryAnnotatesOneSpan(t *testing.T) {
	tr := trace.New(trace.Options{Service: "cli", Sample: 1, Metrics: obs.NewRegistry()})
	ctx, sp := tr.Root(context.Background(), "twitter.get /x")

	p := &Policy{MaxAttempts: 4, Metrics: obs.Discard, Sleep: noSleep}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("transient flake"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	sp.End()

	rec, annots := traceAnnots(t, tr)
	if rec.Name != "twitter.get /x" {
		t.Fatalf("span name %q", rec.Name)
	}
	// Two failed attempts annotated on the single span, plus the final count.
	if got := annots["retry.fail"]; len(got) != 2 || got[0] != "1 transient" || got[1] != "2 transient" {
		t.Fatalf("retry.fail = %v", got)
	}
	if len(annots["retry.backoff"]) != 2 {
		t.Fatalf("retry.backoff = %v", annots["retry.backoff"])
	}
	if got := annots["retry.attempts"]; len(got) != 1 || got[0] != "3" {
		t.Fatalf("retry.attempts = %v", got)
	}
}

func TestRetryAnnotatesExhaustionAndBreaker(t *testing.T) {
	tr := trace.New(trace.Options{Service: "cli", Sample: 1, Metrics: obs.NewRegistry()})
	ctx, sp := tr.Root(context.Background(), "op")

	// Breaker already open: every attempt is denied and annotated as such.
	b := NewBreaker("test", BreakerOptions{FailureThreshold: 1, OpenFor: time.Hour, Metrics: obs.Discard})
	b.Failure()
	p := &Policy{MaxAttempts: 2, Breaker: b, Metrics: obs.Discard, Sleep: noSleep}
	if err := p.Do(ctx, func(context.Context) error { return nil }); err == nil {
		t.Fatal("open breaker let the call through")
	}
	sp.End()

	_, annots := traceAnnots(t, tr)
	if got := annots["retry.breaker"]; len(got) != 2 || got[0] != "open" {
		t.Fatalf("retry.breaker = %v", got)
	}
	if got := annots["retry.outcome"]; len(got) != 1 || got[0] != "exhausted" {
		t.Fatalf("retry.outcome = %v", got)
	}
}

func TestRetryPermanentAnnotation(t *testing.T) {
	tr := trace.New(trace.Options{Service: "cli", Sample: 1, Metrics: obs.NewRegistry()})
	ctx, sp := tr.Root(context.Background(), "op")
	p := &Policy{MaxAttempts: 4, Metrics: obs.Discard, Sleep: noSleep}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return MarkPermanent(errors.New("bad request"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate permanent stop", err, calls)
	}
	sp.End()
	_, annots := traceAnnots(t, tr)
	if got := annots["retry.outcome"]; len(got) != 1 || got[0] != "permanent" {
		t.Fatalf("retry.outcome = %v", got)
	}
	if got := annots["retry.fail"]; len(got) != 1 || got[0] != "1 permanent" {
		t.Fatalf("retry.fail = %v", got)
	}
}

func TestRetryUntracedContextNoOp(t *testing.T) {
	// No span in ctx: Do must work identically and create no spans.
	p := &Policy{MaxAttempts: 3, Metrics: obs.Discard, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 2 {
			return MarkTransient(errors.New("flake"))
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
