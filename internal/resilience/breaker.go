package resilience

import (
	"errors"
	"sync"
	"time"

	"stir/internal/obs"
)

// ErrOpen is returned by Breaker.Allow while the circuit is open. It is
// classified transient: the breaker may re-close after its probe window.
var ErrOpen = errors.New("resilience: circuit open")

// State is a breaker's position.
type State int

const (
	// StateClosed passes every request through.
	StateClosed State = iota
	// StateOpen fails every request fast until OpenFor elapses.
	StateOpen
	// StateHalfOpen lets probe requests through; Probes consecutive
	// successes re-close the circuit, one failure re-opens it.
	StateHalfOpen
)

// String renders the state for logs.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultOpenFor          = 5 * time.Second
	DefaultProbes           = 1
)

// BreakerOptions configures a Breaker or every member of a BreakerGroup.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// circuit (default 5).
	FailureThreshold int
	// OpenFor is how long the circuit stays open before half-opening for a
	// probe (default 5s).
	OpenFor time.Duration
	// Probes is the consecutive half-open successes needed to close
	// (default 1).
	Probes int
	// Metrics receives resilience_breaker_state and trip counters (nil
	// means obs.Default; obs.Discard disables).
	Metrics *obs.Registry
	// Now is swappable for tests (nil = time.Now).
	Now func() time.Time
}

func (o BreakerOptions) fill() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = DefaultFailureThreshold
	}
	if o.OpenFor <= 0 {
		o.OpenFor = DefaultOpenFor
	}
	if o.Probes <= 0 {
		o.Probes = DefaultProbes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a closed/open/half-open circuit breaker. All methods are safe
// for concurrent use and safe on a nil receiver (a nil breaker never
// opens), so callers can thread an optional breaker without nil checks.
type Breaker struct {
	name string
	opts BreakerOptions

	mu        sync.Mutex
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time

	mState *obs.Gauge
	mTrips *obs.Counter
}

// NewBreaker builds a breaker whose metric series carry breaker=name.
func NewBreaker(name string, opts BreakerOptions) *Breaker {
	opts = opts.fill()
	reg := obs.Or(opts.Metrics)
	b := &Breaker{
		name:   name,
		opts:   opts,
		mState: reg.Gauge("resilience_breaker_state", "breaker", name),
		mTrips: reg.Counter("resilience_breaker_trips_total", "breaker", name),
	}
	b.mState.Set(float64(StateClosed))
	return b
}

// Allow reports whether a request may proceed right now: nil, or ErrOpen.
// An open circuit whose OpenFor window has elapsed half-opens and admits
// the caller as a probe.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if b.opts.Now().Sub(b.openedAt) < b.opts.OpenFor {
			return ErrOpen
		}
		b.setStateLocked(StateHalfOpen)
	}
	return nil
}

// Success reports a completed request.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures = 0
	case StateHalfOpen:
		b.successes++
		if b.successes >= b.opts.Probes {
			b.setStateLocked(StateClosed)
		}
	}
}

// Failure reports a failed request. While closed it counts toward the trip
// threshold; while half-open it re-opens immediately.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		b.trip()
	}
}

// trip opens the circuit (callers hold mu).
func (b *Breaker) trip() {
	b.setStateLocked(StateOpen)
	b.openedAt = b.opts.Now()
	b.mTrips.Inc()
}

func (b *Breaker) setStateLocked(s State) {
	b.state = s
	b.failures = 0
	b.successes = 0
	b.mState.Set(float64(s))
}

// State returns the current position (closed for a nil breaker).
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerGroup hands out one breaker per key (the convention is the remote
// host), so one flaky upstream trips only its own circuit.
type BreakerGroup struct {
	opts BreakerOptions

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerGroup builds a group whose members share opts.
func NewBreakerGroup(opts BreakerOptions) *BreakerGroup {
	return &BreakerGroup{opts: opts, m: make(map[string]*Breaker)}
}

// For returns the breaker for key, creating it on first use. Safe on a nil
// group (returns a nil — never-open — breaker).
func (g *BreakerGroup) For(key string) *Breaker {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[key]
	if !ok {
		b = NewBreaker(key, g.opts)
		g.m[key] = b
	}
	return b
}
