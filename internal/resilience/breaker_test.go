package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stir/internal/obs"
)

// clockBreaker builds a breaker on a manual clock the test advances.
func clockBreaker(t *testing.T, opts BreakerOptions) (*Breaker, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	opts.Now = func() time.Time { return now }
	if opts.Metrics == nil {
		opts.Metrics = obs.Discard
	}
	return NewBreaker("test", opts), &now
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := clockBreaker(t, BreakerOptions{FailureThreshold: 3})
	for i := 0; i < 2; i++ {
		b.Failure()
		if b.State() != StateClosed {
			t.Fatalf("opened after %d failures", i+1)
		}
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("not open after threshold failures")
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow = %v, want ErrOpen", err)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := clockBreaker(t, BreakerOptions{FailureThreshold: 2})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("non-consecutive failures should not trip")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, now := clockBreaker(t, BreakerOptions{FailureThreshold: 1, OpenFor: time.Second, Probes: 2})
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("should be open")
	}
	*now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe denied: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != StateHalfOpen {
		t.Fatal("closed before Probes successes")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatal("not closed after Probes successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := clockBreaker(t, BreakerOptions{FailureThreshold: 1, OpenFor: time.Second})
	b.Failure()
	*now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe denied: %v", err)
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("half-open failure should reopen")
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("reopened breaker should deny")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal("nil breaker should always allow")
	}
	b.Success()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("nil breaker state should read closed")
	}
}

func TestBreakerStateMetric(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker("api.example", BreakerOptions{FailureThreshold: 1, Metrics: reg})
	b.Failure()
	if m, ok := reg.Snapshot().Get("resilience_breaker_state", "breaker", "api.example"); !ok || m.Value != float64(StateOpen) {
		t.Fatalf("breaker_state = %+v ok=%v, want open", m, ok)
	}
	if m, ok := reg.Snapshot().Get("resilience_breaker_trips_total", "breaker", "api.example"); !ok || m.Value != 1 {
		t.Fatalf("trips_total = %+v ok=%v, want 1", m, ok)
	}
}

func TestBreakerGroupPerKey(t *testing.T) {
	g := NewBreakerGroup(BreakerOptions{FailureThreshold: 1, Metrics: obs.Discard})
	g.For("a").Failure()
	if g.For("a").State() != StateOpen {
		t.Fatal("a should be open")
	}
	if g.For("b").State() != StateClosed {
		t.Fatal("b should be unaffected")
	}
	if g.For("a") != g.For("a") {
		t.Fatal("For should return the same breaker per key")
	}
	var nilG *BreakerGroup
	if nilG.For("x") != nil {
		t.Fatal("nil group should hand out nil breakers")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker("race", BreakerOptions{FailureThreshold: 10, Metrics: obs.Discard})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Allow()
				if (n+j)%2 == 0 {
					b.Success()
				} else {
					b.Failure()
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}
