package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"syscall"
	"testing"
	"time"

	"stir/internal/obs"
)

// recordSleep swaps the policy's sleeper for one that records requested
// delays without actually sleeping.
func recordSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestClassifyChain(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil-ish unknown", errors.New("mystery"), ClassPermanent},
		{"marked transient", MarkTransient(errors.New("x")), ClassTransient},
		{"marked permanent overrides timeout", MarkPermanent(syscall.ETIMEDOUT), ClassPermanent},
		{"context canceled", fmt.Errorf("op: %w", context.Canceled), ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassPermanent},
		{"http 500", &StatusError{Status: 500}, ClassTransient},
		{"http 503 wrapped", fmt.Errorf("call: %w", &StatusError{Status: 503}), ClassTransient},
		{"http 429", &StatusError{Status: 429}, ClassTransient},
		{"http 404", &StatusError{Status: 404}, ClassPermanent},
		{"http 400", &StatusError{Status: 400}, ClassPermanent},
		{"conn reset", fmt.Errorf("read: %w", syscall.ECONNRESET), ClassTransient},
		{"conn refused", syscall.ECONNREFUSED, ClassTransient},
		{"unexpected EOF", io.ErrUnexpectedEOF, ClassTransient},
		{"breaker open", fmt.Errorf("gate: %w", ErrOpen), ClassTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
	if IsTransient(nil) {
		t.Error("IsTransient(nil) = true")
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 5, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Fatalf("calls = %d, sleeps = %d; want 3 and 2", calls, len(delays))
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 5, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
	calls := 0
	wantErr := &StatusError{Status: 404}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the 404", err)
	}
	if calls != 1 || len(delays) != 0 {
		t.Fatalf("calls = %d, sleeps = %d; want 1 and 0", calls, len(delays))
	}
}

func TestRetryExhaustion(t *testing.T) {
	var delays []time.Duration
	p := &Policy{MaxAttempts: 3, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
	calls := 0
	base := syscall.ECONNRESET
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("dial: %w", base)
	})
	if err == nil || !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped ECONNRESET", err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Fatalf("calls = %d, sleeps = %d; want 3 and 2", calls, len(delays))
	}
}

func TestRetryDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var delays []time.Duration
		p := &Policy{MaxAttempts: 6, Seed: 42, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
		p.Do(context.Background(), func(context.Context) error {
			return MarkTransient(errors.New("always"))
		})
		return delays
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("sleeps = %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Delays grow (exponential shape survives ±20% jitter at 2x growth).
	for i := 1; i < len(a)-1; i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("delay %d (%v) not greater than %v", i, a[i], a[i-1])
		}
	}
}

type retryAfterErr struct{ d time.Duration }

func (e *retryAfterErr) Error() string             { return "throttled" }
func (e *retryAfterErr) Transient() bool           { return true }
func (e *retryAfterErr) RetryAfter() time.Duration { return e.d }

func TestRetryHonoursRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	p := &Policy{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Minute,
		JitterFrac: -1, Metrics: obs.Discard, Sleep: recordSleep(&delays),
	}
	calls := 0
	p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &retryAfterErr{d: 750 * time.Millisecond}
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != 750*time.Millisecond {
		t.Fatalf("delays = %v, want [750ms]", delays)
	}
}

func TestRetryHintCappedAtMaxDelay(t *testing.T) {
	var delays []time.Duration
	p := &Policy{
		MaxAttempts: 2, MaxDelay: 100 * time.Millisecond,
		JitterFrac: -1, Metrics: obs.Discard, Sleep: recordSleep(&delays),
	}
	calls := 0
	p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &retryAfterErr{d: time.Hour}
		}
		return nil
	})
	if len(delays) != 1 || delays[0] != 100*time.Millisecond {
		t.Fatalf("delays = %v, want [100ms]", delays)
	}
}

func TestRetryAttemptTimeoutIsTransient(t *testing.T) {
	var delays []time.Duration
	p := &Policy{
		MaxAttempts: 3, AttemptTimeout: 5 * time.Millisecond,
		Metrics: obs.Discard, Sleep: recordSleep(&delays),
	}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 2 {
			<-ctx.Done() // burn the attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (deadline retried)", calls)
	}
}

func TestRetryParentCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Policy{MaxAttempts: 10, Metrics: obs.Discard,
		Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() }}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return MarkTransient(errors.New("flaky"))
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var delays []time.Duration
	p := &Policy{Name: "unit", MaxAttempts: 3, Metrics: reg, Sleep: recordSleep(&delays)}
	p.Do(context.Background(), func(context.Context) error {
		return MarkTransient(errors.New("always"))
	})
	snap := reg.Snapshot()
	if m, ok := snap.Get("resilience_retries_total", "policy", "unit"); !ok || m.Value != 2 {
		t.Fatalf("retries_total = %+v ok=%v, want 2", m, ok)
	}
	if m, ok := snap.Get("resilience_giveups_total", "policy", "unit"); !ok || m.Value != 1 {
		t.Fatalf("giveups_total = %+v ok=%v, want 1", m, ok)
	}
}

func TestRetryWithBreakerFailsFastWhenOpen(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker("up", BreakerOptions{
		FailureThreshold: 2, OpenFor: time.Hour, Metrics: obs.Discard,
		Now: func() time.Time { return now },
	})
	var delays []time.Duration
	p := &Policy{MaxAttempts: 5, Breaker: b, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return MarkTransient(errors.New("down"))
	})
	if err == nil {
		t.Fatal("want error")
	}
	// Two real attempts trip the breaker; the remaining three are denied.
	if calls != 2 {
		t.Fatalf("op calls = %d, want 2 (breaker should deny the rest)", calls)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}

func TestRetryUsesHTTPStatuser(t *testing.T) {
	// An http.Response-shaped failure path: 503 transient, then success.
	var delays []time.Duration
	p := &Policy{MaxAttempts: 3, Metrics: obs.Discard, Sleep: recordSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return &StatusError{Status: http.StatusServiceUnavailable}
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err = %v calls = %d, want nil and 2", err, calls)
	}
}
