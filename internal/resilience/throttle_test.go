package resilience

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"stir/internal/obs"
)

func TestIsThrottle(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("boom"), false},
		{"429 without hint", &StatusError{Status: http.StatusTooManyRequests}, true},
		{"503 with Retry-After", &StatusError{Status: http.StatusServiceUnavailable, Wait: time.Second}, true},
		{"503 without hint", &StatusError{Status: http.StatusServiceUnavailable}, false},
		{"500 without hint", &StatusError{Status: http.StatusInternalServerError}, false},
		{"wrapped shed", MarkTransient(&StatusError{Status: 503, Wait: 2 * time.Second}), true},
	}
	for _, c := range cases {
		if got := IsThrottle(c.err); got != c.want {
			t.Errorf("IsThrottle(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestBreakerIgnoresThrottles pins the contract the overload layer depends
// on: a server shedding with Retry-After is managing load, and clients that
// trip their breakers on sheds would turn that backpressure into an outage.
func TestBreakerIgnoresThrottles(t *testing.T) {
	reg := obs.NewRegistry()
	br := NewBreaker("shed", BreakerOptions{FailureThreshold: 2, Metrics: reg})
	p := &Policy{
		Name:        "shed",
		MaxAttempts: 6,
		Breaker:     br,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}

	shed := &StatusError{Status: http.StatusServiceUnavailable, Wait: time.Second}
	err := p.Do(context.Background(), func(context.Context) error { return shed })
	if err == nil {
		t.Fatal("Do succeeded, want exhausted attempts")
	}
	if got := br.State(); got != StateClosed {
		t.Fatalf("breaker state after 6 sheds = %v, want closed", got)
	}
	m, ok := reg.Snapshot().Get("resilience_throttled_total", "policy", "shed")
	if !ok || m.Value != 6 {
		t.Fatalf("resilience_throttled_total = %+v ok=%v, want 6", m, ok)
	}
}

// TestBreakerStillTripsOnFailures is the control: a genuine 500 (no
// Retry-After, not a 429) must keep feeding the breaker.
func TestBreakerStillTripsOnFailures(t *testing.T) {
	reg := obs.NewRegistry()
	br := NewBreaker("hard", BreakerOptions{FailureThreshold: 2, Metrics: reg})
	p := &Policy{
		Name:        "hard",
		MaxAttempts: 6,
		Breaker:     br,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}

	hard := &StatusError{Status: http.StatusInternalServerError}
	err := p.Do(context.Background(), func(context.Context) error { return hard })
	if err == nil {
		t.Fatal("Do succeeded, want failure")
	}
	if got := br.State(); got != StateOpen {
		t.Fatalf("breaker state after repeated 500s = %v, want open", got)
	}
}

// TestRetryAfterHintStretchesBackoff verifies the shed hint actually shapes
// the client's sleep: the first backoff would nominally be ~25ms, but the
// server asked for 300ms, so the client waits at least that.
func TestRetryAfterHintStretchesBackoff(t *testing.T) {
	var slept []time.Duration
	p := &Policy{
		Name:        "hinted",
		MaxAttempts: 2,
		JitterFrac:  -1, // deterministic delays
		Metrics:     obs.Discard,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	shed := &StatusError{Status: http.StatusServiceUnavailable, Wait: 300 * time.Millisecond}
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts == 1 {
			return shed
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(slept) != 1 || slept[0] != 300*time.Millisecond {
		t.Fatalf("slept %v, want exactly the 300ms server hint", slept)
	}
}
