// Package resilience is STIR's dependency-free fault-handling layer: a
// configurable retry policy (exponential backoff with deterministic seeded
// jitter, transient/permanent error classification, per-attempt and overall
// deadlines) and a closed/open/half-open circuit breaker keyed per host.
//
// The paper's dataset came out of long crawls against flaky external
// services (the Twitter APIs, the Yahoo geocoder); this package is what lets
// the collection and refinement stack ride out the faults those services
// throw instead of aborting hours of work on the first connection reset.
// Policies publish their activity to the internal/obs registry
// (resilience_retries_total, resilience_breaker_state, ...), and
// internal/resilience/fault provides the matching deterministic
// fault-injection harness so every failure path has a reproducible test.
package resilience

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"syscall"
	"time"
)

// Class is the retry-worthiness of an error.
type Class int

const (
	// ClassTransient errors are expected to clear on retry: timeouts,
	// connection resets, 5xx and 429 responses.
	ClassTransient Class = iota
	// ClassPermanent errors will not get better by retrying: 4xx responses,
	// cancelled contexts, malformed requests.
	ClassPermanent
)

// String renders the class for logs and metric labels.
func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "permanent"
}

// Predicate inspects an error and either classifies it definitely
// (ok=true) or passes it along the chain (ok=false).
type Predicate func(err error) (Class, bool)

// DefaultChain is the predicate chain Classify walks, in order. Explicit
// marks win, then context state, then protocol status, then network shape.
var DefaultChain = []Predicate{
	IsMarked,
	IsContextDone,
	IsHTTPStatus,
	IsNetworkTransient,
}

// Classify walks DefaultChain and returns the first definite class.
// Unrecognised errors default to permanent: retrying blind hides bugs.
func Classify(err error) Class {
	if err == nil {
		return ClassPermanent
	}
	for _, p := range DefaultChain {
		if c, ok := p(err); ok {
			return c
		}
	}
	return ClassPermanent
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return err != nil && Classify(err) == ClassTransient }

// marked is the wrapper MarkTransient/MarkPermanent attach.
type marked struct {
	err error
	cls Class
}

func (m *marked) Error() string { return m.err.Error() }
func (m *marked) Unwrap() error { return m.err }

// MarkTransient wraps err so Classify reports it transient regardless of
// its shape. nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, cls: ClassTransient}
}

// MarkPermanent wraps err so Classify reports it permanent, overriding any
// transient shape underneath — the escape hatch for "a timeout here means
// the input is bad, stop retrying".
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &marked{err: err, cls: ClassPermanent}
}

// Transienter lets error types carry their own classification (the fault
// injector's errors do).
type Transienter interface{ Transient() bool }

// IsMarked classifies errors wrapped by MarkTransient/MarkPermanent, errors
// implementing Transienter, and the breaker's ErrOpen (transient: the
// breaker may re-close after its probe window).
func IsMarked(err error) (Class, bool) {
	var m *marked
	if errors.As(err, &m) {
		return m.cls, true
	}
	var t Transienter
	if errors.As(err, &t) {
		if t.Transient() {
			return ClassTransient, true
		}
		return ClassPermanent, true
	}
	if errors.Is(err, ErrOpen) {
		return ClassTransient, true
	}
	return 0, false
}

// IsContextDone classifies cancelled or deadline-expired contexts as
// permanent: the caller gave up, retrying fights the caller. (Policy.Do
// itself distinguishes a per-attempt deadline from the parent's.)
func IsContextDone(err error) (Class, bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassPermanent, true
	}
	return 0, false
}

// HTTPStatuser lets protocol error types expose their status code without
// this package importing them (twitter.APIError implements it).
type HTTPStatuser interface{ HTTPStatus() int }

// StatusError is a bare HTTP status failure for callers with no richer
// error type of their own (the geocode client wraps 5xx responses in it).
// Wait carries a server-advertised Retry-After when the response had one,
// which marks the error as a cooperative shed (see IsThrottle).
type StatusError struct {
	Status int
	Wait   time.Duration
}

// Error implements error.
func (e *StatusError) Error() string {
	return "resilience: http status " + http.StatusText(e.Status)
}

// HTTPStatus implements HTTPStatuser.
func (e *StatusError) HTTPStatus() int { return e.Status }

// RetryAfter implements RetryAfterer (zero when the server gave no hint).
func (e *StatusError) RetryAfter() time.Duration { return e.Wait }

// IsThrottle reports whether err is a cooperative shed: the server is alive
// and explicitly asking the caller to back off, either with a 429 or with a
// Retry-After hint on any status (overload sheds answer 503 + Retry-After).
// Throttles are retried like any transient error, but they must NOT feed the
// circuit breaker's failure count — tripping the breaker on "please slow
// down" would turn cooperative backpressure into an outage, and the whole
// point of server-side admission control is that clients ride a shed out.
func IsThrottle(err error) bool {
	if err == nil {
		return false
	}
	var ra RetryAfterer
	if errors.As(err, &ra) && ra.RetryAfter() > 0 {
		return true
	}
	var h HTTPStatuser
	return errors.As(err, &h) && h.HTTPStatus() == http.StatusTooManyRequests
}

// IsHTTPStatus classifies errors exposing an HTTP status: 5xx, 429 and 408
// are transient, every other status permanent.
func IsHTTPStatus(err error) (Class, bool) {
	var h HTTPStatuser
	if !errors.As(err, &h) {
		return 0, false
	}
	s := h.HTTPStatus()
	switch {
	case s >= 500,
		s == http.StatusTooManyRequests,
		s == http.StatusRequestTimeout:
		return ClassTransient, true
	default:
		return ClassPermanent, true
	}
}

// IsNetworkTransient classifies wire-level failures: timeouts, connection
// resets/refusals, broken pipes and truncated reads are all transient.
func IsNetworkTransient(err error) (Class, bool) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTransient, true
	}
	switch {
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.EOF):
		return ClassTransient, true
	}
	return 0, false
}
