package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
)

// Retry defaults, applied field-by-field when a Policy leaves them zero.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 25 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
	DefaultJitterFrac  = 0.2
)

// Policy is a reusable retry policy: exponential backoff with deterministic
// seeded jitter, transient/permanent classification, optional per-attempt
// and overall deadlines, and an optional circuit breaker consulted before
// every attempt. The zero value is usable and retries with the defaults
// above. A Policy is safe for concurrent use.
type Policy struct {
	// Name labels the policy's metric series (default "default").
	Name string
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep, including Retry-After hints
	// (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// JitterFrac spreads each delay uniformly in ±frac around its nominal
	// value (default 0.2; negative disables). The jitter stream is seeded,
	// so a fixed Seed reproduces the exact sleep sequence.
	JitterFrac float64
	// Seed fixes the jitter stream (default 1).
	Seed int64
	// AttemptTimeout bounds one attempt (0 = none). An attempt that dies of
	// this deadline while the parent context is still alive is transient.
	AttemptTimeout time.Duration
	// Budget bounds the whole Do call, sleeps included (0 = none).
	Budget time.Duration
	// Classify overrides the package-level Classify (nil = default chain).
	Classify func(error) Class
	// Breaker, when set, gates every attempt: open-circuit attempts fail
	// fast with ErrOpen and still consume attempts/backoff, and outcomes
	// are reported back to the breaker.
	Breaker *Breaker
	// Metrics receives the policy's series (nil means obs.Default;
	// obs.Discard disables).
	Metrics *obs.Registry
	// Sleep is swappable for tests (nil = timer honouring ctx).
	Sleep func(context.Context, time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
}

// RetryAfterer lets errors carry a server-advertised wait (a 429's
// Retry-After); Do sleeps max(backoff, hint), capped at MaxDelay.
type RetryAfterer interface{ RetryAfter() time.Duration }

// Do runs op until it succeeds, a permanent error surfaces, attempts run
// out, or the context/budget dies. The error returned is the last attempt's
// (wrapped with attempt accounting when retries were exhausted).
func (p *Policy) Do(ctx context.Context, op func(context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	name := p.Name
	if name == "" {
		name = "default"
	}
	classify := p.Classify
	if classify == nil {
		classify = Classify
	}
	reg := obs.Or(p.Metrics)
	// The active span is the caller's logical-request span (e.g. the twitter
	// client's): N attempts annotate that one span rather than spawning N.
	// Every annotation below is guarded so the unsampled path builds nothing.
	sp := trace.FromContext(ctx)
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("resilience: %w (after %d attempts: %v)", err, attempt, lastErr)
			}
			return err
		}
		err := p.Breaker.Allow()
		denied := err != nil
		if !denied {
			err = p.attempt(ctx, op)
		}
		if err == nil {
			p.Breaker.Success()
			if sp != nil && attempt > 0 {
				sp.AnnotateInt("retry.attempts", int64(attempt+1))
			}
			return nil
		}
		lastErr = err
		cls := classify(err)
		// A per-attempt deadline with the parent still alive is the attempt
		// timing out, not the caller giving up.
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil && p.AttemptTimeout > 0 {
			cls = ClassTransient
		}
		if sp != nil {
			if denied {
				sp.Annotate("retry.breaker", "open")
			} else {
				outcome := cls.String()
				if IsThrottle(err) {
					outcome = "throttle"
				}
				sp.Annotate("retry.fail", strconv.Itoa(attempt+1)+" "+outcome)
			}
		}
		if !denied {
			// Cooperative sheds (429, or Retry-After on any status) are the
			// server managing load, not the server failing: back off without
			// counting them toward the breaker's trip threshold.
			if IsThrottle(err) {
				reg.Counter("resilience_throttled_total", "policy", name).Inc()
			} else {
				p.Breaker.Failure()
			}
		}
		if cls == ClassPermanent {
			reg.Counter("resilience_permanent_total", "policy", name).Inc()
			sp.Annotate("retry.outcome", "permanent")
			return err
		}
		if attempt == attempts-1 {
			break
		}
		d := p.delay(attempt)
		var ra RetryAfterer
		if errors.As(err, &ra) {
			if hint := ra.RetryAfter(); hint > d {
				d = min(hint, p.maxDelay())
			}
		}
		reg.Counter("resilience_retries_total", "policy", name).Inc()
		reg.Histogram("resilience_backoff_seconds", obs.DefBuckets, "policy", name).ObserveDuration(d)
		if sp != nil {
			sp.AnnotateDuration("retry.backoff", d)
		}
		if serr := p.sleep(ctx, d); serr != nil {
			return fmt.Errorf("resilience: %w (after %d attempts: %v)", serr, attempt+1, lastErr)
		}
	}
	reg.Counter("resilience_giveups_total", "policy", name).Inc()
	if sp != nil {
		sp.Annotate("retry.outcome", "exhausted")
		sp.AnnotateInt("retry.attempts", int64(attempts))
	}
	return fmt.Errorf("resilience: %d attempts exhausted: %w", attempts, lastErr)
}

// attempt runs op once under the per-attempt deadline.
func (p *Policy) attempt(ctx context.Context, op func(context.Context) error) error {
	if p.AttemptTimeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
	defer cancel()
	return op(actx)
}

// delay computes the jittered exponential backoff for one attempt.
func (p *Policy) delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = DefaultMultiplier
	}
	maxD := p.maxDelay()
	d := float64(base) * math.Pow(mult, float64(attempt))
	if d > float64(maxD) {
		d = float64(maxD)
	}
	frac := p.JitterFrac
	if frac == 0 {
		frac = DefaultJitterFrac
	}
	if frac > 0 {
		p.mu.Lock()
		if p.rng == nil {
			seed := p.Seed
			if seed == 0 {
				seed = 1
			}
			p.rng = rand.New(rand.NewSource(seed))
		}
		u := p.rng.Float64()
		p.mu.Unlock()
		d *= 1 - frac + 2*frac*u
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

func (p *Policy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return DefaultMaxDelay
	}
	return p.MaxDelay
}

func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
