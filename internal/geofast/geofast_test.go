package geofast

import (
	"math"
	"testing"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/obs"
)

func koreaGrid(t *testing.T, slack float64) (*Grid, *admin.Gazetteer) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Compile(gaz, Options{SlackKm: slack})
	if err != nil {
		t.Fatal(err)
	}
	return g, gaz
}

func TestCompileShape(t *testing.T) {
	g, gaz := koreaGrid(t, 10)
	rows, cols := g.Cells()
	if rows < 1 || cols < 1 {
		t.Fatalf("degenerate grid %dx%d", rows, cols)
	}
	if rows*cols > 4<<20 {
		t.Fatalf("grid %dx%d exceeds the default cell budget", rows, cols)
	}
	st := g.Stats()
	if st.Districts != gaz.Len() {
		t.Fatalf("districts = %d, want %d", st.Districts, gaz.Len())
	}
	if st.Cells != rows*cols {
		t.Fatalf("cells = %d, want %d", st.Cells, rows*cols)
	}
	if st.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
	if st.Bytes != int64(st.Cells)*2 {
		t.Fatalf("bytes = %d, want %d", st.Bytes, st.Cells*2)
	}
	// The whole point of the subsystem: most of the extent must resolve
	// without the R-tree. Korea's districts are sparse circles, so constant
	// + no-match cells should dominate by a wide margin.
	if frac := float64(st.BoundaryCells) / float64(st.Cells); frac > 0.5 {
		t.Fatalf("%.1f%% boundary cells — grid is not earning its memory", frac*100)
	}
}

func TestCompileRejectsEmptyGazetteer(t *testing.T) {
	gaz, err := admin.NewGazetteer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(gaz, Options{}); err == nil {
		t.Fatal("Compile accepted an empty gazetteer")
	}
}

func TestLookupCounters(t *testing.T) {
	g, _ := koreaGrid(t, 10)
	// Seoul city hall: deep inside a district, must be a constant cell.
	if d, v := g.Lookup(37.5665, 126.9780); v != Constant || d == nil {
		t.Fatalf("Seoul lookup = %v, %v; want a constant district", d, v)
	}
	// Middle of the Pacific: out of extent.
	if d, v := g.Lookup(0, -150); v != NoMatch || d != nil {
		t.Fatalf("Pacific lookup = %v, %v; want NoMatch", d, v)
	}
	// NaN and invalid coordinates are definite misses, never a panic.
	for _, p := range [][2]float64{{math.NaN(), 127}, {37, math.NaN()}, {91, 127}, {37, 181}} {
		if _, v := g.Lookup(p[0], p[1]); v != NoMatch {
			t.Fatalf("Lookup(%v, %v) = %v, want NoMatch", p[0], p[1], v)
		}
	}
	st := g.Stats()
	if st.Fast < 1 || st.NoMatch < 5 || st.Lookups != st.Fast+st.NoMatch+st.Boundary {
		t.Fatalf("counters inconsistent: %+v", st)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Constant: "constant", Nearest: "nearest", Boundary: "boundary", NoMatch: "nomatch", Verdict(9): "Verdict(9)"} {
		if got := v.String(); got != want {
			t.Fatalf("Verdict(%d).String() = %q, want %q", v, got, want)
		}
	}
}

func TestResolveBulkMatchesResolve(t *testing.T) {
	g, _ := koreaGrid(t, 10)
	pts := []geo.Point{
		{Lat: 37.5665, Lon: 126.9780},
		{Lat: 35.1796, Lon: 129.0756},
		{Lat: 0, Lon: -150},
		{Lat: 33.4996, Lon: 126.5312},
	}
	out := g.ResolveBulk(pts, nil)
	if len(out) != len(pts) {
		t.Fatalf("bulk returned %d results for %d points", len(out), len(pts))
	}
	for i, p := range pts {
		d, ok := g.Resolve(p.Lat, p.Lon)
		if (out[i] == nil) == ok || out[i] != d {
			t.Fatalf("bulk[%d] = %v, Resolve = %v/%v", i, out[i], d, ok)
		}
	}
	// The output slice must be reused when it is big enough.
	prev := out
	out = g.ResolveBulk(pts[:2], out)
	if &out[0] != &prev[0] {
		t.Fatal("ResolveBulk reallocated a sufficient out slice")
	}
	if len(out) != 2 {
		t.Fatalf("bulk reuse returned %d results, want 2", len(out))
	}
}

func TestRegisterMetrics(t *testing.T) {
	g, _ := koreaGrid(t, 10)
	reg := obs.NewRegistry()
	RegisterMetrics(reg, "test", g)
	g.Lookup(37.5665, 126.9780)
	g.ResolveBulk([]geo.Point{{Lat: 37.5665, Lon: 126.9780}}, nil)
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, m := range snap.Metrics {
		found[m.Name] = true
	}
	for _, name := range []string{
		"stir_geofast_lookups_total", "stir_geofast_fast_total",
		"stir_geofast_boundary_fallbacks_total", "stir_geofast_cells",
		"stir_geofast_build_seconds", "stir_geofast_bulk_batch_size",
	} {
		if !found[name] {
			t.Fatalf("metric %s not registered (have %v)", name, found)
		}
	}
	// Re-registering (a rebuilt grid under the same name) must not panic.
	RegisterMetrics(reg, "test", g)
}
