package geofast

import (
	"math/rand"
	"testing"

	"stir/internal/admin"
	"stir/internal/geo"
)

// firehosePoints draws seeded points the way the firehose produces them and
// the synth generator models them: GPS tweets half-normal around district
// centres (people tweet from inside districts), plus a small share of strays
// — uniform over the whole extent and far out-of-coverage misses.
func firehosePoints(g *Grid, n int) []geo.Point {
	rng := rand.New(rand.NewSource(7))
	ds := g.gaz.Districts()
	ext := g.Extent()
	dLat := ext.MaxLat - ext.MinLat
	dLon := ext.MaxLon - ext.MinLon
	pts := make([]geo.Point, n)
	for i := range pts {
		switch r := rng.Float64(); {
		case r < 0.02: // strays anywhere over the coverage area
			pts[i] = geo.Point{
				Lat: ext.MinLat + rng.Float64()*dLat,
				Lon: ext.MinLon + rng.Float64()*dLon,
			}
		case r < 0.03: // far out-of-coverage misses
			pts[i] = geo.Point{Lat: rng.Float64()*20 - 10, Lon: -150 + rng.Float64()*40}
		default: // in-district GPS tweets, the synth generator's distribution
			d := ds[rng.Intn(len(ds))]
			dist := rng.NormFloat64() * d.RadiusKm / 2.2
			if dist < 0 {
				dist = -dist
			}
			if dist > d.RadiusKm*0.95 {
				dist = d.RadiusKm * 0.95
			}
			pts[i] = d.Center.Destination(rng.Float64()*360, dist)
		}
	}
	return pts
}

// uniformPoints draws seeded points uniformly over the extent plus a fringe
// of misses — an adversarial mix that oversamples district seams and slack
// annuli relative to any real feed.
func uniformPoints(g *Grid, n int) []geo.Point {
	rng := rand.New(rand.NewSource(7))
	ext := g.Extent()
	dLat := ext.MaxLat - ext.MinLat
	dLon := ext.MaxLon - ext.MinLon
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			Lat: ext.MinLat - 0.05*dLat + rng.Float64()*1.1*dLat,
			Lon: ext.MinLon - 0.05*dLon + rng.Float64()*1.1*dLon,
		}
	}
	return pts
}

// benchPoints is the shared default mix for tests that count verdicts.
func benchPoints(g *Grid, n int) []geo.Point { return uniformPoints(g, n) }

func benchGrid(b *testing.B) *Grid {
	b.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		b.Fatal(err)
	}
	g, err := Compile(gaz, Options{SlackKm: 10})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkGeofastResolveBulk is the BENCH_geocode.json headline: batched
// firehose-shaped points through the compiled grid, zero allocations,
// ≥10M points/sec.
func BenchmarkGeofastResolveBulk(b *testing.B) {
	g := benchGrid(b)
	const batch = 4096
	pts := firehosePoints(g, batch)
	out := make([]*admin.District, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = g.ResolveBulk(pts, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkGeofastResolveBulkUniform stresses the grid with the adversarial
// uniform-over-extent mix, which hits boundary cells ~30x more often than
// real traffic — the honest lower bound.
func BenchmarkGeofastResolveBulkUniform(b *testing.B) {
	g := benchGrid(b)
	const batch = 4096
	pts := uniformPoints(g, batch)
	out := make([]*admin.District, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = g.ResolveBulk(pts, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkGeofastResolve is the single-point hot path.
func BenchmarkGeofastResolve(b *testing.B) {
	g := benchGrid(b)
	pts := firehosePoints(g, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i&4095]
		g.Resolve(p.Lat, p.Lon)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkRTreeResolvePoint is the pre-geofast baseline the grid replaces:
// the gazetteer's R-tree walk per point, on the same firehose mix.
func BenchmarkRTreeResolvePoint(b *testing.B) {
	g := benchGrid(b)
	pts := firehosePoints(g, 4096)
	gaz := g.gaz
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gaz.ResolvePoint(pts[i&4095], 10)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkGeofastCompile tracks grid build cost (startup budget).
func BenchmarkGeofastCompile(b *testing.B) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(gaz, Options{SlackKm: 10}); err != nil {
			b.Fatal(err)
		}
	}
}
