package geofast

import "stir/internal/obs"

// RegisterMetrics publishes the grid's counters and build-time shape on reg
// as the stir_geofast_* series, labelled by grid (the embedding site:
// "pipeline", "stream", "geocoded", ...). Gauge registration is
// replace-on-reregister, so rebuilding a grid under the same name is safe.
func RegisterMetrics(reg *obs.Registry, name string, g *Grid) {
	if g == nil {
		return
	}
	reg = obs.Or(reg)
	reg.GaugeFunc("stir_geofast_lookups_total", func() float64 { return float64(g.Stats().Lookups) }, "grid", name)
	reg.GaugeFunc("stir_geofast_fast_total", func() float64 { return float64(g.fast.Load()) }, "grid", name)
	reg.GaugeFunc("stir_geofast_nomatch_total", func() float64 { return float64(g.noMatch.Load()) }, "grid", name)
	reg.GaugeFunc("stir_geofast_boundary_fallbacks_total", func() float64 { return float64(g.boundary.Load()) }, "grid", name)
	reg.GaugeFunc("stir_geofast_cells", func() float64 { return float64(len(g.cells)) }, "grid", name)
	reg.GaugeFunc("stir_geofast_boundary_cells", func() float64 { return float64(g.boundaryCell) }, "grid", name)
	reg.GaugeFunc("stir_geofast_singlecheck_cells", func() float64 { return float64(g.singleCells) }, "grid", name)
	reg.GaugeFunc("stir_geofast_nomatch_cells", func() float64 { return float64(g.noMatchCells) }, "grid", name)
	reg.GaugeFunc("stir_geofast_districts", func() float64 { return float64(len(g.districts)) }, "grid", name)
	reg.GaugeFunc("stir_geofast_bytes", func() float64 { return float64(len(g.cells) * 2) }, "grid", name)
	reg.GaugeFunc("stir_geofast_build_seconds", func() float64 { return g.buildTime.Seconds() }, "grid", name)
	g.bulkHist.Store(reg.Histogram("stir_geofast_bulk_batch_size", obs.SizeBuckets, "grid", name))
}
