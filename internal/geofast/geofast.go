// Package geofast compiles the admin gazetteer into an immutable, flat
// cell→district lookup grid for memory-speed reverse geocoding.
//
// The paper's §III funnel reverse-geocodes every GPS tweet and every
// GPS-shaped profile into an administrative district. The exact resolver
// (admin.Gazetteer.ResolvePoint) walks an R-tree and computes haversine
// distances per candidate; behind the HTTP service it also pays XML and a
// network hop. geofast removes all of that from the hot path: the gazetteer's
// extent is quantised into a uniform grid backed by a single []uint16 slice,
// and every cell is classified once at build time:
//
//   - constant: one district provably wins ResolvePoint for every point of
//     the cell — by containment ("exact") or by the nearest-district slack
//     fallback ("nearest") — so the lookup is two multiplies, an add and a
//     slice load;
//   - single-check: only one district can possibly match anywhere in the
//     cell, but whether a given point is inside it, within slack of it, or
//     beyond it varies — one haversine against that district decides;
//   - no-match: every point of the cell is provably beyond every district's
//     reach (radius + slack) — resolved without touching the gazetteer;
//   - boundary: several districts compete and the winner varies (district
//     seams, overlapping metros) — Resolve delegates to the exact R-tree
//     resolver so results stay bit-for-bit identical.
//
// Classification is sound, never heuristic: a cell is marked constant or
// single-check only when conservative distance bounds (corner haversines
// widened by the cell half-diagonal, plus a Nearest-8 membership proof for
// the fallback phase) guarantee the verdict for the whole cell, so Resolve
// agrees with ResolvePoint on every input, including cell-boundary and
// out-of-extent points. The differential property test in this package pins
// that against both the R-tree and a brute-force linear index.
package geofast

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/obs"
)

// Cell codes. With D districts, [0, D) is a constant containment winner
// ("exact"), [D, 2D) a constant fallback winner ("nearest"), [2D, 3D) a
// single-check cell; the two top values are sentinels.
const (
	cellNoMatch  = 0xFFFF // provably no district within reach anywhere in the cell
	cellBoundary = 0xFFFE // mixed cell: delegate to the exact resolver
)

// MaxDistricts is the largest gazetteer a grid can compile: the three code
// classes must fit under the sentinels.
const MaxDistricts = (cellBoundary - 1) / 3

// Verdict is the classification a Lookup returns.
type Verdict uint8

const (
	// Constant means the point resolves by containment (quality "exact").
	Constant Verdict = iota
	// Nearest means the point resolves through the slack fallback
	// (quality "nearest").
	Nearest
	// Boundary means the cell needs the exact resolver.
	Boundary
	// NoMatch means no district matches the point.
	NoMatch
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Constant:
		return "constant"
	case Nearest:
		return "nearest"
	case Boundary:
		return "boundary"
	case NoMatch:
		return "nomatch"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Options configures Compile.
type Options struct {
	// SlackKm mirrors the resolver's nearest-district fallback: how far
	// outside a district extent a point may fall and still resolve to it.
	// Zero means the pipeline default (10 km); negative disables the
	// fallback, like ResolvePoint with negative slack.
	SlackKm float64
	// MaxCells bounds rows*cols (default 4Mi ≈ 8 MiB of cells). The cell
	// edge grows until the extent fits.
	MaxCells int
	// MinCellDeg floors the cell edge in degrees (default 0.001, the
	// geocode client's quantisation lattice — finer buys nothing).
	MinCellDeg float64
}

// Grid is the compiled lookup structure. It is immutable after Compile and
// safe for concurrent use; the stats counters are atomic.
type Grid struct {
	gaz       *admin.Gazetteer
	districts []*admin.District
	slack     float64

	extent           geo.Rect
	rows, cols       int
	cellLat, cellLon float64
	invCellLat       float64
	invCellLon       float64
	cells            []uint16 // the single backing slice, rows*cols cells

	// Struct-of-arrays district mirror for the alloc-free boundary scan:
	// a few KiB that stay L1-resident while the R-tree walk would chase
	// pointers and allocate.
	dBounds []geo.Rect
	dRad    []float64

	singleCells  int
	boundaryCell int
	noMatchCells int
	buildTime    time.Duration

	fast     atomic.Int64 // grid-speed answers (constant + single-check hits)
	boundary atomic.Int64 // lookups that landed in a boundary cell
	noMatch  atomic.Int64 // definite no-match answers
	bulkHist atomic.Pointer[obs.Histogram]
}

// Stats is a snapshot of the grid's shape and lookup counters.
type Stats struct {
	// Lookups is the total number of point lookups served.
	Lookups int64
	// Fast counts grid-speed district answers (the zero-alloc path).
	Fast int64
	// NoMatch counts definite no-match answers (also zero-alloc).
	NoMatch int64
	// Boundary counts lookups that landed in a boundary cell and fell back
	// to the exact R-tree resolver.
	Boundary int64
	// Cells is rows*cols; SingleCheckCells, BoundaryCells and NoMatchCells
	// classify the non-constant ones.
	Cells            int
	SingleCheckCells int
	BoundaryCells    int
	NoMatchCells     int
	// Districts is the compiled gazetteer size.
	Districts int
	// Bytes is the size of the backing cell slice.
	Bytes int64
	// BuildTime is how long Compile took.
	BuildTime time.Duration
}

// Stats returns a snapshot of the grid's counters.
func (g *Grid) Stats() Stats {
	fast, nm, bd := g.fast.Load(), g.noMatch.Load(), g.boundary.Load()
	return Stats{
		Lookups:          fast + nm + bd,
		Fast:             fast,
		NoMatch:          nm,
		Boundary:         bd,
		Cells:            len(g.cells),
		SingleCheckCells: g.singleCells,
		BoundaryCells:    g.boundaryCell,
		NoMatchCells:     g.noMatchCells,
		Districts:        len(g.districts),
		Bytes:            int64(len(g.cells)) * 2,
		BuildTime:        g.buildTime,
	}
}

// Extent returns the compiled coverage rectangle (gazetteer bounds grown by
// every district's reach).
func (g *Grid) Extent() geo.Rect { return g.extent }

// Cells returns the grid resolution.
func (g *Grid) Cells() (rows, cols int) { return g.rows, g.cols }

// CellSize returns the cell edge lengths in degrees.
func (g *Grid) CellSize() (dLat, dLon float64) { return g.cellLat, g.cellLon }

// SlackKm returns the compiled nearest-fallback slack.
func (g *Grid) SlackKm() float64 { return g.slack }

// kmPerDeg upper-bounds the haversine length of one degree of latitude (and
// of longitude at the equator): the true value is π·R/180 ≈ 111.195 km.
const kmPerDeg = 111.4

// Compile classifies every cell of the quantised extent against the
// gazetteer. The build walks each district's reach rectangle once
// (CSR-style candidate lists), then proves each candidate cell's verdict
// with conservative corner-distance bounds.
func Compile(gaz *admin.Gazetteer, opts Options) (*Grid, error) {
	start := time.Now()
	districts := gaz.Districts()
	if len(districts) == 0 {
		return nil, fmt.Errorf("geofast: empty gazetteer")
	}
	if len(districts) > MaxDistricts {
		return nil, fmt.Errorf("geofast: %d districts exceed the %d cell-code limit", len(districts), MaxDistricts)
	}
	slack := opts.SlackKm
	if slack == 0 {
		slack = 10
	}
	reach := slack
	if reach < 0 {
		reach = 0
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = 4 << 20
	}
	minCell := opts.MinCellDeg
	if minCell <= 0 {
		minCell = 0.001
	}

	// Extent: the union of every district's reach box. Any point outside is
	// provably beyond radius+slack of every district (RectAround is a
	// conservative bounding box of that circle), so it is a definite miss.
	var extent geo.Rect
	for i, d := range districts {
		r := geo.RectAround(d.Center, d.RadiusKm+reach)
		if i == 0 {
			extent = r
		} else {
			extent = extent.Union(r)
		}
	}
	dLat := extent.MaxLat - extent.MinLat
	dLon := extent.MaxLon - extent.MinLon
	edge := math.Sqrt(dLat * dLon / float64(maxCells))
	if edge < minCell {
		edge = minCell
	}
	rows := int(math.Ceil(dLat / edge))
	cols := int(math.Ceil(dLon / edge))
	// Ceil rounding can push rows*cols past the budget; widen the edge
	// until the count actually fits.
	for rows*cols > maxCells {
		edge *= 1.01
		rows = int(math.Ceil(dLat / edge))
		cols = int(math.Ceil(dLon / edge))
	}
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	g := &Grid{
		gaz:       gaz,
		districts: districts,
		slack:     slack,
		extent:    extent,
		rows:      rows,
		cols:      cols,
		cellLat:   dLat / float64(rows),
		cellLon:   dLon / float64(cols),
	}
	if g.cellLat <= 0 {
		g.cellLat = 1e-9
	}
	if g.cellLon <= 0 {
		g.cellLon = 1e-9
	}
	g.invCellLat = 1 / g.cellLat
	g.invCellLon = 1 / g.cellLon
	g.dBounds = make([]geo.Rect, len(districts))
	g.dRad = make([]float64, len(districts))
	for i, d := range districts {
		g.dBounds[i] = d.Bounds()
		g.dRad[i] = d.RadiusKm
	}

	g.classify(reach)
	g.buildTime = time.Since(start)
	return g, nil
}

// cellSpan is the inclusive cell index range a rectangle covers.
type cellSpan struct{ r0, r1, c0, c1 int }

// fallbackWin is a tentative cell verdict whose fallback phase still awaits
// the Nearest-8 membership proof (see confirmFallbackWins). code is the
// final cell value to install once confirmed.
type fallbackWin struct {
	cell   int32
	code   uint16
	ubbox2 float64 // max over cell corners of degree-space dist² to the district bounds
}

func (g *Grid) spanOf(r geo.Rect) cellSpan {
	return cellSpan{
		r0: g.rowOf(r.MinLat), r1: g.rowOf(r.MaxLat),
		c0: g.colOf(r.MinLon), c1: g.colOf(r.MaxLon),
	}
}

func (g *Grid) rowOf(lat float64) int {
	r := int((lat - g.extent.MinLat) * g.invCellLat)
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return r
}

func (g *Grid) colOf(lon float64) int {
	c := int((lon - g.extent.MinLon) * g.invCellLon)
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return c
}

// classify rasterises each district's reach rectangle into per-cell
// candidate lists (CSR layout over one shared slice), then proves a verdict
// for every cell. Cells no reach rectangle touches are definite misses: a
// point there is outside every district's conservative reach box.
func (g *Grid) classify(reach float64) {
	n := g.rows * g.cols
	spans := make([]cellSpan, len(g.districts))
	counts := make([]int32, n+1) // counts[i+1] accumulates cell i, then prefix-sums into offsets
	for i, d := range g.districts {
		sp := g.spanOf(geo.RectAround(d.Center, d.RadiusKm+reach))
		spans[i] = sp
		for r := sp.r0; r <= sp.r1; r++ {
			base := r*g.cols + 1
			for c := sp.c0; c <= sp.c1; c++ {
				counts[base+c]++
			}
		}
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offs := counts // now offsets: cell i's candidates live in cands[offs[i]:offs[i+1]]
	cands := make([]uint16, offs[n])
	cursor := make([]int32, n)
	for i := range g.districts {
		sp := spans[i]
		for r := sp.r0; r <= sp.r1; r++ {
			base := r * g.cols
			for c := sp.c0; c <= sp.c1; c++ {
				cell := base + c
				cands[offs[cell]+cursor[cell]] = uint16(i)
				cursor[cell]++
			}
		}
	}

	g.cells = make([]uint16, n)
	// Tentative verdicts whose fallback phase still needs the Nearest-8
	// membership proof, confirmed after the scan once the proximity radius
	// is known.
	var pendings []fallbackWin
	var lo, hi [64]float64 // per-candidate bounds; spills are reallocated below
	for r := 0; r < g.rows; r++ {
		lat0 := g.extent.MinLat + float64(r)*g.cellLat
		lat1 := lat0 + g.cellLat
		// Upper bound on the distance from any interior point to the nearest
		// cell corner: the L1 half-perimeter in km, evaluated at the row's
		// widest latitude. Sound by the triangle inequality along a meridian
		// then a parallel; the 2% pad absorbs haversine-vs-planar slop.
		minAbsLat := 0.0
		if lat0 > 0 {
			minAbsLat = lat0
		} else if lat1 < 0 {
			minAbsLat = -lat1
		}
		halfDiag := 0.5 * kmPerDeg * (g.cellLat + g.cellLon*math.Cos(minAbsLat*math.Pi/180)) * 1.02
		for c := 0; c < g.cols; c++ {
			cell := r*g.cols + c
			cs := cands[offs[cell]:offs[cell+1]]
			if len(cs) == 0 {
				g.cells[cell] = cellNoMatch
				g.noMatchCells++
				continue
			}
			lon0 := g.extent.MinLon + float64(c)*g.cellLon
			lon1 := lon0 + g.cellLon
			los, his := lo[:], hi[:]
			if len(cs) > len(los) {
				los = make([]float64, len(cs))
				his = make([]float64, len(cs))
			}
			corners := [4]geo.Point{
				{Lat: lat0, Lon: lon0}, {Lat: lat0, Lon: lon1},
				{Lat: lat1, Lon: lon0}, {Lat: lat1, Lon: lon1},
			}
			for j, di := range cs {
				center := g.districts[di].Center
				minD, maxD := math.Inf(1), 0.0
				for _, p := range corners {
					d := center.DistanceKm(p)
					if d < minD {
						minD = d
					}
					if d > maxD {
						maxD = d
					}
				}
				l := minD - halfDiag
				if l < 0 {
					l = 0
				}
				los[j] = l
				his[j] = maxD + halfDiag
			}
			code, pendCode, pendDi := g.verdictOf(cs, los, his)
			g.cells[cell] = code
			switch code {
			case cellBoundary:
				g.boundaryCell++
				if pendCode != cellBoundary {
					// The verdict is proven except for Nearest-8 membership
					// of pendDi: record the cell-corner bbox distance and
					// decide after the scan.
					ub := 0.0
					bounds := g.districts[pendDi].Bounds()
					for _, p := range corners {
						if d2 := bounds.DistanceSqDeg(p); d2 > ub {
							ub = d2
						}
					}
					pendings = append(pendings, fallbackWin{cell: int32(cell), code: pendCode, ubbox2: ub})
				}
			case cellNoMatch:
				g.noMatchCells++
			}
		}
	}
	g.confirmFallbackWins(pendings)
}

// verdictOf decides one cell from its candidates' conservative distance
// bounds, returning the cell code plus — when the verdict still needs the
// Nearest-8 membership proof — the pending code and its district index
// (pendCode == cellBoundary means nothing pending).
//
// ResolvePoint's phase 1 picks the containing district with the closest
// centre, so candidate d is a provable constant-exact winner when its circle
// certainly contains the whole cell (hi ≤ radius) and its centre is
// certainly closer than any rival that could contain any point (hi < rival
// lo). When no candidate can contain any point, the cell is a definite miss
// only if every candidate is certainly beyond radius+slack; a candidate
// certainly within slack that strictly dominates every other possible
// fallback candidate is a constant-nearest winner (pending membership).
// Finally, when exactly one candidate could match at all — by containment
// or slack — the cell is single-check on it: one runtime haversine decides.
// Everything else stays boundary.
func (g *Grid) verdictOf(cs []uint16, los, his []float64) (code, pendCode uint16, pendDi uint16) {
	nd := uint16(len(g.districts))
	anyPossible := false
	for j, di := range cs {
		if los[j] <= g.districts[di].RadiusKm {
			anyPossible = true
			break
		}
	}
	if anyPossible {
		// Try a constant containment winner.
		for j, di := range cs {
			if his[j] > g.districts[di].RadiusKm {
				continue // not certainly containing the whole cell
			}
			wins := true
			for k, dk := range cs {
				if k == j || los[k] > g.districts[dk].RadiusKm {
					continue // cannot contain any point, never competes in phase 1
				}
				if his[j] >= los[k] {
					wins = false
					break
				}
			}
			if wins {
				return di, cellBoundary, 0
			}
		}
	} else if g.slack >= 0 {
		// The fallback annulus: find the candidate with the smallest
		// worst-case overshoot and check it strictly dominates every other
		// candidate that could come within slack.
		best := -1
		bestHi := 0.0
		possible := false
		for j, di := range cs {
			over := his[j] - g.districts[di].RadiusKm
			if los[j]-g.districts[di].RadiusKm <= g.slack {
				possible = true
			}
			if best < 0 || over < bestHi {
				best, bestHi = j, over
			}
		}
		if !possible {
			return cellNoMatch, cellBoundary, 0
		}
		if bestHi <= g.slack {
			dominates := true
			for j, di := range cs {
				if j == best || los[j]-g.districts[di].RadiusKm > g.slack {
					continue // never a fallback candidate anywhere in the cell
				}
				if bestHi >= los[j]-g.districts[di].RadiusKm {
					dominates = false // could tie or lose somewhere
					break
				}
			}
			if dominates {
				return cellBoundary, nd + cs[best], cs[best]
			}
		}
	} else {
		// Slack disabled and nothing can contain: a definite miss.
		return cellNoMatch, cellBoundary, 0
	}

	// Single-check: exactly one candidate could ever match (containment or
	// slack); a runtime haversine against it reproduces both phases.
	active := -1
	for j, di := range cs {
		r := g.districts[di].RadiusKm
		if los[j] <= r || (g.slack >= 0 && los[j]-r <= g.slack) {
			if active >= 0 {
				return cellBoundary, cellBoundary, 0 // competing candidates
			}
			active = j
		}
	}
	if active < 0 {
		// Unreachable: anyPossible or the fallback-possible check above
		// already found at least one active candidate. Stay safe anyway.
		return cellBoundary, cellBoundary, 0
	}
	di := cs[active]
	if g.slack < 0 {
		// No fallback phase exists, so no membership proof is needed.
		return 2*nd + di, cellBoundary, 0
	}
	return cellBoundary, 2*nd + di, di
}

// confirmFallbackWins upgrades tentative verdicts whose fallback phase is
// proven except for candidate-set membership. ResolvePoint's fallback phase
// only examines the 8 bbox-nearest districts, so the proven winner d must
// certainly be among them for every point in its cell. Point-to-rect
// distance is convex, so d's bbox distance over the cell is maximised at a
// cell corner (ubbox); any district that could outrank d in the candidate
// ordering must come within ubbox of the cell in degree space. The pass
// rasterises every district's bounds grown by the largest pending ubbox and
// counts coverage per cell: at most 8 nearby districts (d included) means
// at most 7 can ever precede d, so d is always in the Nearest(p, 8) set and
// its dominance proof applies.
func (g *Grid) confirmFallbackWins(pendings []fallbackWin) {
	defer func() {
		// Settle the single-check cell count once upgrades are final
		// (slack-disabled grids install single-check codes with no pendings).
		nd := uint16(len(g.districts))
		g.singleCells = 0
		for _, c := range g.cells {
			if c != cellNoMatch && c != cellBoundary && c >= 2*nd {
				g.singleCells++
			}
		}
	}()
	if len(pendings) == 0 {
		return
	}
	maxUB2 := 0.0
	for _, p := range pendings {
		if p.ubbox2 > maxUB2 {
			maxUB2 = p.ubbox2
		}
	}
	reachDeg := math.Sqrt(maxUB2)
	near := make([]uint8, len(g.cells))
	for _, d := range g.districts {
		b := d.Bounds()
		sp := g.spanOf(geo.Rect{
			MinLat: b.MinLat - reachDeg, MinLon: b.MinLon - reachDeg,
			MaxLat: b.MaxLat + reachDeg, MaxLon: b.MaxLon + reachDeg,
		})
		for r := sp.r0; r <= sp.r1; r++ {
			base := r * g.cols
			for c := sp.c0; c <= sp.c1; c++ {
				if near[base+c] < 0xFF {
					near[base+c]++
				}
			}
		}
	}
	for _, p := range pendings {
		if near[p.cell] <= 8 {
			g.cells[p.cell] = p.code
			g.boundaryCell--
		}
	}
}

// Lookup classifies a point without consulting the gazetteer: the resolved
// district with Constant ("exact") or Nearest (slack fallback) quality, a
// definite NoMatch, or Boundary when the exact resolver is needed. It
// allocates nothing. Invalid coordinates (NaN or out of WGS-84 range) are
// definite misses, matching ResolvePoint.
func (g *Grid) Lookup(lat, lon float64) (*admin.District, Verdict) {
	// The comparison form also rejects NaN (every comparison is false); the
	// explicit ±180 bound keeps invalid longitudes out even when an extent
	// spills past the antimeridian (ResolvePoint rejects them too).
	if !(lat >= g.extent.MinLat && lat <= g.extent.MaxLat &&
		lon >= g.extent.MinLon && lon <= g.extent.MaxLon &&
		lon >= -180 && lon <= 180) {
		g.noMatch.Add(1)
		return nil, NoMatch
	}
	r := int((lat - g.extent.MinLat) * g.invCellLat)
	if r >= g.rows {
		r = g.rows - 1
	}
	c := int((lon - g.extent.MinLon) * g.invCellLon)
	if c >= g.cols {
		c = g.cols - 1
	}
	code := g.cells[r*g.cols+c]
	switch code {
	case cellNoMatch:
		g.noMatch.Add(1)
		return nil, NoMatch
	case cellBoundary:
		g.boundary.Add(1)
		return nil, Boundary
	}
	nd := uint16(len(g.districts))
	switch {
	case code < nd:
		g.fast.Add(1)
		return g.districts[code], Constant
	case code < 2*nd:
		g.fast.Add(1)
		return g.districts[code-nd], Nearest
	}
	// Single-check: the only district that can match anywhere in this cell;
	// one haversine reproduces both ResolvePoint phases.
	d := g.districts[code-2*nd]
	dist := d.Center.DistanceKm(geo.Point{Lat: lat, Lon: lon})
	switch {
	case dist <= d.RadiusKm:
		g.fast.Add(1)
		return d, Constant
	case g.slack >= 0 && dist-d.RadiusKm <= g.slack:
		g.fast.Add(1)
		return d, Nearest
	default:
		g.noMatch.Add(1)
		return nil, NoMatch
	}
}

// Resolve maps a point to its district: the zero-alloc grid answer on
// constant, single-check and no-match cells, the alloc-free flat scan on
// boundary cells (the R-tree itself only on exact distance ties). The
// result is identical to gaz.ResolvePoint(p, slack) on every input;
// ok=false reports no district (ResolvePoint's error cases).
func (g *Grid) Resolve(lat, lon float64) (*admin.District, bool) {
	d, v := g.Lookup(lat, lon)
	switch v {
	case Constant, Nearest:
		return d, true
	case NoMatch:
		return nil, false
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if d, ok, decided := g.resolveBoundary(p); decided {
		return d, ok
	}
	dd, err := g.gaz.ResolvePoint(p, g.slack)
	if err != nil {
		return nil, false
	}
	return dd, true
}

// resolveBoundary replicates both ResolvePoint phases over the SoA district
// mirror without touching the R-tree or allocating. The winner of each phase
// is order-independent except on exact distance ties, where ResolvePoint's
// strict-< scan keeps whichever candidate its index happens to yield first —
// those (measure-zero) points report decided=false and go to the real
// resolver so results stay bit-for-bit identical.
func (g *Grid) resolveBoundary(p geo.Point) (d *admin.District, ok, decided bool) {
	// Phase 1: closest containing district, mirroring
	// index.SearchPoint(p) + the radius filter.
	best := -1
	bestD := 0.0
	tie := false
	for i := range g.dBounds {
		b := &g.dBounds[i]
		if p.Lat < b.MinLat || p.Lat > b.MaxLat || p.Lon < b.MinLon || p.Lon > b.MaxLon {
			continue
		}
		dist := g.districts[i].Center.DistanceKm(p)
		if dist > g.dRad[i] {
			continue
		}
		if best < 0 || dist < bestD {
			best, bestD, tie = i, dist, false
		} else if dist == bestD {
			tie = true
		}
	}
	if best >= 0 {
		if tie {
			return nil, false, false
		}
		return g.districts[best], true, true
	}
	if g.slack < 0 {
		return nil, false, true
	}
	// Phase 2: the slack fallback examines the 8 bbox-nearest districts.
	// Select them by the same squared-degree metric the indexes use; if the
	// cutoff is ambiguous (the 8th and 9th distances tie exactly), the
	// candidate set depends on index order — delegate.
	var nearD [8]float64
	var nearI [8]int
	kept := 0
	minExcluded := math.Inf(1)
	for i := range g.dBounds {
		d2 := g.dBounds[i].DistanceSqDeg(p)
		if kept < 8 {
			j := kept
			for j > 0 && nearD[j-1] > d2 {
				nearD[j], nearI[j] = nearD[j-1], nearI[j-1]
				j--
			}
			nearD[j], nearI[j] = d2, i
			kept++
			continue
		}
		if d2 < nearD[7] {
			evicted := nearD[7]
			j := 7
			for j > 0 && nearD[j-1] > d2 {
				nearD[j], nearI[j] = nearD[j-1], nearI[j-1]
				j--
			}
			nearD[j], nearI[j] = d2, i
			if evicted < minExcluded {
				minExcluded = evicted
			}
		} else if d2 < minExcluded {
			minExcluded = d2
		}
	}
	if kept == 8 && minExcluded == nearD[7] {
		return nil, false, false
	}
	bestOver := 0.0
	for k := 0; k < kept; k++ {
		i := nearI[k]
		over := g.districts[i].Center.DistanceKm(p) - g.dRad[i]
		if over > g.slack {
			continue
		}
		if best < 0 || over < bestOver {
			best, bestOver, tie = i, over, false
		} else if over == bestOver {
			tie = true
		}
	}
	if tie {
		return nil, false, false
	}
	if best < 0 {
		return nil, false, true
	}
	return g.districts[best], true, true
}

// ResolveBulk resolves pts into out, reusing its backing array when large
// enough (zero allocations on the steady-state path), and returns it. The
// result is parallel to pts; unresolvable points hold nil.
func (g *Grid) ResolveBulk(pts []geo.Point, out []*admin.District) []*admin.District {
	if cap(out) < len(pts) {
		out = make([]*admin.District, len(pts))
	}
	out = out[:len(pts)]
	g.bulkHist.Load().Observe(float64(len(pts)))
	for i, p := range pts {
		out[i], _ = g.Resolve(p.Lat, p.Lon)
	}
	return out
}
