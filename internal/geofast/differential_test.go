package geofast

import (
	"math"
	"math/rand"
	"testing"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/gis"
)

// linearResolver reimplements admin.Gazetteer.ResolvePoint verbatim over the
// brute-force gis.Linear index — the third, independent oracle of the
// differential test. Any divergence between grid, R-tree gazetteer and this
// implementation is a bug in one of them.
type linearResolver struct {
	index *gis.Linear
	slack float64
}

func newLinearResolver(gaz *admin.Gazetteer, slack float64) *linearResolver {
	l := &linearResolver{index: gis.NewLinear(), slack: slack}
	for _, d := range gaz.Districts() {
		l.index.Insert(gis.Item{Bounds: d.Bounds(), Value: d})
	}
	return l
}

func (l *linearResolver) resolve(p geo.Point) *admin.District {
	if !p.Valid() {
		return nil
	}
	var best *admin.District
	bestD := 0.0
	for _, it := range l.index.SearchPoint(p) {
		d := it.Value.(*admin.District)
		dist := d.Center.DistanceKm(p)
		if dist > d.RadiusKm {
			continue
		}
		if best == nil || dist < bestD {
			best, bestD = d, dist
		}
	}
	if best != nil {
		return best
	}
	if l.slack < 0 {
		return nil
	}
	for _, it := range l.index.Nearest(p, 8) {
		d := it.Value.(*admin.District)
		over := d.Center.DistanceKm(p) - d.RadiusKm
		if over <= l.slack && (best == nil || over < bestD) {
			best, bestD = d, over
		}
	}
	return best
}

// differentialPoints builds the adversarial point set: seeded uniform points
// over (and past) the extent, exact cell-corner lattice points, extent-edge
// points, far out-of-extent points, and invalid coordinates.
func differentialPoints(g *Grid, rng *rand.Rand, n int) []geo.Point {
	ext := g.Extent()
	dLat := ext.MaxLat - ext.MinLat
	dLon := ext.MaxLon - ext.MinLon
	var pts []geo.Point
	// Uniform over the extent padded by 10% so some fall just outside.
	for i := 0; i < n; i++ {
		pts = append(pts, geo.Point{
			Lat: ext.MinLat - 0.1*dLat + rng.Float64()*1.2*dLat,
			Lon: ext.MinLon - 0.1*dLon + rng.Float64()*1.2*dLon,
		})
	}
	// Exact cell corners (the truncation boundaries of the hot-path index
	// arithmetic), including shared corners of four cells.
	cellLat, cellLon := g.CellSize()
	rows, cols := g.Cells()
	for i := 0; i < n/4; i++ {
		r, c := rng.Intn(rows+1), rng.Intn(cols+1)
		pts = append(pts, geo.Point{
			Lat: ext.MinLat + float64(r)*cellLat,
			Lon: ext.MinLon + float64(c)*cellLon,
		})
	}
	// The extent edges and corners themselves.
	pts = append(pts,
		geo.Point{Lat: ext.MinLat, Lon: ext.MinLon},
		geo.Point{Lat: ext.MinLat, Lon: ext.MaxLon},
		geo.Point{Lat: ext.MaxLat, Lon: ext.MinLon},
		geo.Point{Lat: ext.MaxLat, Lon: ext.MaxLon},
		geo.Point{Lat: ext.MinLat + dLat/2, Lon: ext.MinLon},
		geo.Point{Lat: ext.MaxLat, Lon: ext.MinLon + dLon/2},
		// Nudges just past the edge.
		geo.Point{Lat: math.Nextafter(ext.MinLat, -90), Lon: ext.MinLon + dLon/2},
		geo.Point{Lat: math.Nextafter(ext.MaxLat, 90), Lon: ext.MinLon + dLon/2},
	)
	// Far away and invalid.
	pts = append(pts,
		geo.Point{Lat: 0, Lon: -150},
		geo.Point{Lat: -89, Lon: 10},
		geo.Point{Lat: math.NaN(), Lon: 127},
		geo.Point{Lat: 37, Lon: math.NaN()},
		geo.Point{Lat: 91, Lon: 127},
		geo.Point{Lat: 37, Lon: 181},
	)
	return pts
}

// TestDifferentialGridRTreeLinear is the subsystem's acceptance property:
// on every probed point the compiled grid, the R-tree gazetteer and the
// brute-force linear index resolve to the same district (or all miss).
func TestDifferentialGridRTreeLinear(t *testing.T) {
	for _, tc := range []struct {
		name  string
		world bool
		slack float64
	}{
		{"korea/slack10", false, 10},
		{"korea/noslack", false, -1},
		{"korea/slack2", false, 2},
		{"world/slack10", true, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var gaz *admin.Gazetteer
			var err error
			if tc.world {
				gaz, err = admin.NewWorldGazetteer()
			} else {
				gaz, err = admin.NewKoreaGazetteer()
			}
			if err != nil {
				t.Fatal(err)
			}
			g, err := Compile(gaz, Options{SlackKm: tc.slack})
			if err != nil {
				t.Fatal(err)
			}
			lin := newLinearResolver(gaz, tc.slack)
			rng := rand.New(rand.NewSource(42))
			for _, p := range differentialPoints(g, rng, 4000) {
				gridD, gridOK := g.Resolve(p.Lat, p.Lon)
				rtD, rtErr := gaz.ResolvePoint(p, tc.slack)
				linD := lin.resolve(p)
				if rtErr != nil {
					rtD = nil
				}
				if gridD != rtD {
					_, v := g.Lookup(p.Lat, p.Lon)
					t.Fatalf("point %v (cell verdict %v): grid=%v rtree=%v", p, v, gridD, rtD)
				}
				if gridOK != (gridD != nil) {
					t.Fatalf("point %v: ok=%v but district=%v", p, gridOK, gridD)
				}
				if linD != rtD {
					t.Fatalf("point %v: linear=%v rtree=%v — oracle disagreement", p, linD, rtD)
				}
			}
		})
	}
}

// TestDifferentialQuantizedLattice sweeps the geocode client's 1e-3
// quantisation lattice over a district-dense patch — every point the
// embedded resolver can ever feed the grid in that patch agrees with the
// exact resolver.
func TestDifferentialQuantizedLattice(t *testing.T) {
	g, gaz := koreaGrid(t, 10)
	// A 0.2°x0.2° patch over Seoul, where districts are densest and
	// boundary cells most likely.
	for lat := 37.45; lat <= 37.65; lat += 0.001 {
		for lon := 126.85; lon <= 127.05; lon += 0.001 {
			gridD, _ := g.Resolve(lat, lon)
			rtD, err := gaz.ResolvePoint(geo.Point{Lat: lat, Lon: lon}, 10)
			if err != nil {
				rtD = nil
			}
			if gridD != rtD {
				t.Fatalf("lattice point (%.3f, %.3f): grid=%v rtree=%v", lat, lon, gridD, rtD)
			}
		}
	}
}
