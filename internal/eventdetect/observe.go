// Package eventdetect implements the two event-detection systems the paper
// positions itself against, plus the improvement it proposes:
//
//   - a Toretter-style detector (Sakaki et al.): track target keywords,
//     detect temporal bursts, estimate the event location from the spatial
//     attributes of the reporting tweets with a Kalman or particle filter;
//   - a Twitris-style summariser (Nagarajan et al.): TF-IDF term summaries
//     per time/space cell, with the profile location standing in for the
//     tweet's position;
//   - reliability weighting (§V of the paper): profile-derived observations
//     are weighted by how strongly the user's tweet history matches their
//     profile district, which is exactly what the Top-k analysis measures.
package eventdetect

import (
	"errors"
	"fmt"
	"time"

	"stir/internal/filters"
	"stir/internal/geo"
	"stir/internal/twitter"
)

// ObsSource says where an observation's coordinates came from.
type ObsSource int

const (
	// SourceGPS is a tweet's own GPS tag — trustworthy but rare.
	SourceGPS ObsSource = iota
	// SourceProfile is the centroid of the user's profile district — the
	// Twitris assumption ("the registered location ... as an approximation
	// for the current location of a tweet").
	SourceProfile
)

// String implements fmt.Stringer.
func (s ObsSource) String() string {
	if s == SourceGPS {
		return "gps"
	}
	return "profile"
}

// Observation is one spatial report of the event.
type Observation struct {
	Point  geo.Point
	Weight float64
	Source ObsSource
	UserID twitter.UserID
	At     time.Time
}

// Method selects the location estimator.
type Method int

// Estimation methods. Median and centroid are the simple baselines shown in
// the paper's Fig. 2 ("estimated median"); Kalman and particle are the
// filters Toretter applied.
const (
	MethodMedian Method = iota
	MethodCentroid
	MethodKalman
	MethodParticle
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodMedian:
		return "median"
	case MethodCentroid:
		return "centroid"
	case MethodKalman:
		return "kalman"
	case MethodParticle:
		return "particle"
	default:
		return "unknown"
	}
}

// ErrNoObservations reports estimation over an empty observation set.
var ErrNoObservations = errors.New("eventdetect: no observations")

// EstimateLocation fuses observations into one event location. bounds seeds
// the particle filter and the Kalman prior; seed fixes stochastic parts.
func EstimateLocation(obs []Observation, method Method, bounds geo.Rect, seed int64) (geo.Point, error) {
	usable := obs[:0:0]
	for _, o := range obs {
		if o.Weight > 0 {
			usable = append(usable, o)
		}
	}
	if len(usable) == 0 {
		return geo.Point{}, ErrNoObservations
	}
	switch method {
	case MethodMedian:
		pts := make([]geo.Point, len(usable))
		for i, o := range usable {
			pts[i] = o.Point
		}
		return geo.GeographicMedian(pts, 200), nil
	case MethodCentroid:
		pts := make([]geo.Point, len(usable))
		ws := make([]float64, len(usable))
		for i, o := range usable {
			pts[i] = o.Point
			ws[i] = o.Weight
		}
		return geo.WeightedCentroid(pts, ws)
	case MethodKalman:
		k, err := filters.NewKalman2D(bounds.Center(), 25, 1e-7, 0.05)
		if err != nil {
			return geo.Point{}, err
		}
		for _, o := range usable {
			k.Update(o.Point, o.Weight)
		}
		return k.Estimate(), nil
	case MethodParticle:
		pf, err := filters.NewParticleFilter(3000, bounds, 20, 0, seed)
		if err != nil {
			return geo.Point{}, err
		}
		for _, o := range usable {
			pf.Observe(o.Point, o.Weight)
		}
		return pf.Estimate(), nil
	default:
		return geo.Point{}, fmt.Errorf("eventdetect: unknown method %d", method)
	}
}
