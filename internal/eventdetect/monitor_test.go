package eventdetect

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/twitter"
)

// replayReports feeds the monitor a quiet background then a burst, all via
// Ingest (offline replay), and returns the alerts.
func replayMonitor(t *testing.T, m *Monitor) []Alert {
	t.Helper()
	var alerts []Alert
	m.OnDetect = func(a Alert) bool {
		alerts = append(alerts, a)
		return true
	}
	// Background: one report every 30 minutes for a day.
	base := onset.Add(-24 * time.Hour)
	id := twitter.TweetID(1)
	for i := 0; i < 48; i++ {
		m.Ingest(&twitter.Tweet{
			ID: id, UserID: 999, Text: "earthquake on tv",
			CreatedAt: base.Add(time.Duration(i) * 30 * time.Minute),
		})
		id++
	}
	// Burst: 15 reports in 5 minutes from users near the epicentre.
	for i := 0; i < 15; i++ {
		tw := &twitter.Tweet{
			ID: id, UserID: twitter.UserID(100 + i%3), Text: "EARTHQUAKE now!!",
			CreatedAt: onset.Add(time.Duration(i*20) * time.Second),
		}
		if i%5 == 0 {
			tw.Geo = &twitter.GeoTag{Lat: 36.35, Lon: 127.38}
		}
		m.Ingest(tw)
		id++
	}
	return alerts
}

func monitorFixture(t *testing.T) (*Monitor, *admin.District) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	d, err := gaz.ByID("KR/Daejeon/Jung-gu")
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[twitter.UserID]*admin.District{100: d, 101: d, 102: d}
	return &Monitor{
		Keywords:        []string{"earthquake"},
		ProfileDistrict: profiles,
		Window:          10 * time.Minute,
		MinCount:        5,
		Factor:          4,
		WarmupCount:     20,
		Method:          MethodCentroid,
		Bounds:          koreaBounds,
	}, d
}

func TestMonitorDetectsBurst(t *testing.T) {
	m, d := monitorFixture(t)
	alerts := replayMonitor(t, m)
	if len(alerts) == 0 {
		t.Fatal("burst not detected")
	}
	a := alerts[0]
	if a.Count < 5 {
		t.Fatalf("alert count = %d", a.Count)
	}
	if !a.Located {
		t.Fatal("alert has no location despite observations")
	}
	if dist := a.Location.DistanceKm(d.Center); dist > 25 {
		t.Fatalf("alert location %.1f km from reporters", dist)
	}
	// Alert fires near the onset, not at the end of the burst.
	if a.At.After(onset.Add(5 * time.Minute)) {
		t.Fatalf("alert late: %v (onset %v)", a.At, onset)
	}
	// Cooldown: the 15-report burst must not fire 10 separate alerts.
	if len(alerts) > 2 {
		t.Fatalf("cooldown failed: %d alerts", len(alerts))
	}
}

func TestMonitorQuietStreamNoAlert(t *testing.T) {
	m, _ := monitorFixture(t)
	fired := false
	m.OnDetect = func(Alert) bool { fired = true; return true }
	base := onset.Add(-24 * time.Hour)
	for i := 0; i < 200; i++ {
		m.Ingest(&twitter.Tweet{
			ID: twitter.TweetID(i + 1), UserID: 999, Text: "earthquake drill notice",
			CreatedAt: base.Add(time.Duration(i) * 17 * time.Minute),
		})
	}
	if fired {
		t.Fatal("steady stream should not alert")
	}
}

func TestMonitorWarmupSuppressesEarlyAlert(t *testing.T) {
	m, _ := monitorFixture(t)
	fired := false
	m.OnDetect = func(Alert) bool { fired = true; return true }
	// A burst arriving before any background exists must not alert while
	// fewer than WarmupCount reports were seen.
	for i := 0; i < m.WarmupCount; i++ {
		m.Ingest(&twitter.Tweet{
			ID: twitter.TweetID(i + 1), UserID: 999, Text: "earthquake",
			CreatedAt: onset.Add(time.Duration(i) * time.Second),
		})
	}
	if fired {
		t.Fatal("alert during warmup")
	}
}

func TestMonitorReliabilityWeighting(t *testing.T) {
	m, d := monitorFixture(t)
	// User 102's profile is misleading; weight them out entirely.
	m.Reliability = map[int64]float64{100: 1, 101: 1, 102: 0}
	alerts := replayMonitor(t, m)
	if len(alerts) == 0 {
		t.Fatal("no alert")
	}
	// Observations exclude user 102's profile reports.
	if alerts[0].Observations >= alerts[0].Count {
		t.Fatalf("weighted-out observations still counted: %d of %d",
			alerts[0].Observations, alerts[0].Count)
	}
	if dist := alerts[0].Location.DistanceKm(d.Center); dist > 25 {
		t.Fatalf("location %.1f km off", dist)
	}
}

func TestMonitorOverLiveStream(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	d, err := gaz.ByID("KR/Daejeon/Jung-gu")
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	reporter, _ := svc.CreateUser("rep", "Daejeon Jung-gu", "ko", onset.AddDate(-1, 0, 0))
	srv := httptest.NewServer(twitter.NewAPIServer(svc, twitter.ServerOptions{}))
	t.Cleanup(srv.Close)

	var got atomic.Int32
	m := &Monitor{
		Client:          twitter.NewClient(srv.URL),
		Keywords:        []string{"earthquake"},
		ProfileDistrict: map[twitter.UserID]*admin.District{reporter.ID: d},
		Window:          10 * time.Minute,
		MinCount:        4,
		Factor:          2,
		WarmupCount:     3, // tiny warmup for the live test
		Method:          MethodCentroid,
		Bounds:          geo.Rect{MinLat: 33, MinLon: 124, MaxLat: 39, MaxLon: 132},
		OnDetect: func(a Alert) bool {
			got.Add(1)
			return false // stop after the first alert
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()

	// Background spread over hours, then a burst.
	deadline := time.After(4 * time.Second)
	i := 0
	for got.Load() == 0 {
		svc.PostTweet(reporter.ID, "earthquake talk", onset.Add(-time.Duration(60-i)*time.Hour), nil)
		for j := 0; j < 6; j++ {
			svc.PostTweet(reporter.ID, "EARTHQUAKE!!", onset.Add(time.Duration(i*6+j)*time.Second), nil)
		}
		i++
		select {
		case <-deadline:
			t.Fatal("live monitor never alerted")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := <-done; err != nil && ctx.Err() == nil {
		t.Fatalf("monitor run: %v", err)
	}
	if got.Load() != 1 {
		t.Fatalf("alerts = %d, want 1 (OnDetect returned false)", got.Load())
	}
}
