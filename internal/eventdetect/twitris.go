package eventdetect

import (
	"fmt"
	"sort"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/tfidf"
	"stir/internal/twitter"
)

// Twitris summarises citizen observations along the three dimensions the
// original system browsed: when (day), where (district), what (TF-IDF top
// terms). Like the original, it approximates a tweet's position by its
// author's profile district when the tweet has no GPS tag.
type Twitris struct {
	// Gazetteer resolves GPS tags to districts.
	Gazetteer *admin.Gazetteer
	// ProfileDistrict supplies the fallback position per user.
	ProfileDistrict map[twitter.UserID]*admin.District
	// TopK terms per cell (default 5).
	TopK int
	// SlackKm for GPS-to-district resolution (default 10).
	SlackKm float64
}

// CellKey identifies one (day, district) cell.
type CellKey struct {
	Day      string // YYYY-MM-DD
	District string // district ID
}

// CellSummary is the thematic summary of one cell.
type CellSummary struct {
	Key      CellKey
	Tweets   int
	TopTerms []tfidf.TermScore
}

// Summarize buckets tweets into (day, district) cells and extracts each
// cell's characteristic terms against the whole corpus.
func (tw *Twitris) Summarize(tweets []*twitter.Tweet) ([]CellSummary, error) {
	return tw.SummarizeEach(func(fn func(*twitter.Tweet) bool) {
		for _, t := range tweets {
			if !fn(t) {
				return
			}
		}
	})
}

// SummarizeEach is Summarize over a tweet iterator, so callers with a large
// backing store (Service.EachTweet) never materialise the whole corpus as a
// slice — memory is bounded by the cell map, not the tweet count.
func (tw *Twitris) SummarizeEach(each func(func(*twitter.Tweet) bool)) ([]CellSummary, error) {
	if tw.Gazetteer == nil {
		return nil, fmt.Errorf("eventdetect: twitris needs a gazetteer")
	}
	topK := tw.TopK
	if topK <= 0 {
		topK = 5
	}
	slack := tw.SlackKm
	if slack == 0 {
		slack = 10
	}
	cells := make(map[CellKey][]string)
	counts := make(map[CellKey]int)
	each(func(t *twitter.Tweet) bool {
		var district *admin.District
		if t.Geo != nil {
			if d, err := tw.Gazetteer.ResolvePoint(pointOf(t), slack); err == nil {
				district = d
			}
		}
		if district == nil {
			district = tw.ProfileDistrict[t.UserID]
		}
		if district == nil {
			return true // no spatial attribute at all
		}
		key := CellKey{Day: t.CreatedAt.Format("2006-01-02"), District: district.ID()}
		cells[key] = append(cells[key], tfidf.Tokenize(t.Text)...)
		counts[key]++
		return true
	})
	keys := make([]CellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Day != keys[j].Day {
			return keys[i].Day < keys[j].Day
		}
		return keys[i].District < keys[j].District
	})
	corpus := tfidf.NewCorpus()
	ids := make([]int, len(keys))
	for i, k := range keys {
		ids[i] = corpus.Add(cells[k])
	}
	out := make([]CellSummary, len(keys))
	for i, k := range keys {
		out[i] = CellSummary{
			Key:      k,
			Tweets:   counts[k],
			TopTerms: corpus.TopTerms(ids[i], topK),
		}
	}
	return out, nil
}

// HottestCell returns the summary whose top term scores highest on the given
// day — the "where is it happening" answer. Returns false when the day has
// no cells.
func HottestCell(summaries []CellSummary, day time.Time) (CellSummary, bool) {
	dayStr := day.Format("2006-01-02")
	var best CellSummary
	found := false
	for _, s := range summaries {
		if s.Key.Day != dayStr || len(s.TopTerms) == 0 {
			continue
		}
		if !found || s.TopTerms[0].Score > best.TopTerms[0].Score {
			best = s
			found = true
		}
	}
	return best, found
}

func pointOf(t *twitter.Tweet) geo.Point {
	return geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon}
}
