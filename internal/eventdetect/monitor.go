package eventdetect

import (
	"context"
	"sync"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/twitter"
)

// Monitor is the online variant of the Toretter detector: it consumes the
// Streaming API live, keeps a sliding window of keyword reports, and fires a
// detection as soon as the window rate exceeds the learned background rate —
// the deployment mode the original system ran in ("the alert of the system
// was far faster than the rapid broadcast of announcement of Japan
// Meteorological Agency").
type Monitor struct {
	// Client streams tweets from the platform.
	Client *twitter.Client
	// Keywords are the tracked terms.
	Keywords []string
	// ProfileDistrict and Reliability configure profile-derived observations
	// exactly as in the batch Toretter.
	ProfileDistrict map[twitter.UserID]*admin.District
	Reliability     map[int64]float64
	// Window is the burst window (default 10 minutes of event time).
	Window time.Duration
	// MinCount is the minimum window population to fire (default 5).
	MinCount int
	// Factor multiplies the background rate to set the alarm threshold
	// (default 4). Until a background estimate exists (fewer than
	// WarmupCount reports seen), only MinCount gates the alarm.
	Factor float64
	// WarmupCount is how many reports establish the background (default 20).
	WarmupCount int
	// Cooldown suppresses re-alerts after a firing (default one Window).
	Cooldown time.Duration
	// Method, Bounds and Seed configure location estimation.
	Method Method
	Bounds geo.Rect
	Seed   int64
	// OnDetect receives each alert; returning false stops the monitor.
	OnDetect func(Alert) bool

	mu        sync.Mutex
	window    []streamObs
	firstSeen time.Time
	lastSeen  time.Time
	total     int
	lastAlert time.Time
	alerted   bool
}

// streamObs is one report in the sliding window.
type streamObs struct {
	at  time.Time
	obs *Observation // nil when the report had no usable spatial attribute
}

// Alert is one online detection.
type Alert struct {
	At       time.Time
	Count    int
	Rate     float64 // reports per minute within the window
	Location geo.Point
	// Located reports whether any spatial attribute was available.
	Located      bool
	Observations int
}

// Run consumes the stream until ctx is cancelled, the server closes the
// stream, or OnDetect returns false. Time is event time (tweet timestamps),
// so recorded streams replay identically.
func (m *Monitor) Run(ctx context.Context) error {
	m.applyDefaults()
	// Track all keywords through one stream; the simulated filter endpoint
	// takes a single track term, so filter client-side.
	return m.Client.Stream(ctx, "", func(t *twitter.Tweet) bool {
		if !KeywordMatchesText(t.Text, m.Keywords) {
			return true
		}
		return m.ingest(t)
	})
}

// Ingest feeds one report directly (for offline replays and tests).
func (m *Monitor) Ingest(t *twitter.Tweet) bool {
	m.applyDefaults()
	return m.ingest(t)
}

func (m *Monitor) applyDefaults() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Window <= 0 {
		m.Window = 10 * time.Minute
	}
	if m.MinCount <= 0 {
		m.MinCount = 5
	}
	if m.Factor <= 0 {
		m.Factor = 4
	}
	if m.WarmupCount <= 0 {
		m.WarmupCount = 20
	}
	if m.Cooldown <= 0 {
		m.Cooldown = m.Window
	}
}

func (m *Monitor) ingest(t *twitter.Tweet) bool {
	m.mu.Lock()
	now := t.CreatedAt
	if m.total == 0 || now.Before(m.firstSeen) {
		if m.total == 0 {
			m.firstSeen = now
		}
	}
	if now.After(m.lastSeen) {
		m.lastSeen = now
	}
	m.total++
	m.window = append(m.window, streamObs{at: now, obs: m.observationFor(t)})
	// Expire the window tail.
	cutoff := now.Add(-m.Window)
	keep := m.window[:0]
	for _, w := range m.window {
		if !w.at.Before(cutoff) {
			keep = append(keep, w)
		}
	}
	m.window = keep

	fire := false
	count := len(m.window)
	rate := float64(count) / m.Window.Minutes()
	if count >= m.MinCount {
		if m.total <= m.WarmupCount {
			fire = false // still learning the background
		} else {
			span := m.lastSeen.Sub(m.firstSeen) + m.Window
			background := float64(m.total) / span.Minutes()
			fire = rate > background*m.Factor
		}
	}
	if fire && m.alerted && now.Sub(m.lastAlert) < m.Cooldown {
		fire = false
	}
	var alert Alert
	if fire {
		m.alerted = true
		m.lastAlert = now
		var obs []Observation
		for _, w := range m.window {
			if w.obs != nil {
				obs = append(obs, *w.obs)
			}
		}
		alert = Alert{At: now, Count: count, Rate: rate, Observations: len(obs)}
		if len(obs) > 0 {
			loc, err := EstimateLocation(obs, m.Method, m.Bounds, m.Seed)
			if err == nil {
				alert.Location = loc
				alert.Located = true
			}
		}
	}
	m.mu.Unlock()

	if fire && m.OnDetect != nil {
		return m.OnDetect(alert)
	}
	return true
}

// observationFor converts one report into a spatial observation, or nil.
func (m *Monitor) observationFor(t *twitter.Tweet) *Observation {
	if t.Geo != nil {
		return &Observation{
			Point:  geo.Point{Lat: t.Geo.Lat, Lon: t.Geo.Lon},
			Weight: 1,
			Source: SourceGPS,
			UserID: t.UserID,
			At:     t.CreatedAt,
		}
	}
	d := m.ProfileDistrict[t.UserID]
	if d == nil {
		return nil
	}
	w := 1.0
	if m.Reliability != nil {
		w = m.Reliability[int64(t.UserID)]
	}
	if w <= 0 {
		return nil
	}
	return &Observation{
		Point:  d.Center,
		Weight: w,
		Source: SourceProfile,
		UserID: t.UserID,
		At:     t.CreatedAt,
	}
}
