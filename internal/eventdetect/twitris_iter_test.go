package eventdetect

import (
	"reflect"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/twitter"
)

// TestSummarizeEachMatchesSummarize pins the iterator refactor: the callback
// path must produce the same cells as the slice path, and stop early when the
// callback says so.
func TestSummarizeEachMatchesSummarize(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	jongno, err := gaz.ByID("KR/Seoul/Jongno-gu")
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[twitter.UserID]*admin.District{1: jongno}
	day := time.Date(2011, 10, 1, 9, 0, 0, 0, time.UTC)
	tweets := []*twitter.Tweet{
		{ID: 1, UserID: 1, Text: "festival parade", CreatedAt: day},
		{ID: 2, UserID: 1, Text: "festival fireworks", CreatedAt: day},
		{ID: 3, UserID: 1, Text: "beach holiday", CreatedAt: day.AddDate(0, 0, 1),
			Geo: &twitter.GeoTag{Lat: 35.16, Lon: 129.16}},
	}
	tw := &Twitris{Gazetteer: gaz, ProfileDistrict: profiles, TopK: 3}
	fromSlice, err := tw.Summarize(tweets)
	if err != nil {
		t.Fatal(err)
	}
	fromIter, err := tw.SummarizeEach(func(fn func(*twitter.Tweet) bool) {
		for _, x := range tweets {
			if !fn(x) {
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSlice, fromIter) {
		t.Fatalf("iterator path diverged:\nslice %+v\niter  %+v", fromSlice, fromIter)
	}

	// Early stop: only the first tweet is seen.
	partial, err := tw.SummarizeEach(func(fn func(*twitter.Tweet) bool) {
		fn(tweets[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 1 || partial[0].Tweets != 1 {
		t.Fatalf("partial = %+v, want one single-tweet cell", partial)
	}
}
