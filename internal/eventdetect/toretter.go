package eventdetect

import (
	"context"
	"sort"
	"strings"
	"time"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/twitter"
)

// Burst is one detected temporal burst of a tracked keyword.
type Burst struct {
	Start, End time.Time
	Count      int
	// Rate is the burst window's tweets-per-minute.
	Rate float64
}

// DetectBursts scans keyword-tweet timestamps for windows whose rate exceeds
// factor times the background rate and at least minCount tweets. times need
// not be sorted. Overlapping hot windows merge into one burst.
func DetectBursts(times []time.Time, window time.Duration, minCount int, factor float64) []Burst {
	if len(times) == 0 || window <= 0 {
		return nil
	}
	ts := append([]time.Time(nil), times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	span := ts[len(ts)-1].Sub(ts[0]) + window
	background := float64(len(ts)) / span.Minutes() // tweets per minute
	threshold := background * factor

	var bursts []Burst
	lo := 0
	for hi := 0; hi < len(ts); hi++ {
		for ts[hi].Sub(ts[lo]) > window {
			lo++
		}
		count := hi - lo + 1
		rate := float64(count) / window.Minutes()
		if count >= minCount && rate > threshold {
			start, end := ts[lo], ts[hi]
			if n := len(bursts); n > 0 && !start.After(bursts[n-1].End) {
				// Merge into the previous burst.
				if end.After(bursts[n-1].End) {
					bursts[n-1].End = end
				}
				if count > bursts[n-1].Count {
					bursts[n-1].Count = count
					bursts[n-1].Rate = rate
				}
				continue
			}
			bursts = append(bursts, Burst{Start: start, End: end, Count: count, Rate: rate})
		}
	}
	return bursts
}

// Toretter is the keyword-tracking event detector with pluggable location
// weighting. It follows the original system's shape: query the platform for
// target terms, detect a temporal burst, then estimate where the event is
// from the reporting tweets' spatial attributes.
type Toretter struct {
	// Client reads tweets from the simulated platform.
	Client *twitter.Client
	// Keywords are the tracked terms (the original used "earthquake" and
	// "shaking").
	Keywords []string
	// Gazetteer resolves profile locations to district centroids.
	Gazetteer *admin.Gazetteer
	// ProfileDistrict maps a user to their (refined) profile district; users
	// absent from the map contribute no profile observation. This is the
	// §III refinement output.
	ProfileDistrict map[twitter.UserID]*admin.District
	// Reliability maps a user to the weight of their profile-derived
	// observation. Nil means unweighted (weight 1) — the baseline the paper
	// criticises. GPS observations always carry weight 1.
	Reliability map[int64]float64
	// UseProfileObs includes profile-derived observations at all; without
	// them the estimator is GPS-only (data-starved, the paper's §III problem).
	UseProfileObs bool
	// Method picks the estimator; Window/MinCount/Factor tune burst
	// detection.
	Method   Method
	Window   time.Duration
	MinCount int
	Factor   float64
	// Bounds confine the estimate search area.
	Bounds geo.Rect
	// Seed fixes the particle filter.
	Seed int64
}

// Detection is one detected event.
type Detection struct {
	Burst    Burst
	Location geo.Point
	// Observations actually used for the location estimate.
	Observations []Observation
}

// Run queries the platform for each keyword, merges the reports, detects
// bursts and estimates a location per burst.
func (t *Toretter) Run(ctx context.Context) ([]Detection, error) {
	window := t.Window
	if window <= 0 {
		window = 10 * time.Minute
	}
	minCount := t.MinCount
	if minCount <= 0 {
		minCount = 5
	}
	factor := t.Factor
	if factor <= 0 {
		factor = 4
	}
	var reports []*twitter.Tweet
	seen := map[twitter.TweetID]bool{}
	for _, kw := range t.Keywords {
		hits, err := t.Client.Search(ctx, kw, false, 0)
		if err != nil {
			return nil, err
		}
		for _, tw := range hits {
			if !seen[tw.ID] {
				seen[tw.ID] = true
				reports = append(reports, tw)
			}
		}
	}
	if len(reports) == 0 {
		return nil, nil
	}
	times := make([]time.Time, len(reports))
	for i, tw := range reports {
		times[i] = tw.CreatedAt
	}
	bursts := DetectBursts(times, window, minCount, factor)
	out := make([]Detection, 0, len(bursts))
	for _, b := range bursts {
		obs := t.observationsFor(reports, b)
		loc, err := EstimateLocation(obs, t.Method, t.Bounds, t.Seed)
		if err != nil {
			if err == ErrNoObservations {
				continue // burst with no usable spatial attribute
			}
			return nil, err
		}
		out = append(out, Detection{Burst: b, Location: loc, Observations: obs})
	}
	return out, nil
}

// observationsFor converts the burst's tweets into spatial observations.
func (t *Toretter) observationsFor(reports []*twitter.Tweet, b Burst) []Observation {
	var obs []Observation
	for _, tw := range reports {
		if tw.CreatedAt.Before(b.Start) || tw.CreatedAt.After(b.End) {
			continue
		}
		if tw.Geo != nil {
			obs = append(obs, Observation{
				Point:  geo.Point{Lat: tw.Geo.Lat, Lon: tw.Geo.Lon},
				Weight: 1,
				Source: SourceGPS,
				UserID: tw.UserID,
				At:     tw.CreatedAt,
			})
			continue
		}
		if !t.UseProfileObs {
			continue
		}
		d := t.ProfileDistrict[tw.UserID]
		if d == nil {
			continue
		}
		w := 1.0
		if t.Reliability != nil {
			w = t.Reliability[int64(tw.UserID)]
		}
		if w <= 0 {
			continue
		}
		obs = append(obs, Observation{
			Point:  d.Center,
			Weight: w,
			Source: SourceProfile,
			UserID: tw.UserID,
			At:     tw.CreatedAt,
		})
	}
	return obs
}

// KeywordMatchesText reports whether text mentions any tracked keyword;
// exported for harnesses that pre-filter offline tweet sets.
func KeywordMatchesText(text string, keywords []string) bool {
	lower := strings.ToLower(text)
	for _, kw := range keywords {
		if strings.Contains(lower, strings.ToLower(kw)) {
			return true
		}
	}
	return false
}

// ReliabilityFromGroupings builds the Reliability map from the correlation
// analysis — the paper's proposed pipeline stitched together.
func ReliabilityFromGroupings(groupings []core.UserGrouping, form core.WeightForm, ref *core.Analysis, floor float64) map[int64]float64 {
	w := &core.Weigher{Form: form, Ref: ref, Floor: floor}
	return w.WeightTable(groupings)
}
