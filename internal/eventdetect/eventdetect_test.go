package eventdetect

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/core"
	"stir/internal/geo"
	"stir/internal/twitter"
)

var (
	koreaBounds = geo.Rect{MinLat: 33, MinLon: 124, MaxLat: 39, MaxLon: 132}
	onset       = time.Date(2011, 10, 5, 14, 0, 0, 0, time.UTC)
)

func TestDetectBursts(t *testing.T) {
	var times []time.Time
	// Background: one mention per hour for 2 days.
	for i := 0; i < 48; i++ {
		times = append(times, onset.Add(time.Duration(i-48)*time.Hour))
	}
	// Burst: 20 mentions within 10 minutes at onset.
	for i := 0; i < 20; i++ {
		times = append(times, onset.Add(time.Duration(i*30)*time.Second))
	}
	bursts := DetectBursts(times, 10*time.Minute, 5, 4)
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1: %+v", len(bursts), bursts)
	}
	b := bursts[0]
	if b.Start.Before(onset.Add(-time.Minute)) || b.Start.After(onset.Add(time.Minute)) {
		t.Fatalf("burst start %v far from onset %v", b.Start, onset)
	}
	if b.Count < 15 {
		t.Fatalf("burst count = %d", b.Count)
	}
}

func TestDetectBurstsQuietStream(t *testing.T) {
	var times []time.Time
	for i := 0; i < 50; i++ {
		times = append(times, onset.Add(time.Duration(i)*time.Hour))
	}
	if got := DetectBursts(times, 10*time.Minute, 5, 4); len(got) != 0 {
		t.Fatalf("quiet stream produced bursts: %+v", got)
	}
	if got := DetectBursts(nil, 10*time.Minute, 5, 4); got != nil {
		t.Fatal("empty stream should be nil")
	}
	if got := DetectBursts(times, 0, 5, 4); got != nil {
		t.Fatal("zero window should be nil")
	}
}

func TestEstimateLocationMethods(t *testing.T) {
	truth := geo.Point{Lat: 37.5, Lon: 127.0}
	var obs []Observation
	for i := 0; i < 40; i++ {
		p := truth.Destination(float64(i*9), float64(i%7))
		obs = append(obs, Observation{Point: p, Weight: 1, Source: SourceGPS})
	}
	for _, m := range []Method{MethodMedian, MethodCentroid, MethodKalman, MethodParticle} {
		got, err := EstimateLocation(obs, m, koreaBounds, 3)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d := got.DistanceKm(truth); d > 15 {
			t.Errorf("%v estimate %.1f km off", m, d)
		}
	}
	if _, err := EstimateLocation(nil, MethodMedian, koreaBounds, 1); err != ErrNoObservations {
		t.Fatalf("empty obs err = %v", err)
	}
	zeroW := []Observation{{Point: truth, Weight: 0}}
	if _, err := EstimateLocation(zeroW, MethodMedian, koreaBounds, 1); err != ErrNoObservations {
		t.Fatalf("all-zero-weight err = %v", err)
	}
	if _, err := EstimateLocation(obs, Method(42), koreaBounds, 1); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMethodAndSourceStrings(t *testing.T) {
	if MethodMedian.String() != "median" || MethodParticle.String() != "particle" ||
		Method(9).String() != "unknown" {
		t.Fatal("method labels")
	}
	if SourceGPS.String() != "gps" || SourceProfile.String() != "profile" {
		t.Fatal("source labels")
	}
}

func TestKeywordMatchesText(t *testing.T) {
	if !KeywordMatchesText("Big EARTHQUAKE now", []string{"earthquake"}) {
		t.Fatal("case-insensitive match failed")
	}
	if KeywordMatchesText("calm day", []string{"earthquake", "shaking"}) {
		t.Fatal("false positive")
	}
}

// buildEventScenario populates a platform with background chatter plus an
// earthquake burst near Daejeon, with a mix of GPS reports, reliable-profile
// reports and misleading-profile reports.
func buildEventScenario(t *testing.T) (*twitter.Client, *admin.Gazetteer, map[twitter.UserID]*admin.District, map[int64]float64, geo.Point) {
	t.Helper()
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	epicentre := geo.Point{Lat: 36.35, Lon: 127.38} // central Daejeon

	profiles := map[twitter.UserID]*admin.District{}
	reliability := map[int64]float64{}
	mustDistrict := func(id string) *admin.District {
		d, err := gaz.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	daejeonJung := mustDistrict("KR/Daejeon/Jung-gu")
	seoulGangnam := mustDistrict("KR/Seoul/Gangnam-gu")

	// 12 reliable locals: profile in Daejeon, actually there. Their reports
	// carry no GPS — the estimator must use the profile.
	for i := 0; i < 12; i++ {
		u, _ := svc.CreateUser("local", "Daejeon Jung-gu", "ko", onset.AddDate(-1, 0, 0))
		profiles[u.ID] = daejeonJung
		reliability[int64(u.ID)] = 0.9
		svc.PostTweet(u.ID, "whoa earthquake just now!!", onset.Add(time.Duration(i)*time.Minute), nil)
	}
	// 10 misleading users: profile says Seoul (far away), no GPS. In the
	// unweighted baseline these drag the estimate 140 km north.
	for i := 0; i < 10; i++ {
		u, _ := svc.CreateUser("moved", "Gangnam-gu", "ko", onset.AddDate(-1, 0, 0))
		profiles[u.ID] = seoulGangnam
		reliability[int64(u.ID)] = 0.05 // their history says never at "home"
		svc.PostTweet(u.ID, "earthquake?? felt shaking", onset.Add(time.Duration(i)*time.Minute), nil)
	}
	// 3 GPS reports right at the event.
	for i := 0; i < 3; i++ {
		u, _ := svc.CreateUser("gps", "", "ko", onset.AddDate(-1, 0, 0))
		p := epicentre.Destination(float64(i*120), 2)
		svc.PostTweet(u.ID, "earthquake! shaking hard", onset.Add(time.Duration(i)*time.Minute),
			&twitter.GeoTag{Lat: p.Lat, Lon: p.Lon})
	}
	// Background noise far before the event.
	noise, _ := svc.CreateUser("noise", "", "ko", onset.AddDate(-1, 0, 0))
	for i := 0; i < 30; i++ {
		svc.PostTweet(noise.ID, "earthquake documentary was good", onset.Add(-time.Duration(i+3)*time.Hour), nil)
	}

	srv := httptest.NewServer(twitter.NewAPIServer(svc, twitter.ServerOptions{}))
	t.Cleanup(srv.Close)
	return twitter.NewClient(srv.URL), gaz, profiles, reliability, epicentre
}

func TestToretterWeightedBeatsUnweighted(t *testing.T) {
	client, gaz, profiles, reliability, epicentre := buildEventScenario(t)
	base := Toretter{
		Client:          client,
		Keywords:        []string{"earthquake", "shaking"},
		Gazetteer:       gaz,
		ProfileDistrict: profiles,
		UseProfileObs:   true,
		Method:          MethodParticle,
		Window:          20 * time.Minute,
		MinCount:        5,
		Factor:          3,
		Bounds:          koreaBounds,
		Seed:            17,
	}
	unweighted := base
	detU, err := unweighted.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(detU) == 0 {
		t.Fatal("unweighted detector found no event")
	}
	weighted := base
	weighted.Reliability = reliability
	detW, err := weighted.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(detW) == 0 {
		t.Fatal("weighted detector found no event")
	}
	errU := detU[0].Location.DistanceKm(epicentre)
	errW := detW[0].Location.DistanceKm(epicentre)
	if errW >= errU {
		t.Fatalf("weighting did not improve: weighted %.1f km vs unweighted %.1f km", errW, errU)
	}
	if errW > 30 {
		t.Fatalf("weighted estimate %.1f km off epicentre", errW)
	}
}

func TestToretterGPSOnlyStarved(t *testing.T) {
	client, gaz, profiles, _, _ := buildEventScenario(t)
	det := Toretter{
		Client:          client,
		Keywords:        []string{"earthquake"},
		Gazetteer:       gaz,
		ProfileDistrict: profiles,
		UseProfileObs:   false, // GPS only
		Method:          MethodMedian,
		Window:          20 * time.Minute,
		MinCount:        5,
		Factor:          3,
		Bounds:          koreaBounds,
	}
	ds, err := det.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Only 3 of 25 burst reports carry GPS: the observation set shrinks to
	// the paper's "lack of GPS coordinates" regime.
	for _, d := range ds {
		for _, o := range d.Observations {
			if o.Source != SourceGPS {
				t.Fatal("profile observation leaked into GPS-only run")
			}
		}
		if len(d.Observations) > 5 {
			t.Fatalf("GPS-only run has %d observations, expected starvation", len(d.Observations))
		}
	}
}

func TestTwitrisSummaries(t *testing.T) {
	gaz, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	jongno, err := gaz.ByID("KR/Seoul/Jongno-gu")
	if err != nil {
		t.Fatal(err)
	}
	haeundae, err := gaz.ByID("KR/Busan/Haeundae-gu")
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[twitter.UserID]*admin.District{1: jongno, 2: haeundae}
	day1 := time.Date(2011, 10, 1, 9, 0, 0, 0, time.UTC)
	day2 := day1.AddDate(0, 0, 1)
	tweets := []*twitter.Tweet{
		{ID: 1, UserID: 1, Text: "festival parade downtown", CreatedAt: day1},
		{ID: 2, UserID: 1, Text: "festival fireworks tonight", CreatedAt: day1},
		{ID: 3, UserID: 2, Text: "beach waves surfing", CreatedAt: day1},
		// GPS tweet overrides profile: posted from Haeundae.
		{ID: 4, UserID: 1, Text: "beach holiday", CreatedAt: day2,
			Geo: &twitter.GeoTag{Lat: 35.16, Lon: 129.16}},
		// User with no profile and no GPS is dropped.
		{ID: 5, UserID: 99, Text: "invisible", CreatedAt: day1},
	}
	tw := &Twitris{Gazetteer: gaz, ProfileDistrict: profiles, TopK: 3}
	sums, err := tw.Summarize(tweets)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("cells = %d, want 3: %+v", len(sums), sums)
	}
	// Day-1 Jongno cell should be festival-themed.
	var jong CellSummary
	found := false
	for _, s := range sums {
		if s.Key.District == jongno.ID() && s.Key.Day == "2011-10-01" {
			jong, found = s, true
		}
	}
	if !found || jong.Tweets != 2 {
		t.Fatalf("jongno cell = %+v found=%v", jong, found)
	}
	if jong.TopTerms[0].Term != "festival" {
		t.Fatalf("top term = %v", jong.TopTerms)
	}
	// GPS tweet created a day-2 Haeundae cell.
	foundGeo := false
	for _, s := range sums {
		if s.Key.Day == "2011-10-02" && s.Key.District == haeundae.ID() {
			foundGeo = true
		}
	}
	if !foundGeo {
		t.Fatal("GPS tweet did not form its own cell")
	}
	hot, ok := HottestCell(sums, day1)
	if !ok || hot.Key.Day != "2011-10-01" {
		t.Fatalf("HottestCell = %+v ok=%v", hot, ok)
	}
	if _, ok := HottestCell(sums, day1.AddDate(0, 1, 0)); ok {
		t.Fatal("empty day should report no hottest cell")
	}
	if _, err := (&Twitris{}).Summarize(tweets); err == nil {
		t.Fatal("missing gazetteer accepted")
	}
}

func TestReliabilityFromGroupings(t *testing.T) {
	home := core.Place{State: "Seoul", County: "Yangcheon-gu"}
	away := core.Place{State: "Seoul", County: "Jung-gu"}
	gs := []core.UserGrouping{
		core.BuildUserGrouping(1, home, []core.Place{home, home, away}), // share 2/3
		core.BuildUserGrouping(2, home, []core.Place{away, away}),       // share 0
	}
	tbl := ReliabilityFromGroupings(gs, core.WeightMatchShare, nil, 0.01)
	if len(tbl) != 2 {
		t.Fatalf("table = %v", tbl)
	}
	if tbl[1] <= tbl[2] {
		t.Fatalf("homebody should outweigh wanderer: %v", tbl)
	}
	if tbl[2] != 0.01 {
		t.Fatalf("floor not applied: %v", tbl[2])
	}
}
