package twitter

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Service is the in-memory Twitter platform: the social graph, the tweet
// store, and the query operations the HTTP API exposes. All methods are safe
// for concurrent use.
type Service struct {
	mu        sync.RWMutex
	users     map[UserID]*User
	tweets    []*Tweet         // append-only, ID order == index order
	byUser    map[UserID][]int // user -> indices into tweets
	followers map[UserID][]UserID
	following map[UserID][]UserID
	nextUser  UserID
	nextTweet TweetID
	streamers map[int]chan *Tweet
	nextStrm  int
}

// Errors returned by the service.
var (
	ErrUserNotFound  = errors.New("twitter: user not found")
	ErrTweetTooLong  = errors.New("twitter: tweet text exceeds 140 characters")
	ErrLocationLong  = errors.New("twitter: profile location exceeds 30 characters")
	ErrSelfFollow    = errors.New("twitter: user cannot follow themselves")
	ErrInvalidUserID = errors.New("twitter: invalid user id")
)

// NewService returns an empty platform.
func NewService() *Service {
	return &Service{
		users:     make(map[UserID]*User),
		byUser:    make(map[UserID][]int),
		followers: make(map[UserID][]UserID),
		following: make(map[UserID][]UserID),
		nextUser:  1,
		nextTweet: 1,
		streamers: make(map[int]chan *Tweet),
	}
}

// CreateUser registers a new account and returns it. The profile location is
// truncated at the platform limit the same way the real service truncates it.
func (s *Service) CreateUser(screenName, profileLocation, lang string, createdAt time.Time) (*User, error) {
	if len([]rune(profileLocation)) > MaxProfileLocationLen {
		runes := []rune(profileLocation)
		profileLocation = string(runes[:MaxProfileLocationLen])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u := &User{
		ID:              s.nextUser,
		ScreenName:      screenName,
		ProfileLocation: profileLocation,
		Lang:            lang,
		CreatedAt:       createdAt,
	}
	s.nextUser++
	s.users[u.ID] = u
	return u, nil
}

// User returns the account with the given id.
func (s *Service) User(id UserID) (*User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUserNotFound, id)
	}
	return u, nil
}

// UserCount returns the number of registered accounts.
func (s *Service) UserCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// TweetCount returns the number of posted tweets.
func (s *Service) TweetCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tweets)
}

// Follow records that follower follows followee.
func (s *Service) Follow(follower, followee UserID) error {
	if follower == followee {
		return ErrSelfFollow
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[follower]; !ok {
		return fmt.Errorf("%w: follower %d", ErrUserNotFound, follower)
	}
	if _, ok := s.users[followee]; !ok {
		return fmt.Errorf("%w: followee %d", ErrUserNotFound, followee)
	}
	for _, f := range s.followers[followee] {
		if f == follower {
			return nil // already following
		}
	}
	s.followers[followee] = append(s.followers[followee], follower)
	s.following[follower] = append(s.following[follower], followee)
	return nil
}

// Followers returns the IDs of accounts following id, in follow order.
func (s *Service) Followers(id UserID) ([]UserID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.users[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUserNotFound, id)
	}
	out := make([]UserID, len(s.followers[id]))
	copy(out, s.followers[id])
	return out, nil
}

// PostTweet publishes a tweet for the user, assigning the next ID. geo may
// be nil (the common case: the paper found only ~0.25% of tweets carry GPS).
func (s *Service) PostTweet(user UserID, text string, createdAt time.Time, geo *GeoTag) (*Tweet, error) {
	if len([]rune(text)) > MaxTweetLen {
		return nil, ErrTweetTooLong
	}
	s.mu.Lock()
	if _, ok := s.users[user]; !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrUserNotFound, user)
	}
	t := &Tweet{
		ID:        s.nextTweet,
		UserID:    user,
		Text:      text,
		CreatedAt: createdAt,
		Geo:       geo,
	}
	s.nextTweet++
	s.byUser[user] = append(s.byUser[user], len(s.tweets))
	s.tweets = append(s.tweets, t)
	streamers := make([]chan *Tweet, 0, len(s.streamers))
	for _, ch := range s.streamers {
		streamers = append(streamers, ch)
	}
	s.mu.Unlock()
	// Deliver to streams outside the lock; drop when a consumer lags, the
	// same best-effort contract as the real sample stream.
	for _, ch := range streamers {
		select {
		case ch <- t:
		default:
		}
	}
	return t, nil
}

// TimelinePage is one page of a user timeline.
type TimelinePage struct {
	Tweets []*Tweet
	// NextMaxID pages backwards in time; zero means no more pages.
	NextMaxID TweetID
}

// UserTimeline returns up to count tweets of the user with ID strictly less
// than maxID (or the newest if maxID is zero), newest first — Twitter v1
// max_id paging. count is clamped to 200 like the real endpoint.
func (s *Service) UserTimeline(user UserID, maxID TweetID, count int) (TimelinePage, error) {
	if count <= 0 {
		count = 20
	}
	if count > 200 {
		count = 200
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.users[user]; !ok {
		return TimelinePage{}, fmt.Errorf("%w: %d", ErrUserNotFound, user)
	}
	idxs := s.byUser[user]
	var page TimelinePage
	for i := len(idxs) - 1; i >= 0 && len(page.Tweets) < count; i-- {
		t := s.tweets[idxs[i]]
		if maxID != 0 && t.ID >= maxID {
			continue
		}
		page.Tweets = append(page.Tweets, t)
	}
	if n := len(page.Tweets); n == count && n > 0 {
		last := page.Tweets[n-1]
		// More pages exist iff an older tweet remains.
		for i := range idxs {
			if s.tweets[idxs[i]].ID < last.ID {
				page.NextMaxID = last.ID
				break
			}
		}
	}
	return page, nil
}

// SearchQuery selects tweets for the Search API.
type SearchQuery struct {
	// Text requires the tweet text to contain this term, case-insensitively.
	// Empty matches all tweets.
	Text string
	// SinceID restricts to tweets with ID strictly greater than this.
	SinceID TweetID
	// OnlyGeo restricts to tweets carrying GPS coordinates.
	OnlyGeo bool
	// Count caps the result size (clamped to 100 like the v1 endpoint).
	Count int
}

// Search returns tweets matching q, oldest first, so callers can resume with
// SinceID = last returned ID.
func (s *Service) Search(q SearchQuery) []*Tweet {
	count := q.Count
	if count <= 0 {
		count = 15
	}
	if count > 100 {
		count = 100
	}
	needle := strings.ToLower(q.Text)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Tweet
	// Tweets are in ID order; binary-search the resume point.
	start := sort.Search(len(s.tweets), func(i int) bool { return s.tweets[i].ID > q.SinceID })
	for _, t := range s.tweets[start:] {
		if q.OnlyGeo && t.Geo == nil {
			continue
		}
		if needle != "" && !strings.Contains(strings.ToLower(t.Text), needle) {
			continue
		}
		out = append(out, t)
		if len(out) >= count {
			break
		}
	}
	return out
}

// OpenStream subscribes to the live tweet firehose. The returned cancel
// function must be called to release the subscription. Slow consumers miss
// tweets rather than block posters.
func (s *Service) OpenStream(buffer int) (<-chan *Tweet, func()) {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan *Tweet, buffer)
	s.mu.Lock()
	id := s.nextStrm
	s.nextStrm++
	s.streamers[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.streamers[id]; ok {
			delete(s.streamers, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// StreamerCount reports how many live stream subscriptions are open —
// drivers that replay traffic use it to wait until a consumer is listening,
// since the firehose only carries tweets posted after subscription.
func (s *Service) StreamerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.streamers)
}

// EachTweet iterates all tweets in ID order; fn returning false stops.
func (s *Service) EachTweet(fn func(*Tweet) bool) {
	s.mu.RLock()
	tweets := s.tweets
	s.mu.RUnlock()
	for _, t := range tweets {
		if !fn(t) {
			return
		}
	}
}

// EachUser iterates all users in ID order; fn returning false stops.
func (s *Service) EachUser(fn func(*User) bool) {
	s.mu.RLock()
	ids := make([]UserID, 0, len(s.users))
	for id := range s.users {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.mu.RLock()
		u := s.users[id]
		s.mu.RUnlock()
		if u == nil {
			continue
		}
		if !fn(u) {
			return
		}
	}
}
