package twitter

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)

func newUser(t *testing.T, s *Service, name, loc string) *User {
	t.Helper()
	u, err := s.CreateUser(name, loc, "ko", t0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCreateUserTruncatesLocation(t *testing.T) {
	s := NewService()
	long := strings.Repeat("x", 50)
	u := newUser(t, s, "a", long)
	if got := len([]rune(u.ProfileLocation)); got != MaxProfileLocationLen {
		t.Fatalf("location length = %d, want %d", got, MaxProfileLocationLen)
	}
	// Multi-byte (Korean) text truncates by runes, not bytes.
	korean := strings.Repeat("서", 40)
	u2 := newUser(t, s, "b", korean)
	if got := len([]rune(u2.ProfileLocation)); got != MaxProfileLocationLen {
		t.Fatalf("korean location runes = %d, want %d", got, MaxProfileLocationLen)
	}
}

func TestUserLookup(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "alice", "Seoul Yangcheon-gu")
	got, err := s.User(u.ID)
	if err != nil || got.ScreenName != "alice" {
		t.Fatalf("User = %v, %v", got, err)
	}
	if _, err := s.User(999); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("missing user err = %v", err)
	}
}

func TestFollowGraph(t *testing.T) {
	s := NewService()
	a := newUser(t, s, "a", "")
	b := newUser(t, s, "b", "")
	c := newUser(t, s, "c", "")
	if err := s.Follow(b.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Follow(c.ID, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Follow(b.ID, a.ID); err != nil {
		t.Fatal(err) // duplicate follow is a no-op
	}
	fs, err := s.Followers(a.ID)
	if err != nil || len(fs) != 2 {
		t.Fatalf("Followers = %v, %v", fs, err)
	}
	if err := s.Follow(a.ID, a.ID); !errors.Is(err, ErrSelfFollow) {
		t.Fatalf("self follow err = %v", err)
	}
	if err := s.Follow(999, a.ID); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("unknown follower err = %v", err)
	}
	if _, err := s.Followers(999); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("followers of unknown err = %v", err)
	}
}

func TestPostTweetValidation(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	if _, err := s.PostTweet(u.ID, strings.Repeat("y", 141), t0, nil); !errors.Is(err, ErrTweetTooLong) {
		t.Fatalf("long tweet err = %v", err)
	}
	if _, err := s.PostTweet(999, "hi", t0, nil); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("unknown user err = %v", err)
	}
	tw, err := s.PostTweet(u.ID, "hello", t0, &GeoTag{Lat: 37.5, Lon: 127.0})
	if err != nil || !tw.HasGeo() {
		t.Fatalf("geo tweet = %v, %v", tw, err)
	}
}

func TestTweetIDsMonotonic(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	var last TweetID
	for i := 0; i < 10; i++ {
		tw, err := s.PostTweet(u.ID, "t", t0.Add(time.Duration(i)*time.Minute), nil)
		if err != nil {
			t.Fatal(err)
		}
		if tw.ID <= last {
			t.Fatalf("IDs not monotonic: %d after %d", tw.ID, last)
		}
		last = tw.ID
	}
	if s.TweetCount() != 10 {
		t.Fatalf("TweetCount = %d", s.TweetCount())
	}
}

func TestUserTimelinePaging(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	other := newUser(t, s, "b", "")
	for i := 0; i < 450; i++ {
		if _, err := s.PostTweet(u.ID, "mine", t0.Add(time.Duration(i)*time.Minute), nil); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			s.PostTweet(other.ID, "noise", t0, nil)
		}
	}
	var got []*Tweet
	maxID := TweetID(0)
	pages := 0
	for {
		page, err := s.UserTimeline(u.ID, maxID, 200)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page.Tweets...)
		pages++
		if page.NextMaxID == 0 {
			break
		}
		maxID = page.NextMaxID
	}
	if len(got) != 450 {
		t.Fatalf("collected %d tweets, want 450", len(got))
	}
	if pages != 3 {
		t.Fatalf("pages = %d, want 3 (200+200+50)", pages)
	}
	// Newest first, strictly descending, and all ours.
	for i, tw := range got {
		if tw.UserID != u.ID {
			t.Fatalf("foreign tweet in timeline: %v", tw)
		}
		if i > 0 && tw.ID >= got[i-1].ID {
			t.Fatalf("timeline not descending at %d", i)
		}
	}
}

func TestUserTimelineCountClamp(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	for i := 0; i < 300; i++ {
		s.PostTweet(u.ID, "t", t0, nil)
	}
	page, err := s.UserTimeline(u.ID, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Tweets) != 200 {
		t.Fatalf("count not clamped to 200, got %d", len(page.Tweets))
	}
	page, _ = s.UserTimeline(u.ID, 0, 0)
	if len(page.Tweets) != 20 {
		t.Fatalf("default count = %d, want 20", len(page.Tweets))
	}
}

func TestSearch(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	s.PostTweet(u.ID, "Big earthquake in Seoul!", t0, nil)
	s.PostTweet(u.ID, "lunch time", t0, &GeoTag{Lat: 37.5, Lon: 127})
	s.PostTweet(u.ID, "EARTHQUAKE again", t0, &GeoTag{Lat: 35.1, Lon: 129})

	hits := s.Search(SearchQuery{Text: "earthquake", Count: 10})
	if len(hits) != 2 {
		t.Fatalf("search hits = %d, want 2", len(hits))
	}
	if hits[0].ID >= hits[1].ID {
		t.Fatal("search results should be oldest first")
	}
	geoHits := s.Search(SearchQuery{OnlyGeo: true, Count: 10})
	if len(geoHits) != 2 {
		t.Fatalf("geo hits = %d, want 2", len(geoHits))
	}
	// since_id resumption.
	next := s.Search(SearchQuery{Text: "earthquake", SinceID: hits[0].ID, Count: 10})
	if len(next) != 1 || next[0].ID != hits[1].ID {
		t.Fatalf("since_id resume = %v", next)
	}
}

func TestStreamDelivery(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	ch, cancel := s.OpenStream(16)
	defer cancel()
	want := 5
	for i := 0; i < want; i++ {
		s.PostTweet(u.ID, "streamed", t0, nil)
	}
	got := 0
	timeout := time.After(time.Second)
	for got < want {
		select {
		case <-ch:
			got++
		case <-timeout:
			t.Fatalf("received %d/%d streamed tweets", got, want)
		}
	}
	// After cancel, posting must not block or panic.
	cancel()
	if _, err := s.PostTweet(u.ID, "after cancel", t0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSlowConsumerDrops(t *testing.T) {
	s := NewService()
	u := newUser(t, s, "a", "")
	_, cancel := s.OpenStream(1) // tiny buffer, never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.PostTweet(u.ID, "flood", t0, nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("posting blocked on slow stream consumer")
	}
}

func TestEachTweetAndUser(t *testing.T) {
	s := NewService()
	a := newUser(t, s, "a", "")
	newUser(t, s, "b", "")
	s.PostTweet(a.ID, "1", t0, nil)
	s.PostTweet(a.ID, "2", t0, nil)
	var tweetCount int
	s.EachTweet(func(tw *Tweet) bool { tweetCount++; return true })
	if tweetCount != 2 {
		t.Fatalf("EachTweet visited %d", tweetCount)
	}
	var names []string
	s.EachUser(func(u *User) bool { names = append(names, u.ScreenName); return len(names) < 1 })
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("EachUser early stop = %v", names)
	}
}

func TestServiceConcurrency(t *testing.T) {
	s := NewService()
	users := make([]*User, 8)
	for i := range users {
		users[i] = newUser(t, s, "u", "")
	}
	var wg sync.WaitGroup
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.PostTweet(users[i].ID, "c", t0, nil)
				s.UserTimeline(users[i].ID, 0, 10)
				s.Search(SearchQuery{Text: "c", Count: 5})
			}
		}(i)
	}
	wg.Wait()
	if s.TweetCount() != 400 {
		t.Fatalf("TweetCount = %d, want 400", s.TweetCount())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := &User{ID: 7, ScreenName: "bslee", ProfileLocation: "서울 양천구", Lang: "ko", CreatedAt: t0}
	b, err := EncodeUser(u)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := DecodeUser(b)
	if err != nil || *u2 != *u {
		t.Fatalf("user roundtrip = %+v, %v", u2, err)
	}
	tw := &Tweet{ID: 9, UserID: 7, Text: "hi", CreatedAt: t0, Geo: &GeoTag{Lat: 37.5, Lon: 127}}
	tb, err := EncodeTweet(tw)
	if err != nil {
		t.Fatal(err)
	}
	tw2, err := DecodeTweet(tb)
	if err != nil || tw2.ID != tw.ID || *tw2.Geo != *tw.Geo {
		t.Fatalf("tweet roundtrip = %+v, %v", tw2, err)
	}
	if _, err := DecodeUser([]byte("{bad")); err == nil {
		t.Fatal("bad user json accepted")
	}
	if _, err := DecodeTweet([]byte("{bad")); err == nil {
		t.Fatal("bad tweet json accepted")
	}
}
