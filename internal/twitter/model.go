// Package twitter implements the simulated Twitter platform STIR collects
// its data from: an in-memory social graph of users and tweets, a REST-style
// HTTP API mirroring the era's Twitter API v1 (followers/ids, user_timeline,
// search, and a streaming sample endpoint), a client SDK with rate-limit
// handling, and a follower-graph crawler with persistent checkpoints.
//
// The paper collected two datasets through exactly these access paths: a
// Korean dataset crawled follower-by-follower from seed users plus the
// Search API, and a worldwide dataset from the Streaming API. The substrate
// reproduces the interface, the pagination, and the rate-limit behaviour so
// the collection pipeline above it is faithful.
package twitter

import (
	"encoding/json"
	"fmt"
	"time"
)

// UserID identifies a user.
type UserID int64

// TweetID identifies a tweet. IDs are assigned in posting order, so ID order
// is chronological order, which the API's since_id/max_id paging relies on.
type TweetID int64

// User is a Twitter account. ProfileLocation is the free-text location field
// the paper studies: at most 30 characters, never normalised or geocoded by
// the platform.
type User struct {
	ID              UserID    `json:"id"`
	ScreenName      string    `json:"screen_name"`
	ProfileLocation string    `json:"location"`
	Lang            string    `json:"lang"`
	CreatedAt       time.Time `json:"created_at"`
}

// MaxProfileLocationLen is the platform limit on the profile location field.
const MaxProfileLocationLen = 30

// GeoTag is an optional GPS coordinate attached to a tweet posted from a
// smart mobile device.
type GeoTag struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Tweet is a single status update.
type Tweet struct {
	ID        TweetID   `json:"id"`
	UserID    UserID    `json:"user_id"`
	Text      string    `json:"text"`
	CreatedAt time.Time `json:"created_at"`
	Geo       *GeoTag   `json:"geo,omitempty"`
}

// MaxTweetLen is the platform limit on tweet text.
const MaxTweetLen = 140

// HasGeo reports whether the tweet carries GPS coordinates.
func (t *Tweet) HasGeo() bool { return t.Geo != nil }

// MarshalKey renders a stable storage key for the tweet.
func (t *Tweet) MarshalKey() string {
	return fmt.Sprintf("tweet/%020d", t.ID)
}

// MarshalKey renders a stable storage key for the user.
func (u *User) MarshalKey() string {
	return fmt.Sprintf("user/%020d", u.ID)
}

// EncodeUser serialises a user for storage.
func EncodeUser(u *User) ([]byte, error) { return json.Marshal(u) }

// DecodeUser deserialises a user from storage.
func DecodeUser(b []byte) (*User, error) {
	var u User
	if err := json.Unmarshal(b, &u); err != nil {
		return nil, fmt.Errorf("twitter: decode user: %w", err)
	}
	return &u, nil
}

// EncodeTweet serialises a tweet for storage.
func EncodeTweet(t *Tweet) ([]byte, error) { return json.Marshal(t) }

// DecodeTweet deserialises a tweet from storage.
func DecodeTweet(b []byte) (*Tweet, error) {
	var t Tweet
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("twitter: decode tweet: %w", err)
	}
	return &t, nil
}
