package twitter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stir/internal/obs"
)

// rawStreamServer serves a fixed byte payload on any path, so tests can put
// arbitrary garbage on the wire.
func rawStreamServer(t *testing.T, payload string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(payload))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func collectStream(t *testing.T, srv *httptest.Server, reg *obs.Registry) []*Tweet {
	t.Helper()
	c := NewClient(srv.URL)
	c.HTTP = srv.Client()
	c.Metrics = reg
	var got []*Tweet
	if err := c.Stream(context.Background(), "", func(tw *Tweet) bool {
		got = append(got, tw)
		return true
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	return got
}

// TestStreamSkipsMalformedLine is the regression test for the stream dying on
// one bad record: garbage lines are skipped and counted, surrounding tweets
// still arrive.
func TestStreamSkipsMalformedLine(t *testing.T) {
	payload := `{"id":1,"user_id":7,"text":"a"}` + "\n" +
		`{"id":2,"user_id":7,` + "\n" + // truncated record
		"\x00\xff<corrupt/>{{{\n" + // binary garbage
		"\n" + // keep-alive blank line
		`{"id":3,"user_id":8,"text":"b"}` + "\n"
	reg := obs.NewRegistry()
	got := collectStream(t, rawStreamServer(t, payload), reg)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("delivered %d tweets: %+v", len(got), got)
	}
	if n := reg.Counter("stream_decode_errors_total", "reason", "bad_json").Value(); n != 2 {
		t.Fatalf("bad_json count = %d, want 2", n)
	}
}

// TestStreamSkipsOversizedLine is the regression test for lines beyond the
// 1 MiB cap: the old bufio.Scanner died with ErrTooLong; now the line is
// discarded, counted, and the stream continues.
func TestStreamSkipsOversizedLine(t *testing.T) {
	huge := `{"id":2,"user_id":7,"text":"` + strings.Repeat("x", 2<<20) + `"}`
	payload := `{"id":1,"user_id":7,"text":"a"}` + "\n" +
		huge + "\n" +
		`{"id":3,"user_id":8,"text":"b"}` + "\n"
	reg := obs.NewRegistry()
	got := collectStream(t, rawStreamServer(t, payload), reg)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("delivered %d tweets: %+v", len(got), got)
	}
	if n := reg.Counter("stream_decode_errors_total", "reason", "too_long").Value(); n != 1 {
		t.Fatalf("too_long count = %d, want 1", n)
	}
}

// TestStreamOversizedFinalLine covers an over-long line truncated by the
// connection dropping (no trailing newline): still skipped, never decoded.
func TestStreamOversizedFinalLine(t *testing.T) {
	payload := `{"id":1,"user_id":7,"text":"a"}` + "\n" +
		strings.Repeat("y", 3<<20) // dies mid-line
	reg := obs.NewRegistry()
	got := collectStream(t, rawStreamServer(t, payload), reg)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("delivered %d tweets: %+v", len(got), got)
	}
	if n := reg.Counter("stream_decode_errors_total", "reason", "too_long").Value(); n != 1 {
		t.Fatalf("too_long count = %d, want 1", n)
	}
}

// TestStreamStopsWhenCallbackReturnsFalse keeps the early-stop contract.
func TestStreamStopsWhenCallbackReturnsFalse(t *testing.T) {
	payload := `{"id":1,"user_id":7}` + "\n" + `{"id":2,"user_id":7}` + "\n"
	srv := rawStreamServer(t, payload)
	c := NewClient(srv.URL)
	c.HTTP = srv.Client()
	c.Metrics = obs.NewRegistry()
	var got []*Tweet
	if err := c.Stream(context.Background(), "", func(tw *Tweet) bool {
		got = append(got, tw)
		return false
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("delivered %+v, want just tweet 1", got)
	}
}
