package twitter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/storage"
)

// Crawler walks the follower graph breadth-first from seed users — the
// collection strategy the paper adopted after the policy change removed bulk
// access ("we collect the users with crawler that explores the every
// followers of the given seed user"). Progress is checkpointed to a
// storage.Store so an interrupted crawl resumes where it stopped.
//
// Per-user fetches run under a retry policy; a user that keeps failing is
// quarantined under crawl/quarantined/<id> and the crawl moves on, so one
// poisoned account cannot wedge the frontier forever.
type Crawler struct {
	Client *Client
	Store  *storage.Store

	// MaxUsers stops the crawl once this many profiles are collected
	// (<= 0 means unbounded).
	MaxUsers int
	// TimelineLimit caps tweets fetched per user (<= 0 means all).
	TimelineLimit int
	// Retry overrides the per-user retry policy (default: 3 attempts with
	// jittered exponential backoff — on top of the client's own per-call
	// retries).
	Retry *resilience.Policy
	// OnProgress, when set, is called after each crawled user.
	OnProgress func(done int, queued int)
	// Metrics receives the crawl's progress series (nil means obs.Default;
	// obs.Discard disables).
	Metrics *obs.Registry

	polOnce sync.Once
	pol     *resilience.Policy
}

const (
	crawlMetaKey       = "crawl/frontier"
	crawlVisitedPfx    = "crawl/visited/"
	crawlQuarantinePfx = "crawl/quarantined/"
	userKeyPfx         = "user/"
	tweetKeyPfx        = "tweet/"
)

type crawlCheckpoint struct {
	Frontier []UserID `json:"frontier"`
	Done     int      `json:"done"`
}

// CrawlResult summarises a finished (or stopped) crawl.
type CrawlResult struct {
	UsersCollected  int
	TweetsCollected int
	GeoTweets       int
	// UsersQuarantined counts users whose fetches kept failing and were
	// set aside under crawl/quarantined/ instead of aborting the crawl.
	UsersQuarantined int
}

// policy resolves the crawler's per-user retry policy once: the explicit
// Retry override, or a modest default layered on top of the client's own
// per-call retries.
func (c *Crawler) policy() *resilience.Policy {
	c.polOnce.Do(func() {
		if c.Retry != nil {
			c.pol = c.Retry
			return
		}
		c.pol = &resilience.Policy{
			Name:        "crawler",
			MaxAttempts: 3,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    time.Second,
			Metrics:     c.Metrics,
		}
	})
	return c.pol
}

// Run crawls from the given seeds. If the store already holds a checkpoint,
// seeds are ignored and the crawl resumes from the stored frontier.
func (c *Crawler) Run(ctx context.Context, seeds ...UserID) (CrawlResult, error) {
	var res CrawlResult
	if c.Client == nil || c.Store == nil {
		return res, errors.New("twitter: crawler needs Client and Store")
	}
	reg := obs.Or(c.Metrics)
	var (
		mUsers       = reg.Counter("crawl_users_total")
		mTweets      = reg.Counter("crawl_tweets_total")
		mGeo         = reg.Counter("crawl_geo_tweets_total")
		mGone        = reg.Counter("crawl_gone_users_total")
		mQuarantined = reg.Counter("crawl_quarantined_total")
		mFrontier    = reg.Gauge("crawl_frontier_depth")
	)
	frontier, done, resumed, err := c.loadCheckpoint(seeds)
	if err != nil {
		return res, err
	}
	res.UsersCollected = done
	mFrontier.Set(float64(len(frontier)))
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if c.MaxUsers > 0 && res.UsersCollected >= c.MaxUsers {
			break
		}
		id := frontier[0]
		frontier = frontier[1:]
		visitedKey := fmt.Sprintf("%s%d", crawlVisitedPfx, id)
		if c.Store.Has(visitedKey) {
			continue
		}
		var (
			batch       *storage.Batch
			tweets, geo int
			followers   []UserID
		)
		// Per-user fetches retry transient failures; the client underneath
		// already retries individual calls, so this layer covers failures
		// that outlive a whole call's retry budget.
		err := c.policy().Do(ctx, func(ctx context.Context) error {
			b, tw, g, err := c.crawlUser(ctx, id)
			if err != nil {
				return err
			}
			f, err := c.Client.FollowerIDs(ctx, id)
			if err != nil && !IsNotFound(err) {
				return fmt.Errorf("followers: %w", err)
			}
			batch, tweets, geo, followers = b, tw, g, f
			return nil
		})
		if err != nil {
			switch {
			case IsNotFound(err):
				// Deleted/suspended account: mark visited and move on.
				mGone.Inc()
				if perr := c.Store.Put(visitedKey, []byte("gone")); perr != nil {
					return res, perr
				}
				continue
			case ctx.Err() != nil:
				return res, fmt.Errorf("twitter: crawl user %d: %w", id, err)
			default:
				// Poisoned user: retries are exhausted but the process and
				// the upstream are alive, so quarantine the user and keep
				// the frontier moving.
				mQuarantined.Inc()
				res.UsersQuarantined++
				if perr := c.quarantine(id, err, frontier, res.UsersCollected); perr != nil {
					return res, perr
				}
				continue
			}
		}
		res.UsersCollected++
		res.TweetsCollected += tweets
		res.GeoTweets += geo
		mUsers.Inc()
		mTweets.Add(int64(tweets))
		mGeo.Add(int64(geo))
		batch.Put(visitedKey, []byte("ok"))
		for _, f := range followers {
			if !c.Store.Has(fmt.Sprintf("%s%d", crawlVisitedPfx, f)) {
				frontier = append(frontier, f)
			}
		}
		cp, err := json.Marshal(crawlCheckpoint{Frontier: frontier, Done: res.UsersCollected})
		if err != nil {
			return res, err
		}
		batch.Put(crawlMetaKey, cp)
		// One atomic commit per user: profile, tweets, visited marker and
		// checkpoint land together or not at all, so a crash never leaves a
		// half-crawled user behind.
		if err := batch.Commit(); err != nil {
			return res, err
		}
		mFrontier.Set(float64(len(frontier)))
		if c.OnProgress != nil {
			c.OnProgress(res.UsersCollected, len(frontier))
		}
	}
	// On a resumed crawl UsersCollected is a whole-crawl total while the
	// tweet counters only cover this leg, so recount from the store. A
	// fresh crawl keeps its live counters even when they are zero.
	if resumed && res.UsersCollected > 0 {
		res.TweetsCollected, res.GeoTweets = c.countStoredTweets()
	}
	return res, nil
}

// quarantine records a persistently-failing user — the cause under
// crawl/quarantined/<id>, a visited marker so the BFS moves on, and the
// checkpoint so progress survives a crash — in one atomic commit.
func (c *Crawler) quarantine(id UserID, cause error, frontier []UserID, done int) error {
	cp, err := json.Marshal(crawlCheckpoint{Frontier: frontier, Done: done})
	if err != nil {
		return err
	}
	b := c.Store.NewBatch()
	b.Put(fmt.Sprintf("%s%d", crawlQuarantinePfx, id), []byte(cause.Error()))
	b.Put(fmt.Sprintf("%s%d", crawlVisitedPfx, id), []byte("quarantined"))
	b.Put(crawlMetaKey, cp)
	return b.Commit()
}

// QuarantinedUsers lists the users a crawl quarantined, keyed to the
// recorded failure cause.
func QuarantinedUsers(store *storage.Store) (map[UserID]string, error) {
	out := make(map[UserID]string)
	for _, k := range store.KeysWithPrefix(crawlQuarantinePfx) {
		raw, err := store.Get(k)
		if err != nil {
			return nil, err
		}
		id, err := strconv.ParseInt(strings.TrimPrefix(k, crawlQuarantinePfx), 10, 64)
		if err != nil {
			continue
		}
		out[UserID(id)] = string(raw)
	}
	return out, nil
}

// crawlUser fetches one user's profile and timeline, queueing the writes in
// a batch the caller commits together with the checkpoint.
func (c *Crawler) crawlUser(ctx context.Context, id UserID) (batch *storage.Batch, tweets, geo int, err error) {
	u, err := c.Client.UserShow(ctx, id)
	if err != nil {
		return nil, 0, 0, err
	}
	ub, err := EncodeUser(u)
	if err != nil {
		return nil, 0, 0, err
	}
	batch = c.Store.NewBatch()
	batch.Put(u.MarshalKey(), ub)
	tl, err := c.Client.UserTimeline(ctx, id, c.TimelineLimit)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, t := range tl {
		tb, err := EncodeTweet(t)
		if err != nil {
			return nil, 0, 0, err
		}
		batch.Put(t.MarshalKey(), tb)
		tweets++
		if t.HasGeo() {
			geo++
		}
	}
	return batch, tweets, geo, nil
}

func (c *Crawler) loadCheckpoint(seeds []UserID) (frontier []UserID, done int, resumed bool, err error) {
	raw, err := c.Store.Get(crawlMetaKey)
	if errors.Is(err, storage.ErrKeyNotFound) {
		return seeds, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	var cp crawlCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, 0, false, fmt.Errorf("twitter: corrupt crawl checkpoint: %w", err)
	}
	if len(cp.Frontier) == 0 && cp.Done == 0 {
		return seeds, 0, false, nil
	}
	return cp.Frontier, cp.Done, true, nil
}

func (c *Crawler) countStoredTweets() (tweets, geo int) {
	for _, k := range c.Store.KeysWithPrefix(tweetKeyPfx) {
		tweets++
		raw, err := c.Store.Get(k)
		if err != nil {
			continue
		}
		t, err := DecodeTweet(raw)
		if err == nil && t.HasGeo() {
			geo++
		}
	}
	return tweets, geo
}

// LoadCollected reads every stored user and tweet back out of a crawl store,
// grouping tweets by user. This is the hand-off point from collection to the
// refinement pipeline.
func LoadCollected(store *storage.Store) (map[UserID]*User, map[UserID][]*Tweet, error) {
	users := make(map[UserID]*User)
	tweets := make(map[UserID][]*Tweet)
	for _, k := range store.KeysWithPrefix(userKeyPfx) {
		raw, err := store.Get(k)
		if err != nil {
			return nil, nil, err
		}
		u, err := DecodeUser(raw)
		if err != nil {
			return nil, nil, err
		}
		users[u.ID] = u
	}
	for _, k := range store.KeysWithPrefix(tweetKeyPfx) {
		raw, err := store.Get(k)
		if err != nil {
			return nil, nil, err
		}
		t, err := DecodeTweet(raw)
		if err != nil {
			return nil, nil, err
		}
		tweets[t.UserID] = append(tweets[t.UserID], t)
	}
	return users, tweets, nil
}
