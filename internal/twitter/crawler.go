package twitter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"stir/internal/obs"
	"stir/internal/storage"
)

// Crawler walks the follower graph breadth-first from seed users — the
// collection strategy the paper adopted after the policy change removed bulk
// access ("we collect the users with crawler that explores the every
// followers of the given seed user"). Progress is checkpointed to a
// storage.Store so an interrupted crawl resumes where it stopped.
type Crawler struct {
	Client *Client
	Store  *storage.Store

	// MaxUsers stops the crawl once this many profiles are collected
	// (<= 0 means unbounded).
	MaxUsers int
	// TimelineLimit caps tweets fetched per user (<= 0 means all).
	TimelineLimit int
	// OnProgress, when set, is called after each crawled user.
	OnProgress func(done int, queued int)
	// Metrics receives the crawl's progress series (nil means obs.Default;
	// obs.Discard disables).
	Metrics *obs.Registry
}

const (
	crawlMetaKey    = "crawl/frontier"
	crawlVisitedPfx = "crawl/visited/"
	userKeyPfx      = "user/"
	tweetKeyPfx     = "tweet/"
)

type crawlCheckpoint struct {
	Frontier []UserID `json:"frontier"`
	Done     int      `json:"done"`
}

// CrawlResult summarises a finished (or stopped) crawl.
type CrawlResult struct {
	UsersCollected  int
	TweetsCollected int
	GeoTweets       int
}

// Run crawls from the given seeds. If the store already holds a checkpoint,
// seeds are ignored and the crawl resumes from the stored frontier.
func (c *Crawler) Run(ctx context.Context, seeds ...UserID) (CrawlResult, error) {
	var res CrawlResult
	if c.Client == nil || c.Store == nil {
		return res, errors.New("twitter: crawler needs Client and Store")
	}
	reg := obs.Or(c.Metrics)
	var (
		mUsers    = reg.Counter("crawl_users_total")
		mTweets   = reg.Counter("crawl_tweets_total")
		mGeo      = reg.Counter("crawl_geo_tweets_total")
		mGone     = reg.Counter("crawl_gone_users_total")
		mFrontier = reg.Gauge("crawl_frontier_depth")
	)
	frontier, done, err := c.loadCheckpoint(seeds)
	if err != nil {
		return res, err
	}
	res.UsersCollected = done
	mFrontier.Set(float64(len(frontier)))
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if c.MaxUsers > 0 && res.UsersCollected >= c.MaxUsers {
			break
		}
		id := frontier[0]
		frontier = frontier[1:]
		visitedKey := fmt.Sprintf("%s%d", crawlVisitedPfx, id)
		if c.Store.Has(visitedKey) {
			continue
		}
		batch, tweets, geo, err := c.crawlUser(ctx, id)
		if err != nil {
			if IsNotFound(err) {
				// Deleted/suspended account: mark visited and move on.
				mGone.Inc()
				if err := c.Store.Put(visitedKey, []byte("gone")); err != nil {
					return res, err
				}
				continue
			}
			return res, fmt.Errorf("twitter: crawl user %d: %w", id, err)
		}
		res.UsersCollected++
		res.TweetsCollected += tweets
		res.GeoTweets += geo
		mUsers.Inc()
		mTweets.Add(int64(tweets))
		mGeo.Add(int64(geo))
		batch.Put(visitedKey, []byte("ok"))
		followers, err := c.Client.FollowerIDs(ctx, id)
		if err != nil && !IsNotFound(err) {
			return res, fmt.Errorf("twitter: followers of %d: %w", id, err)
		}
		for _, f := range followers {
			if !c.Store.Has(fmt.Sprintf("%s%d", crawlVisitedPfx, f)) {
				frontier = append(frontier, f)
			}
		}
		cp, err := json.Marshal(crawlCheckpoint{Frontier: frontier, Done: res.UsersCollected})
		if err != nil {
			return res, err
		}
		batch.Put(crawlMetaKey, cp)
		// One atomic commit per user: profile, tweets, visited marker and
		// checkpoint land together or not at all, so a crash never leaves a
		// half-crawled user behind.
		if err := batch.Commit(); err != nil {
			return res, err
		}
		mFrontier.Set(float64(len(frontier)))
		if c.OnProgress != nil {
			c.OnProgress(res.UsersCollected, len(frontier))
		}
	}
	// Recount tweets from the store when resuming left res incomplete.
	if res.TweetsCollected == 0 && res.UsersCollected > 0 {
		res.TweetsCollected, res.GeoTweets = c.countStoredTweets()
	}
	return res, nil
}

// crawlUser fetches one user's profile and timeline, queueing the writes in
// a batch the caller commits together with the checkpoint.
func (c *Crawler) crawlUser(ctx context.Context, id UserID) (batch *storage.Batch, tweets, geo int, err error) {
	u, err := c.Client.UserShow(ctx, id)
	if err != nil {
		return nil, 0, 0, err
	}
	ub, err := EncodeUser(u)
	if err != nil {
		return nil, 0, 0, err
	}
	batch = c.Store.NewBatch()
	batch.Put(u.MarshalKey(), ub)
	tl, err := c.Client.UserTimeline(ctx, id, c.TimelineLimit)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, t := range tl {
		tb, err := EncodeTweet(t)
		if err != nil {
			return nil, 0, 0, err
		}
		batch.Put(t.MarshalKey(), tb)
		tweets++
		if t.HasGeo() {
			geo++
		}
	}
	return batch, tweets, geo, nil
}

func (c *Crawler) loadCheckpoint(seeds []UserID) ([]UserID, int, error) {
	raw, err := c.Store.Get(crawlMetaKey)
	if errors.Is(err, storage.ErrKeyNotFound) {
		return seeds, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var cp crawlCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, 0, fmt.Errorf("twitter: corrupt crawl checkpoint: %w", err)
	}
	if len(cp.Frontier) == 0 && cp.Done == 0 {
		return seeds, 0, nil
	}
	return cp.Frontier, cp.Done, nil
}

func (c *Crawler) countStoredTweets() (tweets, geo int) {
	for _, k := range c.Store.KeysWithPrefix(tweetKeyPfx) {
		tweets++
		raw, err := c.Store.Get(k)
		if err != nil {
			continue
		}
		t, err := DecodeTweet(raw)
		if err == nil && t.HasGeo() {
			geo++
		}
	}
	return tweets, geo
}

// LoadCollected reads every stored user and tweet back out of a crawl store,
// grouping tweets by user. This is the hand-off point from collection to the
// refinement pipeline.
func LoadCollected(store *storage.Store) (map[UserID]*User, map[UserID][]*Tweet, error) {
	users := make(map[UserID]*User)
	tweets := make(map[UserID][]*Tweet)
	for _, k := range store.KeysWithPrefix(userKeyPfx) {
		raw, err := store.Get(k)
		if err != nil {
			return nil, nil, err
		}
		u, err := DecodeUser(raw)
		if err != nil {
			return nil, nil, err
		}
		users[u.ID] = u
	}
	for _, k := range store.KeysWithPrefix(tweetKeyPfx) {
		raw, err := store.Get(k)
		if err != nil {
			return nil, nil, err
		}
		t, err := DecodeTweet(raw)
		if err != nil {
			return nil, nil, err
		}
		tweets[t.UserID] = append(tweets[t.UserID], t)
	}
	return users, tweets, nil
}
