package twitter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/storage"
)

// TestRateLimit429ThroughMiddleware drives the API server past its budget and
// checks the full rejection contract: 429 status, X-RateLimit-* and
// Retry-After headers, and the middleware's rejection counter.
func TestRateLimit429ThroughMiddleware(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	reg := obs.NewRegistry()
	srv := httptest.NewServer(NewAPIServer(svc, ServerOptions{
		RESTLimit: 2,
		Window:    time.Hour,
		Metrics:   reg,
	}))
	defer srv.Close()

	url := srv.URL + "/1/users/show.json?user_id=" + strconv.FormatInt(int64(u.ID), 10)
	var last *http.Response
	for i := 0; i < 3; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		last = resp
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third call status = %d, want 429", last.StatusCode)
	}
	for _, h := range []string{"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset", "Retry-After"} {
		if last.Header.Get(h) == "" {
			t.Errorf("429 missing %s header", h)
		}
	}
	if got := last.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Errorf("X-RateLimit-Remaining = %q, want 0", got)
	}
	if ra, err := strconv.Atoi(last.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", last.Header.Get("Retry-After"))
	}

	snap := reg.Snapshot()
	route := "/1/users/show.json"
	if m, ok := snap.Get(obs.HTTPRequestsMetric, "service", "twitterd", "route", route, "class", "2xx"); !ok || m.Value != 2 {
		t.Errorf("2xx counter = %+v ok=%v, want 2", m, ok)
	}
	if m, ok := snap.Get(obs.HTTPRequestsMetric, "service", "twitterd", "route", route, "class", "4xx"); !ok || m.Value != 1 {
		t.Errorf("4xx counter = %+v ok=%v, want 1", m, ok)
	}
	if m, ok := snap.Get(obs.HTTPRateLimitedMetric, "service", "twitterd", "route", route); !ok || m.Value != 1 {
		t.Errorf("ratelimited counter = %+v ok=%v, want 1", m, ok)
	}
	if m, ok := snap.Get(obs.HTTPLatencyMetric, "service", "twitterd", "route", route); !ok || m.Count != 3 {
		t.Errorf("latency histogram = %+v ok=%v, want 3 observations", m, ok)
	}
}

// TestClientThrottleMetrics checks the client counts its 429 backoffs.
func TestClientThrottleMetrics(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	_, c := startAPI(t, svc, ServerOptions{RESTLimit: 1, Window: 100 * time.Millisecond})
	reg := obs.NewRegistry()
	c.Metrics = reg
	for i := 0; i < 3; i++ {
		if _, err := c.UserShow(context.Background(), u.ID); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	m, ok := reg.Snapshot().Get("twitter_client_throttled_total", "endpoint", "/1/users/show.json")
	if !ok || m.Value < 1 {
		t.Fatalf("throttled counter = %+v ok=%v, want >= 1", m, ok)
	}
}

// TestContainsFoldKorean pins the satellite fix: the stream's track filter
// must match Korean district names, which the old ASCII-only fold handled
// only by byte equality.
func TestContainsFoldKorean(t *testing.T) {
	cases := []struct {
		s, substr string
		want      bool
	}{
		{"지진 발생 강남구 인근", "강남구", true},
		{"서울 양천구 목동", "양천구", true},
		{"서울 양천구 목동", "강남구", false},
		{"Earthquake in GANGNAM-GU now", "gangnam-gu", true},
		{"Earthquake in Gangnam", "GANGNAM", true},
		{"anything", "", true},
		// Unicode fold beyond ASCII: the Kelvin sign (U+212A) lowers to k.
		{"temp in Kelvin", "kelvin", true},
	}
	for _, c := range cases {
		if got := containsFold(c.s, c.substr); got != c.want {
			t.Errorf("containsFold(%q, %q) = %v, want %v", c.s, c.substr, got, c.want)
		}
	}
}

// TestSearchKoreanDistrict exercises the same fold through the search
// endpoint end to end.
func TestSearchKoreanDistrict(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "서울 강남구")
	svc.PostTweet(u.ID, "강남구 맛집 추천", t0, nil)
	svc.PostTweet(u.ID, "unrelated tweet", t0, nil)
	_, c := startAPI(t, svc, ServerOptions{})
	hits, err := c.Search(context.Background(), "강남구", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("search 강남구 = %d hits, want 1", len(hits))
	}
}

// TestCrawlerMetrics verifies the crawl publishes its progress series.
func TestCrawlerMetrics(t *testing.T) {
	svc := NewService()
	seed, followers := seedGraph(t, svc)
	for _, f := range followers[:3] {
		svc.PostTweet(f.ID, "geo", t0, &GeoTag{Lat: 37.5, Lon: 127})
	}
	_, c := startAPI(t, svc, ServerOptions{})
	store, err := storage.Open(t.TempDir(), storage.Options{Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := obs.NewRegistry()
	cr := &Crawler{Client: c, Store: store, Metrics: reg}
	res, err := cr.Run(context.Background(), seed.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("crawl_users_total"); !ok || m.Value != float64(res.UsersCollected) {
		t.Errorf("crawl_users_total = %+v ok=%v, want %d", m, ok, res.UsersCollected)
	}
	if m, ok := snap.Get("crawl_tweets_total"); !ok || m.Value != float64(res.TweetsCollected) {
		t.Errorf("crawl_tweets_total = %+v ok=%v, want %d", m, ok, res.TweetsCollected)
	}
	if m, ok := snap.Get("crawl_geo_tweets_total"); !ok || m.Value != float64(res.GeoTweets) {
		t.Errorf("crawl_geo_tweets_total = %+v ok=%v, want %d", m, ok, res.GeoTweets)
	}
	if m, ok := snap.Get("crawl_frontier_depth"); !ok || m.Value != 0 {
		t.Errorf("crawl_frontier_depth = %+v ok=%v, want drained to 0", m, ok)
	}
}
