package twitter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func startAPI(t *testing.T, svc *Service, opts ServerOptions) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewAPIServer(svc, opts))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.MaxBackoff = 50 * time.Millisecond
	c.MaxRetries = 50
	return srv, c
}

func seedGraph(t *testing.T, svc *Service) (*User, []*User) {
	t.Helper()
	seed := newUser(t, svc, "seed", "Seoul Jongno-gu")
	var followers []*User
	for i := 0; i < 12; i++ {
		u := newUser(t, svc, "f", "Seoul Mapo-gu")
		if err := svc.Follow(u.ID, seed.ID); err != nil {
			t.Fatal(err)
		}
		followers = append(followers, u)
	}
	return seed, followers
}

func TestHTTPUserShow(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "alice", "부천시")
	_, c := startAPI(t, svc, ServerOptions{})
	got, err := c.UserShow(context.Background(), u.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ScreenName != "alice" || got.ProfileLocation != "부천시" {
		t.Fatalf("UserShow = %+v", got)
	}
	_, err = c.UserShow(context.Background(), 9999)
	if !IsNotFound(err) {
		t.Fatalf("missing user err = %v", err)
	}
}

func TestHTTPFollowerPaging(t *testing.T) {
	svc := NewService()
	seed, followers := seedGraph(t, svc)
	_, c := startAPI(t, svc, ServerOptions{FollowersPageSize: 5})
	ids, err := c.FollowerIDs(context.Background(), seed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(followers) {
		t.Fatalf("got %d follower ids, want %d", len(ids), len(followers))
	}
}

func TestHTTPTimelineAndSearch(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	for i := 0; i < 250; i++ {
		text := "regular"
		var g *GeoTag
		if i%10 == 0 {
			text = "earthquake now"
			g = &GeoTag{Lat: 37.5, Lon: 127}
		}
		if _, err := svc.PostTweet(u.ID, text, t0.Add(time.Duration(i)*time.Second), g); err != nil {
			t.Fatal(err)
		}
	}
	_, c := startAPI(t, svc, ServerOptions{})
	tl, err := c.UserTimeline(context.Background(), u.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 250 {
		t.Fatalf("timeline = %d tweets, want 250", len(tl))
	}
	limited, err := c.UserTimeline(context.Background(), u.ID, 30)
	if err != nil || len(limited) != 30 {
		t.Fatalf("limited timeline = %d, %v", len(limited), err)
	}
	hits, err := c.Search(context.Background(), "earthquake", false, 0)
	if err != nil || len(hits) != 25 {
		t.Fatalf("search = %d hits, %v; want 25", len(hits), err)
	}
	geoHits, err := c.Search(context.Background(), "", true, 0)
	if err != nil || len(geoHits) != 25 {
		t.Fatalf("geo search = %d hits, %v; want 25", len(geoHits), err)
	}
}

func TestHTTPRateLimitAndRecovery(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	_, c := startAPI(t, svc, ServerOptions{RESTLimit: 3, Window: 200 * time.Millisecond})
	// 10 calls against a budget of 3 per 200ms: the client must back off and
	// eventually succeed on every call.
	for i := 0; i < 10; i++ {
		if _, err := c.UserShow(context.Background(), u.ID); err != nil {
			t.Fatalf("call %d failed: %v", i, err)
		}
	}
}

func TestHTTPRateLimitHeaders(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	srv, _ := startAPI(t, svc, ServerOptions{RESTLimit: 2, Window: time.Hour})
	resp, err := http.Get(srv.URL + "/1/users/show.json?user_id=" + itoa(int64(u.ID)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-RateLimit-Limit") != "2" || resp.Header.Get("X-RateLimit-Remaining") != "1" {
		t.Fatalf("headers = %v", resp.Header)
	}
	http.Get(srv.URL + "/1/users/show.json?user_id=" + itoa(int64(u.ID)))
	resp3, _ := http.Get(srv.URL + "/1/users/show.json?user_id=" + itoa(int64(u.ID)))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp3.StatusCode)
	}
}

func itoa(v int64) string {
	b := [20]byte{}
	i := len(b)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestHTTPBadRequests(t *testing.T) {
	svc := NewService()
	srv, _ := startAPI(t, svc, ServerOptions{})
	for _, path := range []string{
		"/1/users/show.json",                 // missing user_id
		"/1/users/show.json?user_id=abc",     // non-numeric
		"/1/users/show.json?user_id=-5",      // negative
		"/1/followers/ids.json?user_id=zero", // invalid
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPStreaming(t *testing.T) {
	svc := NewService()
	u := newUser(t, svc, "a", "")
	_, c := startAPI(t, svc, ServerOptions{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var got atomic.Int32
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- c.Stream(ctx, "gaga", func(tw *Tweet) bool {
			return got.Add(1) < 3
		})
	}()

	// Post until the consumer has what it needs; the stream subscription may
	// attach slightly after the first posts.
	deadline := time.After(4 * time.Second)
	for got.Load() < 3 {
		svc.PostTweet(u.ID, "lady GAGA concert", t0, nil)
		svc.PostTweet(u.ID, "unrelated", t0, nil)
		select {
		case <-deadline:
			t.Fatalf("stream delivered %d/3 tracked tweets", got.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("stream returned %v", err)
	}
}

func TestHTTPStreamCancellation(t *testing.T) {
	svc := NewService()
	_, c := startAPI(t, svc, ServerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Stream(ctx, "", func(*Tweet) bool { return true })
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			t.Fatalf("stream err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream did not stop on cancellation")
	}
}

func TestHTTPUsersLookup(t *testing.T) {
	svc := NewService()
	var ids []UserID
	for i := 0; i < 250; i++ {
		u := newUser(t, svc, "u", "Seoul")
		ids = append(ids, u.ID)
	}
	_, c := startAPI(t, svc, ServerOptions{})
	// Includes unknown IDs, which are silently omitted.
	query := append(append([]UserID{}, ids...), 99999, 88888)
	users, err := c.UsersLookup(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 250 {
		t.Fatalf("looked up %d users, want 250", len(users))
	}
	// Batch efficiency: 252 IDs must cost 3 rate-limit tokens, not 252.
	svc2 := NewService()
	var ids2 []UserID
	for i := 0; i < 250; i++ {
		u := newUser(t, svc2, "u", "")
		ids2 = append(ids2, u.ID)
	}
	_, c2 := startAPI(t, svc2, ServerOptions{RESTLimit: 3, Window: time.Hour})
	if _, err := c2.UsersLookup(context.Background(), ids2); err != nil {
		t.Fatalf("batch lookup blew the 3-token budget: %v", err)
	}
}

func TestHTTPUsersLookupBadRequest(t *testing.T) {
	svc := NewService()
	srv, _ := startAPI(t, svc, ServerOptions{})
	for _, q := range []string{"", "user_id=abc", "user_id=1,x"} {
		resp, err := http.Get(srv.URL + "/1/users/lookup.json?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d", q, resp.StatusCode)
		}
	}
}
