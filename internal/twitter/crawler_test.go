package twitter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/resilience"
	"stir/internal/storage"
)

// buildCommunity creates a two-hop follower graph:
// seed <- 5 followers, each of those <- 3 followers (15 leaves), 21 total.
func buildCommunity(t *testing.T, svc *Service) UserID {
	t.Helper()
	seed := newUser(t, svc, "seed", "Seoul Jongno-gu")
	svc.PostTweet(seed.ID, "hello", t0, &GeoTag{Lat: 37.57, Lon: 126.98})
	for i := 0; i < 5; i++ {
		mid := newUser(t, svc, "mid", "Seoul Mapo-gu")
		if err := svc.Follow(mid.ID, seed.ID); err != nil {
			t.Fatal(err)
		}
		svc.PostTweet(mid.ID, "mid tweet", t0, nil)
		for j := 0; j < 3; j++ {
			leaf := newUser(t, svc, "leaf", "Bucheon-si")
			if err := svc.Follow(leaf.ID, mid.ID); err != nil {
				t.Fatal(err)
			}
			svc.PostTweet(leaf.ID, "leaf tweet", t0, &GeoTag{Lat: 37.5, Lon: 126.76})
		}
	}
	return seed.ID
}

func newCrawler(t *testing.T, c *Client) (*Crawler, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &Crawler{Client: c, Store: st}, st
}

func TestCrawlerBFS(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, st := newCrawler(t, c)

	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("UsersCollected = %d, want 21", res.UsersCollected)
	}
	if res.TweetsCollected != 21 {
		t.Fatalf("TweetsCollected = %d, want 21", res.TweetsCollected)
	}
	if res.GeoTweets != 16 {
		t.Fatalf("GeoTweets = %d, want 16", res.GeoTweets)
	}
	users, tweets, err := LoadCollected(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 21 {
		t.Fatalf("stored users = %d", len(users))
	}
	total := 0
	for _, ts := range tweets {
		total += len(ts)
	}
	if total != 21 {
		t.Fatalf("stored tweets = %d", total)
	}
}

func TestCrawlerMaxUsers(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	cr.MaxUsers = 6
	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 6 {
		t.Fatalf("UsersCollected = %d, want 6", res.UsersCollected)
	}
}

func TestCrawlerResume(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, st := newCrawler(t, c)

	// First leg: stop after 6 users.
	cr.MaxUsers = 6
	if _, err := cr.Run(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	// Second leg resumes from the checkpoint (seeds ignored) and finishes.
	cr2 := &Crawler{Client: c, Store: st}
	res, err := cr2.Run(context.Background(), 424242) // bogus seed must be ignored
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("resumed UsersCollected = %d, want 21", res.UsersCollected)
	}
	users, _, err := LoadCollected(st)
	if err != nil || len(users) != 21 {
		t.Fatalf("stored users after resume = %d, %v", len(users), err)
	}
}

func TestCrawlerContextCancel(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.Run(ctx, seed); err == nil {
		t.Fatal("cancelled crawl should error")
	}
}

func TestCrawlerSurvivesRateLimits(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	srv := httptest.NewServer(NewAPIServer(svc, ServerOptions{RESTLimit: 7, Window: 100 * time.Millisecond}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.MaxBackoff = 120 * time.Millisecond
	c.MaxRetries = 50
	cr, _ := newCrawler(t, c)
	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("UsersCollected = %d, want 21 despite rate limits", res.UsersCollected)
	}
}

func TestCrawlerMissingConfig(t *testing.T) {
	cr := &Crawler{}
	if _, err := cr.Run(context.Background(), 1); err == nil {
		t.Fatal("crawler without client/store should error")
	}
}

func TestCrawlerOnProgress(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	calls := 0
	cr.OnProgress = func(done, queued int) { calls++ }
	if _, err := cr.Run(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	if calls != 21 {
		t.Fatalf("OnProgress calls = %d, want 21", calls)
	}
}

// A crash between UserShow and UserTimeline must leave no partial user in
// the store, and the resumed crawl must re-fetch that user exactly once.
func TestCrawlerCrashMidUserLeavesNoPartialState(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	api := NewAPIServer(svc, ServerOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var crashed atomic.Bool
	var seedShows atomic.Int64
	seedStr := strconv.FormatInt(int64(seed), 10)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/1/users/show.json" && r.URL.Query().Get("user_id") == seedStr {
			seedShows.Add(1)
		}
		if r.URL.Path == "/1/statuses/user_timeline.json" && r.URL.Query().Get("user_id") == seedStr && !crashed.Load() {
			// The "crash": kill the crawl after UserShow succeeded but
			// before the timeline landed.
			crashed.Store(true)
			cancel()
			http.Error(w, "crashed", http.StatusInternalServerError)
			return
		}
		api.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.MaxBackoff = 20 * time.Millisecond
	c.MaxRetries = 3
	cr, st := newCrawler(t, c)
	if _, err := cr.Run(ctx, seed); err == nil {
		t.Fatal("crashed run must return an error")
	}
	for _, pfx := range []string{userKeyPfx, tweetKeyPfx, crawlVisitedPfx, crawlQuarantinePfx} {
		if ks := st.KeysWithPrefix(pfx); len(ks) != 0 {
			t.Fatalf("partial state leaked under %q: %v", pfx, ks)
		}
	}

	seedShows.Store(0)
	cr2 := &Crawler{Client: NewClient(srv.URL), Store: st}
	res, err := cr2.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("resumed UsersCollected = %d, want 21", res.UsersCollected)
	}
	if n := seedShows.Load(); n != 1 {
		t.Fatalf("resume fetched the crashed user %d times, want exactly once", n)
	}
}

// A user whose fetches keep failing is quarantined and the crawl moves on.
func TestCrawlerQuarantinesPoisonedUser(t *testing.T) {
	svc := NewService()
	seed := newUser(t, svc, "seed", "Seoul Jongno-gu")
	svc.PostTweet(seed.ID, "s", t0, &GeoTag{Lat: 37.57, Lon: 126.98})
	poisoned := newUser(t, svc, "poisoned", "Seoul Mapo-gu")
	if err := svc.Follow(poisoned.ID, seed.ID); err != nil {
		t.Fatal(err)
	}
	healthy := newUser(t, svc, "healthy", "Bucheon-si")
	if err := svc.Follow(healthy.ID, seed.ID); err != nil {
		t.Fatal(err)
	}
	svc.PostTweet(healthy.ID, "h", t0, nil)

	api := NewAPIServer(svc, ServerOptions{})
	poisonedStr := strconv.FormatInt(int64(poisoned.ID), 10)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("user_id") == poisonedStr {
			http.Error(w, "permanently broken upstream", http.StatusServiceUnavailable)
			return
		}
		api.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.MaxBackoff = 10 * time.Millisecond
	c.MaxRetries = 1
	cr, st := newCrawler(t, c)
	reg := obs.NewRegistry()
	cr.Metrics = reg
	cr.Retry = &resilience.Policy{
		Name: "crawler", MaxAttempts: 2, BaseDelay: time.Millisecond, Metrics: reg,
	}
	res, err := cr.Run(context.Background(), seed.ID)
	if err != nil {
		t.Fatalf("crawl must survive a poisoned user: %v", err)
	}
	if res.UsersCollected != 2 || res.UsersQuarantined != 1 {
		t.Fatalf("res = %+v, want 2 collected / 1 quarantined", res)
	}
	q, err := QuarantinedUsers(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[poisoned.ID] == "" {
		t.Fatalf("QuarantinedUsers = %v, want cause for %d", q, poisoned.ID)
	}
	users, _, err := LoadCollected(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Fatalf("stored users = %d, want 2 (no partial poisoned profile)", len(users))
	}
	if m, ok := reg.Snapshot().Get("crawl_quarantined_total"); !ok || m.Value != 1 {
		t.Fatalf("crawl_quarantined_total = %+v ok=%v, want 1", m, ok)
	}
}

// A fresh crawl must report its own counters, not recount whatever else the
// store happens to hold (the recount is only for resumed crawls).
func TestFreshCrawlDoesNotRecountStore(t *testing.T) {
	svc := NewService()
	loner := newUser(t, svc, "loner", "Seoul Jongno-gu")
	_, c := startAPI(t, svc, ServerOptions{})
	cr, st := newCrawler(t, c)
	if err := st.Put(tweetKeyPfx+"999", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	res, err := cr.Run(context.Background(), loner.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 1 || res.TweetsCollected != 0 {
		t.Fatalf("res = %+v; stale store contents leaked into a fresh crawl's counters", res)
	}
}
