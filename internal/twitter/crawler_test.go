package twitter

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"stir/internal/storage"
)

// buildCommunity creates a two-hop follower graph:
// seed <- 5 followers, each of those <- 3 followers (15 leaves), 21 total.
func buildCommunity(t *testing.T, svc *Service) UserID {
	t.Helper()
	seed := newUser(t, svc, "seed", "Seoul Jongno-gu")
	svc.PostTweet(seed.ID, "hello", t0, &GeoTag{Lat: 37.57, Lon: 126.98})
	for i := 0; i < 5; i++ {
		mid := newUser(t, svc, "mid", "Seoul Mapo-gu")
		if err := svc.Follow(mid.ID, seed.ID); err != nil {
			t.Fatal(err)
		}
		svc.PostTweet(mid.ID, "mid tweet", t0, nil)
		for j := 0; j < 3; j++ {
			leaf := newUser(t, svc, "leaf", "Bucheon-si")
			if err := svc.Follow(leaf.ID, mid.ID); err != nil {
				t.Fatal(err)
			}
			svc.PostTweet(leaf.ID, "leaf tweet", t0, &GeoTag{Lat: 37.5, Lon: 126.76})
		}
	}
	return seed.ID
}

func newCrawler(t *testing.T, c *Client) (*Crawler, *storage.Store) {
	t.Helper()
	st, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &Crawler{Client: c, Store: st}, st
}

func TestCrawlerBFS(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, st := newCrawler(t, c)

	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("UsersCollected = %d, want 21", res.UsersCollected)
	}
	if res.TweetsCollected != 21 {
		t.Fatalf("TweetsCollected = %d, want 21", res.TweetsCollected)
	}
	if res.GeoTweets != 16 {
		t.Fatalf("GeoTweets = %d, want 16", res.GeoTweets)
	}
	users, tweets, err := LoadCollected(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 21 {
		t.Fatalf("stored users = %d", len(users))
	}
	total := 0
	for _, ts := range tweets {
		total += len(ts)
	}
	if total != 21 {
		t.Fatalf("stored tweets = %d", total)
	}
}

func TestCrawlerMaxUsers(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	cr.MaxUsers = 6
	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 6 {
		t.Fatalf("UsersCollected = %d, want 6", res.UsersCollected)
	}
}

func TestCrawlerResume(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, st := newCrawler(t, c)

	// First leg: stop after 6 users.
	cr.MaxUsers = 6
	if _, err := cr.Run(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	// Second leg resumes from the checkpoint (seeds ignored) and finishes.
	cr2 := &Crawler{Client: c, Store: st}
	res, err := cr2.Run(context.Background(), 424242) // bogus seed must be ignored
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("resumed UsersCollected = %d, want 21", res.UsersCollected)
	}
	users, _, err := LoadCollected(st)
	if err != nil || len(users) != 21 {
		t.Fatalf("stored users after resume = %d, %v", len(users), err)
	}
}

func TestCrawlerContextCancel(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.Run(ctx, seed); err == nil {
		t.Fatal("cancelled crawl should error")
	}
}

func TestCrawlerSurvivesRateLimits(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	srv := httptest.NewServer(NewAPIServer(svc, ServerOptions{RESTLimit: 7, Window: 100 * time.Millisecond}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.MaxBackoff = 120 * time.Millisecond
	c.MaxRetries = 50
	cr, _ := newCrawler(t, c)
	res, err := cr.Run(context.Background(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersCollected != 21 {
		t.Fatalf("UsersCollected = %d, want 21 despite rate limits", res.UsersCollected)
	}
}

func TestCrawlerMissingConfig(t *testing.T) {
	cr := &Crawler{}
	if _, err := cr.Run(context.Background(), 1); err == nil {
		t.Fatal("crawler without client/store should error")
	}
}

func TestCrawlerOnProgress(t *testing.T) {
	svc := NewService()
	seed := buildCommunity(t, svc)
	_, c := startAPI(t, svc, ServerOptions{})
	cr, _ := newCrawler(t, c)
	calls := 0
	cr.OnProgress = func(done, queued int) { calls++ }
	if _, err := cr.Run(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	if calls != 21 {
		t.Fatalf("OnProgress calls = %d, want 21", calls)
	}
}
