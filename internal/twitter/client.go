package twitter

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"stir/internal/obs"
	"stir/internal/obs/trace"
	"stir/internal/overload"
	"stir/internal/resilience"
)

// Client is the SDK the crawler and examples use against an APIServer. Every
// call runs under a resilience.Policy: 429 responses sleep until the
// advertised window reset (capped by MaxBackoff), and transient network
// errors and 5xx responses are retried with jittered exponential backoff —
// the discipline the paper's weeks-long collection needed to survive both
// the API's limits and its outages.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxBackoff caps a single rate-limit sleep (default 2s — the simulated
	// server uses short windows; real deployments would raise it).
	MaxBackoff time.Duration
	// MaxRetries bounds retries per call (default 5).
	MaxRetries int
	// Retry overrides the retry policy built from MaxBackoff/MaxRetries.
	Retry *resilience.Policy
	// Breaker, when set, gates every request (fail fast while the API is
	// down instead of hammering it). Use resilience.NewBreakerGroup keyed
	// per host when one process talks to several upstreams.
	Breaker *resilience.Breaker
	// Metrics receives the client's request/throttle series (nil means
	// obs.Default; obs.Discard disables).
	Metrics *obs.Registry
	// sleep is swappable for tests.
	sleep func(context.Context, time.Duration) error

	polOnce sync.Once
	pol     *resilience.Policy
}

// NewClient returns a client for the API at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTP:       &http.Client{Timeout: 30 * time.Second},
		MaxBackoff: 2 * time.Second,
		MaxRetries: 5,
		sleep:      sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status int
	Msg    string
	Code   int
	// Wait is the server-advertised backoff on a 429 (zero otherwise).
	Wait time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("twitter api: status %d code %d: %s", e.Status, e.Code, e.Msg)
}

// HTTPStatus implements resilience.HTTPStatuser, classifying 5xx/429 as
// transient and other statuses as permanent.
func (e *APIError) HTTPStatus() int { return e.Status }

// RetryAfter implements resilience.RetryAfterer so the retry policy honours
// the rate-limit window the server advertised.
func (e *APIError) RetryAfter() time.Duration { return e.Wait }

// IsNotFound reports whether err is a 404 API error.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// policy resolves the client's retry policy once: the explicit Retry
// override, or one built from MaxBackoff/MaxRetries.
func (c *Client) policy() *resilience.Policy {
	c.polOnce.Do(func() {
		if c.Retry != nil {
			c.pol = c.Retry
			if c.pol.Breaker == nil {
				c.pol.Breaker = c.Breaker
			}
			return
		}
		retries := c.MaxRetries
		if retries <= 0 {
			retries = 5
		}
		c.pol = &resilience.Policy{
			Name:        "twitter_client",
			MaxAttempts: retries + 1,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    c.maxBackoff(),
			Breaker:     c.Breaker,
			Metrics:     c.Metrics,
			Sleep:       c.sleep,
		}
	})
	return c.pol
}

// getJSON performs a GET under the retry policy — 429s honour the
// advertised reset, transient network errors and 5xx responses back off
// exponentially — and decodes the response into out.
func (c *Client) getJSON(ctx context.Context, path string, params url.Values, out any) error {
	reg := obs.Or(c.Metrics)
	// One client span covers the whole logical request; the retry policy
	// annotates it with per-attempt outcomes rather than opening a span per
	// attempt.
	ctx, sp := trace.Start(ctx, "twitter.get "+path)
	defer sp.End()
	err := c.policy().Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path+"?"+params.Encode(), nil)
		if err != nil {
			return resilience.MarkPermanent(err)
		}
		// Propagate the caller's remaining budget so the server can reject
		// work this attempt has already given up on, and the trace identity
		// so the hop joins the caller's tree.
		overload.SetDeadlineHeader(req)
		trace.Inject(req)
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return fmt.Errorf("twitter client: %w", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := c.backoffFrom(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			reg.Counter("twitter_client_throttled_total", "endpoint", path).Inc()
			reg.Histogram("twitter_client_backoff_seconds", obs.DefBuckets).ObserveDuration(wait)
			return &APIError{Status: resp.StatusCode, Msg: "rate limited", Code: 88, Wait: wait}
		}
		if resp.StatusCode != http.StatusOK {
			var ae apiError
			_ = json.NewDecoder(resp.Body).Decode(&ae)
			resp.Body.Close()
			// A Retry-After on a 5xx is an overload shed: carry the hint so
			// the retry policy backs off to it and the breaker ignores it.
			wait := retryAfterWait(resp, c.maxBackoff())
			if wait > 0 {
				reg.Counter("twitter_client_throttled_total", "endpoint", path).Inc()
			}
			return &APIError{Status: resp.StatusCode, Msg: ae.Error, Code: ae.Code, Wait: wait}
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("twitter client: decode: %w", err)
		}
		return nil
	})
	if err != nil && sp != nil {
		sp.Annotate("error", err.Error())
	}
	return err
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return c.MaxBackoff
}

// retryAfterWait parses a Retry-After header (whole seconds) into the wait
// it advertises, capped at maxB; zero when absent or malformed.
func retryAfterWait(resp *http.Response, maxB time.Duration) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs <= 0 {
		return 0
	}
	wait := time.Duration(secs) * time.Second
	if wait > maxB {
		wait = maxB
	}
	return wait
}

// backoffFrom derives the sleep until the advertised rate-limit reset: an
// explicit Retry-After wins, else the X-RateLimit-Reset timestamp.
func (c *Client) backoffFrom(resp *http.Response) time.Duration {
	maxB := c.maxBackoff()
	if wait := retryAfterWait(resp, maxB); wait > 0 {
		return wait
	}
	raw := resp.Header.Get("X-RateLimit-Reset")
	if raw == "" {
		return maxB
	}
	unix, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return maxB
	}
	wait := time.Until(time.Unix(unix, 0))
	if wait <= 0 {
		wait = 10 * time.Millisecond
	}
	if wait > maxB {
		wait = maxB
	}
	return wait
}

// UserShow fetches one account.
func (c *Client) UserShow(ctx context.Context, id UserID) (*User, error) {
	params := url.Values{"user_id": {strconv.FormatInt(int64(id), 10)}}
	var u User
	if err := c.getJSON(ctx, "/1/users/show.json", params, &u); err != nil {
		return nil, err
	}
	return &u, nil
}

// UsersLookup fetches up to 100 users per call in ID batches, far cheaper
// against the rate limit than per-user UserShow calls. Unknown IDs are
// omitted from the result.
func (c *Client) UsersLookup(ctx context.Context, ids []UserID) ([]*User, error) {
	var out []*User
	for start := 0; start < len(ids); start += 100 {
		end := start + 100
		if end > len(ids) {
			end = len(ids)
		}
		var sb strings.Builder
		for i, id := range ids[start:end] {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatInt(int64(id), 10))
		}
		params := url.Values{"user_id": {sb.String()}}
		var page []*User
		if err := c.getJSON(ctx, "/1/users/lookup.json", params, &page); err != nil {
			return nil, err
		}
		out = append(out, page...)
	}
	return out, nil
}

// FollowerIDs fetches every follower of id, walking all cursor pages.
func (c *Client) FollowerIDs(ctx context.Context, id UserID) ([]UserID, error) {
	var out []UserID
	cursor := int64(0)
	for {
		params := url.Values{
			"user_id": {strconv.FormatInt(int64(id), 10)},
			"cursor":  {strconv.FormatInt(cursor, 10)},
		}
		var page followerIDsResponse
		if err := c.getJSON(ctx, "/1/followers/ids.json", params, &page); err != nil {
			return nil, err
		}
		out = append(out, page.IDs...)
		if page.NextCursor == 0 {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// UserTimeline fetches up to limit tweets of a user, newest first, walking
// max_id pages. limit <= 0 fetches the whole timeline.
func (c *Client) UserTimeline(ctx context.Context, id UserID, limit int) ([]*Tweet, error) {
	var out []*Tweet
	maxID := TweetID(0)
	for {
		params := url.Values{
			"user_id": {strconv.FormatInt(int64(id), 10)},
			"count":   {"200"},
		}
		if maxID != 0 {
			params.Set("max_id", strconv.FormatInt(int64(maxID), 10))
		}
		var page timelineResponse
		if err := c.getJSON(ctx, "/1/statuses/user_timeline.json", params, &page); err != nil {
			return nil, err
		}
		out = append(out, page.Tweets...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
		if page.NextMaxID == 0 {
			return out, nil
		}
		maxID = page.NextMaxID
	}
}

// Search fetches tweets matching q, paging with since_id until the server
// returns fewer than a full page or limit is reached. limit <= 0 means all.
func (c *Client) Search(ctx context.Context, text string, onlyGeo bool, limit int) ([]*Tweet, error) {
	var out []*Tweet
	sinceID := TweetID(0)
	for {
		params := url.Values{
			"q":        {text},
			"count":    {"100"},
			"since_id": {strconv.FormatInt(int64(sinceID), 10)},
		}
		if onlyGeo {
			params.Set("geo_only", "1")
		}
		var page searchResponse
		if err := c.getJSON(ctx, "/1/search.json", params, &page); err != nil {
			return nil, err
		}
		out = append(out, page.Tweets...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
		if len(page.Tweets) < 100 {
			return out, nil
		}
		sinceID = page.Tweets[len(page.Tweets)-1].ID
	}
}

// Stream opens the sample stream and delivers tweets to fn until ctx is
// cancelled, the server closes the stream, or fn returns false.
func (c *Client) Stream(ctx context.Context, track string, fn func(*Tweet) bool) error {
	params := url.Values{}
	if track != "" {
		params.Set("track", track)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/1/statuses/sample.json?"+params.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("twitter client: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Msg: "stream refused"}
	}
	// Live streams carry the occasional garbage line — a truncated record
	// from a dropped connection, a keep-alive, a control message the model
	// doesn't know. One bad line must not kill the connection: skip it,
	// count it (stream_decode_errors_total), keep reading. bufio.Scanner
	// can't do this (ErrTooLong is fatal), so read lines by hand with the
	// same 1 MiB cap, discarding the remainder of over-long lines.
	reg := obs.Or(c.Metrics)
	br := bufio.NewReaderSize(resp.Body, 64*1024)
	var line []byte
	tooLong := false
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		switch {
		case err == bufio.ErrBufferFull:
			if len(line) > maxStreamLine {
				tooLong = true
				line = line[:0]
			}
			continue
		case err != nil && len(line) == 0:
			if err == io.EOF || ctx.Err() != nil {
				return nil
			}
			return err
		}
		full := line
		line = nil
		if tooLong || len(full) > maxStreamLine {
			tooLong = false
			reg.Counter("stream_decode_errors_total", "reason", "too_long").Inc()
			if err != nil {
				return nil
			}
			continue
		}
		full = bytes.TrimSpace(full)
		if len(full) > 0 {
			var t Tweet
			if jerr := json.Unmarshal(full, &t); jerr != nil {
				reg.Counter("stream_decode_errors_total", "reason", "bad_json").Inc()
			} else if !fn(&t) {
				return nil
			}
		}
		if err != nil {
			if err == io.EOF || ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}

// maxStreamLine is the largest stream record Stream will decode; longer
// lines are dropped and counted, matching the old scanner's 1 MiB cap.
const maxStreamLine = 1024 * 1024
