package twitter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stir/internal/obs"
	"stir/internal/overload"
	"stir/internal/resilience"
)

// newTestService builds a tiny populated service for overload tests.
func newOverloadService(t *testing.T) *Service {
	t.Helper()
	svc := NewService()
	u, err := svc.CreateUser("shed-target", "Seoul", "ko", time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PostTweet(u.ID, "overload probe", time.Date(2011, 9, 2, 0, 0, 0, 0, time.UTC), nil); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestClientRidesOutServerSheds is the end-to-end overload contract between
// the STIR client and a shedding server: the server rejects with
// 503 + Retry-After, the client backs off to exactly the advertised hint,
// the request eventually succeeds, and the client's breaker never trips —
// sheds are backpressure, not failures.
func TestClientRidesOutServerSheds(t *testing.T) {
	svc := newOverloadService(t)
	api := NewAPIServer(svc, ServerOptions{})

	// Shed the first two attempts the way overload.Middleware does, then let
	// traffic through.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(overload.ShedStatus)
			w.Write([]byte(`{"error":"overloaded","reason":"queue_full"}`))
			return
		}
		api.ServeHTTP(w, r)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	br := resilience.NewBreaker("twitter", resilience.BreakerOptions{FailureThreshold: 2, Metrics: reg})
	c := NewClient(ts.URL)
	c.Breaker = br
	c.Metrics = reg
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	u, err := c.UserShow(context.Background(), UserID(1))
	if err != nil {
		t.Fatalf("UserShow through sheds: %v", err)
	}
	if u.ScreenName != "shed-target" {
		t.Fatalf("got user %q", u.ScreenName)
	}

	// Two sheds at threshold 2 would have opened the breaker if they fed it.
	if got := br.State(); got != resilience.StateClosed {
		t.Fatalf("breaker state after sheds = %v, want closed", got)
	}
	if m, ok := reg.Snapshot().Get("resilience_throttled_total", "policy", "twitter_client"); !ok || m.Value != 2 {
		t.Fatalf("resilience_throttled_total = %+v ok=%v, want 2", m, ok)
	}

	// The client backed off to the server's 1s hint (capped at MaxBackoff
	// 2s), not its own 10ms exponential ladder.
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (one per shed)", len(slept))
	}
	for i, d := range slept {
		if d != time.Second {
			t.Fatalf("sleep %d = %v, want the 1s Retry-After hint", i, d)
		}
	}
}

// TestClientDeadlinePropagatesToServer verifies the other half of the
// overload contract: the client stamps its remaining budget on the wire and
// the admission middleware rejects requests whose budget is already gone.
func TestClientDeadlinePropagatesToServer(t *testing.T) {
	var gotHeader atomic.Value
	svc := newOverloadService(t)
	api := NewAPIServer(svc, ServerOptions{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(overload.DeadlineHeader))
		api.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.UserShow(ctx, UserID(1)); err != nil {
		t.Fatalf("UserShow: %v", err)
	}
	raw, _ := gotHeader.Load().(string)
	if raw == "" {
		t.Fatal("client sent no X-Stir-Deadline-Ms despite a context deadline")
	}

	// A server behind admission control rejects a doomed request (budget
	// already spent) at the door without running the handler.
	shedded := httptest.NewServer(overload.Middleware(overload.MiddlewareOptions{
		Service: "twitterd",
		Metrics: obs.Discard,
	}, api))
	defer shedded.Close()
	req, _ := http.NewRequest("GET", shedded.URL+"/1/users/show.json?user_id=1", nil)
	req.Header.Set(overload.DeadlineHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != overload.ShedStatus {
		t.Fatalf("doomed request = %d, want %d", resp.StatusCode, overload.ShedStatus)
	}
}

// TestPerClientLimitIsolatesHotClient pins the keyed-limiter wiring: a
// client that burns its own budget gets 429s while another client on the
// same server keeps its full budget.
func TestPerClientLimitIsolatesHotClient(t *testing.T) {
	svc := newOverloadService(t)
	api := NewAPIServer(svc, ServerOptions{
		RESTLimit:      100,
		PerClientLimit: 2,
		Window:         time.Minute,
	})
	ts := httptest.NewServer(api)
	defer ts.Close()

	get := func(token string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+"/1/users/show.json?user_id=1", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Hot client exhausts its per-client budget.
	for i := 0; i < 2; i++ {
		if resp := get("hot"); resp.StatusCode != http.StatusOK {
			t.Fatalf("hot request %d = %d, want 200", i, resp.StatusCode)
		}
	}
	resp := get("hot")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot request over budget = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-client 429 carried no Retry-After")
	}
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Fatalf("per-client remaining = %q, want 0", got)
	}

	// A different credential still has its whole budget: the hot client
	// neither blocked it nor drained the shared pool.
	if resp := get("calm"); resp.StatusCode != http.StatusOK {
		t.Fatalf("calm client = %d, want 200", resp.StatusCode)
	}
}
