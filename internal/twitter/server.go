package twitter

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stir/internal/obs"
	"stir/internal/ratelimit"
)

// APIServer exposes a Service over HTTP with the Twitter API v1 surface the
// paper's collection used:
//
//	GET /1/users/show.json?user_id=N
//	GET /1/followers/ids.json?user_id=N&cursor=C
//	GET /1/statuses/user_timeline.json?user_id=N&max_id=M&count=K
//	GET /1/search.json?q=TERM&since_id=S&count=K&geo_only=1
//	GET /1/statuses/sample.json            (streaming, newline-delimited JSON)
//
// Rate limits apply per endpoint class, reported via X-RateLimit-* headers
// and a 429 status when exhausted, which is the behaviour the client SDK and
// crawler are written against.
type APIServer struct {
	svc     *Service
	mux     *http.ServeMux
	handler http.Handler

	restLimit   *ratelimit.Limiter
	searchLimit *ratelimit.Limiter
	clientLimit *ratelimit.KeyedLimiter

	// followersPageSize is how many IDs one followers/ids page returns.
	followersPageSize int
}

// ServerOptions configures an APIServer.
type ServerOptions struct {
	// RESTLimit is the fixed-window budget for REST endpoints
	// (users/show, followers/ids, user_timeline). Zero disables limiting.
	RESTLimit int
	// SearchLimit is the budget for the search endpoint. Zero disables.
	SearchLimit int
	// PerClientLimit is a per-caller budget layered under the shared ones,
	// keyed by bearer token (falling back to remote IP), so one hot crawler
	// cannot drain the budget every other client shares. Zero disables.
	PerClientLimit int
	// Window is the rate-limit window (default 15 minutes, the v1.1 value).
	Window time.Duration
	// FollowersPageSize overrides the followers/ids page size (default 5000,
	// the real endpoint's page size).
	FollowersPageSize int
	// Metrics receives the server's request/latency/rejection series (nil
	// means obs.Default; obs.Discard disables).
	Metrics *obs.Registry
}

// NewAPIServer wraps svc in an HTTP API.
func NewAPIServer(svc *Service, opts ServerOptions) *APIServer {
	if opts.Window <= 0 {
		opts.Window = 15 * time.Minute
	}
	if opts.FollowersPageSize <= 0 {
		opts.FollowersPageSize = 5000
	}
	s := &APIServer{
		svc:               svc,
		mux:               http.NewServeMux(),
		restLimit:         ratelimit.New(opts.RESTLimit, opts.Window),
		searchLimit:       ratelimit.New(opts.SearchLimit, opts.Window),
		clientLimit:       ratelimit.NewKeyed(opts.PerClientLimit, opts.Window),
		followersPageSize: opts.FollowersPageSize,
	}
	s.mux.HandleFunc("/1/users/show.json", s.limited(s.restLimit, s.handleUserShow))
	s.mux.HandleFunc("/1/users/lookup.json", s.limited(s.restLimit, s.handleUserLookup))
	s.mux.HandleFunc("/1/followers/ids.json", s.limited(s.restLimit, s.handleFollowerIDs))
	s.mux.HandleFunc("/1/statuses/user_timeline.json", s.limited(s.restLimit, s.handleTimeline))
	s.mux.HandleFunc("/1/search.json", s.limited(s.searchLimit, s.handleSearch))
	s.mux.HandleFunc("/1/statuses/sample.json", s.handleSample)
	s.handler = obs.InstrumentHandler(obs.Or(opts.Metrics), "twitterd", s.route, s.mux)
	return s
}

// route keeps the middleware's route label bounded to registered patterns.
func (s *APIServer) route(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// ServeHTTP implements http.Handler.
func (s *APIServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// apiError is the wire shape of an error response.
type apiError struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *APIServer) limited(rl *ratelimit.Limiter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Per-client budget first: a hot client is rejected on its own
		// account and never consumes a shared token.
		cst, ok := s.clientLimit.Allow(ratelimit.ClientKey(r))
		if !ok {
			cst.SetHeaders(w.Header())
			w.Header().Set("Retry-After", strconv.Itoa(cst.RetryAfterSeconds(time.Now())))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "Client rate limit exceeded", Code: 88})
			return
		}
		st, ok := rl.Allow()
		st.SetHeaders(w.Header())
		if cst.Limit > 0 {
			// Advertise the tighter per-client budget when both are enabled.
			cst.SetHeaders(w.Header())
		}
		if !ok {
			w.Header().Set("Retry-After", strconv.Itoa(st.RetryAfterSeconds(time.Now())))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "Rate limit exceeded", Code: 88})
			return
		}
		h(w, r)
	}
}

func parseID(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id <= 0 {
		return 0, fmt.Errorf("invalid %s", name)
	}
	return id, nil
}

func parseOptInt(r *http.Request, name string, def int64) int64 {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return def
	}
	return v
}

func (s *APIServer) handleUserShow(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r, "user_id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Code: 44})
		return
	}
	u, err := s.svc.User(UserID(id))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error(), Code: 34})
		return
	}
	writeJSON(w, http.StatusOK, u)
}

// handleUserLookup serves the batch users/lookup endpoint: up to 100
// comma-separated user_ids per call, one rate-limit token for the lot —
// the economical way to hydrate a crawl frontier. Unknown IDs are silently
// omitted, matching the real endpoint.
func (s *APIServer) handleUserLookup(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("user_id")
	if raw == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "missing user_id", Code: 44})
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > 100 {
		parts = parts[:100]
	}
	users := make([]*User, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid user_id list", Code: 44})
			return
		}
		if u, err := s.svc.User(UserID(id)); err == nil {
			users = append(users, u)
		}
	}
	writeJSON(w, http.StatusOK, users)
}

// followerIDsResponse mirrors the v1 cursored followers/ids payload.
type followerIDsResponse struct {
	IDs        []UserID `json:"ids"`
	NextCursor int64    `json:"next_cursor"`
}

func (s *APIServer) handleFollowerIDs(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r, "user_id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Code: 44})
		return
	}
	cursor := parseOptInt(r, "cursor", 0)
	if cursor < 0 {
		cursor = 0
	}
	all, err := s.svc.Followers(UserID(id))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error(), Code: 34})
		return
	}
	start := int(cursor)
	if start > len(all) {
		start = len(all)
	}
	end := start + s.followersPageSize
	if end > len(all) {
		end = len(all)
	}
	resp := followerIDsResponse{IDs: all[start:end]}
	if end < len(all) {
		resp.NextCursor = int64(end)
	}
	writeJSON(w, http.StatusOK, resp)
}

// timelineResponse mirrors a user_timeline page.
type timelineResponse struct {
	Tweets    []*Tweet `json:"tweets"`
	NextMaxID TweetID  `json:"next_max_id"`
}

func (s *APIServer) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r, "user_id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Code: 44})
		return
	}
	maxID := parseOptInt(r, "max_id", 0)
	count := int(parseOptInt(r, "count", 0))
	page, err := s.svc.UserTimeline(UserID(id), TweetID(maxID), count)
	if err != nil {
		if errors.Is(err, ErrUserNotFound) {
			writeJSON(w, http.StatusNotFound, apiError{Error: err.Error(), Code: 34})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error(), Code: 131})
		return
	}
	writeJSON(w, http.StatusOK, timelineResponse{Tweets: page.Tweets, NextMaxID: page.NextMaxID})
}

// searchResponse mirrors a search page.
type searchResponse struct {
	Tweets []*Tweet `json:"tweets"`
}

func (s *APIServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := SearchQuery{
		Text:    r.URL.Query().Get("q"),
		SinceID: TweetID(parseOptInt(r, "since_id", 0)),
		Count:   int(parseOptInt(r, "count", 0)),
		OnlyGeo: r.URL.Query().Get("geo_only") == "1",
	}
	writeJSON(w, http.StatusOK, searchResponse{Tweets: s.svc.Search(q)})
}

// handleSample streams newline-delimited tweet JSON until the client hangs
// up, matching the statuses/sample streaming endpoint. The optional "track"
// parameter filters by substring, approximating statuses/filter.
func (s *APIServer) handleSample(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported", Code: 130})
		return
	}
	track := r.URL.Query().Get("track")
	ch, cancel := s.svc.OpenStream(1024)
	defer cancel()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case t, open := <-ch:
			if !open {
				return
			}
			if track != "" && !containsFold(t.Text, track) {
				continue
			}
			if err := enc.Encode(t); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// containsFold reports whether s contains substr case-insensitively. Folding
// is Unicode-aware via strings.ToLower (the previous hand-rolled version
// compared byte-wise and only folded ASCII, so a track filter like "Seoul"
// matched but any non-Latin query depended on exact bytes); caseless scripts
// such as Hangul pass through ToLower untouched, so Korean district names
// match exactly, and it is the same fold Service.Search applies.
func containsFold(s, substr string) bool {
	if substr == "" {
		return true
	}
	return strings.Contains(strings.ToLower(s), strings.ToLower(substr))
}
