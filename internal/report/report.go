// Package report renders the experiment outputs: aligned ASCII tables,
// horizontal bar charts for the paper's figures, CSV for downstream tooling,
// and paper-vs-measured comparison rows for EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; extra cells are dropped, missing cells padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with minimal quoting.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders labelled horizontal bars scaled to maxWidth characters —
// the terminal rendition of the paper's figures.
type BarChart struct {
	labels []string
	values []float64
	// Format renders the numeric annotation (default "%.2f").
	Format string
	// MaxWidth is the widest bar in characters (default 40).
	MaxWidth int
}

// NewBarChart creates an empty chart.
func NewBarChart() *BarChart {
	return &BarChart{Format: "%.2f", MaxWidth: 40}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return "(no data)\n"
	}
	maxVal := c.values[0]
	labelW := 0
	for i, v := range c.values {
		if v > maxVal {
			maxVal = v
		}
		if n := len([]rune(c.labels[i])); n > labelW {
			labelW = n
		}
	}
	width := c.MaxWidth
	if width <= 0 {
		width = 40
	}
	format := c.Format
	if format == "" {
		format = "%.2f"
	}
	var b strings.Builder
	for i, v := range c.values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		if v > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n",
			labelW, c.labels[i], strings.Repeat("#", bar), fmt.Sprintf(format, v))
	}
	return b.String()
}

// Comparison is one paper-vs-measured row of EXPERIMENTS.md.
type Comparison struct {
	Metric   string
	Paper    string
	Measured string
	// Holds records whether the qualitative shape agrees.
	Holds bool
}

// ComparisonTable renders comparison rows as a Markdown table.
func ComparisonTable(rows []Comparison) string {
	var b strings.Builder
	b.WriteString("| Metric | Paper | Measured | Shape holds |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range rows {
		mark := "yes"
		if !r.Holds {
			mark = "NO"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", r.Metric, r.Paper, r.Measured, mark)
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
