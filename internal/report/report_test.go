package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Group", "Users", "Share")
	tb.AddRow("Top-1", "651", "46.5%")
	tb.AddRow("None", "407", "29.1%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Group") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header malformed:\n%s", out)
	}
	// Columns align: "Users" column starts at the same offset everywhere.
	idx0 := strings.Index(lines[0], "Users")
	idx2 := strings.Index(lines[2], "651")
	if idx0 != idx2 {
		t.Fatalf("columns misaligned (%d vs %d):\n%s", idx0, idx2, out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("extra cell not dropped:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "2")
	tb.AddRow(`with"quote`, "3")
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart()
	c.Add("Top-1", 46.5)
	c.Add("None", 29.1)
	c.Add("Top-5", 0.9)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Largest value gets the longest bar.
	bars := make([]int, 3)
	for i, l := range lines {
		bars[i] = strings.Count(l, "#")
	}
	if !(bars[0] > bars[1] && bars[1] > bars[2]) {
		t.Fatalf("bar lengths not ordered: %v\n%s", bars, out)
	}
	// Tiny nonzero value still gets one mark.
	if bars[2] < 1 {
		t.Fatal("nonzero value rendered without a bar")
	}
}

func TestBarChartEmpty(t *testing.T) {
	if got := NewBarChart().String(); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart = %q", got)
	}
}

func TestComparisonTable(t *testing.T) {
	rows := []Comparison{
		{Metric: "Top-1 share", Paper: "~46%", Measured: "44.9%", Holds: true},
		{Metric: "None share", Paper: "~29%", Measured: "12%", Holds: false},
	}
	out := ComparisonTable(rows)
	if !strings.Contains(out, "| Top-1 share | ~46% | 44.9% | yes |") {
		t.Fatalf("markdown row missing:\n%s", out)
	}
	if !strings.Contains(out, "| NO |") {
		t.Fatalf("failed shape not flagged:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.465); got != "46.5%" {
		t.Fatalf("Pct = %q", got)
	}
}
