package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stir/internal/obs"
)

func newTestTracer(t *testing.T, sample float64) *Tracer {
	t.Helper()
	return New(Options{Service: "test", Sample: sample, Seed: 7, Metrics: obs.NewRegistry()})
}

func TestTraceparentRoundtrip(t *testing.T) {
	tr := TraceID{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10}
	sp := SpanID{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33}
	for _, sampled := range []bool{true, false} {
		s := FormatTraceparent(tr, sp, sampled)
		gt, gs, gsam, ok := ParseTraceparent(s)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) not ok", s)
		}
		if gt != tr || gs != sp || gsam != sampled {
			t.Fatalf("roundtrip mismatch: got (%v,%v,%v) want (%v,%v,%v)", gt, gs, gsam, tr, sp, sampled)
		}
	}
	if got := FormatTraceparent(tr, sp, true); got != "00-0102030405060708090a0b0c0d0e0f10-deadbeef00112233-01" {
		t.Fatalf("unexpected traceparent %q", got)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-0102030405060708090a0b0c0d0e0f10-deadbeef00112233",     // missing flags
		"01-0102030405060708090a0b0c0d0e0f10-deadbeef00112233-01",  // wrong version
		"00-0102030405060708090a0b0c0d0e0fXX-deadbeef00112233-01",  // bad hex in trace
		"00-0102030405060708090a0b0c0d0e0f10-deadbeef001122zz-01",  // bad hex in span
		"00-00000000000000000000000000000000-deadbeef00112233-01",  // zero trace
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01",  // zero span
		"00-0102030405060708090a0b0c0d0e0f10-deadbeef00112233-zz",  // bad flags
		"00_0102030405060708090a0b0c0d0e0f10-deadbeef00112233-01",  // bad separator
		"00-0102030405060708090a0b0c0d0e0f10-deadbeef00112233-011", // too long
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed value", s)
		}
	}
}

func TestSamplingDeterministic(t *testing.T) {
	// Same seed → identical kept-trace decisions, run after run.
	a := newTestTracer(t, 0.5)
	b := newTestTracer(t, 0.5)
	kept := 0
	for i := 0; i < 200; i++ {
		sa := a.StartRoot("op")
		sb := b.StartRoot("op")
		if (sa == nil) != (sb == nil) {
			t.Fatalf("draw %d: tracers with same seed disagreed", i)
		}
		if sa != nil {
			kept++
			// The decision must be a pure function of the trace ID at any hop.
			if !a.Sampled(sa.TraceID()) || !b.Sampled(sa.TraceID()) {
				t.Fatalf("draw %d: Sampled disagrees with StartRoot", i)
			}
			sa.End()
		}
		sb.End()
	}
	if kept < 50 || kept > 150 {
		t.Fatalf("0.5 sampling kept %d/200, far from expectation", kept)
	}
}

func TestSampleExtremes(t *testing.T) {
	always := newTestTracer(t, 1)
	never := newTestTracer(t, 0)
	for i := 0; i < 50; i++ {
		if always.StartRoot("op") == nil {
			t.Fatal("Sample=1 dropped a root")
		}
		if never.StartRoot("op") != nil {
			t.Fatal("Sample=0 produced a root")
		}
	}
}

func TestRingBounds(t *testing.T) {
	tr := New(Options{Service: "ring", Sample: 1, RingSize: 8, Metrics: obs.NewRegistry()})
	for i := 0; i < 20; i++ {
		sp := tr.StartRoot("op")
		sp.AnnotateInt("i", int64(i))
		sp.End()
	}
	recs := tr.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	// Oldest-first: the survivors are i=12..19.
	for j, rec := range recs {
		want := 12 + j
		if len(rec.Annots) != 1 || rec.Annots[0].Val != itoa(want) {
			t.Fatalf("record %d: got annots %v, want i=%d", j, rec.Annots, want)
		}
	}
	tr.ResetRing()
	if got := tr.Records(); len(got) != 0 {
		t.Fatalf("after ResetRing, %d records remain", len(got))
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var sp *Span
	if tr.StartRoot("x") != nil || tr.StartRemote(TraceID{1}, SpanID{1}, "x") != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.Annotate("k", "v")
	sp.AnnotateInt("k", 1)
	sp.AnnotateDuration("k", time.Second)
	sp.SetStatus(500)
	if sp.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	sp.End()
	ctx := ContextWith(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span landed in context")
	}
	if c, s := Start(ctx, "x"); s != nil || c != ctx {
		t.Fatal("Start on untraced ctx was not a passthrough")
	}
	if tr.Records() != nil {
		t.Fatal("nil tracer returned records")
	}
	tr.ResetRing()
}

func TestContextPropagation(t *testing.T) {
	tr := newTestTracer(t, 1)
	ctx, root := tr.Root(context.Background(), "root")
	if root == nil {
		t.Fatal("Sample=1 root is nil")
	}
	cctx, child := Start(ctx, "child")
	if child == nil {
		t.Fatal("child is nil under traced ctx")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatal("child trace ID differs from root")
	}
	if FromContext(cctx) != child {
		t.Fatal("child not active in derived ctx")
	}
	child.End()
	root.End()
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// child ended first, parent link must point at root.
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("child parent %q != root span %q", recs[0].Parent, recs[1].Span)
	}
}

func TestUnsampledPathAllocFree(t *testing.T) {
	tr := newTestTracer(t, 0)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, sp := tr.Root(ctx, "op")
		_, csp := Start(c, "child")
		csp.Annotate("k", "v")
		csp.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace path allocates %.1f/op, want 0", allocs)
	}
}

func TestInjectAndMiddlewareContinueTrace(t *testing.T) {
	server := newTestTracer(t, 1)
	client := newTestTracer(t, 1)

	var gotSpan *Span
	h := Middleware(MiddlewareOptions{Tracer: server}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotSpan = FromContext(r.Context())
		if obs.ExemplarFromContext(r.Context()) == "" {
			t.Error("exemplar trace ID missing from handler context")
		}
		w.WriteHeader(http.StatusTeapot)
	}))

	ctx, root := client.Root(context.Background(), "client_op")
	req := httptest.NewRequest("GET", "/v1/thing", nil).WithContext(ctx)
	Inject(req)
	if req.Header.Get(Header) == "" {
		t.Fatal("Inject left no traceparent")
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	root.End()

	if gotSpan == nil {
		t.Fatal("middleware made no span for sampled inbound trace")
	}
	if gotSpan.TraceID() != root.TraceID() {
		t.Fatal("server span continued a different trace")
	}
	recs := server.Records()
	if len(recs) != 1 || recs[0].Status != http.StatusTeapot {
		t.Fatalf("server record = %+v, want one span with status 418", recs)
	}
	if recs[0].Parent != root.ID().String() {
		t.Fatalf("server span parent %q, want client span %q", recs[0].Parent, root.ID().String())
	}
}

func TestMiddlewareFreshRootAndSkip(t *testing.T) {
	server := newTestTracer(t, 1)
	h := Middleware(MiddlewareOptions{Tracer: server}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // no WriteHeader: status must default to 200
	}))

	// Bare request → fresh head-sampled root.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/x", nil))
	recs := server.Records()
	if len(recs) != 1 || recs[0].Parent != "" || recs[0].Status != 200 {
		t.Fatalf("bare request record = %+v, want parentless status-200 root", recs)
	}

	// Operational endpoints are skipped.
	server.ResetRing()
	for _, p := range []string{"/metrics", "/healthz", "/readyz", "/debug/trace", "/debug/pprof/heap"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if recs := server.Records(); len(recs) != 0 {
		t.Fatalf("operational endpoints produced %d spans", len(recs))
	}
}

func TestMiddlewareObeysUnsampledUpstream(t *testing.T) {
	server := newTestTracer(t, 1)
	h := Middleware(MiddlewareOptions{Tracer: server}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if FromContext(r.Context()) != nil {
			t.Error("span created despite upstream unsampled flag")
		}
	}))
	req := httptest.NewRequest("GET", "/v1/x", nil)
	req.Header.Set(Header, FormatTraceparent(TraceID{1}, SpanID{1}, false))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if recs := server.Records(); len(recs) != 0 {
		t.Fatalf("unsampled upstream produced %d spans", len(recs))
	}
}

func TestMiddlewareSlowLog(t *testing.T) {
	server := newTestTracer(t, 1)
	var logged []string
	h := Middleware(MiddlewareOptions{
		Tracer: server,
		Slow:   time.Nanosecond,
		SlowLog: func(r *http.Request, status int, d time.Duration, traceID string) {
			logged = append(logged, r.URL.Path+" "+itoa(status)+" "+traceID)
		},
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Microsecond)
		w.WriteHeader(http.StatusBadGateway)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/slow", nil))
	if len(logged) != 1 {
		t.Fatalf("slow log fired %d times, want 1", len(logged))
	}
	recs := server.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	want := "/v1/slow " + itoa(http.StatusBadGateway) + " " + recs[0].Trace
	if logged[0] != want {
		t.Fatalf("slow log entry %q, want %q", logged[0], want)
	}
}

func TestDebugHandlerJSONL(t *testing.T) {
	tr := newTestTracer(t, 1)
	sp := tr.StartRoot("alpha")
	sp.Annotate("k", "v")
	sp.End()
	tr.StartRoot("beta").End()

	rw := httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var recs []Record
	sc := bufio.NewScanner(rw.Body)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 || recs[0].Name != "alpha" || recs[1].Name != "beta" {
		t.Fatalf("JSONL records %+v", recs)
	}

	// ?trace= prefix filter.
	rw = httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/trace?trace="+recs[0].Trace[:8], nil))
	if n := strings.Count(rw.Body.String(), "\n"); n != 1 {
		t.Fatalf("prefix filter returned %d lines, want 1", n)
	}

	// ?n= newest filter.
	rw = httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/trace?n=1", nil))
	if !strings.Contains(rw.Body.String(), `"beta"`) || strings.Contains(rw.Body.String(), `"alpha"`) {
		t.Fatalf("?n=1 body = %q, want only newest", rw.Body.String())
	}
}

func TestBuildForestAndFormat(t *testing.T) {
	// Reassemble a synthetic three-service trace plus an orphaned span.
	recs := []Record{
		{Trace: "t1", Span: "s3", Parent: "s2", Service: "geocoded", Name: "GET /v1/reverse", Start: 300, Dur: 50, Status: 200},
		{Trace: "t1", Span: "s1", Service: "stir", Name: "stream.profile", Start: 100, Dur: 400,
			Annots: []Annot{{Key: "user", Val: "42"}}},
		{Trace: "t1", Span: "s2", Parent: "s1", Service: "twitterd", Name: "GET /1.1/users/show.json", Start: 200, Dur: 150, Status: 429},
		{Trace: "t1", Span: "s9", Parent: "missing", Service: "stir", Name: "orphan", Start: 500, Dur: 5},
		{Trace: "t2", Span: "s1", Service: "stir", Name: "other", Start: 50, Dur: 1},
		// Duplicate of t1/s2 (same ring fetched twice) must collapse.
		{Trace: "t1", Span: "s2", Parent: "s1", Service: "twitterd", Name: "GET /1.1/users/show.json", Start: 200, Dur: 150, Status: 429},
	}
	traces := BuildForest(recs)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].ID != "t2" {
		t.Fatalf("traces not oldest-first: first is %s", traces[0].ID)
	}
	t1 := traces[1]
	if t1.Spans() != 4 {
		t.Fatalf("t1 has %d spans, want 4 (duplicate must collapse)", t1.Spans())
	}
	if len(t1.Roots) != 2 {
		t.Fatalf("t1 has %d roots, want 2 (true root + orphan)", len(t1.Roots))
	}
	if got := t1.Services(); len(got) != 3 || got[0] != "geocoded" || got[1] != "stir" || got[2] != "twitterd" {
		t.Fatalf("t1 services %v", got)
	}
	if t1.Find("users/show") == nil || t1.Find("nope") != nil {
		t.Fatal("Find misbehaved")
	}

	var b bytes.Buffer
	WriteForest(&b, traces)
	out := b.String()
	for _, want := range []string{
		"trace t1 (4 spans, geocoded → stir → twitterd)",
		"  stir: stream.profile 400µs [user=42]",
		"    twitterd: GET /1.1/users/show.json 150µs status=429",
		"      geocoded: GET /v1/reverse 50µs",
		"  stir: orphan 5µs",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Options{Service: "m", Sample: 1, RingSize: 2, Metrics: reg})
	for i := 0; i < 5; i++ {
		tr.StartRoot("op").End()
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("trace_spans_total", "service", "m"); !ok || m.Value != 5 {
		t.Fatalf("trace_spans_total = %+v", m)
	}
	if m, ok := snap.Get("trace_spans_dropped_total", "service", "m"); !ok || m.Value != 3 {
		t.Fatalf("trace_spans_dropped_total = %+v", m)
	}
}
