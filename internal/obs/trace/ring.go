package trace

import "sync"

// ring is the bounded finished-span buffer: fixed capacity, newest evicts
// oldest, snapshot returns oldest-first. The bound is the whole point —
// PR 1's stage tracer accumulated roots forever; this ring is what lets a
// daemon trace continuously without ever growing.
type ring struct {
	mu   sync.Mutex
	buf  []Record
	next int  // slot the next push lands in
	full bool // buf has wrapped at least once
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Record, capacity)}
}

// push appends rec, reporting whether an older record was evicted.
func (r *ring) push(rec Record) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted = r.full
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// snapshot copies the live records, oldest first.
func (r *ring) snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// reset drops every record.
func (r *ring) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.buf {
		r.buf[i] = Record{}
	}
	r.next, r.full = 0, false
}
