// Package trace is STIR's distributed-tracing subsystem: context-propagated
// spans with W3C-style trace/span IDs that ride the same hop path as the
// X-Stir-Deadline-Ms budget — stamped as a `traceparent` header by the
// twitter and geocode clients, extracted by every daemon's middleware — so
// one logical request through the §III funnel (stir → twitterd → geocoded)
// reassembles into a single cross-process tree. The resilience layer
// annotates spans with attempt counts and breaker state, the overload layer
// with queue wait and shed reasons, and storage with segment operations,
// which is exactly the per-request causality the aggregate /metrics series
// cannot carry.
//
// Sampling is deterministic head sampling: the decision is a pure function
// of the trace ID, so every hop of one trace agrees without coordination,
// and a seeded Tracer reproduces the same kept-trace set run after run —
// chaos runs stay replayable. Finished spans land in a bounded in-memory
// ring exported as JSONL at /debug/trace and fetched by `stir trace`.
//
// Everything is nil-safe and the unsampled path is allocation-free: a nil
// *Tracer or nil *Span no-ops, and an unsampled Root/Start returns the
// context unchanged with a nil span, so hot paths pay one context lookup
// and nothing else.
package trace

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stir/internal/obs"
)

// TraceID identifies one end-to-end request tree (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, b []byte) []byte {
	for _, c := range b {
		dst = append(dst, hexDigits[c>>4], hexDigits[c&0xf])
	}
	return dst
}

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return string(appendHex(make([]byte, 0, 32), t[:])) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return string(appendHex(make([]byte, 0, 16), s[:])) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// DefaultRingSize is the finished-span ring capacity when Options leaves it 0.
const DefaultRingSize = 4096

// Options configures a Tracer.
type Options struct {
	// Service names this process in every span it emits.
	Service string
	// Sample is the head-sampling probability for new roots in [0,1]. The
	// decision is derived from the trace ID, so all hops of one trace agree;
	// 0 disables tracing entirely (and keeps the hot path allocation-free).
	Sample float64
	// RingSize bounds the finished-span ring (default DefaultRingSize).
	RingSize int
	// Seed fixes the trace/span ID stream (default 1), which with head
	// sampling makes the kept-trace set reproducible across runs.
	Seed int64
	// Metrics receives trace_spans_total and trace_spans_dropped_total (nil
	// means obs.Default; obs.Discard disables).
	Metrics *obs.Registry
}

// Tracer creates spans and collects the finished ones into a bounded ring.
// A nil *Tracer is a no-op. Safe for concurrent use.
type Tracer struct {
	service   string
	threshold uint64 // sample iff hash(traceID) < threshold
	ring      *ring
	reg       *obs.Registry

	seed uint64
	ctr  atomic.Uint64

	mSpans   *obs.Counter
	mDropped *obs.Counter
}

// New builds a tracer. A Sample of 0 still builds one (its /debug/trace ring
// simply stays empty) so wiring never needs to special-case "tracing off".
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var threshold uint64
	switch {
	case opts.Sample >= 1:
		threshold = math.MaxUint64
	case opts.Sample <= 0:
		threshold = 0
	default:
		threshold = uint64(opts.Sample * float64(math.MaxUint64))
	}
	reg := obs.Or(opts.Metrics)
	return &Tracer{
		service:   opts.Service,
		threshold: threshold,
		ring:      newRing(opts.RingSize),
		reg:       reg,
		seed:      splitmix64(uint64(opts.Seed)),
		mSpans:    reg.Counter("trace_spans_total", "service", opts.Service),
		mDropped:  reg.Counter("trace_spans_dropped_total", "service", opts.Service),
	}
}

// Service returns the name this tracer stamps on its spans.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// splitmix64 is the SplitMix64 mixing function — a fast, well-distributed
// 64-bit permutation, plenty for ID generation and sampling hashes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newIDs draws the next trace and span ID from the seeded stream.
func (t *Tracer) newIDs() (TraceID, SpanID) {
	n := t.ctr.Add(1)
	a := splitmix64(t.seed + n*0x9e3779b97f4a7c15)
	b := splitmix64(a ^ 0xd1b54a32d192ed03)
	c := splitmix64(b ^ 0x8cb92ba72f3d8dd7)
	var tr TraceID
	var sp SpanID
	putUint64(tr[:8], a)
	putUint64(tr[8:], b)
	putUint64(sp[:], c)
	return tr, sp
}

// newSpanID draws a span ID for a child within an existing trace.
func (t *Tracer) newSpanID() SpanID {
	n := t.ctr.Add(1)
	var sp SpanID
	putUint64(sp[:], splitmix64(t.seed^0xa0761d6478bd642f+n*0xe7037ed1a0b428db))
	return sp
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Sampled reports the head-sampling decision for id: a pure function of the
// trace ID (rehashed so the decision is independent of the ID bits any other
// component might key on), identical at every hop.
func (t *Tracer) Sampled(id TraceID) bool {
	if t == nil {
		return false
	}
	return splitmix64(getUint64(id[8:])) < t.threshold
}

// StartRoot begins a new locally-originated trace, or returns nil when the
// freshly drawn trace ID falls outside the sample.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || t.threshold == 0 {
		return nil
	}
	tr, sp := t.newIDs()
	if !t.Sampled(tr) {
		return nil
	}
	return &Span{tracer: t, trace: tr, id: sp, name: name, start: time.Now()}
}

// StartRemote continues a trace extracted from a carrier (traceparent): the
// upstream made the sampling decision, this hop only obeys it.
func (t *Tracer) StartRemote(trace TraceID, parent SpanID, name string) *Span {
	if t == nil || trace.IsZero() {
		return nil
	}
	return &Span{tracer: t, trace: trace, id: t.newSpanID(), parent: parent, name: name, start: time.Now()}
}

// Records snapshots the finished-span ring, oldest first.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// ResetRing clears the finished-span ring (tests and long-lived processes
// that want a clean window).
func (t *Tracer) ResetRing() {
	if t != nil {
		t.ring.reset()
	}
}

// Annot is one key=value span annotation.
type Annot struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// Span is one timed operation within a trace. All methods are nil-safe; a
// Span is safe for concurrent annotation.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	annots []Annot
	status int
	ended  bool
}

// TraceID returns the span's trace ID (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// ID returns the span's own ID (zero for nil spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Annotate attaches one key=value pair to the span.
func (s *Span) Annotate(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.annots = append(s.annots, Annot{Key: key, Val: val})
	}
	s.mu.Unlock()
}

// AnnotateInt attaches an integer-valued annotation.
func (s *Span) AnnotateInt(key string, v int64) {
	s.Annotate(key, strconv.FormatInt(v, 10))
}

// AnnotateDuration attaches a duration-valued annotation (compact form).
func (s *Span) AnnotateDuration(key string, d time.Duration) {
	s.Annotate(key, d.Round(time.Microsecond).String())
}

// SetStatus records the HTTP (or HTTP-shaped) status of the operation.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = code
	s.mu.Unlock()
}

// Child opens a sub-span under s within the same trace.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tracer: s.tracer, trace: s.trace, id: s.tracer.newSpanID(), parent: s.id, name: name, start: time.Now()}
}

// End finishes the span and commits it to the tracer's ring. Ending twice is
// a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := Record{
		Trace:   s.trace.String(),
		Span:    s.id.String(),
		Service: s.tracer.service,
		Name:    s.name,
		Start:   s.start.UnixMicro(),
		Dur:     time.Since(s.start).Microseconds(),
		Status:  s.status,
		Annots:  s.annots,
	}
	s.annots = nil
	s.mu.Unlock()
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	s.tracer.mSpans.Inc()
	if evicted := s.tracer.ring.push(rec); evicted {
		s.tracer.mDropped.Inc()
	}
}

// Record is one finished span as exported at /debug/trace (JSONL) and
// consumed by `stir trace`.
type Record struct {
	Trace   string  `json:"trace"`
	Span    string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Service string  `json:"service"`
	Name    string  `json:"name"`
	Start   int64   `json:"start_us"` // Unix microseconds
	Dur     int64   `json:"dur_us"`
	Status  int     `json:"status,omitempty"`
	Annots  []Annot `json:"annots,omitempty"`
}
