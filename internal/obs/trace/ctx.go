package trace

import "context"

// ctxKey is the private context key the active span rides under.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the active span. A nil span returns
// ctx unchanged, so unsampled paths never allocate a derived context.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil when ctx is untraced. One map
// walk, no allocation — cheap enough for hot paths to call unconditionally.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child of the context's active span and returns a context
// carrying it. Untraced contexts pass through untouched with a nil span, so
// instrumented call sites need no guards and pay nothing when unsampled.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return context.WithValue(ctx, ctxKey{}, c), c
}

// Root begins a new trace on t (head-sampled) and returns a context carrying
// its root span. Nil tracer or an unsampled draw returns (ctx, nil).
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Span) {
	sp := t.StartRoot(name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}
