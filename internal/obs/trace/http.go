package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"stir/internal/obs"
)

// Header is the W3C trace-context carrier: 00-<32 hex trace>-<16 hex
// span>-<2 hex flags>, flag bit 0 = sampled. It rides the same hop path as
// overload.DeadlineHeader — every outbound client stamps it, every daemon's
// stack extracts it.
const Header = "traceparent"

// FormatTraceparent renders the header value for one hop.
func FormatTraceparent(tr TraceID, sp SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tr.String() + "-" + sp.String() + "-" + flags
}

// ParseTraceparent parses a traceparent value. ok is false for a missing or
// malformed header; sampled reflects the upstream head-sampling decision.
func ParseTraceparent(s string) (tr TraceID, sp SpanID, sampled, ok bool) {
	// version "00": 2+1+32+1+16+1+2 = 55 bytes, fixed layout.
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tr, sp, false, false
	}
	if !hexDecode(tr[:], s[3:35]) || !hexDecode(sp[:], s[36:52]) {
		return tr, sp, false, false
	}
	if tr.IsZero() || sp.IsZero() {
		return tr, sp, false, false
	}
	flags, err := strconv.ParseUint(s[53:55], 16, 8)
	if err != nil {
		return tr, sp, false, false
	}
	return tr, sp, flags&1 == 1, true
}

// hexDecode fills dst from exactly len(dst)*2 lowercase/uppercase hex digits.
func hexDecode(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Inject stamps req with the traceparent of its context's active span. An
// untraced request is left untouched — the absence of the header is itself
// the propagated "unsampled" decision.
func Inject(req *http.Request) {
	sp := FromContext(req.Context())
	if sp == nil {
		return
	}
	req.Header.Set(Header, FormatTraceparent(sp.trace, sp.id, true))
}

// MiddlewareOptions configures the server-side extraction middleware.
type MiddlewareOptions struct {
	// Tracer creates the server spans (nil disables the middleware).
	Tracer *Tracer
	// Skip exempts requests from tracing (nil = DefaultSkip: the operational
	// endpoints, whose self-scrapes would otherwise flood the ring).
	Skip func(*http.Request) bool
	// Slow is the slow-request log threshold; 0 disables the slow log.
	Slow time.Duration
	// SlowLog receives requests slower than Slow (traceID is "" when the
	// request was unsampled). Wire it to the structured logger.
	SlowLog func(r *http.Request, status int, d time.Duration, traceID string)
}

// DefaultSkip exempts the operational endpoints every daemon mounts.
func DefaultSkip(r *http.Request) bool {
	switch r.URL.Path {
	case "/metrics", "/healthz", "/readyz":
		return true
	}
	return strings.HasPrefix(r.URL.Path, "/debug/")
}

// Middleware wraps next with trace extraction: an inbound traceparent
// continues the caller's trace (obeying its sampling decision), a bare
// request head-samples a fresh root. The span carries the method and path,
// captures the response status, and its trace ID is attached to the request
// context as the obs exemplar, so the latency histograms can link their p99
// buckets back to exemplar traces. Requests slower than Slow hit SlowLog
// whether sampled or not.
func Middleware(opts MiddlewareOptions, next http.Handler) http.Handler {
	if opts.Tracer == nil {
		return next
	}
	skip := opts.Skip
	if skip == nil {
		skip = DefaultSkip
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if skip(r) {
			next.ServeHTTP(w, r)
			return
		}
		var sp *Span
		if tr, psp, sampled, ok := ParseTraceparent(r.Header.Get(Header)); ok {
			if sampled {
				sp = opts.Tracer.StartRemote(tr, psp, r.Method+" "+r.URL.Path)
			}
		} else {
			sp = opts.Tracer.StartRoot(r.Method + " " + r.URL.Path)
		}
		if sp != nil {
			ctx := ContextWith(r.Context(), sp)
			ctx = obs.ContextWithExemplar(ctx, sp.trace.String())
			r = r.WithContext(ctx)
		}
		start := time.Now()
		rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if sp != nil {
			sp.SetStatus(rec.status)
			sp.End()
		}
		if opts.Slow > 0 && elapsed >= opts.Slow && opts.SlowLog != nil {
			id := ""
			if sp != nil {
				id = sp.trace.String()
			}
			opts.SlowLog(r, rec.status, elapsed, id)
		}
	})
}

// statusWriter captures the response status, passing Flush through so
// streaming endpoints keep working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusWriter) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

func (s *statusWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// DebugHandler serves the finished-span ring as JSONL (one Record per line),
// the format `stir trace` fetches and merges across daemons.
//
//	GET /debug/trace              all ring records, oldest first
//	GET /debug/trace?trace=HEX    records of traces whose ID starts with HEX
//	GET /debug/trace?n=N          only the newest N records
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs := t.Records()
		if pfx := r.URL.Query().Get("trace"); pfx != "" {
			kept := recs[:0]
			for _, rec := range recs {
				if strings.HasPrefix(rec.Trace, pfx) {
					kept = append(kept, rec)
				}
			}
			recs = kept
		}
		if ns := r.URL.Query().Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(recs) {
				recs = recs[len(recs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
	})
}
