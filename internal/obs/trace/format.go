package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Node is one span in a reassembled trace tree.
type Node struct {
	Rec      Record
	Children []*Node
}

// Trace is one reassembled request tree: every record sharing a trace ID,
// parent-linked across processes. Orphans (spans whose parent never reached
// a ring, e.g. evicted or from an unscraped daemon) surface as extra roots
// so no span is silently dropped.
type Trace struct {
	ID    string
	Roots []*Node
}

// Spans counts the nodes in the trace.
func (t *Trace) Spans() int {
	n := 0
	var walk func(*Node)
	walk = func(nd *Node) {
		n++
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return n
}

// Services lists the distinct services contributing spans, sorted.
func (t *Trace) Services() []string {
	set := map[string]bool{}
	var walk func(*Node)
	walk = func(nd *Node) {
		set[nd.Rec.Service] = true
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Start returns the earliest span start in the trace (Unix micros).
func (t *Trace) Start() int64 {
	start := int64(0)
	first := true
	var walk func(*Node)
	walk = func(nd *Node) {
		if first || nd.Rec.Start < start {
			start, first = nd.Rec.Start, false
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return start
}

// Find returns the first node (pre-order) whose name contains substr, or nil.
func (t *Trace) Find(substr string) *Node {
	var found *Node
	var walk func(*Node)
	walk = func(nd *Node) {
		if found != nil {
			return
		}
		if strings.Contains(nd.Rec.Name, substr) {
			found = nd
			return
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return found
}

// BuildForest reassembles raw records (typically fetched from several
// daemons' /debug/trace rings) into per-trace trees, oldest trace first.
// Duplicate span IDs (the same ring fetched twice) collapse to one node.
func BuildForest(recs []Record) []*Trace {
	type key struct{ trace, span string }
	nodes := make(map[key]*Node, len(recs))
	order := make([]string, 0, 8) // trace IDs in first-seen order
	seen := make(map[string]bool)
	for _, rec := range recs {
		k := key{rec.Trace, rec.Span}
		if _, dup := nodes[k]; dup {
			continue
		}
		nodes[k] = &Node{Rec: rec}
		if !seen[rec.Trace] {
			seen[rec.Trace] = true
			order = append(order, rec.Trace)
		}
	}
	byTrace := make(map[string]*Trace, len(order))
	traces := make([]*Trace, 0, len(order))
	for _, id := range order {
		t := &Trace{ID: id}
		byTrace[id] = t
		traces = append(traces, t)
	}
	for _, nd := range nodes {
		rec := nd.Rec
		if rec.Parent != "" {
			if p, ok := nodes[key{rec.Trace, rec.Parent}]; ok {
				p.Children = append(p.Children, nd)
				continue
			}
		}
		byTrace[rec.Trace].Roots = append(byTrace[rec.Trace].Roots, nd)
	}
	sortNodes := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Rec.Start != ns[j].Rec.Start {
				return ns[i].Rec.Start < ns[j].Rec.Start
			}
			return ns[i].Rec.Span < ns[j].Rec.Span
		})
	}
	var sortTree func(*Node)
	sortTree = func(nd *Node) {
		sortNodes(nd.Children)
		for _, c := range nd.Children {
			sortTree(c)
		}
	}
	for _, t := range traces {
		sortNodes(t.Roots)
		for _, r := range t.Roots {
			sortTree(r)
		}
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Start() < traces[j].Start() })
	return traces
}

// WriteForest pretty-prints the reassembled traces: one header line per
// trace, then the span tree indented by depth, each span as
//
//	service: name dur [status=N] [k=v ...]
func WriteForest(w io.Writer, traces []*Trace) {
	for i, t := range traces {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "trace %s (%d spans, %s)\n", t.ID, t.Spans(), strings.Join(t.Services(), " → "))
		for _, r := range t.Roots {
			writeNode(w, r, 1)
		}
	}
}

func writeNode(w io.Writer, nd *Node, depth int) {
	rec := nd.Rec
	fmt.Fprintf(w, "%s%s: %s %s", strings.Repeat("  ", depth), rec.Service, rec.Name,
		(time.Duration(rec.Dur) * time.Microsecond).String())
	if rec.Status != 0 && rec.Status != 200 {
		fmt.Fprintf(w, " status=%d", rec.Status)
	}
	if len(rec.Annots) > 0 {
		parts := make([]string, len(rec.Annots))
		for i, a := range rec.Annots {
			parts[i] = a.Key + "=" + a.Val
		}
		fmt.Fprintf(w, " [%s]", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
	for _, c := range nd.Children {
		writeNode(w, c, depth+1)
	}
}
