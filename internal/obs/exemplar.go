package obs

import "context"

// Exemplar links one histogram bucket to a concrete trace: the last sampled
// observation that landed in the bucket, with the trace ID to look it up at
// /debug/trace. This is what turns "p99 is 800ms" into "p99 is 800ms and
// here is one such request".
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
	TS      int64   `json:"ts_us"` // Unix microseconds
}

// exemplarKey carries the current request's trace ID through the context.
// obs owns the key (rather than the trace package) so InstrumentHandler can
// read it without obs importing trace — trace imports obs, not vice versa.
type exemplarKey struct{}

// ContextWithExemplar returns ctx carrying traceID as the exemplar for any
// histogram observations made under it. Empty IDs pass through unchanged.
func ContextWithExemplar(ctx context.Context, traceID string) context.Context {
	if traceID == "" {
		return ctx
	}
	return context.WithValue(ctx, exemplarKey{}, traceID)
}

// ExemplarFromContext returns the trace ID attached by ContextWithExemplar,
// or "" when the request is untraced.
func ExemplarFromContext(ctx context.Context) string {
	id, _ := ctx.Value(exemplarKey{}).(string)
	return id
}
