package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestReadinessZeroAndNil(t *testing.T) {
	var zero Readiness
	if !zero.Ready() {
		t.Fatal("zero-value Readiness should be ready")
	}
	var nilReady *Readiness
	if !nilReady.Ready() {
		t.Fatal("nil Readiness should be ready")
	}
	nilReady.SetReady(false) // must not panic
	if !nilReady.Ready() {
		t.Fatal("nil Readiness should stay ready")
	}
}

// TestReadyzDrainTransition pins the liveness/readiness split the graceful
// lifecycle depends on: when a daemon starts draining, /readyz flips to 503
// so load balancers stop routing to it, while /healthz keeps answering 200
// because the process is alive and finishing in-flight work — restarting it
// mid-drain would defeat the drain.
func TestReadyzDrainTransition(t *testing.T) {
	ready := &Readiness{}
	readyz := ReadyzHandler("stird", ready)
	healthz := HealthzHandler("stird")

	get := func(h http.Handler) (int, map[string]any) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
		var body map[string]any
		if err := json.NewDecoder(rr.Body).Decode(&body); err != nil {
			t.Fatalf("decode body: %v", err)
		}
		return rr.Code, body
	}

	// Serving normally: both endpoints healthy.
	if code, body := get(readyz); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz while ready = %d %v, want 200 ready", code, body)
	}
	if code, _ := get(healthz); code != http.StatusOK {
		t.Fatalf("healthz while ready = %d, want 200", code)
	}

	// Drain begins: readiness flips, liveness does not.
	ready.SetReady(false)
	code, body := get(readyz)
	if code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz while draining = %d %v, want 503 draining", code, body)
	}
	if body["service"] != "stird" {
		t.Fatalf("readyz service = %v, want stird", body["service"])
	}
	if code, body := get(healthz); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz while draining = %d %v, want 200 ok", code, body)
	}

	// A cancelled drain (e.g. test harness re-arming) restores readiness.
	ready.SetReady(true)
	if code, _ := get(readyz); code != http.StatusOK {
		t.Fatalf("readyz after re-arm = %d, want 200", code)
	}
}
