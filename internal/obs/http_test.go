package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandler(t *testing.T) {
	r := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/throttled":
			w.WriteHeader(http.StatusTooManyRequests)
		case "/missing":
			w.WriteHeader(http.StatusNotFound)
		default:
			w.Write([]byte("ok")) // implicit 200
		}
	})
	srv := httptest.NewServer(InstrumentHandler(r, "svc", nil, inner))
	defer srv.Close()

	for _, path := range []string{"/ok", "/ok", "/missing", "/throttled"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	snap := r.Snapshot()
	checks := []struct {
		kv   []string
		want float64
	}{
		{[]string{"route", "/ok", "class", "2xx"}, 2},
		{[]string{"route", "/missing", "class", "4xx"}, 1},
		{[]string{"route", "/throttled", "class", "4xx"}, 1},
	}
	for _, c := range checks {
		m, ok := snap.Get(HTTPRequestsMetric, append([]string{"service", "svc"}, c.kv...)...)
		if !ok || m.Value != c.want {
			t.Errorf("requests%v = %+v ok=%v, want %v", c.kv, m, ok, c.want)
		}
	}
	if m, ok := snap.Get(HTTPRateLimitedMetric, "route", "/throttled"); !ok || m.Value != 1 {
		t.Errorf("ratelimited counter = %+v ok=%v, want 1", m, ok)
	}
	if m, ok := snap.Get(HTTPLatencyMetric, "route", "/ok"); !ok || m.Count != 2 {
		t.Errorf("latency histogram = %+v ok=%v, want count 2", m, ok)
	}
}

func TestMetricsHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("prometheus body missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"x_total"`) {
		t.Fatalf("json body missing counter:\n%s", body)
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(HealthzHandler("twitterd"))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	for _, want := range []string{`"ok"`, `"twitterd"`, "uptime_seconds"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("healthz body missing %s: %s", want, body)
		}
	}
}
