package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "kind", "crawl")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves to the same series regardless of pair order.
	r.Counter("jobs_total", "kind", "crawl").Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter after re-lookup = %d, want 6", got)
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "a", "1", "b", "2").Add(3)
	if got := r.Counter("m", "b", "2", "a", "1").Value(); got != 3 {
		t.Fatalf("label order split the series: got %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", h.Sum())
	}
	m, ok := r.Snapshot().Get("latency")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative: le=0.1 → 2 (0.05 and the boundary value 0.1), le=1 → 3,
	// le=10 → 4, +Inf → 5.
	wantCum := []int64{2, 3, 4, 5}
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if m.Buckets[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, m.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}

	var tr *Tracer
	sp := tr.Start("x")
	sp.Child("y").End()
	if sp.End() != 0 || tr.Report() != "" {
		t.Fatal("nil tracer must be inert")
	}
}

func TestDiscardRegistry(t *testing.T) {
	if c := Discard.Counter("x"); c != nil {
		t.Fatal("discard registry must hand back nil counters")
	}
	if g := Discard.Gauge("x"); g != nil {
		t.Fatal("discard registry must hand back nil gauges")
	}
	if h := Discard.Histogram("x", nil); h != nil {
		t.Fatal("discard registry must hand back nil histograms")
	}
	Discard.GaugeFunc("x", func() float64 { return 1 })
	if n := len(Discard.Snapshot().Metrics); n != 0 {
		t.Fatalf("discard registry recorded %d series", n)
	}
}

func TestNilRegistryResolvesToDefault(t *testing.T) {
	var r *Registry
	r.Counter("obs_test_nil_default_total").Inc()
	m, ok := Default.Snapshot().Get("obs_test_nil_default_total")
	if !ok || m.Value < 1 {
		t.Fatalf("nil registry did not land in Default: %+v ok=%v", m, ok)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("pull", func() float64 { return v }, "cache", "a")
	v = 42
	m, ok := r.Snapshot().Get("pull", "cache", "a")
	if !ok || m.Value != 42 {
		t.Fatalf("gauge func = %+v ok=%v, want 42", m, ok)
	}
	// Re-registration replaces, never duplicates.
	r.GaugeFunc("pull", func() float64 { return 7 }, "cache", "a")
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 7 {
		t.Fatalf("replacement failed: %+v", snap.Metrics)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "route", "/a", "class", "2xx").Add(3)
	r.Gauge("queue_depth").Set(7)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{class="2xx",route="/a"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.5",
		"lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a_total"`) {
		t.Fatalf("json exposition missing metric: %s", b.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "w", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "w", "x").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("concurrent gauge = %v, want 8000", got)
	}
}

// TestWriteJSONWithHistogram guards the +Inf bucket: encoding/json rejects
// infinite floats, so the last bucket's bound must serialise as a string.
func TestWriteJSONWithHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h_seconds", DefBuckets).Observe(0.2)
	reg.Counter("c_total").Inc()
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("round-tripped %d metrics, want 2", len(snap.Metrics))
	}
	if !strings.Contains(b.String(), `"le": "+Inf"`) {
		t.Fatalf("JSON missing +Inf bucket:\n%s", b.String())
	}
}
