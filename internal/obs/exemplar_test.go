package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestExemplarContext(t *testing.T) {
	ctx := context.Background()
	if got := ExemplarFromContext(ctx); got != "" {
		t.Fatalf("empty ctx exemplar = %q", got)
	}
	if ContextWithExemplar(ctx, "") != ctx {
		t.Fatal("empty trace ID should not derive a context")
	}
	ctx = ContextWithExemplar(ctx, "abc123")
	if got := ExemplarFromContext(ctx); got != "abc123" {
		t.Fatalf("exemplar = %q, want abc123", got)
	}
}

func TestObserveWithExemplar(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ex_seconds", []float64{0.1, 1})
	now := time.Now()
	h.ObserveWithExemplar(0.05, "tr-fast", now)
	h.ObserveWithExemplar(0.5, "", now) // untraced: counted, no exemplar
	h.ObserveWithExemplar(5, "tr-slow", now)

	m, ok := reg.Snapshot().Get("ex_seconds")
	if !ok || m.Count != 3 {
		t.Fatalf("snapshot = %+v", m)
	}
	if m.Buckets[0].Exemplar == nil || m.Buckets[0].Exemplar.TraceID != "tr-fast" {
		t.Fatalf("fast bucket exemplar = %+v", m.Buckets[0].Exemplar)
	}
	if m.Buckets[1].Exemplar != nil {
		t.Fatalf("untraced observation left exemplar %+v", m.Buckets[1].Exemplar)
	}
	if m.Buckets[2].Exemplar == nil || m.Buckets[2].Exemplar.TraceID != "tr-slow" || m.Buckets[2].Exemplar.Value != 5 {
		t.Fatalf("+Inf bucket exemplar = %+v", m.Buckets[2].Exemplar)
	}

	// Exemplars ride the JSON exposition…
	js, err := json.Marshal(m.Buckets[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"trace_id":"tr-fast"`) {
		t.Fatalf("bucket JSON %s lacks exemplar", js)
	}
	// …but never the Prometheus text format (0.0.4 parsers would choke).
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "tr-fast") {
		t.Fatal("exemplar leaked into Prometheus text exposition")
	}

	// Nil histogram stays a no-op.
	var nh *Histogram
	nh.ObserveWithExemplar(1, "x", now)
}

func TestInstrumentHandlerExemplar(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "svc", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("GET", "/v1/x", nil)
	req = req.WithContext(ContextWithExemplar(req.Context(), "deadbeef"))
	h.ServeHTTP(httptest.NewRecorder(), req)

	m, ok := reg.Snapshot().Get(HTTPLatencyMetric, "service", "svc", "route", "/v1/x")
	if !ok || m.Count != 1 {
		t.Fatalf("latency metric = %+v", m)
	}
	found := false
	for _, b := range m.Buckets {
		if b.Exemplar != nil && b.Exemplar.TraceID == "deadbeef" {
			found = true
		}
	}
	if !found {
		t.Fatal("no bucket carries the request's trace exemplar")
	}
}

func TestInstrumentHandlerStatusWithoutWriteHeader(t *testing.T) {
	// A handler that only Writes (or does nothing) must still count as 2xx.
	for _, body := range []bool{true, false} {
		reg := NewRegistry()
		h := InstrumentHandler(reg, "svc", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if body {
				w.Write([]byte("ok"))
			}
		}))
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/x", nil))
		m, ok := reg.Snapshot().Get(HTTPRequestsMetric, "service", "svc", "route", "/v1/x", "class", "2xx")
		if !ok || m.Value != 1 {
			t.Fatalf("body=%v: 2xx count = %+v", body, m)
		}
	}
}
