// Package obs is STIR's dependency-free observability layer: atomic
// counters, gauges and fixed-bucket histograms collected in a named,
// label-aware Registry, with Prometheus-text and JSON exposition and a
// lightweight stage tracer. The paper's pipeline lives or dies on its
// attrition funnel and on API pain points (rate limits, geocode throttling);
// this package turns those from scattered log lines into first-class,
// scrapeable series.
//
// Everything is nil-safe: methods on a nil *Counter, *Gauge, *Histogram,
// *Tracer or *Span are no-ops, and a nil *Registry resolves to the
// process-wide Default, so zero-config callers pay a couple of atomic
// operations and nothing else. Pass Discard to switch instrumentation off
// entirely (its constructors hand back typed nils).
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrary float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are latency-shaped histogram bounds (seconds), from 1 ms to 10 s.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// SizeBuckets are count-shaped bounds for batch sizes and similar.
var SizeBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks the running sum. Each bucket additionally
// keeps the last sampled-trace exemplar that landed in it, linking latency
// tails back to concrete traces.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is +Inf
	exemplars []atomic.Pointer[Exemplar]
	sum       atomic.Uint64 // float64 bits, CAS-updated
	n         atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v; falls through to +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveWithExemplar records v and, when traceID is non-empty, pins it as
// the bucket's exemplar so the exposition can point at a sampled trace that
// actually hit that latency band.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string, ts time.Time) {
	if h == nil {
		return
	}
	if traceID != "" {
		i := sort.SearchFloat64s(h.bounds, v)
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, TS: ts.UnixMicro()})
	}
	h.Observe(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot. Exemplar, when
// present, is the last sampled trace that landed in this band; it appears in
// the JSON exposition only (the Prometheus 0.0.4 text format predates
// exemplars, and the OpenMetrics `#`-suffix would break its parsers).
type Bucket struct {
	UpperBound float64   `json:"-"` // +Inf for the last bucket
	Count      int64     `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the upper bound as a string because encoding/json
// rejects +Inf, which every histogram's last bucket carries.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE       string    `json:"le"`
		Count    int64     `json:"count"`
		Exemplar *Exemplar `json:"exemplar,omitempty"`
	}{le, b.Count, b.Exemplar})
}

// metric kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// entry is one registered series.
type entry struct {
	name   string
	labels []string // flattened k,v pairs, in registration order
	kind   string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // pull-mode gauge; read at snapshot time
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry, or pass nil wherever a *Registry is accepted to use Default.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	discard bool
}

// Default is the process-wide registry zero-config callers land in.
var Default = NewRegistry()

// Discard is a registry whose constructors return typed nil metrics, turning
// all instrumentation into no-ops. Benchmarks use it to measure bare paths.
var Discard = &Registry{discard: true}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// or resolves the nil-means-Default convention.
func (r *Registry) or() *Registry {
	if r == nil {
		return Default
	}
	return r
}

// Or returns r, or Default when r is nil. Components with an optional
// *Registry field use it to resolve their target once.
func Or(r *Registry) *Registry { return r.or() }

// seriesKey builds the identity of name+labels. Label pairs are sorted so
// registration order does not split series.
func seriesKey(name string, kv []string) string {
	if len(kv) == 0 {
		return name
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+"\x00"+kv[i+1])
	}
	sort.Strings(pairs)
	return name + "\x01" + strings.Join(pairs, "\x02")
}

// lookup finds or creates the entry for name+kv, enforcing kind consistency.
func (r *Registry) lookup(name, kind string, kv []string, mk func() *entry) *entry {
	key := seriesKey(name, kv)
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if ok && e.kind == kind {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok = r.entries[key]; ok && e.kind == kind {
		return e
	}
	e = mk()
	e.name, e.kind = name, kind
	e.labels = append([]string(nil), kv...)
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under name and label pairs,
// creating it on first use. kv is alternating key, value strings.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	r = r.or()
	if r.discard {
		return nil
	}
	return r.lookup(name, KindCounter, kv, func() *entry { return &entry{ctr: &Counter{}} }).ctr
}

// Gauge returns the gauge registered under name and label pairs.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	r = r.or()
	if r.discard {
		return nil
	}
	return r.lookup(name, KindGauge, kv, func() *entry { return &entry{gauge: &Gauge{}} }).gauge
}

// Histogram returns the histogram registered under name and label pairs.
// bounds applies only on first registration; nil means DefBuckets.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	r = r.or()
	if r.discard {
		return nil
	}
	return r.lookup(name, KindHistogram, kv, func() *entry { return &entry{hist: newHistogram(bounds)} }).hist
}

// GaugeFunc registers (or replaces) a pull-mode gauge whose value is read by
// calling fn at snapshot time. Replacement makes re-registration after a
// component rebuild idempotent.
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	r = r.or()
	if r.discard || fn == nil {
		return
	}
	key := seriesKey(name, kv)
	r.mu.Lock()
	r.entries[key] = &entry{
		name: name, kind: KindGauge, labels: append([]string(nil), kv...), fn: fn,
	}
	r.mu.Unlock()
}

// Metric is one series in a snapshot.
type Metric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge reading (0 for histograms).
	Value float64 `json:"value"`
	// Histogram-only fields.
	Buckets []Bucket `json:"buckets,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
}

// labelString renders {k="v",...} for display and Prometheus exposition.
func (m Metric) labelString() string {
	if len(m.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m.Labels))
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, m.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot is a point-in-time copy of every series in a registry.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get returns the first metric matching name and the given label pairs, and
// whether one was found.
func (s Snapshot) Get(name string, kv ...string) (Metric, bool) {
outer:
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		for i := 0; i+1 < len(kv); i += 2 {
			if m.Labels[kv[i]] != kv[i+1] {
				continue outer
			}
		}
		return m, true
	}
	return Metric{}, false
}

// Snapshot copies all series, evaluating pull-mode gauges. Output is sorted
// by name then labels, so expositions are deterministic.
func (r *Registry) Snapshot() Snapshot {
	r = r.or()
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()

	ms := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Kind: e.kind}
		if len(e.labels) > 0 {
			m.Labels = make(map[string]string, len(e.labels)/2)
			for i := 0; i+1 < len(e.labels); i += 2 {
				m.Labels[e.labels[i]] = e.labels[i+1]
			}
		}
		switch {
		case e.ctr != nil:
			m.Value = float64(e.ctr.Value())
		case e.gauge != nil:
			m.Value = e.gauge.Value()
		case e.fn != nil:
			m.Value = e.fn()
		case e.hist != nil:
			m.Count = e.hist.Count()
			m.Sum = e.hist.Sum()
			m.Buckets = make([]Bucket, 0, len(e.hist.bounds)+1)
			cum := int64(0)
			for i, ub := range e.hist.bounds {
				cum += e.hist.counts[i].Load()
				m.Buckets = append(m.Buckets, Bucket{UpperBound: ub, Count: cum, Exemplar: e.hist.exemplars[i].Load()})
			}
			cum += e.hist.counts[len(e.hist.bounds)].Load()
			m.Buckets = append(m.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum, Exemplar: e.hist.exemplars[len(e.hist.bounds)].Load()})
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].labelString() < ms[j].labelString()
	})
	return Snapshot{Metrics: ms}
}
