package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Tracer times named pipeline stages as a tree of spans. Each ended span
// records its duration into the registry histogram StageHistogram with a
// stage label of its dotted path ("pipeline.users.geocode"), so stage
// timings show up on /metrics alongside everything else; the tracer also
// keeps the finished tree for a human-readable report.
//
// A nil *Tracer (and the nil *Span its Start returns) is a no-op, so
// instrumented code never needs to guard its spans.
//
// Retained roots are bounded: once MaxRoots trees accumulate, each new root
// evicts the oldest. The stage histogram is unaffected — only the trees kept
// for Report are capped — so a long-lived process (streamd checkpoints every
// few seconds, forever) no longer leaks a span tree per operation.
type Tracer struct {
	reg *Registry

	mu    sync.Mutex
	roots []*Span
	head  int // index of the oldest retained root once wrapped
	max   int
}

// StageHistogram is the registry histogram stage durations land in.
const StageHistogram = "stir_stage_seconds"

// DefaultMaxRoots bounds the root span trees a Tracer retains for Report.
const DefaultMaxRoots = 256

// NewTracer builds a tracer recording into reg (nil means Default),
// retaining at most DefaultMaxRoots root trees.
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: Or(reg), max: DefaultMaxRoots}
}

// NewTracerN is NewTracer with an explicit root-retention bound (values < 1
// fall back to DefaultMaxRoots).
func NewTracerN(reg *Registry, maxRoots int) *Tracer {
	if maxRoots < 1 {
		maxRoots = DefaultMaxRoots
	}
	return &Tracer{reg: Or(reg), max: maxRoots}
}

// Reset drops every retained root tree. Stage histogram series are untouched.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots, t.head = nil, 0
	t.mu.Unlock()
}

// RootCount returns how many root trees are currently retained.
func (t *Tracer) RootCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.roots)
}

// Span is one timed stage. Spans form a tree via Child.
type Span struct {
	tracer *Tracer
	name   string
	path   string
	start  time.Time

	mu       sync.Mutex
	children []*Span
	dur      time.Duration
	ended    bool
}

// Start opens a root span. When the retention bound is full the new root
// replaces the oldest retained tree.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, path: name, start: time.Now()}
	t.mu.Lock()
	max := t.max
	if max < 1 {
		max = DefaultMaxRoots // zero-value Tracer from older call sites
	}
	if len(t.roots) < max {
		t.roots = append(t.roots, s)
	} else {
		t.roots[t.head] = s
		t.head = (t.head + 1) % max
	}
	t.mu.Unlock()
	return s
}

// Child opens a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, path: s.path + "." + name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, records its duration into the stage histogram, and
// returns the duration. Ending twice keeps the first duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	d := s.dur
	s.mu.Unlock()
	s.tracer.reg.Histogram(StageHistogram, DefBuckets, "stage", s.path).ObserveDuration(d)
	return d
}

// Duration returns the recorded duration (0 until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Report renders the finished span trees, one line per span, indented by
// depth, newest root last.
func (t *Tracer) Report() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	// Oldest-first: once wrapped, head marks the oldest retained root.
	roots := make([]*Span, 0, len(t.roots))
	roots = append(roots, t.roots[t.head:]...)
	roots = append(roots, t.roots[:t.head]...)
	t.mu.Unlock()
	var b strings.Builder
	for _, r := range roots {
		writeSpan(&b, r, 0)
	}
	return b.String()
}

func writeSpan(b *strings.Builder, s *Span, depth int) {
	s.mu.Lock()
	dur := s.dur
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	fmt.Fprintf(b, "%s%s %.3fms\n", strings.Repeat("  ", depth), s.name, float64(dur.Microseconds())/1000)
	for _, c := range kids {
		writeSpan(b, c, depth+1)
	}
}
