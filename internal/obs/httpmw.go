package obs

import (
	"net/http"
	"strconv"
	"time"
)

// Metric names emitted by InstrumentHandler.
const (
	HTTPRequestsMetric    = "http_requests_total"
	HTTPLatencyMetric     = "http_request_seconds"
	HTTPRateLimitedMetric = "http_ratelimited_total"
)

// InstrumentHandler wraps next with per-route request counting, status-class
// counting, a latency histogram, and a dedicated rate-limit rejection
// counter (any 429 response). route derives the route label from the request;
// nil uses the raw URL path — pass a mux-pattern lookup to keep label
// cardinality bounded when paths carry IDs.
//
// Series:
//
//	http_requests_total{service,route,class}   class is "2xx".."5xx"
//	http_request_seconds{service,route}        DefBuckets latency histogram
//	http_ratelimited_total{service,route}      429 responses only
func InstrumentHandler(reg *Registry, service string, route func(*http.Request) string, next http.Handler) http.Handler {
	reg = Or(reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := r.URL.Path
		if route != nil {
			rt = route(r)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		reg.Counter(HTTPRequestsMetric,
			"service", service, "route", rt, "class", statusClass(rec.status)).Inc()
		// A traced request carries its trace ID as the context exemplar (set
		// by the trace middleware outside this one), linking latency buckets
		// to concrete traces at /debug/trace.
		reg.Histogram(HTTPLatencyMetric, DefBuckets, "service", service, "route", rt).
			ObserveWithExemplar(elapsed.Seconds(), ExemplarFromContext(r.Context()), start)
		if rec.status == http.StatusTooManyRequests {
			reg.Counter(HTTPRateLimitedMetric, "service", service, "route", rt).Inc()
		}
	})
}

func statusClass(code int) string {
	if code >= 100 && code < 600 {
		return strconv.Itoa(code/100) + "xx"
	}
	return "other"
}

// statusRecorder captures the response status while passing Flush through,
// so streaming endpoints (statuses/sample) keep working behind the
// middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
