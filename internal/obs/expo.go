package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric name, then one line per
// series, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	lastName := ""
	for _, m := range snap.Metrics {
		if m.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		if err := writePromMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writePromMetric(w io.Writer, m Metric) error {
	if m.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, m.labelString(), formatValue(m.Value))
		return err
	}
	for _, b := range m.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLabel(m, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, m.labelString(), formatValue(m.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, m.labelString(), m.Count)
	return err
}

// withLabel renders m's labels plus one extra pair.
func withLabel(m Metric, key, val string) string {
	keys := make([]string, 0, len(m.Labels)+1)
	for k := range m.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, m.Labels[k])
	}
	if len(keys) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "%s=%q", key, val)
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as a JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves GET /metrics for reg: Prometheus text by default, JSON when
// the request asks for it (?format=json or Accept: application/json).
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wantJSON := r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.or().WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.or().WritePrometheus(w)
	})
}

// processStart anchors the uptime reported by HealthzHandler.
var processStart = time.Now()

// HealthzHandler serves a liveness endpoint: 200 with a small JSON body
// naming the service and its uptime. Liveness means "the process is up and
// serving" — it stays 200 through a graceful drain, because a draining
// process is alive (killing it early is exactly what drain avoids).
// Readiness, which does flip during drain, is ReadyzHandler's job.
func HealthzHandler(service string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"service":        service,
			"uptime_seconds": time.Since(processStart).Seconds(),
		})
	})
}

// Readiness is the shared readiness flag a daemon's lifecycle flips and its
// /readyz endpoint reports. Two independent causes take it down — draining
// (shutdown in progress) and degraded (e.g. a read-only disk-degraded
// checkpoint store) — so the disk watcher and the drain path cannot clobber
// each other's bit. The zero value is ready; a nil *Readiness is always
// ready (zero-config callers never gate).
type Readiness struct{ draining, degraded atomic.Bool }

// SetReady flips the drain cause: SetReady(false) marks the daemon draining
// so load balancers stop routing new work to it.
func (r *Readiness) SetReady(ok bool) {
	if r != nil {
		r.draining.Store(!ok)
	}
}

// SetDegraded flips the degraded cause independently of draining: a daemon
// whose store hard-degrades goes not-ready (load balancers route around it)
// while liveness stays up — the process is healthy, its disk is the problem.
func (r *Readiness) SetDegraded(degraded bool) {
	if r != nil {
		r.degraded.Store(degraded)
	}
}

// Degraded reports the degraded cause alone.
func (r *Readiness) Degraded() bool { return r != nil && r.degraded.Load() }

// Ready reports whether new traffic should be admitted.
func (r *Readiness) Ready() bool {
	return r == nil || (!r.draining.Load() && !r.degraded.Load())
}

// ReadyzHandler serves a readiness endpoint distinct from liveness: 200
// while ready accepts new work, 503 once the daemon is draining or degraded
// — while /healthz keeps answering 200 until the process actually exits.
func ReadyzHandler(service string, ready *Readiness) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status, state := http.StatusOK, "ready"
		if !ready.Ready() {
			status, state = http.StatusServiceUnavailable, "draining"
			if ready.Degraded() {
				state = "degraded"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":         state,
			"service":        service,
			"uptime_seconds": time.Since(processStart).Seconds(),
		})
	})
}
