package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	root := tr.Start("pipeline")
	refine := root.Child("refine")
	time.Sleep(time.Millisecond)
	if d := refine.End(); d <= 0 {
		t.Fatalf("refine duration = %v", d)
	}
	geo := root.Child("geocode")
	geo.End()
	root.End()

	// Durations land in the stage histogram under the dotted path.
	snap := r.Snapshot()
	for _, stage := range []string{"pipeline", "pipeline.refine", "pipeline.geocode"} {
		m, ok := snap.Get(StageHistogram, "stage", stage)
		if !ok || m.Count != 1 {
			t.Errorf("stage %q not recorded: %+v ok=%v", stage, m, ok)
		}
	}

	rep := tr.Report()
	if !strings.Contains(rep, "pipeline") || !strings.Contains(rep, "  refine") {
		t.Fatalf("report missing nested spans:\n%s", rep)
	}
	// Child lines are indented under the root.
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 3 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("unexpected report shape:\n%s", rep)
	}
}

func TestTracerRootsBounded(t *testing.T) {
	// Regression: Start used to append roots forever, leaking one span tree
	// per operation in long-lived processes (stream checkpoints run for the
	// life of the daemon). Retention must cap at the bound, evicting oldest.
	tr := NewTracerN(NewRegistry(), 4)
	for i := 0; i < 100; i++ {
		tr.Start("op").End()
	}
	if n := tr.RootCount(); n != 4 {
		t.Fatalf("retained %d roots, want 4", n)
	}
	// Eviction is oldest-first: survivors are the last 4 started.
	tr.Reset()
	if n := tr.RootCount(); n != 0 {
		t.Fatalf("after Reset, %d roots remain", n)
	}
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tr.Start(n).End()
	}
	rep := tr.Report()
	if strings.Contains(rep, "a") || strings.Contains(rep, "b") {
		t.Fatalf("evicted roots still reported:\n%s", rep)
	}
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "c ") || !strings.HasPrefix(lines[3], "f ") {
		t.Fatalf("report not oldest-first over survivors:\n%s", rep)
	}

	// Default bound applies via NewTracer too.
	def := NewTracer(NewRegistry())
	for i := 0; i < DefaultMaxRoots+50; i++ {
		def.Start("op").End()
	}
	if n := def.RootCount(); n != DefaultMaxRoots {
		t.Fatalf("default retention %d, want %d", n, DefaultMaxRoots)
	}

	// Nil tracer stays a no-op for the new methods.
	var nt *Tracer
	nt.Reset()
	if nt.RootCount() != 0 {
		t.Fatal("nil tracer RootCount != 0")
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTracer(NewRegistry())
	s := tr.Start("x")
	d1 := s.End()
	time.Sleep(2 * time.Millisecond)
	if d2 := s.End(); d2 != d1 {
		t.Fatalf("second End changed duration: %v then %v", d1, d2)
	}
	if s.Duration() != d1 {
		t.Fatalf("Duration = %v, want %v", s.Duration(), d1)
	}
}
