package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	root := tr.Start("pipeline")
	refine := root.Child("refine")
	time.Sleep(time.Millisecond)
	if d := refine.End(); d <= 0 {
		t.Fatalf("refine duration = %v", d)
	}
	geo := root.Child("geocode")
	geo.End()
	root.End()

	// Durations land in the stage histogram under the dotted path.
	snap := r.Snapshot()
	for _, stage := range []string{"pipeline", "pipeline.refine", "pipeline.geocode"} {
		m, ok := snap.Get(StageHistogram, "stage", stage)
		if !ok || m.Count != 1 {
			t.Errorf("stage %q not recorded: %+v ok=%v", stage, m, ok)
		}
	}

	rep := tr.Report()
	if !strings.Contains(rep, "pipeline") || !strings.Contains(rep, "  refine") {
		t.Fatalf("report missing nested spans:\n%s", rep)
	}
	// Child lines are indented under the root.
	lines := strings.Split(strings.TrimSpace(rep), "\n")
	if len(lines) != 3 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("unexpected report shape:\n%s", rep)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTracer(NewRegistry())
	s := tr.Start("x")
	d1 := s.End()
	time.Sleep(2 * time.Millisecond)
	if d2 := s.End(); d2 != d1 {
		t.Fatalf("second End changed duration: %v then %v", d1, d2)
	}
	if s.Duration() != d1 {
		t.Fatalf("Duration = %v, want %v", s.Duration(), d1)
	}
}
