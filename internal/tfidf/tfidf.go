// Package tfidf implements the term-weighting machinery behind the
// Twitris-style baseline (§II): extract the terms that characterise the
// tweets of one time/space cell against the whole corpus.
package tfidf

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// stopwords are dropped during tokenisation; the list covers the synthetic
// corpus's filler vocabulary plus common English function words.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "at": true, "be": true,
	"but": true, "by": true, "for": true, "if": true, "in": true, "is": true,
	"it": true, "of": true, "on": true, "or": true, "so": true, "that": true,
	"the": true, "this": true, "to": true, "was": true, "with": true,
	"i": true, "my": true, "me": true, "we": true, "you": true, "just": true,
	"now": true, "rt": true,
}

// Tokenize lowercases s, splits on non-letter/digit runes, and drops
// stopwords and single-character tokens.
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len([]rune(f)) < 2 || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Corpus accumulates documents (bags of tokens) and answers TF-IDF queries.
// A "document" in the Twitris setting is the concatenation of all tweets in
// one (day, district) cell.
type Corpus struct {
	docs []map[string]int
	df   map[string]int
	lens []int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Add ingests one document and returns its ID.
func (c *Corpus) Add(tokens []string) int {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	for t := range tf {
		c.df[t]++
	}
	c.docs = append(c.docs, tf)
	c.lens = append(c.lens, len(tokens))
	return len(c.docs) - 1
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// TF returns the normalised term frequency of term in doc id.
func (c *Corpus) TF(id int, term string) float64 {
	if id < 0 || id >= len(c.docs) || c.lens[id] == 0 {
		return 0
	}
	return float64(c.docs[id][term]) / float64(c.lens[id])
}

// IDF returns the smoothed inverse document frequency of term.
func (c *Corpus) IDF(term string) float64 {
	n := len(c.docs)
	if n == 0 {
		return 0
	}
	return math.Log(float64(1+n) / float64(1+c.df[term]))
}

// TFIDF returns tf·idf of term in doc id.
func (c *Corpus) TFIDF(id int, term string) float64 {
	return c.TF(id, term) * c.IDF(term)
}

// TermScore pairs a term with its score.
type TermScore struct {
	Term  string
	Score float64
}

// TopTerms returns the k highest-TF-IDF terms of doc id, ties broken
// alphabetically for determinism.
func (c *Corpus) TopTerms(id, k int) []TermScore {
	if id < 0 || id >= len(c.docs) || k <= 0 {
		return nil
	}
	scores := make([]TermScore, 0, len(c.docs[id]))
	for term := range c.docs[id] {
		scores = append(scores, TermScore{Term: term, Score: c.TFIDF(id, term)})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Term < scores[j].Term
	})
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}
