package tfidf

import (
	"math"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Big Earthquake in Seoul!! RT @user http://x.co #quake")
	want := map[string]bool{"big": true, "earthquake": true, "seoul": true, "user": true, "http": true, "co": true, "quake": true}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected token %q", tok)
		}
	}
	for _, tok := range got {
		if tok == "in" || tok == "rt" {
			t.Errorf("stopword %q survived", tok)
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("a I")) != 0 {
		t.Error("degenerate inputs should tokenize to nothing")
	}
}

func TestTFIDFDiscriminates(t *testing.T) {
	c := NewCorpus()
	// "earthquake" only in doc 0; "coffee" everywhere.
	d0 := c.Add(Tokenize("earthquake shaking earthquake coffee"))
	c.Add(Tokenize("coffee lunch subway"))
	c.Add(Tokenize("coffee movie night"))
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	eq := c.TFIDF(d0, "earthquake")
	cf := c.TFIDF(d0, "coffee")
	if eq <= cf {
		t.Fatalf("earthquake tfidf %v should exceed coffee %v", eq, cf)
	}
	top := c.TopTerms(d0, 2)
	if len(top) != 2 || top[0].Term != "earthquake" {
		t.Fatalf("TopTerms = %v", top)
	}
}

func TestTFIDFEdgeCases(t *testing.T) {
	c := NewCorpus()
	if c.TFIDF(0, "x") != 0 {
		t.Fatal("empty corpus should score 0")
	}
	id := c.Add(nil)
	if c.TF(id, "x") != 0 {
		t.Fatal("empty doc TF should be 0")
	}
	if got := c.TopTerms(id, 5); len(got) != 0 {
		t.Fatalf("empty doc TopTerms = %v", got)
	}
	if got := c.TopTerms(-1, 5); got != nil {
		t.Fatalf("bad id TopTerms = %v", got)
	}
	if got := c.TopTerms(id, 0); got != nil {
		t.Fatalf("k=0 TopTerms = %v", got)
	}
}

func TestIDFMonotone(t *testing.T) {
	c := NewCorpus()
	c.Add([]string{"rare", "common"})
	c.Add([]string{"common"})
	c.Add([]string{"common"})
	if c.IDF("rare") <= c.IDF("common") {
		t.Fatal("rarer term should have higher IDF")
	}
	if c.IDF("absent") <= c.IDF("rare") {
		t.Fatal("absent term should have the highest IDF")
	}
}

func TestTopTermsDeterministicTies(t *testing.T) {
	c := NewCorpus()
	id := c.Add([]string{"beta", "alpha"}) // same tf, same idf
	t1 := c.TopTerms(id, 2)
	t2 := c.TopTerms(id, 2)
	if t1[0].Term != "alpha" || t2[0].Term != "alpha" {
		t.Fatalf("tie-break not alphabetical: %v vs %v", t1, t2)
	}
}

func TestTFNormalised(t *testing.T) {
	c := NewCorpus()
	id := c.Add([]string{"x", "x", "y", "z"})
	if got := c.TF(id, "x"); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TF = %v", got)
	}
}
