package geo

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned bounding rectangle in degree space. STIR operates
// on Korea-scale extents, so rectangles never straddle the antimeridian.
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// RectAround returns a rectangle roughly radiusKm around center. It is a
// conservative (slightly over-sized) box suitable for index probes.
func RectAround(center Point, radiusKm float64) Rect {
	dLat := radiusKm / 110.574 * 1.01 // km per degree latitude, 1% slack
	// Width must hold at the box's extreme latitude, where a degree of
	// longitude is shortest; evaluate the cosine there, with slack.
	extremeLat := math.Min(math.Abs(center.Lat)+dLat, 89.9)
	cos := math.Cos(extremeLat * math.Pi / 180)
	if cos < 0.001 {
		cos = 0.001
	}
	dLon := radiusKm / (111.320 * cos) * 1.01
	return Rect{
		MinLat: math.Max(center.Lat-dLat, -90),
		MaxLat: math.Min(center.Lat+dLat, 90),
		MinLon: center.Lon - dLon,
		MaxLon: center.Lon + dLon,
	}
}

// Valid reports whether the rectangle is non-inverted.
func (r Rect) Valid() bool {
	return r.MinLat <= r.MaxLat && r.MinLon <= r.MaxLon
}

// String renders the rect for debugging.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4f,%.4f]..[%.4f,%.4f]", r.MinLat, r.MinLon, r.MaxLat, r.MaxLon)
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinLat >= r.MinLat && s.MaxLat <= r.MaxLat &&
		s.MinLon >= r.MinLon && s.MaxLon <= r.MaxLon
}

// Intersects reports whether r and s overlap (boundaries touching counts).
func (r Rect) Intersects(s Rect) bool {
	return r.MinLat <= s.MaxLat && s.MinLat <= r.MaxLat &&
		r.MinLon <= s.MaxLon && s.MinLon <= r.MaxLon
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, s.MinLat),
		MinLon: math.Min(r.MinLon, s.MinLon),
		MaxLat: math.Max(r.MaxLat, s.MaxLat),
		MaxLon: math.Max(r.MaxLon, s.MaxLon),
	}
}

// Extend returns r grown to include p.
func (r Rect) Extend(p Point) Rect {
	return r.Union(Rect{MinLat: p.Lat, MaxLat: p.Lat, MinLon: p.Lon, MaxLon: p.Lon})
}

// Area returns the rectangle's area in square degrees; used as the R-tree
// split heuristic, not as a physical area.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

// Margin returns half the perimeter in degrees.
func (r Rect) Margin() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxLat - r.MinLat) + (r.MaxLon - r.MinLon)
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// DistanceSqDeg returns the squared degree-space distance from p to the
// nearest point of r (zero if p is inside). Degree-space is fine for the
// nearest-neighbour ordering the R-tree needs at city scale.
func (r Rect) DistanceSqDeg(p Point) float64 {
	dLat := 0.0
	switch {
	case p.Lat < r.MinLat:
		dLat = r.MinLat - p.Lat
	case p.Lat > r.MaxLat:
		dLat = p.Lat - r.MaxLat
	}
	dLon := 0.0
	switch {
	case p.Lon < r.MinLon:
		dLon = r.MinLon - p.Lon
	case p.Lon > r.MaxLon:
		dLon = p.Lon - r.MaxLon
	}
	return dLat*dLat + dLon*dLon
}
