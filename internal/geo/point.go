// Package geo provides geodesy primitives used throughout STIR: geographic
// points, great-circle distance, bearings, bounding rectangles and simple
// polygon operations.
//
// All latitudes and longitudes are in decimal degrees (WGS-84); distances are
// in kilometres unless stated otherwise.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0088

// Point is a geographic coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, -90..90
	Lon float64 // longitude, -180..180
}

// ErrInvalidCoordinate reports a latitude or longitude out of range.
var ErrInvalidCoordinate = errors.New("geo: coordinate out of range")

// NewPoint validates lat/lon and returns a Point.
func NewPoint(lat, lon float64) (Point, error) {
	p := Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return Point{}, fmt.Errorf("%w: lat=%v lon=%v", ErrInvalidCoordinate, lat, lon)
	}
	return p, nil
}

// Valid reports whether the point lies in the legal WGS-84 ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 &&
		p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String renders the point as "lat,lon" with six decimals, the precision the
// paper's tweets carry.
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon)
}

// Radians returns the point converted to radians.
func (p Point) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// DistanceKm returns the great-circle (haversine) distance to q in km.
func (p Point) DistanceKm(q Point) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// BearingDeg returns the initial great-circle bearing from p to q in degrees
// clockwise from north, normalised to [0,360).
func (p Point) BearingDeg(q Point) float64 {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by travelling distKm from p along the
// given initial bearing (degrees clockwise from north).
func (p Point) Destination(bearingDeg, distKm float64) Point {
	lat1, lon1 := p.Radians()
	brng := bearingDeg * math.Pi / 180
	d := distKm / EarthRadiusKm
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	out := Point{Lat: lat2 * 180 / math.Pi, Lon: lon2 * 180 / math.Pi}
	out.Lon = NormalizeLon(out.Lon)
	return out
}

// NormalizeLon wraps a longitude into [-180,180].
func NormalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Midpoint returns the great-circle midpoint of p and q.
func (p Point) Midpoint(q Point) Point {
	lat1, lon1 := p.Radians()
	lat2, lon2 := q.Radians()
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(
		math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by),
	)
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return Point{Lat: lat3 * 180 / math.Pi, Lon: NormalizeLon(lon3 * 180 / math.Pi)}
}

// Centroid returns the arithmetic centroid of pts in coordinate space. It is
// adequate for the city-scale extents STIR deals with. Centroid of no points
// is the zero Point.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sLat, sLon float64
	for _, p := range pts {
		sLat += p.Lat
		sLon += p.Lon
	}
	n := float64(len(pts))
	return Point{Lat: sLat / n, Lon: sLon / n}
}

// WeightedCentroid returns the weighted centroid of pts; weights must be the
// same length as pts. Zero total weight yields the zero Point.
func WeightedCentroid(pts []Point, weights []float64) (Point, error) {
	if len(pts) != len(weights) {
		return Point{}, fmt.Errorf("geo: %d points but %d weights", len(pts), len(weights))
	}
	var sLat, sLon, sW float64
	for i, p := range pts {
		w := weights[i]
		if w < 0 {
			return Point{}, fmt.Errorf("geo: negative weight %v at %d", w, i)
		}
		sLat += p.Lat * w
		sLon += p.Lon * w
		sW += w
	}
	if sW == 0 {
		return Point{}, nil
	}
	return Point{Lat: sLat / sW, Lon: sLon / sW}, nil
}

// GeographicMedian returns the point minimising the sum of great-circle
// distances to pts (Weiszfeld iteration in coordinate space). Used by the
// Toretter-style estimator as the "estimated median" from Fig. 2.
func GeographicMedian(pts []Point, iterations int) Point {
	if len(pts) == 0 {
		return Point{}
	}
	if len(pts) == 1 {
		return pts[0]
	}
	cur := Centroid(pts)
	for it := 0; it < iterations; it++ {
		var sLat, sLon, sW float64
		coincident := false
		for _, p := range pts {
			d := cur.DistanceKm(p)
			if d < 1e-9 {
				coincident = true
				continue
			}
			w := 1 / d
			sLat += p.Lat * w
			sLon += p.Lon * w
			sW += w
		}
		if sW == 0 {
			// Every point coincides with the current estimate.
			return cur
		}
		next := Point{Lat: sLat / sW, Lon: sLon / sW}
		if coincident {
			// Dampen toward current estimate to avoid oscillation.
			next = Point{Lat: (next.Lat + cur.Lat) / 2, Lon: (next.Lon + cur.Lon) / 2}
		}
		if cur.DistanceKm(next) < 1e-6 {
			return next
		}
		cur = next
	}
	return cur
}
