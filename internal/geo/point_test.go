package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// seoul and busan are ~325 km apart; reference distance from published
// great-circle calculators.
var (
	seoul = Point{Lat: 37.5665, Lon: 126.9780}
	busan = Point{Lat: 35.1796, Lon: 129.0756}
)

func TestNewPointValidation(t *testing.T) {
	cases := []struct {
		name     string
		lat, lon float64
		ok       bool
	}{
		{"seoul", 37.5665, 126.9780, true},
		{"north pole", 90, 0, true},
		{"south pole", -90, 0, true},
		{"dateline", 0, 180, true},
		{"anti dateline", 0, -180, true},
		{"lat too high", 90.0001, 0, false},
		{"lat too low", -91, 0, false},
		{"lon too high", 0, 181, false},
		{"lon too low", 0, -180.5, false},
		{"nan lat", math.NaN(), 0, false},
		{"nan lon", 0, math.NaN(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPoint(tc.lat, tc.lon)
			if (err == nil) != tc.ok {
				t.Fatalf("NewPoint(%v,%v) err=%v, want ok=%v", tc.lat, tc.lon, err, tc.ok)
			}
		})
	}
}

func TestDistanceKnown(t *testing.T) {
	d := seoul.DistanceKm(busan)
	if d < 315 || d > 335 {
		t.Fatalf("Seoul-Busan distance = %.1f km, want ~325", d)
	}
	if got := seoul.DistanceKm(seoul); got != 0 {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestDistanceAntipodal(t *testing.T) {
	a := Point{Lat: 0, Lon: 0}
	b := Point{Lat: 0, Lon: 180}
	half := math.Pi * EarthRadiusKm
	if d := a.DistanceKm(b); math.Abs(d-half) > 1 {
		t.Fatalf("antipodal distance = %.2f, want %.2f", d, half)
	}
}

func randPoint(r *rand.Rand) Point {
	return Point{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPoint(r), randPoint(r)
		d1, d2 := a.DistanceKm(b), b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randPoint(r), randPoint(r), randPoint(r)
		// Allow a tiny epsilon for floating error.
		return a.DistanceKm(c) <= a.DistanceKm(b)+b.DistanceKm(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Stay away from the poles where bearings degenerate.
		p := Point{Lat: r.Float64()*120 - 60, Lon: r.Float64()*360 - 180}
		bearing := r.Float64() * 360
		dist := r.Float64() * 500 // up to 500 km
		q := p.Destination(bearing, dist)
		return math.Abs(p.DistanceKm(q)-dist) < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	origin := Point{Lat: 0, Lon: 0}
	cases := []struct {
		to   Point
		want float64
	}{
		{Point{Lat: 1, Lon: 0}, 0},
		{Point{Lat: 0, Lon: 1}, 90},
		{Point{Lat: -1, Lon: 0}, 180},
		{Point{Lat: 0, Lon: -1}, 270},
	}
	for _, tc := range cases {
		if got := origin.BearingDeg(tc.to); math.Abs(got-tc.want) > 0.01 {
			t.Errorf("bearing to %v = %.2f, want %.2f", tc.to, got, tc.want)
		}
	}
}

func TestMidpointIsEquidistantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Point{Lat: r.Float64()*120 - 60, Lon: r.Float64()*300 - 150}
		// Second point within ~200 km, STIR's working scale.
		b := a.Destination(r.Float64()*360, r.Float64()*200)
		m := a.Midpoint(b)
		d1, d2 := a.DistanceKm(m), b.DistanceKm(m)
		return math.Abs(d1-d2) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Fatalf("empty centroid = %v", got)
	}
	pts := []Point{{Lat: 0, Lon: 0}, {Lat: 2, Lon: 4}}
	got := Centroid(pts)
	if got.Lat != 1 || got.Lon != 2 {
		t.Fatalf("centroid = %v, want 1,2", got)
	}
}

func TestWeightedCentroid(t *testing.T) {
	pts := []Point{{Lat: 0, Lon: 0}, {Lat: 10, Lon: 10}}
	got, err := WeightedCentroid(pts, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lat-7.5) > 1e-12 || math.Abs(got.Lon-7.5) > 1e-12 {
		t.Fatalf("weighted centroid = %v, want 7.5,7.5", got)
	}

	if _, err := WeightedCentroid(pts, []float64{1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := WeightedCentroid(pts, []float64{1, -1}); err == nil {
		t.Fatal("negative weight not rejected")
	}
	zero, err := WeightedCentroid(pts, []float64{0, 0})
	if err != nil || zero != (Point{}) {
		t.Fatalf("zero-weight centroid = %v err=%v", zero, err)
	}
}

func TestGeographicMedianBasics(t *testing.T) {
	if got := GeographicMedian(nil, 50); got != (Point{}) {
		t.Fatalf("empty median = %v", got)
	}
	one := []Point{seoul}
	if got := GeographicMedian(one, 50); got != seoul {
		t.Fatalf("single median = %v", got)
	}
	// Median of a cluster plus one outlier should stay near the cluster,
	// unlike the centroid.
	cluster := []Point{
		{Lat: 37.50, Lon: 127.00},
		{Lat: 37.51, Lon: 127.01},
		{Lat: 37.49, Lon: 126.99},
		{Lat: 37.50, Lon: 127.02},
	}
	outlier := Point{Lat: 35.0, Lon: 129.0}
	med := GeographicMedian(append(cluster, outlier), 100)
	c := Centroid(cluster)
	if med.DistanceKm(c) > 5 {
		t.Fatalf("median %.4v strayed %.1f km from cluster", med, med.DistanceKm(c))
	}
}

func TestGeographicMedianCoincident(t *testing.T) {
	pts := []Point{seoul, seoul, seoul}
	med := GeographicMedian(pts, 50)
	if med.DistanceKm(seoul) > 0.01 {
		t.Fatalf("median of identical points = %v", med)
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, -180}, {181, -179}, {-181, 179}, {540, 180}, {361, 1},
	}
	for _, tc := range cases {
		if got := NormalizeLon(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("NormalizeLon(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
