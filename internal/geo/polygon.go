package geo

// Polygon is a simple (non-self-intersecting) ring of vertices in degree
// space. The ring may be given in either winding order and need not be
// explicitly closed; Contains treats the last vertex as joined to the first.
type Polygon struct {
	Vertices []Point
	bounds   Rect
	hasB     bool
}

// NewPolygon builds a polygon from vertices, precomputing its bounds.
func NewPolygon(vertices []Point) *Polygon {
	p := &Polygon{Vertices: vertices}
	p.Bounds()
	return p
}

// Bounds returns (computing once) the polygon's bounding rectangle.
func (pg *Polygon) Bounds() Rect {
	if pg.hasB {
		return pg.bounds
	}
	if len(pg.Vertices) == 0 {
		pg.hasB = true
		return pg.bounds
	}
	r := Rect{
		MinLat: pg.Vertices[0].Lat, MaxLat: pg.Vertices[0].Lat,
		MinLon: pg.Vertices[0].Lon, MaxLon: pg.Vertices[0].Lon,
	}
	for _, v := range pg.Vertices[1:] {
		r = r.Extend(v)
	}
	pg.bounds = r
	pg.hasB = true
	return r
}

// Contains reports whether p lies inside the polygon using the even-odd
// ray-casting rule. Points exactly on an edge may land on either side; STIR
// only uses polygons for synthetic district shapes where that is acceptable.
func (pg *Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	if !pg.Bounds().Contains(p) {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			cross := (vj.Lon-vi.Lon)*(p.Lat-vi.Lat)/(vj.Lat-vi.Lat) + vi.Lon
			if p.Lon < cross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Centroid returns the area-weighted centroid of the polygon in degree space,
// falling back to the vertex centroid for degenerate rings.
func (pg *Polygon) Centroid() Point {
	n := len(pg.Vertices)
	if n == 0 {
		return Point{}
	}
	if n < 3 {
		return Centroid(pg.Vertices)
	}
	var a, cx, cy float64
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		f := vj.Lon*vi.Lat - vi.Lon*vj.Lat
		a += f
		cx += (vj.Lon + vi.Lon) * f
		cy += (vj.Lat + vi.Lat) * f
		j = i
	}
	if a == 0 {
		return Centroid(pg.Vertices)
	}
	a *= 0.5
	return Point{Lon: cx / (6 * a), Lat: cy / (6 * a)}
}

// RegularPolygonAround builds an n-gon of the given radius (km) centred on
// center. Synthetic district shapes use this.
func RegularPolygonAround(center Point, radiusKm float64, n int) *Polygon {
	if n < 3 {
		n = 3
	}
	verts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		bearing := float64(i) * 360 / float64(n)
		verts = append(verts, center.Destination(bearing, radiusKm))
	}
	return NewPolygon(verts)
}
