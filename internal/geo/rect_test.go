package geo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectOrdersCorners(t *testing.T) {
	r := NewRect(Point{Lat: 5, Lon: 10}, Point{Lat: -5, Lon: -10})
	want := Rect{MinLat: -5, MinLon: -10, MaxLat: 5, MaxLon: 10}
	if r != want {
		t.Fatalf("NewRect = %+v, want %+v", r, want)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // boundary counts
		{Point{10, 10}, true}, // boundary counts
		{Point{-0.1, 5}, false},
		{Point{5, 10.1}, false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersectsAndUnion(t *testing.T) {
	a := Rect{MinLat: 0, MinLon: 0, MaxLat: 5, MaxLon: 5}
	b := Rect{MinLat: 4, MinLon: 4, MaxLat: 8, MaxLon: 8}
	c := Rect{MinLat: 6, MinLon: 6, MaxLat: 7, MaxLon: 7}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("a/b should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("a/c should not intersect")
	}
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Fatalf("union %v does not cover inputs", u)
	}
	// Touching edges intersect.
	d := Rect{MinLat: 5, MinLon: 0, MaxLat: 6, MaxLon: 5}
	if !a.Intersects(d) {
		t.Fatal("touching rects should intersect")
	}
}

func TestRectAroundContainsCircle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Point{Lat: r.Float64()*120 - 60, Lon: r.Float64()*300 - 150}
		radius := 1 + r.Float64()*100
		box := RectAround(c, radius)
		// Sample points on the circle; all must be inside the box.
		for i := 0; i < 12; i++ {
			p := c.Destination(float64(i)*30, radius)
			if !box.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionPropertyContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewRect(randPoint(r), randPoint(r))
		b := NewRect(randPoint(r), randPoint(r))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) && u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtend(t *testing.T) {
	r := Rect{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	r = r.Extend(Point{Lat: 5, Lon: -3})
	want := Rect{MinLat: 0, MinLon: -3, MaxLat: 5, MaxLon: 1}
	if r != want {
		t.Fatalf("Extend = %+v, want %+v", r, want)
	}
}

func TestDistanceSqDeg(t *testing.T) {
	r := Rect{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	if d := r.DistanceSqDeg(Point{5, 5}); d != 0 {
		t.Fatalf("inside distance = %v", d)
	}
	if d := r.DistanceSqDeg(Point{0, -3}); d != 9 {
		t.Fatalf("left distance = %v, want 9", d)
	}
	if d := r.DistanceSqDeg(Point{13, 14}); d != 9+16 {
		t.Fatalf("corner distance = %v, want 25", d)
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := Rect{MinLat: 1, MinLon: 2, MaxLat: 3, MaxLon: 6}
	if got := r.Area(); got != 8 {
		t.Fatalf("Area = %v, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Fatalf("Margin = %v, want 6", got)
	}
	if c := r.Center(); c.Lat != 2 || c.Lon != 4 {
		t.Fatalf("Center = %v", c)
	}
	bad := Rect{MinLat: 3, MaxLat: 1}
	if bad.Area() != 0 || bad.Margin() != 0 {
		t.Fatal("invalid rect should have zero area/margin")
	}
}
