package geo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Known geohash vectors (from the original geohash.org scheme).
func TestEncodeKnownVectors(t *testing.T) {
	cases := []struct {
		lat, lon  float64
		precision int
		want      string
	}{
		{57.64911, 10.40744, 11, "u4pruydqqvj"},
		{37.5665, 126.9780, 5, "wydm9"}, // Seoul city hall
		{0, 0, 1, "s"},
		{-90, -180, 4, "0000"},
	}
	for _, tc := range cases {
		got := Encode(Point{Lat: tc.lat, Lon: tc.lon}, tc.precision)
		if got != tc.want {
			t.Errorf("Encode(%v,%v,%d) = %q, want %q", tc.lat, tc.lon, tc.precision, got, tc.want)
		}
	}
}

func TestEncodePrecisionClamp(t *testing.T) {
	p := Point{Lat: 37.5, Lon: 127}
	if got := Encode(p, 0); len(got) != 1 {
		t.Fatalf("precision 0 should clamp to 1, got %q", got)
	}
	if got := Encode(p, 99); len(got) != 12 {
		t.Fatalf("precision 99 should clamp to 12, got %q", got)
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoint(r)
		precision := 1 + r.Intn(12)
		h := Encode(p, precision)
		bounds, err := DecodeBounds(h)
		if err != nil {
			return false
		}
		// The original point must be inside its own cell.
		if !bounds.Contains(p) {
			return false
		}
		// The cell centre must re-encode to the same hash.
		c, err := Decode(h)
		if err != nil {
			return false
		}
		return Encode(c, precision) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range []string{"", "a!", "il"} { // i and l are not in base32
		if _, err := DecodeBounds(bad); err == nil {
			t.Errorf("DecodeBounds(%q) accepted", bad)
		}
	}
	// Uppercase is tolerated.
	if _, err := DecodeBounds("WYDM9"); err != nil {
		t.Fatalf("uppercase rejected: %v", err)
	}
}

func TestPrecisionNesting(t *testing.T) {
	p := Point{Lat: 37.5172, Lon: 126.8664}
	long := Encode(p, 9)
	for precision := 1; precision < 9; precision++ {
		short := Encode(p, precision)
		if !strings.HasPrefix(long, short) {
			t.Fatalf("precision %d hash %q is not a prefix of %q", precision, short, long)
		}
	}
}

func TestNeighbors(t *testing.T) {
	h := Encode(Point{Lat: 37.5, Lon: 127}, 6)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("mid-latitude cell should have 8 neighbours, got %d: %v", len(ns), ns)
	}
	seen := map[string]bool{}
	for _, n := range ns {
		if n == h {
			t.Fatal("cell listed as its own neighbour")
		}
		if seen[n] {
			t.Fatalf("duplicate neighbour %q", n)
		}
		seen[n] = true
		if len(n) != len(h) {
			t.Fatalf("neighbour %q has different precision", n)
		}
		// Each neighbour's cell must touch the original cell.
		nb, err := DecodeBounds(n)
		if err != nil {
			t.Fatal(err)
		}
		hb, _ := DecodeBounds(h)
		if !hb.Intersects(nb) {
			t.Fatalf("neighbour %q does not touch %q", n, h)
		}
	}
	if _, err := Neighbors("!"); err == nil {
		t.Fatal("invalid hash accepted")
	}
}

func TestNeighborsNearPole(t *testing.T) {
	h := Encode(Point{Lat: 89.99, Lon: 0}, 4)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) >= 8 {
		t.Fatalf("polar cell should drop out-of-range neighbours, got %d", len(ns))
	}
}
