package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func square(side float64) *Polygon {
	return NewPolygon([]Point{
		{Lat: 0, Lon: 0}, {Lat: 0, Lon: side}, {Lat: side, Lon: side}, {Lat: side, Lon: 0},
	})
}

func TestPolygonContainsSquare(t *testing.T) {
	sq := square(10)
	inside := []Point{{5, 5}, {1, 9}, {9.9, 0.1}}
	outside := []Point{{-1, 5}, {5, 11}, {10.5, 10.5}, {-0.001, -0.001}}
	for _, p := range inside {
		if !sq.Contains(p) {
			t.Errorf("point %v should be inside", p)
		}
	}
	for _, p := range outside {
		if sq.Contains(p) {
			t.Errorf("point %v should be outside", p)
		}
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if NewPolygon(nil).Contains(Point{}) {
		t.Fatal("empty polygon contains nothing")
	}
	line := NewPolygon([]Point{{0, 0}, {1, 1}})
	if line.Contains(Point{0.5, 0.5}) {
		t.Fatal("2-vertex polygon contains nothing")
	}
}

func TestPolygonConcave(t *testing.T) {
	// A "U" shape: the notch at the top-middle is outside.
	u := NewPolygon([]Point{
		{0, 0}, {0, 6}, {6, 6}, {6, 4}, {2, 4}, {2, 2}, {6, 2}, {6, 0},
	})
	if !u.Contains(Point{1, 3}) {
		t.Error("bottom of U should be inside")
	}
	if u.Contains(Point{4, 3}) {
		t.Error("notch of U should be outside")
	}
	if !u.Contains(Point{5, 5}) {
		t.Error("right arm of U should be inside")
	}
}

func TestPolygonBounds(t *testing.T) {
	sq := square(10)
	b := sq.Bounds()
	want := Rect{MinLat: 0, MinLon: 0, MaxLat: 10, MaxLon: 10}
	if b != want {
		t.Fatalf("bounds = %+v, want %+v", b, want)
	}
}

func TestPolygonCentroidSquare(t *testing.T) {
	c := square(10).Centroid()
	if math.Abs(c.Lat-5) > 1e-9 || math.Abs(c.Lon-5) > 1e-9 {
		t.Fatalf("centroid = %v, want 5,5", c)
	}
}

func TestRegularPolygonAroundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		center := Point{Lat: r.Float64()*100 - 50, Lon: r.Float64()*300 - 150}
		radius := 1 + r.Float64()*50
		n := 3 + r.Intn(10)
		pg := RegularPolygonAround(center, radius, n)
		if len(pg.Vertices) != n {
			return false
		}
		// Center is inside, vertices are at the given radius.
		if !pg.Contains(center) {
			return false
		}
		for _, v := range pg.Vertices {
			if math.Abs(center.DistanceKm(v)-radius) > 0.5 {
				return false
			}
		}
		// A point well beyond the radius is outside.
		far := center.Destination(45, radius*3)
		return !pg.Contains(far)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularPolygonMinVertices(t *testing.T) {
	pg := RegularPolygonAround(Point{0, 0}, 5, 1)
	if len(pg.Vertices) != 3 {
		t.Fatalf("n<3 should clamp to triangle, got %d vertices", len(pg.Vertices))
	}
}
