package geo

import (
	"errors"
	"strings"
)

// Geohash encoding (the standard base-32 interleaved-bit scheme). STIR uses
// geohashes as compact spatial keys: cache keys in the geocoding client,
// cell identifiers in exports, and prefix-based proximity grouping.

const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var geohashDecode = func() map[byte]int {
	m := make(map[byte]int, 32)
	for i := 0; i < len(geohashBase32); i++ {
		m[geohashBase32[i]] = i
	}
	return m
}()

// ErrBadGeohash reports an invalid geohash string.
var ErrBadGeohash = errors.New("geo: invalid geohash")

// Encode returns the geohash of p at the given precision (characters).
// Precision is clamped to [1,12]; 12 characters resolve to under 4 cm.
func Encode(p Point, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	var (
		latMin, latMax = -90.0, 90.0
		lonMin, lonMax = -180.0, 180.0
		even           = true
		bit            = 0
		ch             = 0
		b              strings.Builder
	)
	for b.Len() < precision {
		if even {
			mid := (lonMin + lonMax) / 2
			if p.Lon >= mid {
				ch |= 1 << (4 - bit)
				lonMin = mid
			} else {
				lonMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				ch |= 1 << (4 - bit)
				latMin = mid
			} else {
				latMax = mid
			}
		}
		even = !even
		if bit < 4 {
			bit++
		} else {
			b.WriteByte(geohashBase32[ch])
			bit, ch = 0, 0
		}
	}
	return b.String()
}

// DecodeBounds returns the bounding rectangle of a geohash cell.
func DecodeBounds(hash string) (Rect, error) {
	if hash == "" {
		return Rect{}, ErrBadGeohash
	}
	var (
		latMin, latMax = -90.0, 90.0
		lonMin, lonMax = -180.0, 180.0
		even           = true
	)
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		cd, ok := geohashDecode[c]
		if !ok {
			return Rect{}, ErrBadGeohash
		}
		for bit := 4; bit >= 0; bit-- {
			set := cd&(1<<bit) != 0
			if even {
				mid := (lonMin + lonMax) / 2
				if set {
					lonMin = mid
				} else {
					lonMax = mid
				}
			} else {
				mid := (latMin + latMax) / 2
				if set {
					latMin = mid
				} else {
					latMax = mid
				}
			}
			even = !even
		}
	}
	return Rect{MinLat: latMin, MinLon: lonMin, MaxLat: latMax, MaxLon: lonMax}, nil
}

// Decode returns the centre point of a geohash cell.
func Decode(hash string) (Point, error) {
	r, err := DecodeBounds(hash)
	if err != nil {
		return Point{}, err
	}
	return r.Center(), nil
}

// Neighbors returns the up-to-eight adjacent cells of a geohash at the same
// precision, clockwise from north. Cells that would cross a pole are
// omitted.
func Neighbors(hash string) ([]string, error) {
	r, err := DecodeBounds(hash)
	if err != nil {
		return nil, err
	}
	c := r.Center()
	dLat := r.MaxLat - r.MinLat
	dLon := r.MaxLon - r.MinLon
	offsets := []struct{ dLat, dLon float64 }{
		{dLat, 0}, {dLat, dLon}, {0, dLon}, {-dLat, dLon},
		{-dLat, 0}, {-dLat, -dLon}, {0, -dLon}, {dLat, dLon * -0}, // last fixed below
	}
	offsets[7] = struct{ dLat, dLon float64 }{dLat, -dLon}
	var out []string
	seen := map[string]bool{hash: true}
	for _, o := range offsets {
		lat := c.Lat + o.dLat
		if lat > 90 || lat < -90 {
			continue
		}
		p := Point{Lat: lat, Lon: NormalizeLon(c.Lon + o.dLon)}
		n := Encode(p, len(hash))
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out, nil
}
