// Package core implements the paper's contribution: the text-based grouping
// method over Twitter's spatial attributes. For every tweet of a user the
// method forms the string
//
//	userid#stateProfile#countyProfile#stateTweet#countyTweet
//
// (§III-B, Table I), merges identical strings counting multiplicity, orders
// them by count (Table II), finds the matched string — the one whose tweet
// district equals the profile district — and classifies the user into the
// Top-k group where k is the matched string's rank (Top-1, Top-2, …, Top-+
// for k ≥ 6, or None when no tweet was posted from the profile district).
// Per-group statistics over a dataset reproduce the paper's Figures 6-7, and
// the match share doubles as the reliability weight the paper proposes for
// event-location estimation.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Sep is the property delimiter of location strings (the paper's '#').
const Sep = "#"

// Place is one administrative district reference at the granularity the
// paper groups by: <state> (province / metropolitan city) and <county>
// (si/gu/gun).
type Place struct {
	State  string
	County string
}

// Key renders the "state#county" fragment used inside location strings.
func (p Place) Key() string { return p.State + Sep + p.County }

// Zero reports whether the place is unset.
func (p Place) Zero() bool { return p.State == "" && p.County == "" }

// LocString is one parsed location string: which user, where their profile
// says they are, and where one tweet was actually posted from.
type LocString struct {
	UserID  int64
	Profile Place
	Tweet   Place
}

// Matched reports whether the tweet district equals the profile district —
// the paper's "matched string" condition.
func (l LocString) Matched() bool { return l.Profile == l.Tweet }

// String renders the five-field wire form from Table I.
func (l LocString) String() string {
	return strings.Join([]string{
		strconv.FormatInt(l.UserID, 10),
		l.Profile.State, l.Profile.County,
		l.Tweet.State, l.Tweet.County,
	}, Sep)
}

// ErrBadLocString reports a malformed location string.
var ErrBadLocString = errors.New("core: malformed location string")

// ParseLocString parses the five-field wire form. District names never
// contain '#', so a plain split suffices.
func ParseLocString(s string) (LocString, error) {
	parts := strings.Split(s, Sep)
	if len(parts) != 5 {
		return LocString{}, fmt.Errorf("%w: %d fields in %q", ErrBadLocString, len(parts), s)
	}
	id, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return LocString{}, fmt.Errorf("%w: user id %q", ErrBadLocString, parts[0])
	}
	for i, f := range parts[1:] {
		if strings.TrimSpace(f) == "" {
			return LocString{}, fmt.Errorf("%w: empty field %d in %q", ErrBadLocString, i+1, s)
		}
	}
	return LocString{
		UserID:  id,
		Profile: Place{State: parts[1], County: parts[2]},
		Tweet:   Place{State: parts[3], County: parts[4]},
	}, nil
}

// MergedString is a location string with its multiplicity after the merge
// step — one row of Table II.
type MergedString struct {
	LocString
	Count int
}

// String renders the "...#... (n)" display form of Table II.
func (m MergedString) String() string {
	return fmt.Sprintf("%s (%d)", m.LocString.String(), m.Count)
}
