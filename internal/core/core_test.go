package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var (
	yangcheon = Place{State: "Seoul", County: "Yangcheon-gu"}
	seodaemun = Place{State: "Seoul", County: "Seodaemun-gu"}
	jung      = Place{State: "Seoul", County: "Jung-gu"}
	uiwang    = Place{State: "Gyeonggi-do", County: "Uiwang-si"}
	seongnam  = Place{State: "Gyeonggi-do", County: "Seongnam-si"}
)

func TestLocStringRoundTrip(t *testing.T) {
	ls := LocString{UserID: 42, Profile: yangcheon, Tweet: jung}
	s := ls.String()
	want := "42#Seoul#Yangcheon-gu#Seoul#Jung-gu"
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
	back, err := ParseLocString(s)
	if err != nil || back != ls {
		t.Fatalf("roundtrip = %+v, %v", back, err)
	}
}

func TestParseLocStringErrors(t *testing.T) {
	bad := []string{
		"",
		"1#2#3",
		"x#Seoul#Yangcheon-gu#Seoul#Jung-gu",
		"1#Seoul#Yangcheon-gu#Seoul",
		"1#Seoul##Seoul#Jung-gu",
		"1#Seoul#Yangcheon-gu#Seoul#Jung-gu#extra",
	}
	for _, s := range bad {
		if _, err := ParseLocString(s); err == nil {
			t.Errorf("ParseLocString(%q) accepted", s)
		}
	}
}

// TestPaperTableExample reproduces Tables I and II exactly: the user with
// 4 strings of which 3 are matched lands in Top-1; user 71 whose matched
// string ranks second lands in Top-2.
func TestPaperTableExample(t *testing.T) {
	// User A: 3 tweets in Yangcheon-gu (profile), 2 in Jung-gu, 1 in
	// Seodaemun-gu — Table II row order (3), (2), (1).
	ua := BuildUserGrouping(1001, yangcheon, []Place{
		yangcheon, jung, yangcheon, seodaemun, jung, yangcheon,
	})
	if ua.Group != Top1 || ua.MatchedRank != 1 {
		t.Fatalf("user A group = %v rank %d, want Top-1 rank 1", ua.Group, ua.MatchedRank)
	}
	if ua.DistinctDistricts != 3 || ua.TotalTweets != 6 || ua.MatchedTweets != 3 {
		t.Fatalf("user A stats = %+v", ua)
	}
	wantOrder := []Place{yangcheon, jung, seodaemun}
	for i, m := range ua.Merged {
		if m.Tweet != wantOrder[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, m.Tweet, wantOrder[i])
		}
	}
	if got := ua.Merged[0].String(); !strings.HasSuffix(got, "(3)") {
		t.Fatalf("display form = %q", got)
	}

	// User 71: 3 tweets in Seongnam-si, 2 in Uiwang-si (profile) — matched
	// string ranks second.
	u71 := BuildUserGrouping(71, uiwang, []Place{seongnam, uiwang, seongnam, uiwang, seongnam})
	if u71.Group != Top2 || u71.MatchedRank != 2 {
		t.Fatalf("user 71 group = %v rank %d, want Top-2 rank 2", u71.Group, u71.MatchedRank)
	}
	if got := u71.MatchShare(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("user 71 match share = %v, want 0.4", got)
	}
}

func TestGroupOfRank(t *testing.T) {
	cases := []struct {
		rank int
		want Group
	}{
		{0, None}, {-3, None}, {1, Top1}, {2, Top2}, {3, Top3}, {4, Top4},
		{5, Top5}, {6, TopPlus}, {17, TopPlus},
	}
	for _, tc := range cases {
		if got := GroupOfRank(tc.rank); got != tc.want {
			t.Errorf("GroupOfRank(%d) = %v, want %v", tc.rank, got, tc.want)
		}
	}
}

func TestGroupStrings(t *testing.T) {
	want := []string{"Top-1", "Top-2", "Top-3", "Top-4", "Top-5", "Top-+", "None"}
	for i, g := range Groups() {
		if g.String() != want[i] {
			t.Errorf("group %d String = %q, want %q", i, g.String(), want[i])
		}
	}
	if Group(55).String() != "Group(55)" {
		t.Error("out-of-range group label")
	}
}

func TestNoneGroup(t *testing.T) {
	// Profile in Yangcheon-gu but every tweet elsewhere.
	u := BuildUserGrouping(7, yangcheon, []Place{jung, seodaemun, jung})
	if u.Group != None || u.MatchedRank != 0 || u.MatchedTweets != 0 {
		t.Fatalf("grouping = %+v, want None", u)
	}
	if u.MatchShare() != 0 {
		t.Fatal("None group should have zero match share")
	}
}

func TestEmptyTweets(t *testing.T) {
	u := BuildUserGrouping(7, yangcheon, nil)
	if u.Group != None || u.DistinctDistricts != 0 || u.TotalTweets != 0 {
		t.Fatalf("empty grouping = %+v", u)
	}
	if u.MatchShare() != 0 {
		t.Fatal("zero tweets must not divide by zero")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two districts with equal counts: order must be stable regardless of
	// input order.
	a := BuildUserGrouping(1, yangcheon, []Place{jung, seodaemun})
	b := BuildUserGrouping(1, yangcheon, []Place{seodaemun, jung})
	for i := range a.Merged {
		if a.Merged[i].Tweet != b.Merged[i].Tweet {
			t.Fatalf("tie-break unstable: %v vs %v", a.Merged[i].Tweet, b.Merged[i].Tweet)
		}
	}
}

func TestBuildFromStrings(t *testing.T) {
	raw := []string{
		"1001#Seoul#Yangcheon-gu#Seoul#Yangcheon-gu",
		"1001#Seoul#Yangcheon-gu#Seoul#Jung-gu",
		"1001#Seoul#Yangcheon-gu#Seoul#Yangcheon-gu",
		"71#Gyeonggi-do#Uiwang-si#Gyeonggi-do#Seongnam-si",
		"71#Gyeonggi-do#Uiwang-si#Gyeonggi-do#Uiwang-si",
		"71#Gyeonggi-do#Uiwang-si#Gyeonggi-do#Seongnam-si",
	}
	users, err := BuildFromStrings(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Fatalf("users = %d", len(users))
	}
	if users[0].UserID != 1001 || users[0].Group != Top1 {
		t.Fatalf("user[0] = %+v", users[0])
	}
	if users[1].UserID != 71 || users[1].Group != Top2 {
		t.Fatalf("user[1] = %+v", users[1])
	}
}

func TestBuildFromStringsConflictingProfile(t *testing.T) {
	raw := []string{
		"1#Seoul#Yangcheon-gu#Seoul#Jung-gu",
		"1#Seoul#Jung-gu#Seoul#Jung-gu",
	}
	if _, err := BuildFromStrings(raw); err == nil {
		t.Fatal("conflicting profile places accepted")
	}
}

func TestBuildFromStringsParseError(t *testing.T) {
	if _, err := BuildFromStrings([]string{"garbage"}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAnalyze(t *testing.T) {
	users := []UserGrouping{
		BuildUserGrouping(1, yangcheon, []Place{yangcheon, yangcheon, jung}), // Top-1
		BuildUserGrouping(2, yangcheon, []Place{yangcheon}),                  // Top-1
		BuildUserGrouping(3, uiwang, []Place{seongnam, seongnam, uiwang}),    // Top-2
		BuildUserGrouping(4, yangcheon, []Place{jung, seodaemun}),            // None
		BuildUserGrouping(5, yangcheon, nil),                                 // skipped (no geo)
	}
	a := Analyze(users)
	if a.Users != 4 {
		t.Fatalf("Users = %d, want 4 (one skipped)", a.Users)
	}
	if a.Tweets != 9 {
		t.Fatalf("Tweets = %d, want 9", a.Tweets)
	}
	if got := a.Stat(Top1).Users; got != 2 {
		t.Fatalf("Top1 users = %d", got)
	}
	if got := a.Stat(Top1).UserShare; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Top1 share = %v", got)
	}
	if got := a.Stat(Top2).Users; got != 1 {
		t.Fatalf("Top2 users = %d", got)
	}
	if got := a.Stat(None).Users; got != 1 {
		t.Fatalf("None users = %d", got)
	}
	// Avg districts: Top1 = (2+1)/2 = 1.5.
	if got := a.Stat(Top1).AvgDistinctDistricts; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Top1 avg districts = %v", got)
	}
	// Overall avg districts: (2+1+2+2)/4 = 1.75.
	if math.Abs(a.OverallAvgDistricts-1.75) > 1e-12 {
		t.Fatalf("overall avg districts = %v", a.OverallAvgDistricts)
	}
	// Matched tweets: 2 + 1 + 1 + 0 = 4 of 9.
	if math.Abs(a.OverallMatchShare-4.0/9) > 1e-12 {
		t.Fatalf("overall match share = %v", a.OverallMatchShare)
	}
	if got := a.TopShare(2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("TopShare(2) = %v", got)
	}
	if a.TopShare(99) > 1 {
		t.Fatal("TopShare must clamp k")
	}
	if s := a.Stat(Group(99)); s.Users != 0 {
		t.Fatal("out-of-range Stat should be empty")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Users != 0 || a.OverallAvgDistricts != 0 || a.OverallMatchShare != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

// randPlaces builds a random multiset of tweet places around a profile.
func randPlaces(r *rand.Rand, profile Place) []Place {
	pool := []Place{profile, jung, seodaemun, seongnam, uiwang}
	n := r.Intn(30)
	out := make([]Place, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[r.Intn(len(pool))])
	}
	return out
}

// Property: merged counts are descending, sum to TotalTweets, and the
// matched rank points at a genuinely matched string.
func TestGroupingInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		profile := []Place{yangcheon, uiwang}[r.Intn(2)]
		places := randPlaces(r, profile)
		u := BuildUserGrouping(1, profile, places)
		sum := 0
		for i, m := range u.Merged {
			sum += m.Count
			if i > 0 && m.Count > u.Merged[i-1].Count {
				return false // not descending
			}
			if m.Count <= 0 {
				return false
			}
		}
		if sum != u.TotalTweets || len(u.Merged) != u.DistinctDistricts {
			return false
		}
		if u.MatchedRank > 0 {
			m := u.Merged[u.MatchedRank-1]
			if !m.Matched() || m.Count != u.MatchedTweets {
				return false
			}
			// No earlier merged string may be matched.
			for _, e := range u.Merged[:u.MatchedRank-1] {
				if e.Matched() {
					return false
				}
			}
		} else {
			for _, m := range u.Merged {
				if m.Matched() {
					return false
				}
			}
		}
		return u.Group == GroupOfRank(u.MatchedRank)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: analysis shares sum to 1 and user counts partition the dataset.
func TestAnalysisPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var users []UserGrouping
		n := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			profile := []Place{yangcheon, uiwang}[r.Intn(2)]
			places := randPlaces(r, profile)
			if len(places) == 0 {
				places = []Place{jung} // keep the user in the analysis
			}
			users = append(users, BuildUserGrouping(int64(i), profile, places))
		}
		a := Analyze(users)
		totUsers, totTweets := 0, 0
		var shareSum float64
		for _, g := range Groups() {
			st := a.Stat(g)
			totUsers += st.Users
			totTweets += st.Tweets
			shareSum += st.UserShare
		}
		return totUsers == a.Users && totTweets == a.Tweets &&
			math.Abs(shareSum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeigherForms(t *testing.T) {
	top1 := BuildUserGrouping(1, yangcheon, []Place{yangcheon, yangcheon, jung}) // share 2/3
	none := BuildUserGrouping(2, yangcheon, []Place{jung})
	ref := Analyze([]UserGrouping{top1, none})

	hard := &Weigher{Form: WeightHardTop1}
	if hard.Weight(top1) != 1 || hard.Weight(none) != 0 {
		t.Fatal("hard weights wrong")
	}
	smooth := &Weigher{Form: WeightMatchShare}
	if got := smooth.Weight(top1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("smooth weight = %v", got)
	}
	prior := &Weigher{Form: WeightGroupPrior, Ref: &ref}
	if got := prior.Weight(top1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("prior weight = %v (Top1 group avg)", got)
	}
	if got := prior.Weight(none); got != 0 {
		t.Fatalf("prior None weight = %v", got)
	}
	floored := &Weigher{Form: WeightMatchShare, Floor: 0.1}
	if got := floored.Weight(none); got != 0.1 {
		t.Fatalf("floored weight = %v", got)
	}
	// Missing Ref yields floor, not panic.
	noRef := &Weigher{Form: WeightGroupPrior, Floor: 0.05}
	if got := noRef.Weight(top1); got != 0.05 {
		t.Fatalf("no-ref prior weight = %v", got)
	}
	tbl := smooth.WeightTable([]UserGrouping{top1, none})
	if len(tbl) != 2 || tbl[1] == 0 || tbl[2] != 0 {
		t.Fatalf("weight table = %v", tbl)
	}
}

func TestWeightFormString(t *testing.T) {
	if WeightHardTop1.String() != "hard-top1" ||
		WeightGroupPrior.String() != "group-prior" ||
		WeightMatchShare.String() != "match-share" ||
		WeightForm(9).String() != "unknown" {
		t.Fatal("weight form labels wrong")
	}
}
