package core

// The paper's conclusion (§V) proposes using the correlation analysis "to
// determine the weight factor for the location information" in tweet-based
// event-location estimation. This file turns the analysis into such weights:
// given a user, how much should an estimator trust their *profile* location
// as a proxy for where they actually are?

// WeightForm selects how a user's grouping converts into a weight.
type WeightForm int

const (
	// WeightHardTop1 trusts only Top-1 users (weight 1), everyone else 0 —
	// the crudest reading of the analysis.
	WeightHardTop1 WeightForm = iota
	// WeightGroupPrior assigns every user their group's average match share
	// from a reference analysis — usable when only the group is known.
	WeightGroupPrior
	// WeightMatchShare assigns each user their own smooth match share —
	// the fraction of their geo-tweets posted from the profile district.
	WeightMatchShare
)

// String implements fmt.Stringer.
func (w WeightForm) String() string {
	switch w {
	case WeightHardTop1:
		return "hard-top1"
	case WeightGroupPrior:
		return "group-prior"
	case WeightMatchShare:
		return "match-share"
	default:
		return "unknown"
	}
}

// Weigher computes per-user reliability weights under a chosen form,
// optionally calibrated by a reference Analysis (for WeightGroupPrior).
type Weigher struct {
	Form WeightForm
	// Ref supplies group priors; required for WeightGroupPrior.
	Ref *Analysis
	// Floor is the minimum weight handed out (default 0). A small floor
	// keeps low-reliability users from being discarded entirely, which
	// matters when an event area has few high-reliability users.
	Floor float64
}

// Weight returns the reliability weight for one user grouping, in [0,1].
func (w *Weigher) Weight(u UserGrouping) float64 {
	var v float64
	switch w.Form {
	case WeightHardTop1:
		if u.Group == Top1 {
			v = 1
		}
	case WeightGroupPrior:
		if w.Ref != nil {
			v = w.Ref.Stat(u.Group).AvgMatchShare
		}
	case WeightMatchShare:
		v = u.MatchShare()
	}
	if v < w.Floor {
		v = w.Floor
	}
	if v > 1 {
		v = 1
	}
	return v
}

// WeightTable precomputes weights for a whole dataset keyed by user ID.
func (w *Weigher) WeightTable(users []UserGrouping) map[int64]float64 {
	out := make(map[int64]float64, len(users))
	for _, u := range users {
		out[u.UserID] = w.Weight(u)
	}
	return out
}
