package core

import (
	"fmt"
	"sort"
)

// Group is the paper's user classification by matched-string rank.
type Group int

// Groups in figure order: Top-1 … Top-5, Top-+ (rank ≥ 6), None (no match).
const (
	Top1 Group = iota
	Top2
	Top3
	Top4
	Top5
	TopPlus
	None
	numGroups
)

// NumGroups is how many groups exist, for table allocation.
const NumGroups = int(numGroups)

// Groups lists all groups in display order.
func Groups() []Group {
	return []Group{Top1, Top2, Top3, Top4, Top5, TopPlus, None}
}

// String implements fmt.Stringer with the paper's axis labels.
func (g Group) String() string {
	switch g {
	case Top1:
		return "Top-1"
	case Top2:
		return "Top-2"
	case Top3:
		return "Top-3"
	case Top4:
		return "Top-4"
	case Top5:
		return "Top-5"
	case TopPlus:
		return "Top-+"
	case None:
		return "None"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// GroupOfRank maps a 1-based matched-string rank to its group; rank 0 means
// no matched string and maps to None.
func GroupOfRank(rank int) Group {
	switch {
	case rank <= 0:
		return None
	case rank <= 5:
		return Group(rank - 1)
	default:
		return TopPlus
	}
}

// UserGrouping is the method's full output for one user.
type UserGrouping struct {
	UserID  int64
	Profile Place
	// Merged is the merged-and-ordered string list (Table II): descending by
	// count, ties broken by tweet-place key so the order is deterministic.
	Merged []MergedString
	// MatchedRank is the 1-based rank of the matched string, 0 if absent.
	MatchedRank int
	// Group derives from MatchedRank.
	Group Group
	// TotalTweets is the user's geo-tagged tweet count.
	TotalTweets int
	// DistinctDistricts is how many different districts the user tweeted
	// from — Figure 6's quantity.
	DistinctDistricts int
	// MatchedTweets is the multiplicity of the matched string (0 when none),
	// the numerator of the reliability weight.
	MatchedTweets int
}

// MatchShare is the fraction of the user's geo-tweets posted from the
// profile district — the smooth reliability weight (§V).
func (u UserGrouping) MatchShare() float64 {
	if u.TotalTweets == 0 {
		return 0
	}
	return float64(u.MatchedTweets) / float64(u.TotalTweets)
}

// BuildUserGrouping runs the method for one user: merge the per-tweet places
// into counted strings, order them, locate the matched string, classify.
// tweetPlaces holds one Place per geo-tagged tweet (duplicates expected).
// A user with no geo-tagged tweets yields MatchedRank 0, group None, and an
// empty Merged list.
func BuildUserGrouping(userID int64, profile Place, tweetPlaces []Place) UserGrouping {
	counts := make(map[Place]int, len(tweetPlaces))
	for _, p := range tweetPlaces {
		counts[p]++
	}
	merged := make([]MergedString, 0, len(counts))
	for p, c := range counts {
		merged = append(merged, MergedString{
			LocString: LocString{UserID: userID, Profile: profile, Tweet: p},
			Count:     c,
		})
	}
	// Descending count; ties broken lexicographically by tweet key so equal
	// inputs always produce the same Table II.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Tweet.Key() < merged[j].Tweet.Key()
	})
	u := UserGrouping{
		UserID:            userID,
		Profile:           profile,
		Merged:            merged,
		TotalTweets:       len(tweetPlaces),
		DistinctDistricts: len(merged),
	}
	for i, m := range merged {
		if m.Matched() {
			u.MatchedRank = i + 1
			u.MatchedTweets = m.Count
			break
		}
	}
	u.Group = GroupOfRank(u.MatchedRank)
	return u
}

// BuildFromStrings is the wire-format entry point: it parses raw location
// strings (one per tweet, possibly for many users), groups them per user and
// runs the method for each. Strings for the same user must agree on the
// profile place; a conflict is an error because it means the upstream join
// was wrong.
func BuildFromStrings(raw []string) ([]UserGrouping, error) {
	type acc struct {
		profile Place
		places  []Place
	}
	byUser := make(map[int64]*acc)
	order := make([]int64, 0)
	for _, s := range raw {
		ls, err := ParseLocString(s)
		if err != nil {
			return nil, err
		}
		a, ok := byUser[ls.UserID]
		if !ok {
			a = &acc{profile: ls.Profile}
			byUser[ls.UserID] = a
			order = append(order, ls.UserID)
		} else if a.profile != ls.Profile {
			return nil, fmt.Errorf("core: user %d has conflicting profile places %q and %q",
				ls.UserID, a.profile.Key(), ls.Profile.Key())
		}
		a.places = append(a.places, ls.Tweet)
	}
	out := make([]UserGrouping, 0, len(byUser))
	for _, id := range order {
		a := byUser[id]
		out = append(out, BuildUserGrouping(id, a.profile, a.places))
	}
	return out, nil
}
