package core

// GroupStat aggregates one Top-k group over a dataset — one bar of the
// paper's result figures.
type GroupStat struct {
	Group Group
	// Users in this group and their share of all users (Fig. 7).
	Users     int
	UserShare float64
	// Tweets posted by this group's users and their share (slide "Number of
	// tweets in each group").
	Tweets     int
	TweetShare float64
	// AvgDistinctDistricts is the mean number of different tweet districts
	// per user in this group (Fig. 6).
	AvgDistinctDistricts float64
	// AvgMatchShare is the mean fraction of tweets posted from the profile
	// district, the group-level reliability weight.
	AvgMatchShare float64
}

// Analysis is the dataset-level result: everything Figures 6-7 and the
// slides' charts are drawn from.
type Analysis struct {
	Users  int
	Tweets int
	// Groups holds one entry per Group in display order (Top-1 … None).
	Groups [NumGroups]GroupStat
	// OverallAvgDistricts is the user-weighted mean number of tweet
	// districts across all groups — the "2.xx locations in average" the
	// paper closes §IV with.
	OverallAvgDistricts float64
	// OverallMatchShare is the dataset-level reliability: the fraction of
	// all geo-tweets posted from their author's profile district.
	OverallMatchShare float64
}

// Analyze aggregates user groupings into the paper's per-group statistics.
// Users with zero geo-tweets are skipped: the paper's refinement only keeps
// users that have GPS coordinates in their tweets.
func Analyze(users []UserGrouping) Analysis {
	var a Analysis
	for g := range a.Groups {
		a.Groups[g].Group = Group(g)
	}
	var matchedTweets int
	for _, u := range users {
		if u.TotalTweets == 0 {
			continue
		}
		g := &a.Groups[u.Group]
		g.Users++
		g.Tweets += u.TotalTweets
		g.AvgDistinctDistricts += float64(u.DistinctDistricts)
		g.AvgMatchShare += u.MatchShare()
		a.Users++
		a.Tweets += u.TotalTweets
		a.OverallAvgDistricts += float64(u.DistinctDistricts)
		matchedTweets += u.MatchedTweets
	}
	for g := range a.Groups {
		st := &a.Groups[g]
		if st.Users > 0 {
			st.AvgDistinctDistricts /= float64(st.Users)
			st.AvgMatchShare /= float64(st.Users)
		}
		if a.Users > 0 {
			st.UserShare = float64(st.Users) / float64(a.Users)
		}
		if a.Tweets > 0 {
			st.TweetShare = float64(st.Tweets) / float64(a.Tweets)
		}
	}
	if a.Users > 0 {
		a.OverallAvgDistricts /= float64(a.Users)
	}
	if a.Tweets > 0 {
		a.OverallMatchShare = float64(matchedTweets) / float64(a.Tweets)
	}
	return a
}

// Stat returns the aggregate row for one group.
func (a *Analysis) Stat(g Group) GroupStat {
	if int(g) < 0 || int(g) >= NumGroups {
		return GroupStat{Group: g}
	}
	return a.Groups[g]
}

// TopShare returns the combined user share of groups Top-1..Top-k (k ≤ 5) —
// the paper's "more than 60% of all users are in the Top-1 and Top-2 group"
// is TopShare(2).
func (a *Analysis) TopShare(k int) float64 {
	if k > 5 {
		k = 5
	}
	var s float64
	for i := 0; i < k; i++ {
		s += a.Groups[i].UserShare
	}
	return s
}
