package filters

import (
	"errors"
	"math"
	"math/rand"

	"stir/internal/geo"
)

// ParticleFilter estimates a static event location from noisy, variably
// reliable observations. Particles start uniform over a bounding rectangle;
// each observation reweights them with a Gaussian likelihood whose precision
// scales with the observation's reliability weight; systematic resampling
// keeps the population healthy.
type ParticleFilter struct {
	lats, lons []float64
	weights    []float64
	bounds     geo.Rect
	measStdDeg float64
	jitterDeg  float64
	rng        *rand.Rand
	n          int
}

// NewParticleFilter creates n particles uniform over bounds. measStdKm is
// the 1-sigma observation noise; jitterKm is the roughening noise applied at
// resampling (defaults to measStdKm/5 when zero).
func NewParticleFilter(n int, bounds geo.Rect, measStdKm, jitterKm float64, seed int64) (*ParticleFilter, error) {
	if n <= 0 {
		return nil, errors.New("filters: particle count must be positive")
	}
	if !bounds.Valid() || bounds.Area() == 0 {
		return nil, errors.New("filters: invalid particle bounds")
	}
	if measStdKm <= 0 {
		return nil, errors.New("filters: measurement std must be positive")
	}
	if jitterKm <= 0 {
		jitterKm = measStdKm / 5
	}
	pf := &ParticleFilter{
		lats:       make([]float64, n),
		lons:       make([]float64, n),
		weights:    make([]float64, n),
		bounds:     bounds,
		measStdDeg: measStdKm / 110.574,
		jitterDeg:  jitterKm / 110.574,
		rng:        rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		pf.lats[i] = bounds.MinLat + pf.rng.Float64()*(bounds.MaxLat-bounds.MinLat)
		pf.lons[i] = bounds.MinLon + pf.rng.Float64()*(bounds.MaxLon-bounds.MinLon)
		pf.weights[i] = 1 / float64(n)
	}
	return pf, nil
}

// Observe incorporates one observation with reliability weight in (0,1];
// weight <= 0 is ignored.
func (pf *ParticleFilter) Observe(obs geo.Point, weight float64) {
	if weight <= 0 {
		return
	}
	// Effective variance grows as reliability shrinks.
	variance := pf.measStdDeg * pf.measStdDeg / weight
	cosLat := math.Cos(obs.Lat * math.Pi / 180)
	var sum float64
	for i := range pf.lats {
		dLat := pf.lats[i] - obs.Lat
		dLon := (pf.lons[i] - obs.Lon) * cosLat
		ll := math.Exp(-(dLat*dLat + dLon*dLon) / (2 * variance))
		pf.weights[i] *= ll
		sum += pf.weights[i]
	}
	if sum <= 0 || math.IsNaN(sum) {
		// Degenerate: all particles incompatible; reset around observation.
		pf.resetAround(obs)
		pf.n++
		return
	}
	for i := range pf.weights {
		pf.weights[i] /= sum
	}
	if pf.effectiveN() < float64(len(pf.weights))/2 {
		pf.resample()
	}
	pf.n++
}

// effectiveN is the standard 1/Σw² degeneracy measure.
func (pf *ParticleFilter) effectiveN() float64 {
	var s float64
	for _, w := range pf.weights {
		s += w * w
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// resample performs systematic resampling plus roughening jitter.
func (pf *ParticleFilter) resample() {
	n := len(pf.weights)
	newLats := make([]float64, n)
	newLons := make([]float64, n)
	step := 1.0 / float64(n)
	u := pf.rng.Float64() * step
	var cum float64
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)*step
		for cum+pf.weights[j] < target && j < n-1 {
			cum += pf.weights[j]
			j++
		}
		newLats[i] = pf.lats[j] + pf.rng.NormFloat64()*pf.jitterDeg
		newLons[i] = pf.lons[j] + pf.rng.NormFloat64()*pf.jitterDeg
	}
	pf.lats, pf.lons = newLats, newLons
	for i := range pf.weights {
		pf.weights[i] = step
	}
}

// resetAround re-seeds all particles near p after degeneracy.
func (pf *ParticleFilter) resetAround(p geo.Point) {
	n := len(pf.weights)
	for i := 0; i < n; i++ {
		pf.lats[i] = p.Lat + pf.rng.NormFloat64()*pf.measStdDeg
		pf.lons[i] = p.Lon + pf.rng.NormFloat64()*pf.measStdDeg
		pf.weights[i] = 1 / float64(n)
	}
}

// Estimate returns the weighted particle mean.
func (pf *ParticleFilter) Estimate() geo.Point {
	var lat, lon, sum float64
	for i, w := range pf.weights {
		lat += pf.lats[i] * w
		lon += pf.lons[i] * w
		sum += w
	}
	if sum == 0 {
		return pf.bounds.Center()
	}
	return geo.Point{Lat: lat / sum, Lon: lon / sum}
}

// Observations returns how many observations were incorporated.
func (pf *ParticleFilter) Observations() int { return pf.n }
