// Package filters implements the two estimators the Toretter system (§II,
// Fig. 2) applied to the spatial attributes of event tweets: a Kalman filter
// and a particle filter over latitude/longitude. Both accept per-observation
// reliability weights — the hook the paper proposes for its correlation
// analysis: an observation from a user who rarely tweets where their profile
// claims should move the estimate less.
package filters

import (
	"errors"

	"stir/internal/geo"
)

// Kalman2D is a constant-position Kalman filter over (lat, lon) with
// independent axes: state x, variance P per axis, process noise Q, and
// measurement noise R. Weighted observations scale R by 1/weight, so a
// weight of zero is ignored entirely.
type Kalman2D struct {
	lat, lon   float64
	pLat, pLon float64
	q          float64 // process variance per update (deg²)
	r          float64 // base measurement variance (deg²)
	n          int
}

// NewKalman2D builds a filter starting at initial with the given initial
// variance (deg²), process variance q and measurement variance r.
func NewKalman2D(initial geo.Point, initialVar, q, r float64) (*Kalman2D, error) {
	if initialVar <= 0 || q < 0 || r <= 0 {
		return nil, errors.New("filters: variances must be positive (q may be zero)")
	}
	return &Kalman2D{
		lat: initial.Lat, lon: initial.Lon,
		pLat: initialVar, pLon: initialVar,
		q: q, r: r,
	}, nil
}

// Update incorporates one observation with the given reliability weight in
// (0,1]; weight <= 0 leaves the filter unchanged.
func (k *Kalman2D) Update(obs geo.Point, weight float64) {
	if weight <= 0 {
		return
	}
	rEff := k.r / weight
	// Predict: constant-position model just inflates variance.
	k.pLat += k.q
	k.pLon += k.q
	// Correct, per axis.
	gLat := k.pLat / (k.pLat + rEff)
	k.lat += gLat * (obs.Lat - k.lat)
	k.pLat *= 1 - gLat
	gLon := k.pLon / (k.pLon + rEff)
	k.lon += gLon * (obs.Lon - k.lon)
	k.pLon *= 1 - gLon
	k.n++
}

// Estimate returns the current state.
func (k *Kalman2D) Estimate() geo.Point { return geo.Point{Lat: k.lat, Lon: k.lon} }

// Updates returns how many observations were incorporated.
func (k *Kalman2D) Updates() int { return k.n }

// Variance returns the current per-axis variances (deg²).
func (k *Kalman2D) Variance() (pLat, pLon float64) { return k.pLat, k.pLon }
