package filters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stir/internal/geo"
)

var (
	trueEpi     = geo.Point{Lat: 36.5, Lon: 127.8}
	koreaBounds = geo.Rect{MinLat: 33, MinLon: 124, MaxLat: 39, MaxLon: 132}
)

// noisyObs samples an observation around the true epicentre with the given
// std in km.
func noisyObs(r *rand.Rand, stdKm float64) geo.Point {
	return trueEpi.Destination(r.Float64()*360, absNorm(r)*stdKm)
}

func absNorm(r *rand.Rand) float64 {
	v := r.NormFloat64()
	if v < 0 {
		v = -v
	}
	return v
}

func TestKalmanConvergesToTruth(t *testing.T) {
	k, err := NewKalman2D(koreaBounds.Center(), 10, 1e-6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k.Update(noisyObs(r, 15), 1)
	}
	if d := k.Estimate().DistanceKm(trueEpi); d > 10 {
		t.Fatalf("kalman estimate %.1f km off after 200 obs", d)
	}
	if k.Updates() != 200 {
		t.Fatalf("Updates = %d", k.Updates())
	}
	pLat, pLon := k.Variance()
	if pLat <= 0 || pLon <= 0 {
		t.Fatal("variances must stay positive")
	}
}

func TestKalmanWeightZeroIgnored(t *testing.T) {
	start := geo.Point{Lat: 35, Lon: 128}
	k, _ := NewKalman2D(start, 1, 0, 0.01)
	k.Update(geo.Point{Lat: 38, Lon: 125}, 0)
	if k.Estimate() != start || k.Updates() != 0 {
		t.Fatal("zero-weight update changed the filter")
	}
}

func TestKalmanLowWeightMovesLess(t *testing.T) {
	start := geo.Point{Lat: 35, Lon: 128}
	obs := geo.Point{Lat: 36, Lon: 129}
	full, _ := NewKalman2D(start, 1, 0, 0.01)
	low, _ := NewKalman2D(start, 1, 0, 0.01)
	full.Update(obs, 1)
	low.Update(obs, 0.1)
	dFull := full.Estimate().DistanceKm(start)
	dLow := low.Estimate().DistanceKm(start)
	if dLow >= dFull {
		t.Fatalf("low-weight update moved more (%.2f) than full (%.2f)", dLow, dFull)
	}
}

func TestKalmanValidation(t *testing.T) {
	if _, err := NewKalman2D(geo.Point{}, 0, 1, 1); err == nil {
		t.Fatal("zero initial variance accepted")
	}
	if _, err := NewKalman2D(geo.Point{}, 1, -1, 1); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := NewKalman2D(geo.Point{}, 1, 0, 0); err == nil {
		t.Fatal("zero r accepted")
	}
}

func TestParticleConvergesToTruth(t *testing.T) {
	pf, err := NewParticleFilter(2000, koreaBounds, 15, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		pf.Observe(noisyObs(r, 15), 1)
	}
	if d := pf.Estimate().DistanceKm(trueEpi); d > 12 {
		t.Fatalf("particle estimate %.1f km off after 100 obs", d)
	}
	if pf.Observations() != 100 {
		t.Fatalf("Observations = %d", pf.Observations())
	}
}

func TestParticleRobustToUnreliableObservers(t *testing.T) {
	// Half the observations come from a decoy 150 km away but carry low
	// reliability weight; the weighted filter should stay near the truth.
	decoy := trueEpi.Destination(90, 150)
	build := func(weighted bool) geo.Point {
		pf, err := NewParticleFilter(2000, koreaBounds, 15, 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 60; i++ {
			good := trueEpi.Destination(r.Float64()*360, absNorm(r)*10)
			bad := decoy.Destination(r.Float64()*360, absNorm(r)*10)
			wGood, wBad := 1.0, 1.0
			if weighted {
				wGood, wBad = 0.9, 0.1
			}
			pf.Observe(good, wGood)
			pf.Observe(bad, wBad)
		}
		return pf.Estimate()
	}
	unweighted := build(false)
	weighted := build(true)
	if weighted.DistanceKm(trueEpi) >= unweighted.DistanceKm(trueEpi) {
		t.Fatalf("weighting did not help: weighted %.1f km, unweighted %.1f km",
			weighted.DistanceKm(trueEpi), unweighted.DistanceKm(trueEpi))
	}
	if weighted.DistanceKm(trueEpi) > 40 {
		t.Fatalf("weighted estimate %.1f km off", weighted.DistanceKm(trueEpi))
	}
}

func TestParticleValidation(t *testing.T) {
	if _, err := NewParticleFilter(0, koreaBounds, 10, 0, 1); err == nil {
		t.Fatal("zero particles accepted")
	}
	if _, err := NewParticleFilter(10, geo.Rect{MinLat: 5, MaxLat: 1}, 10, 0, 1); err == nil {
		t.Fatal("invalid bounds accepted")
	}
	if _, err := NewParticleFilter(10, koreaBounds, 0, 0, 1); err == nil {
		t.Fatal("zero measurement std accepted")
	}
}

func TestParticleZeroWeightIgnored(t *testing.T) {
	pf, _ := NewParticleFilter(100, koreaBounds, 10, 0, 5)
	before := pf.Estimate()
	pf.Observe(trueEpi, 0)
	if pf.Observations() != 0 || pf.Estimate() != before {
		t.Fatal("zero-weight observation had an effect")
	}
}

func TestParticleDegenerateRecovery(t *testing.T) {
	// Observation far outside the particle cloud with tiny noise collapses
	// all likelihoods; the filter must reset rather than produce NaN.
	pf, _ := NewParticleFilter(50, geo.Rect{MinLat: 33, MinLon: 124, MaxLat: 34, MaxLon: 125}, 0.1, 0, 9)
	far := geo.Point{Lat: 38.9, Lon: 131.9}
	pf.Observe(far, 1)
	est := pf.Estimate()
	if est.DistanceKm(far) > 5 {
		t.Fatalf("degenerate reset failed, estimate %v", est)
	}
}

// Property: estimates always stay within a sane envelope of the bounds and
// never go NaN, regardless of observation order.
func TestParticleEstimateFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pf, err := NewParticleFilter(200, koreaBounds, 5+r.Float64()*20, 0, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			obs := geo.Point{
				Lat: koreaBounds.MinLat + r.Float64()*(koreaBounds.MaxLat-koreaBounds.MinLat),
				Lon: koreaBounds.MinLon + r.Float64()*(koreaBounds.MaxLon-koreaBounds.MinLon),
			}
			pf.Observe(obs, 0.05+r.Float64()*0.95)
		}
		est := pf.Estimate()
		return est.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
