package synth

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"stir/internal/admin"
)

// Scenario is the serialisable form of a Config: everything except the
// gazetteer, which is chosen by name. Researchers can keep population
// designs as JSON files and reproduce any dataset from (scenario, seed).
type Scenario struct {
	// Name documents the scenario; not used programmatically.
	Name string `json:"name"`
	// Gazetteer is "korea" or "world".
	Gazetteer string `json:"gazetteer"`
	Seed      int64  `json:"seed"`
	Users     int    `json:"users"`

	Mix      MobilityMix `json:"mobility_mix"`
	Profiles ProfileMix  `json:"profile_mix"`

	TweetsPerUserMean      float64 `json:"tweets_per_user_mean"`
	EngagedGeoUserFraction float64 `json:"engaged_geo_user_fraction"`
	CasualGeoUserFraction  float64 `json:"casual_geo_user_fraction"`
	GeoTweetFraction       float64 `json:"geo_tweet_fraction"`

	// Start/End bound tweet timestamps (RFC 3339); empty means the 2011
	// collection window the paper used.
	Start string `json:"start,omitempty"`
	End   string `json:"end,omitempty"`

	FollowerGraph bool `json:"follower_graph,omitempty"`
}

// ScenarioFromConfig captures a Config as a Scenario (gazetteer named by
// kind since the object itself is not serialisable).
func ScenarioFromConfig(name, gazetteer string, c Config) Scenario {
	return Scenario{
		Name:                   name,
		Gazetteer:              gazetteer,
		Seed:                   c.Seed,
		Users:                  c.Users,
		Mix:                    c.Mix,
		Profiles:               c.Profiles,
		TweetsPerUserMean:      c.TweetsPerUserMean,
		EngagedGeoUserFraction: c.EngagedGeoUserFraction,
		CasualGeoUserFraction:  c.CasualGeoUserFraction,
		GeoTweetFraction:       c.GeoTweetFraction,
		Start:                  c.Start.Format(time.RFC3339),
		End:                    c.End.Format(time.RFC3339),
		FollowerGraph:          c.FollowerGraph,
	}
}

// Config materialises the scenario, building the named gazetteer and
// validating the result.
func (s Scenario) Config() (Config, error) {
	var (
		gaz *admin.Gazetteer
		err error
	)
	switch s.Gazetteer {
	case "korea", "":
		gaz, err = admin.NewKoreaGazetteer()
	case "world":
		gaz, err = admin.NewWorldGazetteer()
	default:
		return Config{}, fmt.Errorf("synth: unknown gazetteer %q (want korea or world)", s.Gazetteer)
	}
	if err != nil {
		return Config{}, err
	}
	c := Config{
		Seed:                   s.Seed,
		Users:                  s.Users,
		Gazetteer:              gaz,
		Mix:                    s.Mix,
		Profiles:               s.Profiles,
		TweetsPerUserMean:      s.TweetsPerUserMean,
		EngagedGeoUserFraction: s.EngagedGeoUserFraction,
		CasualGeoUserFraction:  s.CasualGeoUserFraction,
		GeoTweetFraction:       s.GeoTweetFraction,
		Start:                  collectionStart,
		End:                    collectionEnd,
		FollowerGraph:          s.FollowerGraph,
	}
	if s.Start != "" {
		if c.Start, err = time.Parse(time.RFC3339, s.Start); err != nil {
			return Config{}, fmt.Errorf("synth: bad start time: %w", err)
		}
	}
	if s.End != "" {
		if c.End, err = time.Parse(time.RFC3339, s.End); err != nil {
			return Config{}, fmt.Errorf("synth: bad end time: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// WriteScenario serialises a scenario as indented JSON.
func WriteScenario(w io.Writer, s Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadScenario parses a scenario from JSON, rejecting unknown fields so
// typos in config files fail loudly instead of silently using defaults.
func ReadScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("synth: read scenario: %w", err)
	}
	return s, nil
}
