package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"stir/internal/geo"
	"stir/internal/twitter"
)

// EventConfig injects a target event (the paper's motivating example is an
// earthquake) into an existing population: users near the epicentre tweet
// about it shortly after onset, some with GPS, some relying only on their
// profile location — exactly the signal Toretter-style detectors consume.
type EventConfig struct {
	// Seed for reproducible injection.
	Seed int64
	// Epicenter of the event.
	Epicenter geo.Point
	// RadiusKm is how far the event is felt.
	RadiusKm float64
	// Onset is when the event happens.
	Onset time.Time
	// WindowMinutes is how long reports keep arriving after onset.
	WindowMinutes int
	// Keyword is the report term ("earthquake"); a second weaker term
	// ("shaking") is emitted too, mirroring Toretter's two queries.
	Keyword string
	// ReportFraction is the probability a user who felt the event tweets
	// about it.
	ReportFraction float64
	// GeoFraction is the probability a report carries GPS coordinates —
	// reports from the user's actual position near the epicentre.
	GeoFraction float64
	// NoiseReports adds unrelated background mentions of the keyword from
	// random users anywhere, testing detector robustness.
	NoiseReports int
}

// EventTruth records what was injected, for scoring estimators.
type EventTruth struct {
	Epicenter   geo.Point
	Onset       time.Time
	Reports     int
	GeoReports  int
	ReporterIDs []twitter.UserID
}

// InjectEvent posts event reports into svc from the population's users. A
// user "feels" the event when any of their haunts (or their home) lies
// within RadiusKm of the epicentre; the report's GPS position is sampled
// near that haunt, not at the epicentre — location estimation has to work
// through that spatial noise.
func InjectEvent(svc *twitter.Service, pop *Population, cfg EventConfig) (*EventTruth, error) {
	if cfg.Keyword == "" {
		cfg.Keyword = "earthquake"
	}
	if cfg.WindowMinutes <= 0 {
		cfg.WindowMinutes = 30
	}
	if cfg.RadiusKm <= 0 {
		return nil, fmt.Errorf("synth: event radius must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := &EventTruth{Epicenter: cfg.Epicenter, Onset: cfg.Onset}

	ids := make([]twitter.UserID, 0, len(pop.Truth))
	for id := range pop.Truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		ut := pop.Truth[id]
		at, feltDist := nearestFeltPlace(ut, cfg.Epicenter)
		if feltDist > cfg.RadiusKm {
			continue
		}
		// Chance of reporting decays with distance from the epicentre.
		pReport := cfg.ReportFraction * (1 - feltDist/(cfg.RadiusKm*1.2))
		if rng.Float64() >= pReport {
			continue
		}
		delay := time.Duration(rng.Intn(cfg.WindowMinutes)) * time.Minute
		text := eventText(rng, cfg.Keyword)
		var tag *twitter.GeoTag
		if rng.Float64() < cfg.GeoFraction {
			p := at.Destination(rng.Float64()*360, math.Abs(rng.NormFloat64())*3)
			tag = &twitter.GeoTag{Lat: p.Lat, Lon: p.Lon}
			truth.GeoReports++
		}
		if _, err := svc.PostTweet(id, text, cfg.Onset.Add(delay), tag); err != nil {
			return nil, fmt.Errorf("synth: inject event: %w", err)
		}
		truth.Reports++
		truth.ReporterIDs = append(truth.ReporterIDs, id)
	}

	// Background noise: keyword mentions far from the event.
	for i := 0; i < cfg.NoiseReports && len(ids) > 0; i++ {
		id := ids[rng.Intn(len(ids))]
		t := cfg.Onset.Add(-time.Duration(1+rng.Intn(600)) * time.Minute)
		text := fmt.Sprintf("reading about the %s in the news", cfg.Keyword)
		if _, err := svc.PostTweet(id, text, t, nil); err != nil {
			return nil, err
		}
	}
	return truth, nil
}

// nearestFeltPlace returns the user's haunt (or home) closest to the
// epicentre and its distance.
func nearestFeltPlace(ut *UserTruth, epi geo.Point) (geo.Point, float64) {
	best := ut.Home.Center
	bestD := epi.DistanceKm(best)
	for _, h := range ut.Haunts {
		if d := epi.DistanceKm(h.District.Center); d < bestD {
			best, bestD = h.District.Center, d
		}
	}
	return best, bestD
}

func eventText(rng *rand.Rand, keyword string) string {
	variants := []string{
		"whoa %s just now!!",
		"did anyone feel that %s?",
		"%s!! the building is shaking",
		"big %s here, everything rattled",
		"%s... that was scary",
	}
	return fmt.Sprintf(variants[rng.Intn(len(variants))], keyword)
}
