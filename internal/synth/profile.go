package synth

import (
	"fmt"

	"stir/internal/admin"
)

// renderProfile produces the free-text profile location for a user of the
// given quality kind, reproducing the shapes the paper's Fig. 3 shows.
func (g *Generator) renderProfile(kind ProfileKind, home *admin.District) string {
	switch kind {
	case PEmpty:
		return ""
	case PWellDefined:
		return g.wellDefinedText(home)
	case PExactGPS:
		p := g.pointIn(home)
		return fmt.Sprintf("%.4f, %.4f", p.Lat, p.Lon)
	case PVague:
		return pick(g, vagueProfiles)
	case PInsufficient:
		if home.Country == "KR" && g.rng.Float64() < 0.5 {
			return pick(g, []string{home.State, "Korea", "대한민국", "Republic of Korea"})
		}
		return pick(g, insufficientProfiles)
	case PMeaningless:
		return pick(g, meaninglessProfiles)
	case PAmbiguous:
		// The paper's example: two unrelated locations in one field.
		other := pick(g, []string{"Gold Coast Australia", "NYC", "Tokyo Japan", "Haeundae"})
		return truncateRunes(other+" / "+home.County, 30)
	default:
		return ""
	}
}

// wellDefinedText picks one of the uniquely-resolvable renderings of home.
func (g *Generator) wellDefinedText(home *admin.District) string {
	variants := []string{
		home.County,
		home.State + " " + home.County,
		home.County + ", " + home.State,
	}
	if home.Country == "KR" {
		variants = append(variants, home.County+", Korea")
	}
	// Alias spellings (Hangul, paper romanisations) when available.
	if len(home.Aliases) > 0 && g.rng.Float64() < 0.35 {
		a := home.Aliases[g.rng.Intn(len(home.Aliases))]
		variants = append(variants, a, home.State+" "+a)
	}
	return truncateRunes(pick(g, variants), 30)
}

func pick(g *Generator, xs []string) string { return xs[g.rng.Intn(len(xs))] }

func truncateRunes(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n])
}

var vagueProfiles = []string{
	"my home", "home", "my house", "somewhere", "everywhere",
	"in your heart", "internet", "우리집", "집",
}

var insufficientProfiles = []string{
	"Earth", "world", "planet earth", "Asia", "Korea", "대한민국",
}

var meaninglessProfiles = []string{
	"darangland :)", "~~~", "lalala", "ask me", "wonderland", "♥",
	"no.where.at.all", "(  ._.)", "behind you",
}
