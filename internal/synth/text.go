package synth

import (
	"strings"

	"stir/internal/admin"
)

// Tweet text generation. Event-detection baselines (TF-IDF trends, keyword
// tracking) need realistic word distributions: a Zipf-ish common vocabulary,
// topical words, and occasional mentions of the district the user is in —
// the paper's Fig. 4 shows tweets naming their own GPS location.

var commonWords = []string{
	"today", "lunch", "coffee", "work", "home", "friend", "weekend",
	"morning", "night", "rain", "sunny", "bus", "subway", "train",
	"movie", "music", "game", "study", "meeting", "dinner", "happy",
	"tired", "busy", "love", "time", "photo", "news", "phone", "book",
	"walk", "run", "shop", "food", "tea", "beer", "chicken", "pizza",
}

var topicWords = []string{
	"kpop", "concert", "drama", "baseball", "soccer", "election",
	"festival", "exam", "vacation", "traffic", "sale", "release",
}

// tweetText builds one tweet. When the tweet is geo-tagged at a district,
// the text sometimes names that district, as the paper observed.
func (g *Generator) tweetText(at *admin.District) string {
	var b strings.Builder
	n := 4 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		// Zipf-ish: low indices much more likely.
		idx := int(float64(len(commonWords)) * g.rng.Float64() * g.rng.Float64())
		if idx >= len(commonWords) {
			idx = len(commonWords) - 1
		}
		b.WriteString(commonWords[idx])
	}
	if g.rng.Float64() < 0.2 {
		b.WriteByte(' ')
		b.WriteString(topicWords[g.rng.Intn(len(topicWords))])
	}
	if at != nil && g.rng.Float64() < 0.25 {
		b.WriteString(" at ")
		b.WriteString(at.County)
	}
	s := b.String()
	if len([]rune(s)) > 140 {
		s = truncateRunes(s, 140)
	}
	return s
}
