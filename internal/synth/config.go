// Package synth generates the synthetic Twitter populations that stand in
// for the paper's gated datasets (a 52k-user Korean crawl and a worldwide
// "Lady Gaga" stream). Every behavioural knob the paper describes exists
// here explicitly: how users split between staying in their profile district
// and roaming (driving the Top-k distribution), how well-formed profile
// location text is (driving the refinement funnel), and how rarely tweets
// carry GPS coordinates (driving the collection funnel). Generation is fully
// deterministic given a seed.
package synth

import (
	"errors"
	"time"

	"stir/internal/admin"
)

// MobilityClass is the behavioural archetype of a user's geo-tweeting.
type MobilityClass int

const (
	// Resident posts most geo-tweets from the home (profile) district —
	// the Top-1 population.
	Resident MobilityClass = iota
	// SecondPlace posts more from one other anchor (workplace, campus) than
	// from home — the Top-2/Top-3 population.
	SecondPlace
	// Wanderer roams widely; home appears but well down the list — the
	// Top-3…Top-+ tail.
	Wanderer
	// NeverHome posts no geo-tweets from the home district at all: the
	// paper's None group ("provide their hometown for the profile but
	// usually stay outside", §IV). They frequent few districts.
	NeverHome
	numClasses
)

// String implements fmt.Stringer.
func (c MobilityClass) String() string {
	switch c {
	case Resident:
		return "resident"
	case SecondPlace:
		return "second-place"
	case Wanderer:
		return "wanderer"
	case NeverHome:
		return "never-home"
	default:
		return "unknown"
	}
}

// MobilityMix is the population share of each class; shares must sum to ~1.
type MobilityMix struct {
	Resident    float64
	SecondPlace float64
	Wanderer    float64
	NeverHome   float64
}

// ProfileMix is the distribution of profile-location text quality; shares
// must sum to ~1. Empty profiles dominate real crawls, which is why the
// paper kept only ~3k of 52k users.
type ProfileMix struct {
	Empty        float64 // no location set
	WellDefined  float64 // uniquely resolvable district text
	ExactGPS     float64 // literal coordinates pasted into the profile
	Vague        float64 // "my home"
	Insufficient float64 // "Seoul", "Korea", "Earth"
	Meaningless  float64 // "darangland :)"
	Ambiguous    float64 // two locations in one field
}

// Config drives one synthetic population.
type Config struct {
	// Seed makes the population reproducible.
	Seed int64
	// Users is the number of accounts to create.
	Users int
	// Gazetteer supplies districts (Korean or world).
	Gazetteer *admin.Gazetteer
	// Mix sets the mobility-class shares.
	Mix MobilityMix
	// Profiles sets the profile-quality shares.
	Profiles ProfileMix
	// TweetsPerUserMean is the mean of the (geometric) per-user tweet count.
	TweetsPerUserMean float64
	// EngagedGeoUserFraction is the share of users with a well-defined (or
	// GPS) profile location who tweet from a smart mobile device. The
	// paper's funnel implies the two correlate strongly: 47% of the users
	// with well-defined profiles had GPS tweets, against ~3% overall.
	EngagedGeoUserFraction float64
	// CasualGeoUserFraction is the geo-user share among everyone else.
	CasualGeoUserFraction float64
	// GeoTweetFraction is, for geo users, the per-tweet probability of
	// carrying GPS. The paper's geo users average ~20 GPS tweets out of
	// ~200 collected, i.e. roughly 0.1.
	GeoTweetFraction float64
	// Start and End bound tweet timestamps.
	Start, End time.Time
	// FollowerGraph wires a follower topology so the crawler can discover
	// the population from a seed (required for crawl experiments; optional
	// for direct analysis).
	FollowerGraph bool
}

// Validate checks a config for the mistakes that silently skew experiments.
func (c *Config) Validate() error {
	if c.Users <= 0 {
		return errors.New("synth: Users must be positive")
	}
	if c.Gazetteer == nil || c.Gazetteer.Len() == 0 {
		return errors.New("synth: Gazetteer is required")
	}
	if s := c.Mix.Resident + c.Mix.SecondPlace + c.Mix.Wanderer + c.Mix.NeverHome; s < 0.99 || s > 1.01 {
		return errors.New("synth: MobilityMix shares must sum to 1")
	}
	p := c.Profiles
	if s := p.Empty + p.WellDefined + p.ExactGPS + p.Vague + p.Insufficient + p.Meaningless + p.Ambiguous; s < 0.99 || s > 1.01 {
		return errors.New("synth: ProfileMix shares must sum to 1")
	}
	if c.TweetsPerUserMean <= 0 {
		return errors.New("synth: TweetsPerUserMean must be positive")
	}
	if c.EngagedGeoUserFraction < 0 || c.EngagedGeoUserFraction > 1 ||
		c.CasualGeoUserFraction < 0 || c.CasualGeoUserFraction > 1 ||
		c.GeoTweetFraction < 0 || c.GeoTweetFraction > 1 {
		return errors.New("synth: geo fractions must be in [0,1]")
	}
	if !c.End.After(c.Start) {
		return errors.New("synth: End must be after Start")
	}
	return nil
}

// collectionStart/End match the paper's 2011 collection era.
var (
	collectionStart = time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	collectionEnd   = time.Date(2011, 12, 1, 0, 0, 0, 0, time.UTC)
)

// KoreanConfig is the preset reproducing the paper's Korean dataset at the
// given scale. Defaults follow the paper's funnel: ~6% of users have a
// well-defined profile location; a third of users tweet from smartphones;
// geo-tagging is rare per tweet but geo users produce a usable handful.
func KoreanConfig(seed int64, users int, gaz *admin.Gazetteer) Config {
	return Config{
		Seed:      seed,
		Users:     users,
		Gazetteer: gaz,
		Mix: MobilityMix{
			Resident:    0.48,
			SecondPlace: 0.18,
			Wanderer:    0.05,
			NeverHome:   0.29,
		},
		Profiles: ProfileMix{
			Empty:        0.52,
			WellDefined:  0.065,
			ExactGPS:     0.005,
			Vague:        0.10,
			Insufficient: 0.21,
			Meaningless:  0.08,
			Ambiguous:    0.02,
		},
		TweetsPerUserMean:      100,
		EngagedGeoUserFraction: 0.5,
		CasualGeoUserFraction:  0.02,
		GeoTweetFraction:       0.12,
		Start:                  collectionStart,
		End:                    collectionEnd,
	}
}

// LadyGagaConfig is the preset for the worldwide Streaming-API dataset: far
// fewer tweets captured per user (a stream samples moments, not timelines),
// a more mobile population, and messier profiles.
func LadyGagaConfig(seed int64, users int, gaz *admin.Gazetteer) Config {
	return Config{
		Seed:      seed,
		Users:     users,
		Gazetteer: gaz,
		Mix: MobilityMix{
			Resident:    0.33,
			SecondPlace: 0.18,
			Wanderer:    0.14,
			NeverHome:   0.35,
		},
		Profiles: ProfileMix{
			Empty:        0.46,
			WellDefined:  0.075,
			ExactGPS:     0.005,
			Vague:        0.13,
			Insufficient: 0.20,
			Meaningless:  0.12,
			Ambiguous:    0.01,
		},
		TweetsPerUserMean:      9,
		EngagedGeoUserFraction: 0.5,
		CasualGeoUserFraction:  0.05,
		GeoTweetFraction:       0.15,
		Start:                  collectionStart,
		End:                    collectionEnd,
	}
}
