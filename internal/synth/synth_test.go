package synth

import (
	"strings"
	"testing"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/twitter"
)

func koreaGaz(t testing.TB) *admin.Gazetteer {
	t.Helper()
	g, err := admin.NewKoreaGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func generate(t testing.TB, cfg Config) (*twitter.Service, *Population) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := twitter.NewService()
	pop, err := g.Populate(svc)
	if err != nil {
		t.Fatal(err)
	}
	return svc, pop
}

func TestConfigValidation(t *testing.T) {
	gaz := koreaGaz(t)
	good := KoreanConfig(1, 100, gaz)
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Gazetteer = nil },
		func(c *Config) { c.Mix.Resident += 0.5 },
		func(c *Config) { c.Profiles.Empty += 0.5 },
		func(c *Config) { c.TweetsPerUserMean = 0 },
		func(c *Config) { c.EngagedGeoUserFraction = 1.5 },
		func(c *Config) { c.GeoTweetFraction = -0.1 },
		func(c *Config) { c.End = c.Start },
	}
	for i, mut := range cases {
		c := KoreanConfig(1, 100, gaz)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New should validate")
	}
}

func TestDeterminism(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(42, 200, gaz)
	svc1, pop1 := generate(t, cfg)
	svc2, pop2 := generate(t, cfg)
	if svc1.TweetCount() != svc2.TweetCount() || pop1.GeoTweets != pop2.GeoTweets {
		t.Fatalf("same seed, different output: %d/%d vs %d/%d",
			svc1.TweetCount(), pop1.GeoTweets, svc2.TweetCount(), pop2.GeoTweets)
	}
	// Spot-check per-user equality.
	for id, u1 := range pop1.Truth {
		u2 := pop2.Truth[id]
		if u2 == nil || u1.Home.ID() != u2.Home.ID() || u1.Class != u2.Class {
			t.Fatalf("user %d truth differs", id)
		}
	}
	// Different seed should differ somewhere.
	cfg.Seed = 43
	svc3, _ := generate(t, cfg)
	if svc3.TweetCount() == svc1.TweetCount() {
		// Counts could rarely coincide; check a profile too.
		same := true
		svc1.EachUser(func(u *twitter.User) bool {
			u3, err := svc3.User(u.ID)
			if err != nil || u3.ProfileLocation != u.ProfileLocation {
				same = false
				return false
			}
			return true
		})
		if same {
			t.Fatal("different seeds produced identical populations")
		}
	}
}

func TestPopulationShape(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(7, 2000, gaz)
	svc, pop := generate(t, cfg)
	if svc.UserCount() != 2000 {
		t.Fatalf("users = %d", svc.UserCount())
	}
	if pop.Tweets != svc.TweetCount() {
		t.Fatalf("pop.Tweets=%d svc=%d", pop.Tweets, svc.TweetCount())
	}
	// GPS rate should be rare overall (paper: ~0.25%); allow a loose band.
	rate := float64(pop.GeoTweets) / float64(pop.Tweets)
	if rate < 0.0005 || rate > 0.02 {
		t.Fatalf("geo rate = %.4f, outside plausible band", rate)
	}
	// Mobility classes roughly follow the mix.
	classCount := map[MobilityClass]int{}
	for _, ut := range pop.Truth {
		classCount[ut.Class]++
	}
	resShare := float64(classCount[Resident]) / 2000
	if resShare < 0.40 || resShare > 0.54 {
		t.Fatalf("resident share = %.3f, want ~0.47", resShare)
	}
	noneShare := float64(classCount[NeverHome]) / 2000
	if noneShare < 0.24 || noneShare > 0.35 {
		t.Fatalf("never-home share = %.3f, want ~0.29", noneShare)
	}
}

func TestHauntsRespectClass(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(11, 800, gaz)
	_, pop := generate(t, cfg)
	for _, ut := range pop.Truth {
		var total, homeW float64
		for _, h := range ut.Haunts {
			total += h.Weight
			if h.District == ut.Home {
				homeW = h.Weight
			}
		}
		if len(ut.Haunts) == 0 {
			t.Fatalf("user %d has no haunts", ut.ID)
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("user %d haunt weights sum to %v", ut.ID, total)
		}
		switch ut.Class {
		case Resident:
			if homeW < 0.3 {
				t.Fatalf("resident %d home weight %v too low", ut.ID, homeW)
			}
		case NeverHome:
			if homeW != 0 {
				t.Fatalf("never-home %d has home weight %v", ut.ID, homeW)
			}
		}
	}
}

func TestProfileKindsRendered(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(13, 3000, gaz)
	svc, pop := generate(t, cfg)
	kinds := map[ProfileKind]int{}
	for _, ut := range pop.Truth {
		kinds[ut.Profile]++
	}
	for _, k := range []ProfileKind{PEmpty, PWellDefined, PVague, PInsufficient, PMeaningless} {
		if kinds[k] == 0 {
			t.Errorf("no users with profile kind %v", k)
		}
	}
	// Profile text of empty users is empty; well-defined users' text is not.
	checked := 0
	svc.EachUser(func(u *twitter.User) bool {
		ut := pop.Truth[u.ID]
		switch ut.Profile {
		case PEmpty:
			if u.ProfileLocation != "" {
				t.Errorf("empty-kind user %d has text %q", u.ID, u.ProfileLocation)
			}
		case PWellDefined:
			if u.ProfileLocation == "" {
				t.Errorf("well-defined user %d has empty text", u.ID)
			}
		}
		if n := len([]rune(u.ProfileLocation)); n > twitter.MaxProfileLocationLen {
			t.Errorf("user %d profile location too long: %d runes", u.ID, n)
		}
		checked++
		return checked < 500
	})
}

func TestGeoTweetsLandInHaunts(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(17, 600, gaz)
	cfg.GeoTweetFraction = 0.2 // plenty of geo tweets for the check
	svc, pop := generate(t, cfg)
	checked := 0
	svc.EachTweet(func(tw *twitter.Tweet) bool {
		if tw.Geo == nil {
			return true
		}
		ut := pop.Truth[tw.UserID]
		p := geo.Point{Lat: tw.Geo.Lat, Lon: tw.Geo.Lon}
		ok := false
		for _, h := range ut.Haunts {
			if h.District.Center.DistanceKm(p) <= h.District.RadiusKm+0.5 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("geo tweet %d landed outside every haunt of user %d", tw.ID, tw.UserID)
		}
		checked++
		return checked < 2000
	})
	if checked == 0 {
		t.Fatal("no geo tweets generated")
	}
}

func TestFollowerGraphConnected(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(19, 300, gaz)
	cfg.FollowerGraph = true
	svc, pop := generate(t, cfg)
	if pop.SeedUser == 0 {
		t.Fatal("seed user not set")
	}
	// BFS from seed over follower edges must reach everyone.
	visited := map[twitter.UserID]bool{pop.SeedUser: true}
	queue := []twitter.UserID{pop.SeedUser}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		fs, err := svc.Followers(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			if !visited[f] {
				visited[f] = true
				queue = append(queue, f)
			}
		}
	}
	if len(visited) != 300 {
		t.Fatalf("BFS reached %d of 300 users", len(visited))
	}
}

func TestLadyGagaPreset(t *testing.T) {
	gaz, err := admin.NewWorldGazetteer()
	if err != nil {
		t.Fatal(err)
	}
	cfg := LadyGagaConfig(23, 500, gaz)
	svc, pop := generate(t, cfg)
	if svc.UserCount() != 500 {
		t.Fatalf("users = %d", svc.UserCount())
	}
	// Stream capture: far fewer tweets per user than the Korean crawl.
	avg := float64(pop.Tweets) / 500
	if avg > 20 {
		t.Fatalf("avg tweets per user = %.1f, expected stream-like small counts", avg)
	}
	// Home districts should span multiple countries.
	countries := map[string]bool{}
	for _, ut := range pop.Truth {
		countries[ut.Home.Country] = true
	}
	if len(countries) < 5 {
		t.Fatalf("only %d countries in world population", len(countries))
	}
}

func TestInjectEvent(t *testing.T) {
	gaz := koreaGaz(t)
	cfg := KoreanConfig(29, 1500, gaz)
	svc, pop := generate(t, cfg)
	before := svc.TweetCount()
	epi := geo.Point{Lat: 37.55, Lon: 126.99} // central Seoul
	truth, err := InjectEvent(svc, pop, EventConfig{
		Seed:           5,
		Epicenter:      epi,
		RadiusKm:       40,
		Onset:          time.Date(2011, 10, 1, 12, 0, 0, 0, time.UTC),
		WindowMinutes:  30,
		Keyword:        "earthquake",
		ReportFraction: 0.5,
		GeoFraction:    0.4,
		NoiseReports:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Reports < 50 {
		t.Fatalf("only %d reports injected near central Seoul", truth.Reports)
	}
	if truth.GeoReports == 0 || truth.GeoReports >= truth.Reports {
		t.Fatalf("geo reports = %d of %d", truth.GeoReports, truth.Reports)
	}
	added := svc.TweetCount() - before
	if added != truth.Reports+10 {
		t.Fatalf("added %d tweets, want %d reports + 10 noise", added, truth.Reports)
	}
	// Geo reports must lie within ~radius+noise of the epicentre.
	svc.EachTweet(func(tw *twitter.Tweet) bool {
		if tw.Geo == nil || tw.CreatedAt.Before(truth.Onset) ||
			!strings.Contains(tw.Text, "earthquake") {
			return true
		}
		p := geo.Point{Lat: tw.Geo.Lat, Lon: tw.Geo.Lon}
		if epi.DistanceKm(p) > 40+15 {
			t.Fatalf("event geo report %.0f km from epicentre", epi.DistanceKm(p))
		}
		return true
	})
	if _, err := InjectEvent(svc, pop, EventConfig{RadiusKm: 0}); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestSampleGeometricMean(t *testing.T) {
	g, err := New(KoreanConfig(3, 10, koreaGaz(t)))
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	n := 20000
	for i := 0; i < n; i++ {
		sum += sampleGeometric(g.rng, 50)
	}
	mean := float64(sum) / float64(n)
	if mean < 45 || mean > 55 {
		t.Fatalf("geometric mean = %.1f, want ~50", mean)
	}
	if sampleGeometric(g.rng, 0) != 0 {
		t.Fatal("zero mean should produce zero")
	}
}

func TestClassAndKindStrings(t *testing.T) {
	if Resident.String() != "resident" || NeverHome.String() != "never-home" ||
		MobilityClass(99).String() != "unknown" {
		t.Fatal("class labels wrong")
	}
	if PWellDefined.String() != "well-defined" || ProfileKind(99).String() != "unknown" {
		t.Fatal("profile kind labels wrong")
	}
}

func worldGaz() (*admin.Gazetteer, error) { return admin.NewWorldGazetteer() }
