package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"stir/internal/admin"
	"stir/internal/geo"
	"stir/internal/twitter"
)

// Generator produces a population into a twitter.Service.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// New validates cfg and returns a Generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// UserTruth is the generator's ground truth for one user, kept so tests and
// experiments can validate what the pipeline recovers.
type UserTruth struct {
	ID      twitter.UserID
	Home    *admin.District
	Class   MobilityClass
	Profile ProfileKind
	// Haunts are the districts the user actually geo-tweets from with their
	// sampling weights (Haunts[0] need not be Home).
	Haunts  []Haunt
	GeoUser bool
}

// Haunt is one frequented district and its visit weight.
type Haunt struct {
	District *admin.District
	Weight   float64
}

// ProfileKind tags which quality bucket the generated profile text fell in.
type ProfileKind int

// Profile kinds, mirroring ProfileMix fields.
const (
	PEmpty ProfileKind = iota
	PWellDefined
	PExactGPS
	PVague
	PInsufficient
	PMeaningless
	PAmbiguous
)

// String implements fmt.Stringer.
func (p ProfileKind) String() string {
	switch p {
	case PEmpty:
		return "empty"
	case PWellDefined:
		return "well-defined"
	case PExactGPS:
		return "exact-gps"
	case PVague:
		return "vague"
	case PInsufficient:
		return "insufficient"
	case PMeaningless:
		return "meaningless"
	case PAmbiguous:
		return "ambiguous"
	default:
		return "unknown"
	}
}

// Population is the full generation result.
type Population struct {
	Truth map[twitter.UserID]*UserTruth
	// SeedUser is a well-connected account suitable as the crawl seed (only
	// set when Config.FollowerGraph was true).
	SeedUser twitter.UserID
	// Tweets and GeoTweets count what was posted.
	Tweets    int
	GeoTweets int
}

// Populate generates users and tweets into svc.
func (g *Generator) Populate(svc *twitter.Service) (*Population, error) {
	pop := &Population{Truth: make(map[twitter.UserID]*UserTruth, g.cfg.Users)}
	districts, weights := g.cfg.Gazetteer.RandomWeights()
	cum := cumulative(weights)

	for i := 0; i < g.cfg.Users; i++ {
		truth, err := g.makeUser(svc, districts, cum)
		if err != nil {
			return nil, err
		}
		pop.Truth[truth.ID] = truth
		tw, geoTw, err := g.makeTweets(svc, truth)
		if err != nil {
			return nil, err
		}
		pop.Tweets += tw
		pop.GeoTweets += geoTw
	}
	if g.cfg.FollowerGraph {
		seed, err := g.wireFollowers(svc, pop)
		if err != nil {
			return nil, err
		}
		pop.SeedUser = seed
	}
	return pop, nil
}

// makeUser creates one account with home district, class and profile text.
func (g *Generator) makeUser(svc *twitter.Service, districts []*admin.District, cum []float64) (*UserTruth, error) {
	home := districts[sampleCum(g.rng, cum)]
	class := g.sampleClass()
	kind := g.sampleProfileKind()
	profile := g.renderProfile(kind, home)
	created := g.randTime(g.cfg.Start.AddDate(-3, 0, 0), g.cfg.Start)
	u, err := svc.CreateUser(screenName(g.rng), profile, langFor(home), created)
	if err != nil {
		return nil, fmt.Errorf("synth: create user: %w", err)
	}
	pGeo := g.cfg.CasualGeoUserFraction
	if kind == PWellDefined || kind == PExactGPS {
		pGeo = g.cfg.EngagedGeoUserFraction
	}
	truth := &UserTruth{
		ID:      u.ID,
		Home:    home,
		Class:   class,
		Profile: kind,
		GeoUser: g.rng.Float64() < pGeo,
	}
	truth.Haunts = g.makeHaunts(home, class, districts, cum)
	return truth, nil
}

// makeHaunts builds the user's visit distribution according to class. Nearby
// districts are preferred as secondary haunts, matching real commutes.
func (g *Generator) makeHaunts(home *admin.District, class MobilityClass, districts []*admin.District, cum []float64) []Haunt {
	near := g.cfg.Gazetteer.NearestDistricts(home.Center, 12)
	pickNear := func() *admin.District {
		return near[g.rng.Intn(len(near))]
	}
	pickAny := func() *admin.District {
		return districts[sampleCum(g.rng, cum)]
	}
	var haunts []Haunt
	add := func(d *admin.District, w float64) {
		for i := range haunts {
			if haunts[i].District == d {
				haunts[i].Weight += w
				return
			}
		}
		haunts = append(haunts, Haunt{District: d, Weight: w})
	}
	switch class {
	case Resident:
		// Home dominates; 2-6 minor haunts. Expected distinct districts ~3-4.
		add(home, 0.55+g.rng.Float64()*0.3)
		for n := 2 + g.rng.Intn(5); n > 0; n-- {
			add(pickNear(), 0.03+g.rng.Float64()*0.12)
		}
	case SecondPlace:
		// One anchor beats home, and the commute brings more incidental
		// districts than a resident sees (Fig. 6: avg districts rise with k).
		anchor := pickNear()
		for anchor == home {
			anchor = pickNear()
		}
		add(anchor, 0.35+g.rng.Float64()*0.15)
		add(home, 0.18+g.rng.Float64()*0.12)
		for n := 3 + g.rng.Intn(4); n > 0; n-- {
			add(pickNear(), 0.05+g.rng.Float64()*0.08)
		}
	case Wanderer:
		// Many haunts, home buried in the tail.
		for n := 7 + g.rng.Intn(5); n > 0; n-- {
			add(pickAny(), 0.08+g.rng.Float64()*0.15)
		}
		add(home, 0.03+g.rng.Float64()*0.05)
	case NeverHome:
		// Few districts, none of them home. The paper offers two stories:
		// commuters who sleep at home but tweet elsewhere nearby, and people
		// who kept a hometown profile after moving away entirely — the
		// latter make the profile location actively misleading.
		movedAway := g.rng.Float64() < 0.6
		pick := pickNear
		if movedAway {
			pick = pickAny
		}
		for n := 1 + g.rng.Intn(3); n > 0; n-- {
			d := pick()
			for d == home {
				d = pick()
			}
			add(d, 0.2+g.rng.Float64()*0.5)
		}
	}
	normalizeHaunts(haunts)
	return haunts
}

// makeTweets posts the user's tweets into the service.
func (g *Generator) makeTweets(svc *twitter.Service, truth *UserTruth) (tweets, geoTweets int, err error) {
	n := sampleGeometric(g.rng, g.cfg.TweetsPerUserMean)
	if n == 0 {
		return 0, 0, nil
	}
	// Pre-sort timestamps so tweet IDs are chronological per user.
	times := make([]time.Time, n)
	for i := range times {
		times[i] = g.randTime(g.cfg.Start, g.cfg.End)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	cumHaunt := hauntCumulative(truth.Haunts)
	for i := 0; i < n; i++ {
		var tag *twitter.GeoTag
		var at *admin.District
		if truth.GeoUser && len(truth.Haunts) > 0 && g.rng.Float64() < g.cfg.GeoTweetFraction {
			at = truth.Haunts[sampleCum(g.rng, cumHaunt)].District
			p := g.pointIn(at)
			tag = &twitter.GeoTag{Lat: p.Lat, Lon: p.Lon}
		}
		text := g.tweetText(at)
		if _, err := svc.PostTweet(truth.ID, text, times[i], tag); err != nil {
			return tweets, geoTweets, fmt.Errorf("synth: post tweet: %w", err)
		}
		tweets++
		if tag != nil {
			geoTweets++
		}
	}
	return tweets, geoTweets, nil
}

// pointIn samples a point inside the district: gaussian around the centre,
// clipped to the radius.
func (g *Generator) pointIn(d *admin.District) geo.Point {
	for tries := 0; tries < 8; tries++ {
		dist := math.Abs(g.rng.NormFloat64()) * d.RadiusKm / 2.2
		if dist > d.RadiusKm*0.95 {
			continue
		}
		return d.Center.Destination(g.rng.Float64()*360, dist)
	}
	return d.Center
}

// wireFollowers creates a follower topology: a hub-and-spoke community per
// state plus a global seed account everyone can be reached from, so a BFS
// crawl from the seed discovers the whole population (mirroring the paper's
// seed-user crawl).
func (g *Generator) wireFollowers(svc *twitter.Service, pop *Population) (twitter.UserID, error) {
	ids := make([]twitter.UserID, 0, len(pop.Truth))
	for id := range pop.Truth {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	seed := ids[0]
	// Chain each user to a random earlier user so the graph is connected
	// from the seed (follower edges point "outward": crawler asks for
	// followers of X and finds users who follow X).
	for i := 1; i < len(ids); i++ {
		target := ids[g.rng.Intn(i)]
		if err := svc.Follow(ids[i], target); err != nil {
			return 0, err
		}
		// A few extra edges for realism.
		for e := g.rng.Intn(3); e > 0; e-- {
			t2 := ids[g.rng.Intn(len(ids))]
			if t2 != ids[i] {
				_ = svc.Follow(ids[i], t2)
			}
		}
	}
	return seed, nil
}

// --- sampling helpers ---

func (g *Generator) sampleClass() MobilityClass {
	r := g.rng.Float64()
	m := g.cfg.Mix
	switch {
	case r < m.Resident:
		return Resident
	case r < m.Resident+m.SecondPlace:
		return SecondPlace
	case r < m.Resident+m.SecondPlace+m.Wanderer:
		return Wanderer
	default:
		return NeverHome
	}
}

func (g *Generator) sampleProfileKind() ProfileKind {
	r := g.rng.Float64()
	p := g.cfg.Profiles
	bounds := []struct {
		w float64
		k ProfileKind
	}{
		{p.Empty, PEmpty},
		{p.WellDefined, PWellDefined},
		{p.ExactGPS, PExactGPS},
		{p.Vague, PVague},
		{p.Insufficient, PInsufficient},
		{p.Meaningless, PMeaningless},
		{p.Ambiguous, PAmbiguous},
	}
	acc := 0.0
	for _, b := range bounds {
		acc += b.w
		if r < acc {
			return b.k
		}
	}
	return PEmpty
}

func (g *Generator) randTime(from, to time.Time) time.Time {
	d := to.Sub(from)
	return from.Add(time.Duration(g.rng.Int63n(int64(d))))
}

// sampleGeometric draws from a geometric distribution with the given mean
// (heavy-ish tail: many quiet users, a few prolific ones).
func sampleGeometric(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	u := r.Float64()
	return int(math.Log(1-u) / math.Log(1-p))
}

func cumulative(ws []float64) []float64 {
	out := make([]float64, len(ws))
	sum := 0.0
	for i, w := range ws {
		sum += w
		out[i] = sum
	}
	return out
}

func sampleCum(r *rand.Rand, cum []float64) int {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	x := r.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

func hauntCumulative(hs []Haunt) []float64 {
	ws := make([]float64, len(hs))
	for i, h := range hs {
		ws[i] = h.Weight
	}
	return cumulative(ws)
}

func normalizeHaunts(hs []Haunt) {
	var sum float64
	for _, h := range hs {
		sum += h.Weight
	}
	if sum == 0 {
		return
	}
	for i := range hs {
		hs[i].Weight /= sum
	}
}

func langFor(d *admin.District) string {
	if d.Country == "KR" {
		return "ko"
	}
	return "en"
}

var screenSyllables = []string{"min", "ji", "soo", "hye", "jun", "seo", "young", "kyu", "hana", "bora", "dae", "woo"}

func screenName(r *rand.Rand) string {
	a := screenSyllables[r.Intn(len(screenSyllables))]
	b := screenSyllables[r.Intn(len(screenSyllables))]
	return fmt.Sprintf("%s%s_%03d", a, b, r.Intn(1000))
}
