package synth

import (
	"bytes"
	"strings"
	"testing"

	"stir/internal/twitter"
)

func TestScenarioRoundTrip(t *testing.T) {
	gaz := koreaGaz(t)
	orig := KoreanConfig(42, 500, gaz)
	sc := ScenarioFromConfig("korean-1to100", "korea", orig)

	var buf bytes.Buffer
	if err := WriteScenario(&buf, sc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != orig.Seed || cfg.Users != orig.Users ||
		cfg.Mix != orig.Mix || cfg.Profiles != orig.Profiles ||
		cfg.TweetsPerUserMean != orig.TweetsPerUserMean ||
		!cfg.Start.Equal(orig.Start) || !cfg.End.Equal(orig.End) {
		t.Fatalf("roundtrip changed config:\n%+v\nvs\n%+v", cfg, orig)
	}
	// A population generated from the roundtripped config matches the
	// original exactly.
	g1, err := New(orig)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1, svc2 := twitter.NewService(), twitter.NewService()
	p1, err := g1.Populate(svc1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Populate(svc2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Tweets != p2.Tweets || p1.GeoTweets != p2.GeoTweets {
		t.Fatalf("populations differ: %d/%d vs %d/%d", p1.Tweets, p1.GeoTweets, p2.Tweets, p2.GeoTweets)
	}
}

func TestScenarioErrors(t *testing.T) {
	if _, err := ReadScenario(strings.NewReader(`{"bogus_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadScenario(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	s := Scenario{Gazetteer: "mars", Users: 10}
	if _, err := s.Config(); err == nil {
		t.Fatal("unknown gazetteer accepted")
	}
	s = Scenario{Gazetteer: "korea", Users: 10, Start: "not-a-time"}
	if _, err := s.Config(); err == nil {
		t.Fatal("bad start time accepted")
	}
	// Valid gazetteer but invalid mix fails validation.
	s = Scenario{Gazetteer: "korea", Users: 10}
	if _, err := s.Config(); err == nil {
		t.Fatal("zero mix should fail Validate")
	}
}

func TestScenarioWorldGazetteer(t *testing.T) {
	gaz, err := worldGaz()
	if err != nil {
		t.Fatal(err)
	}
	orig := LadyGagaConfig(7, 200, gaz)
	sc := ScenarioFromConfig("gaga", "world", orig)
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gazetteer.Len() <= 200 {
		t.Fatalf("world gazetteer not loaded: %d districts", cfg.Gazetteer.Len())
	}
}
