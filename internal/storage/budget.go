package storage

import (
	"errors"
	"path/filepath"
	"strings"

	"stir/internal/storage/vfs"
)

// Disk budgets and the read-only degraded mode (DESIGN.md §16). The store
// tracks its own on-disk footprint; crossing the soft watermark triggers an
// emergency compaction in the background, crossing the hard watermark — or
// hitting a real ENOSPC anywhere on the write path — flips the store into an
// explicit read-only degraded mode instead of scattering raw write errors.
// Queries, scrubs and snapshots keep working while degraded; compaction and
// repair stay allowed because they free space, and a compaction that
// succeeds under the hard watermark heals the store.

// ErrReadOnly is returned by every mutating operation while the store is in
// disk-degraded mode. Callers branch on it with errors.Is to defer work
// instead of treating the store as broken.
var ErrReadOnly = errors.New("storage: read-only degraded mode (disk budget exhausted)")

// Budget bounds the store's on-disk footprint. Zero values disable the
// corresponding watermark; an unbudgeted store still degrades on ENOSPC.
type Budget struct {
	// SoftBytes is the emergency-compaction watermark: crossing it fires a
	// background compaction and the storage_disk_soft_trips_total alert
	// series, but writes continue.
	SoftBytes int64
	// HardBytes is the read-only watermark: crossing it flips the store
	// into degraded mode until compaction brings usage back under it.
	HardBytes int64
}

// Degraded reports whether the store is in read-only degraded mode.
func (s *Store) Degraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degraded
}

// DiskBytes reports the bytes the store's segment files occupy on disk.
func (s *Store) DiskBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.diskBytes
}

// TryRecover attempts to bring a degraded store back: it compacts (allowed
// while degraded, frees dead records, and proves the device accepts writes
// again) and reports whether the store is writable afterwards. On a healthy
// store it is just a compaction.
func (s *Store) TryRecover() error {
	if err := s.Compact(); err != nil {
		return err
	}
	if s.Degraded() {
		return ErrReadOnly
	}
	return nil
}

// noteDiskErrLocked classifies a write-path failure: disk exhaustion flips
// the store into degraded mode (further writes get the typed ErrReadOnly
// instead of raw ENOSPC from random call sites); anything else passes
// through untouched.
func (s *Store) noteDiskErrLocked(err error) {
	if err == nil || !vfs.IsNoSpace(err) {
		return
	}
	s.mENOSPC.Inc()
	s.degradeLocked()
}

func (s *Store) degradeLocked() {
	if s.degraded {
		return
	}
	s.degraded = true
	s.mHardTrips.Inc()
	s.mDegraded.Set(1)
}

// checkBudgetLocked runs after every successful append: it publishes the
// footprint gauge, flips degraded mode at the hard watermark and kicks an
// emergency compaction at the soft one (or at the hard one — compaction is
// the only way back).
func (s *Store) checkBudgetLocked() {
	b := s.opts.Budget
	s.mDiskBytes.Set(float64(s.diskBytes))
	if b.HardBytes > 0 && s.diskBytes >= b.HardBytes {
		s.degradeLocked()
		s.kickCompactionLocked()
		return
	}
	if b.SoftBytes > 0 && s.diskBytes >= b.SoftBytes {
		if !s.softTripped {
			s.softTripped = true
			s.mSoftTrips.Inc()
		}
		s.kickCompactionLocked()
	} else {
		s.softTripped = false
	}
}

// kickCompactionLocked starts one background emergency compaction if none
// is already running and there is dead weight to reclaim. Rewriting a store
// with zero dead records frees nothing, so that case waits for deletes (or
// for the operator) rather than burning IO in a loop.
func (s *Store) kickCompactionLocked() {
	if s.compactInFlight || s.closed || s.dead == 0 {
		return
	}
	s.compactInFlight = true
	s.mEmergency.Inc()
	go func() {
		_ = s.Compact() // failures flip degraded mode via noteDiskErrLocked
		s.mu.Lock()
		s.compactInFlight = false
		s.mu.Unlock()
	}()
}

// recomputeDiskLocked resets the footprint from the actual segment sizes —
// used after structural changes (load, compaction, torn-tail truncation)
// where incremental accounting would drift.
func (s *Store) recomputeDiskLocked() {
	var total int64
	for _, f := range s.segs {
		if sz, err := f.Size(); err == nil {
			total += sz
		}
	}
	s.diskBytes = total
	s.mDiskBytes.Set(float64(total))
}

// maybeHealLocked clears degraded mode after a successful compaction proved
// the device writable and brought usage back under the hard watermark.
func (s *Store) maybeHealLocked() {
	b := s.opts.Budget
	if s.degraded && (b.HardBytes == 0 || s.diskBytes < b.HardBytes) {
		s.degraded = false
		s.tornTail = false
		s.mRecovered.Inc()
		s.mDegraded.Set(0)
	}
	if b.SoftBytes == 0 || s.diskBytes < b.SoftBytes {
		s.softTripped = false
	}
}

// Usage breaks down a store directory's disk footprint by namespace, so an
// operator (via `stir fsck -du`) can see what emergency compaction would
// free before it runs.
type Usage struct {
	Segments         int   // segment file count
	SegmentBytes     int64 // bytes held by seg-*.log
	LiveBytes        int64 // bytes of records the index still points at
	ReclaimableBytes int64 // segment bytes a compaction would free
	TmpFiles         int   // stale *.tmp files (swept on next Open)
	TmpBytes         int64
	QuarantineFiles  int // damaged ranges preserved by Repair
	QuarantineBytes  int64
}

// Usage reports the store's current per-namespace disk usage.
func (s *Store) Usage() (Usage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Usage{}, ErrClosed
	}
	var u Usage
	u.Segments = len(s.segs)
	for _, f := range s.segs {
		if sz, err := f.Size(); err == nil {
			u.SegmentBytes += sz
		}
	}
	// Batch records share one position across sub-entries; count each
	// physical record once.
	type physical struct {
		seg int
		off int64
	}
	seen := make(map[physical]bool, len(s.index))
	for _, pos := range s.index {
		p := physical{pos.seg, pos.off}
		if seen[p] {
			continue
		}
		seen[p] = true
		u.LiveBytes += pos.size
	}
	if u.ReclaimableBytes = u.SegmentBytes - u.LiveBytes; u.ReclaimableBytes < 0 {
		u.ReclaimableBytes = 0
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return u, err
	}
	for _, name := range names {
		if !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		u.TmpFiles++
		u.TmpBytes += s.sizeOf(filepath.Join(s.dir, name))
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if qnames, err := s.fs.ReadDir(qdir); err == nil {
		for _, name := range qnames {
			u.QuarantineFiles++
			u.QuarantineBytes += s.sizeOf(filepath.Join(qdir, name))
		}
	}
	return u, nil
}

func (s *Store) sizeOf(path string) int64 {
	f, err := s.fs.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return 0
	}
	return sz
}
