package storage

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"stir/internal/storage/vfs"
)

// Backup and restore. A snapshot is simply a stream of the store's live
// records in segment format — sorted by key, CRC-framed, no superseded data
// — so a snapshot file is itself a valid single-segment store: restore is
// copy+verify+rename, and a restored directory opens like any other.

// SnapshotReport summarises a Snapshot.
type SnapshotReport struct {
	Records int
	Bytes   int64
}

// Snapshot streams a consistent backup of every live key/value pair to w in
// segment format. It runs online against a live store: readers and the
// snapshot share the read lock, while writers are paused for the duration
// (the store's datasets are small, so the pause is short). The caller owns
// w's durability (fsync, upload, ...).
func (s *Store) Snapshot(w io.Writer) (SnapshotReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rep SnapshotReport
	if s.closed {
		return rep, ErrClosed
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := s.readValueLocked(k, s.index[k])
		if err != nil {
			return rep, fmt.Errorf("storage: snapshot %q: %w", k, err)
		}
		rec := encodeRecord([]byte(k), v, false)
		if _, err := w.Write(rec); err != nil {
			return rep, fmt.Errorf("storage: snapshot write: %w", err)
		}
		rep.Records++
		rep.Bytes += int64(len(rec))
	}
	s.mSnapshots.Inc()
	return rep, nil
}

// RestoreSnapshot materialises a snapshot stream as a fresh store in dir,
// which must not already contain segments. The snapshot is written to a
// temp file, every record CRC-verified, and only then renamed into place as
// the first segment and made durable — a bad or truncated snapshot leaves
// nothing behind.
func RestoreSnapshot(dir string, r io.Reader, opts Options) (SnapshotReport, error) {
	var rep SnapshotReport
	fsys := vfs.Or(opts.FS)
	if err := fsys.MkdirAll(dir); err != nil {
		return rep, fmt.Errorf("storage: restore: create dir: %w", err)
	}
	ids, err := listSegments(fsys, dir)
	if err != nil {
		return rep, err
	}
	if len(ids) > 0 {
		return rep, fmt.Errorf("storage: restore: %s already contains %d segments", dir, len(ids))
	}
	finalPath := filepath.Join(dir, fmt.Sprintf("%s%06d%s", segmentPrefix, 1, segmentSuffix))
	tmpPath := finalPath + tmpSuffix
	f, err := fsys.Create(tmpPath)
	if err != nil {
		return rep, err
	}
	discard := func(err error) (SnapshotReport, error) {
		f.Close()
		fsys.Remove(tmpPath)
		return rep, err
	}
	n, err := io.Copy(f, r)
	if err != nil {
		return discard(fmt.Errorf("storage: restore copy: %w", err))
	}
	if err := f.Sync(); err != nil {
		return discard(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmpPath)
		return rep, err
	}
	// Verify before publishing: every record must parse clean to the end.
	rf, err := fsys.Open(tmpPath)
	if err != nil {
		fsys.Remove(tmpPath)
		return rep, err
	}
	records, verr := verifySegment(rf, n)
	if cerr := rf.Close(); verr == nil {
		verr = cerr
	}
	if verr != nil {
		fsys.Remove(tmpPath)
		return rep, fmt.Errorf("storage: restore: snapshot damaged: %w", verr)
	}
	if err := fsys.Rename(tmpPath, finalPath); err != nil {
		fsys.Remove(tmpPath)
		return rep, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return rep, err
	}
	rep.Records = records
	rep.Bytes = n
	return rep, nil
}

// verifySegment walks a segment strictly: any short or corrupt record is an
// error. Returns the record count.
func verifySegment(f io.ReaderAt, size int64) (int, error) {
	var off int64
	records := 0
	for off < size {
		_, val, flags, n, err := readRecord(f, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			return records, fmt.Errorf("at offset %d: %w", off, err)
		}
		if flags&flagBatch != 0 {
			if _, derr := decodeBatchPayload(val); derr != nil {
				return records, fmt.Errorf("at offset %d: %w", off, derr)
			}
		}
		records++
		off += n
	}
	return records, nil
}
