package storage

import (
	"encoding/binary"
	"fmt"
)

// Write batches: several puts/deletes committed as a single log record, so a
// crash either applies the whole batch or none of it. The crawler uses this
// to commit a user's profile, tweets and checkpoint together — without it,
// a crash between the tweet writes and the checkpoint write would re-crawl
// (or worse, skip) a user.

const flagBatch = 2

// Batch accumulates operations; Commit writes them atomically.
type Batch struct {
	store *Store
	ops   []batchOp
}

type batchOp struct {
	key  string
	val  []byte
	tomb bool
}

// NewBatch starts an empty batch.
func (s *Store) NewBatch() *Batch { return &Batch{store: s} }

// Put queues a write.
func (b *Batch) Put(key string, val []byte) *Batch {
	b.ops = append(b.ops, batchOp{key: key, val: val})
	return b
}

// Delete queues a deletion.
func (b *Batch) Delete(key string) *Batch {
	b.ops = append(b.ops, batchOp{key: key, tomb: true})
	return b
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Commit writes the batch as one record and applies it to the index. An
// empty batch is a no-op. The batch can be reused after Commit.
func (b *Batch) Commit() error {
	if len(b.ops) == 0 {
		return nil
	}
	for _, op := range b.ops {
		if op.key == "" {
			return ErrEmptyKey
		}
	}
	payload := encodeBatchPayload(b.ops)
	// The batch record's own key is empty; sub-records carry the real keys.
	rec := encodeRecordFlags(nil, payload, flagBatch)

	s := b.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	pos, err := s.appendLocked(rec)
	if err != nil {
		return err
	}
	s.mBatchCommits.Inc()
	for i, op := range b.ops {
		if op.tomb {
			if _, had := s.index[op.key]; had {
				s.dead += 2
				delete(s.index, op.key)
			} else {
				s.dead++
			}
			continue
		}
		if _, had := s.index[op.key]; had {
			s.dead++
		}
		s.index[op.key] = recordPos{seg: pos.seg, off: pos.off, size: pos.size, sub: i}
		s.puts++
	}
	b.ops = b.ops[:0]
	return nil
}

// encodeBatchPayload serialises ops: count, then per op
// flags(1) keyLen(uvarint) valLen(uvarint) key val.
func encodeBatchPayload(ops []batchOp) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(ops)))
	buf = append(buf, tmp[:n]...)
	for _, op := range ops {
		flags := byte(0)
		if op.tomb {
			flags = flagTombstone
		}
		buf = append(buf, flags)
		n = binary.PutUvarint(tmp[:], uint64(len(op.key)))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(len(op.val)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, op.key...)
		buf = append(buf, op.val...)
	}
	return buf
}

// decodedOp is one operation recovered from a batch payload.
type decodedOp struct {
	key  string
	val  []byte
	tomb bool
}

func decodeBatchPayload(payload []byte) ([]decodedOp, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch count", ErrCorrupt)
	}
	payload = payload[n:]
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: implausible batch count %d", ErrCorrupt, count)
	}
	ops := make([]decodedOp, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(payload) < 1 {
			return nil, fmt.Errorf("%w: truncated batch op", ErrCorrupt)
		}
		flags := payload[0]
		payload = payload[1:]
		keyLen, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w: batch key length", ErrCorrupt)
		}
		payload = payload[n:]
		valLen, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w: batch value length", ErrCorrupt)
		}
		payload = payload[n:]
		if uint64(len(payload)) < keyLen+valLen {
			return nil, fmt.Errorf("%w: batch body shorter than lengths", ErrCorrupt)
		}
		key := string(payload[:keyLen])
		val := payload[keyLen : keyLen+valLen]
		payload = payload[keyLen+valLen:]
		ops = append(ops, decodedOp{key: key, val: val, tomb: flags&flagTombstone != 0})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after batch", ErrCorrupt)
	}
	return ops, nil
}
