package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stir/internal/obs"
	"stir/internal/storage/vfs"
)

// flipTestRecordLen is the on-disk size of the uniform records the salvage
// tests write: header + "k000" + "value-000".
const flipTestRecordLen = recordHeaderSize + 4 + 9

func fillUniform(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSalvageBitFlipMidSegment(t *testing.T) {
	mem := vfs.NewMem(1)
	reg := obs.NewRegistry()
	const dir = "store"
	s, err := Open(dir, Options{FS: mem, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	fillUniform(t, s, 100)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside record 50's value: mid-segment media corruption.
	seg := filepath.Join(dir, "seg-000001.log")
	if err := mem.FlipBit(seg, int64(50*flipTestRecordLen+recordHeaderSize+6), 0x01); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	s2, err := Open(dir, Options{FS: mem, Metrics: reg2})
	if err != nil {
		t.Fatalf("open over bit flip must salvage, got %v", err)
	}
	// The damaged record is lost; every other record survives.
	if _, err := s2.Get("k050"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("k050 should be gone, err = %v", err)
	}
	for i := 0; i < 100; i++ {
		if i == 50 {
			continue
		}
		v, err := s2.Get(fmt.Sprintf("k%03d", i))
		if err != nil || string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("k%03d = %q, %v", i, v, err)
		}
	}
	rep := s2.ScrubReport()
	if len(rep.CorruptRanges) != 1 || rep.Salvaged != 49 || rep.TornTails != 0 {
		t.Fatalf("open scrub report = %+v", rep)
	}
	if got := reg2.Counter("storage_salvaged_records_total").Value(); got != 49 {
		t.Fatalf("storage_salvaged_records_total = %d", got)
	}
	if got := reg2.Counter("storage_scrub_corrupt_ranges_total").Value(); got != 1 {
		t.Fatalf("storage_scrub_corrupt_ranges_total = %d", got)
	}

	// The damage is still physically present: an online Scrub re-finds it.
	scan, err := s2.Scrub()
	if err != nil || scan.Clean() {
		t.Fatalf("pre-repair scrub = %+v, %v", scan, err)
	}

	// Repair quarantines the damaged range and rewrites the segment.
	rrep, err := s2.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rrep.RewrittenSegments != 1 || rrep.QuarantinedRanges != 1 || rrep.QuarantinedBytes != flipTestRecordLen {
		t.Fatalf("repair report = %+v", rrep)
	}
	if got := reg2.Counter("storage_quarantined_records_total").Value(); got != 1 {
		t.Fatalf("storage_quarantined_records_total = %d", got)
	}
	if len(rrep.QuarantineFiles) != 1 {
		t.Fatalf("quarantine files = %v", rrep.QuarantineFiles)
	}
	qf, err := mem.Open(rrep.QuarantineFiles[0])
	if err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	qsize, _ := qf.Size()
	qf.Close()
	if qsize != flipTestRecordLen {
		t.Fatalf("quarantine size = %d", qsize)
	}

	// After repair the log verifies clean, and the store still serves.
	scan, err = s2.Scrub()
	if err != nil || !scan.Clean() {
		t.Fatalf("post-repair scrub = %+v, %v", scan, err)
	}
	if v, err := s2.Get("k099"); err != nil || string(v) != "value-099" {
		t.Fatalf("post-repair read: %q, %v", v, err)
	}
	if err := s2.Put("new", []byte("write")); err != nil {
		t.Fatalf("post-repair write: %v", err)
	}
	s2.Close()

	// A fresh open of the repaired directory is clean.
	s3, err := Open(dir, Options{FS: mem, Metrics: obs.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rep := s3.ScrubReport(); !rep.Clean() || rep.TornTails != 0 {
		t.Fatalf("reopen after repair = %+v", rep)
	}
	if s3.Len() != 100 { // 99 salvaged + "new"
		t.Fatalf("Len = %d", s3.Len())
	}
}

// TestRepairOnRealDisk runs the salvage/repair cycle through vfs.OS against
// real files, including the directory fsyncs and the on-disk quarantine.
func TestRepairOnRealDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillUniform(t, s, 20)
	s.Close()

	seg := filepath.Join(dir, "seg-000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt two separate records.
	for _, i := range []int{5, 11} {
		data[i*flipTestRecordLen+recordHeaderSize+2] ^= 0xFF
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep := s2.ScrubReport(); len(rep.CorruptRanges) != 2 {
		t.Fatalf("open report = %+v", rep)
	}
	rrep, err := s2.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rrep.QuarantinedRanges != 2 {
		t.Fatalf("repair = %+v", rrep)
	}
	for _, q := range rrep.QuarantineFiles {
		qb, err := os.ReadFile(q)
		if err != nil {
			t.Fatalf("quarantine file: %v", err)
		}
		if len(qb) != flipTestRecordLen {
			t.Fatalf("quarantine %s has %d bytes", q, len(qb))
		}
	}
	scan, err := s2.Scrub()
	if err != nil || !scan.Clean() {
		t.Fatalf("post-repair scrub = %+v, %v", scan, err)
	}
	for i := 0; i < 20; i++ {
		_, err := s2.Get(fmt.Sprintf("k%03d", i))
		if i == 5 || i == 11 {
			if !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("damaged k%03d err = %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("k%03d: %v", i, err)
		}
	}
}

func TestRepairNoDamageIsNoop(t *testing.T) {
	s, _ := openTemp(t, Options{})
	fillUniform(t, s, 10)
	rep, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RewrittenSegments != 0 || rep.QuarantinedRanges != 0 {
		t.Fatalf("noop repair = %+v", rep)
	}
	if v, err := s.Get("k003"); err != nil || string(v) != "value-003" {
		t.Fatalf("after noop repair: %q, %v", v, err)
	}
}

func TestScrubCleanStore(t *testing.T) {
	s, _ := openTemp(t, Options{MaxSegmentBytes: 256})
	fillUniform(t, s, 30)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 30 || rep.Segments < 2 {
		t.Fatalf("scrub = %+v", rep)
	}
}

func TestOpenSweepsStaleCompactionTemp(t *testing.T) {
	mem := vfs.NewMem(7)
	const dir = "store"
	s, err := Open(dir, Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Sync()
	s.Close()
	// Simulate a compaction that crashed before its rename.
	f, err := mem.Create(filepath.Join(dir, "seg-000002.log.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("half a compaction"))
	f.Close()
	mem.SyncDir(dir)

	s2, err := Open(dir, Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names, err := mem.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("stale temp survived open: %v", names)
		}
	}
	if v, err := s2.Get("a"); err != nil || string(v) != "1" {
		t.Fatalf("data lost sweeping temps: %q, %v", v, err)
	}
}

// TestSegmentRollSurvivesCrash: records synced before a roll, and the roll's
// fresh segment itself, must survive a power cut — the directory fsync after
// the roll is what keeps the new segment's entry alive.
func TestSegmentRollSurvivesCrash(t *testing.T) {
	mem := vfs.NewMem(8)
	const dir = "store"
	s, err := Open(dir, Options{FS: mem, MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("roll-%02d", i)
		if err := s.Put(k, bytes.Repeat([]byte{'r'}, 20)); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, k)
	}
	if ids, _ := listSegments(mem, dir); len(ids) < 3 {
		t.Fatalf("setup should roll segments, got %v", ids)
	}
	mem.Crash() // power cut with no warning

	s2, err := Open(dir, Options{FS: mem, MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, k := range acked {
		if _, err := s2.Get(k); err != nil {
			t.Fatalf("acked key %s lost after crash: %v", k, err)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, _ := openTemp(t, Options{MaxSegmentBytes: 512})
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%02d", i%25), []byte(fmt.Sprintf("gen%d", i)))
	}
	s.Delete("k00")
	if err := s.NewBatch().Put("b/1", []byte("x")).Put("b/2", []byte("y")).Delete("k01").Commit(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rep, err := s.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != s.Len() || rep.Bytes != int64(buf.Len()) {
		t.Fatalf("snapshot report = %+v, buf %d", rep, buf.Len())
	}

	dir2 := t.TempDir()
	rrep, err := RestoreSnapshot(dir2, bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Records != rep.Records {
		t.Fatalf("restore records = %d, want %d", rrep.Records, rep.Records)
	}
	s2, err := Open(dir2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Keys(), s.Keys(); len(got) != len(want) {
		t.Fatalf("restored keys %v != %v", got, want)
	}
	if err := s.Each(func(k string, v []byte) error {
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			return fmt.Errorf("restored %q = %q, %v (want %q)", k, got, err, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The restored store accepts writes.
	if err := s2.Put("post-restore", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRefusesNonEmptyDirAndBadSnapshot(t *testing.T) {
	s, dir := openTemp(t, Options{})
	s.Put("a", []byte("1"))
	var buf bytes.Buffer
	if _, err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Non-empty target refused.
	if _, err := RestoreSnapshot(dir, bytes.NewReader(buf.Bytes()), Options{}); err == nil {
		t.Fatal("restore into a live store dir should fail")
	}
	// Damaged snapshot refused, and nothing is left behind.
	bad := append([]byte{}, buf.Bytes()...)
	bad[recordHeaderSize] ^= 0xFF
	dir2 := t.TempDir()
	if _, err := RestoreSnapshot(dir2, bytes.NewReader(bad), Options{}); err == nil {
		t.Fatal("damaged snapshot should fail verification")
	}
	entries, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed restore left files: %v", entries)
	}
	// Truncated snapshot refused too.
	dir3 := t.TempDir()
	if _, err := RestoreSnapshot(dir3, bytes.NewReader(buf.Bytes()[:buf.Len()-2]), Options{}); err == nil {
		t.Fatal("truncated snapshot should fail verification")
	}
}

func TestSnapshotOfSalvagedStoreIsClean(t *testing.T) {
	// Back up a store that is carrying mid-segment damage: the snapshot
	// contains only the live, valid records and restores clean.
	mem := vfs.NewMem(9)
	const dir = "store"
	s, err := Open(dir, Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	fillUniform(t, s, 10)
	s.Close()
	seg := filepath.Join(dir, "seg-000001.log")
	if err := mem.FlipBit(seg, int64(4*flipTestRecordLen+recordHeaderSize+1), 0x10); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var buf bytes.Buffer
	rep, err := s2.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 9 {
		t.Fatalf("snapshot records = %d", rep.Records)
	}
	rrep, err := RestoreSnapshot("restored", bytes.NewReader(buf.Bytes()), Options{FS: mem})
	if err != nil || rrep.Records != 9 {
		t.Fatalf("restore = %+v, %v", rrep, err)
	}
	s3, err := Open("restored", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rep := s3.ScrubReport(); !rep.Clean() {
		t.Fatalf("restored store dirty: %+v", rep)
	}
}
