package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"stir/internal/obs"
	"stir/internal/storage/vfs"
)

// Power-cut chaos suite: run a deterministic workload over the fault
// filesystem, crash it at EVERY mutation boundary (every write, sync,
// directory sync, create, rename, remove — including the ones inside
// segment rolls and compactions), reboot, reopen, and check the store
// against a durability model:
//
//   - an acknowledged-synced write is never lost: if no operation touched a
//     key since its last successful Sync/Compact, the key must read back
//     exactly;
//   - an unacknowledged operation may survive whole, or not at all — the
//     observed value must be one of the attempted outcomes or the last
//     acked state, never an invention;
//   - after reopen the log verifies clean (running Repair first when the
//     reboot's torn writes left bit-flipped ranges mid-segment);
//   - the reopened store accepts and serves new writes.

// crashOutcome is the observable state of one key: present with a value, or
// absent.
type crashOutcome struct {
	present bool
	val     string
}

// crashModel tracks, per key, the last acked-durable outcome and every
// outcome attempted since — the allowed post-crash states.
type crashModel struct {
	base     map[string]crashOutcome   // durable as of the last acked Sync/Compact
	applied  map[string]crashOutcome   // state if every attempted op survived
	pending  map[string][]crashOutcome // attempted since the last ack, oldest first
	universe map[string]bool
}

func newCrashModel() *crashModel {
	return &crashModel{
		base:     map[string]crashOutcome{},
		applied:  map[string]crashOutcome{},
		pending:  map[string][]crashOutcome{},
		universe: map[string]bool{},
	}
}

// attempt records an atomic group (single op or whole batch) about to be
// executed. It is called BEFORE the store call: a torn write may persist the
// record even though the call returns an error.
func (m *crashModel) attempt(group map[string]crashOutcome) {
	for k, o := range group {
		m.applied[k] = o
		m.pending[k] = append(m.pending[k], o)
		m.universe[k] = true
	}
}

// acked marks every attempted op durable: a Sync or Compact returned success.
func (m *crashModel) acked() {
	for k, o := range m.applied {
		m.base[k] = o
	}
	m.pending = map[string][]crashOutcome{}
}

// allows reports whether got is an acceptable post-crash state for key k.
func (m *crashModel) allows(k string, got crashOutcome) bool {
	base, ok := m.base[k]
	if !ok {
		base = crashOutcome{}
	}
	if got == base {
		return true
	}
	for _, o := range m.pending[k] {
		if got == o {
			return true
		}
	}
	return false
}

func crashSeed(t *testing.T) int64 {
	if env := os.Getenv("STIR_CRASH_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad STIR_CRASH_SEED %q: %v", env, err)
		}
		return seed
	}
	return 2026
}

const (
	crashOps     = 1100 // store operations per workload run
	crashSegSize = 2048 // small segments force rolls mid-run
)

// runCrashWorkload drives a deterministic mixed workload (puts, deletes,
// batches, explicit syncs, compactions at fixed indices) against s, keeping
// the model in step. It stops at the first error.
func runCrashWorkload(s *Store, m *crashModel, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	val := func(i int) string {
		return fmt.Sprintf("v%d-%d%s", i, r.Intn(1000), strings.Repeat("x", r.Intn(24)))
	}
	for i := 1; i <= crashOps; i++ {
		if i%333 == 0 {
			// A successful compaction rewrites and fsyncs the whole live
			// state: everything attempted so far becomes durable.
			if err := s.Compact(); err != nil {
				return err
			}
			m.acked()
			continue
		}
		switch p := r.Intn(100); {
		case p < 55:
			k := keys[r.Intn(len(keys))]
			v := val(i)
			m.attempt(map[string]crashOutcome{k: {present: true, val: v}})
			if err := s.Put(k, []byte(v)); err != nil {
				return err
			}
		case p < 65:
			k := keys[r.Intn(len(keys))]
			m.attempt(map[string]crashOutcome{k: {}})
			if err := s.Delete(k); err != nil {
				return err
			}
		case p < 85:
			b := s.NewBatch()
			group := map[string]crashOutcome{}
			for j, n := 0, 2+r.Intn(4); j < n; j++ {
				k := keys[r.Intn(len(keys))]
				if r.Intn(5) == 0 {
					b.Delete(k)
					group[k] = crashOutcome{}
				} else {
					v := val(i)
					b.Put(k, []byte(v))
					group[k] = crashOutcome{present: true, val: v}
				}
			}
			m.attempt(group)
			if err := b.Commit(); err != nil {
				return err
			}
		default:
			if err := s.Sync(); err != nil {
				return err
			}
			m.acked()
		}
	}
	if err := s.Sync(); err != nil {
		return err
	}
	m.acked()
	return nil
}

// getOutcome reads key k as a crashOutcome.
func getOutcome(t *testing.T, s *Store, k string) crashOutcome {
	t.Helper()
	v, err := s.Get(k)
	if err == nil {
		return crashOutcome{present: true, val: string(v)}
	}
	if errors.Is(err, ErrKeyNotFound) {
		return crashOutcome{}
	}
	t.Fatalf("Get(%s): %v", k, err)
	return crashOutcome{}
}

// TestPowerCutAtEveryBoundary is the capstone: one fault-free pass counts
// the workload's mutation boundaries and pins the exact final state, then
// the workload is re-run once per boundary with the power cut scheduled
// there, rebooted, reopened and verified against the model.
func TestPowerCutAtEveryBoundary(t *testing.T) {
	seed := crashSeed(t)
	const dir = "store"
	opts := func(fsys vfs.FS, reg *obs.Registry) Options {
		return Options{FS: fsys, MaxSegmentBytes: crashSegSize, Metrics: reg}
	}

	// Pass 1: no crash. Count boundaries, require the workload shape the
	// suite is advertised to cover, and pin the exact no-fault end state.
	flt := vfs.NewFault(vfs.FaultConfig{Seed: seed})
	reg := obs.NewRegistry()
	s, err := Open(dir, opts(flt, reg))
	if err != nil {
		t.Fatal(err)
	}
	model := newCrashModel()
	if err := runCrashWorkload(s, model, seed); err != nil {
		t.Fatalf("fault-free workload failed: %v", err)
	}
	if got := reg.Counter("storage_compactions_total").Value(); got < 3 {
		t.Fatalf("workload ran %d compactions, want >= 3", got)
	}
	for k := range model.universe {
		if got := getOutcome(t, s, k); got != model.applied[k] {
			t.Fatalf("fault-free end state: %s = %+v, want %+v", k, got, model.applied[k])
		}
	}
	total := flt.Boundaries() // before Close: its sync boundaries are not replayed
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if total < crashOps {
		t.Fatalf("only %d boundaries for %d ops — fault FS not counting?", total, crashOps)
	}
	t.Logf("seed %d: %d ops -> %d crash boundaries", seed, crashOps, total)

	// Pass 2: crash at every boundary.
	var crashedDuringOpen, repairs, salvagedTotal int
	for k := int64(1); k <= total; k++ {
		flt := vfs.NewFault(vfs.FaultConfig{Seed: seed, CrashAt: k})
		m := newCrashModel()
		s, err := Open(dir, opts(flt, obs.Discard))
		if err != nil {
			if !errors.Is(err, vfs.ErrPowerCut) {
				t.Fatalf("boundary %d: open: %v", k, err)
			}
			crashedDuringOpen++
		} else {
			werr := runCrashWorkload(s, m, seed)
			if werr == nil {
				t.Fatalf("boundary %d: workload finished without hitting the cut", k)
			}
			if !errors.Is(werr, vfs.ErrPowerCut) {
				t.Fatalf("boundary %d: workload died of the wrong error: %v", k, werr)
			}
		}

		// Reboot: torn writes land, volatile namespace changes roll back.
		flt.Restart()
		s2, err := Open(dir, opts(flt, obs.Discard))
		if err != nil {
			t.Fatalf("boundary %d: reopen after crash: %v", k, err)
		}
		rep := s2.ScrubReport()
		salvagedTotal += rep.Salvaged

		// Durability: every key must be in its allowed post-crash state.
		for key := range m.universe {
			if got := getOutcome(t, s2, key); !m.allows(key, got) {
				t.Fatalf("boundary %d: key %s = %+v, allowed base=%+v pending=%+v (open report %s)",
					k, key, got, m.base[key], m.pending[key], rep.String())
			}
		}
		// No phantom keys.
		for _, key := range s2.Keys() {
			if !m.universe[key] {
				t.Fatalf("boundary %d: phantom key %q after reopen", k, key)
			}
		}
		// The log must verify clean — after quarantining any bit-flipped
		// ranges the reboot's torn writes left mid-segment.
		if !rep.Clean() {
			rrep, err := s2.Repair()
			if err != nil {
				t.Fatalf("boundary %d: repair: %v", k, err)
			}
			if rrep.QuarantinedRanges == 0 {
				t.Fatalf("boundary %d: dirty report %s but repair quarantined nothing", k, rep.String())
			}
			repairs++
			for key := range m.universe {
				if got := getOutcome(t, s2, key); !m.allows(key, got) {
					t.Fatalf("boundary %d: key %s = %+v invalid after repair", k, key, got)
				}
			}
		}
		scan, err := s2.Scrub()
		if err != nil {
			t.Fatalf("boundary %d: scrub: %v", k, err)
		}
		if !scan.Clean() {
			t.Fatalf("boundary %d: log dirty after reopen+repair: %s", k, scan.String())
		}
		// The survivor is a working store.
		if err := s2.Put("post-crash-probe", []byte("alive")); err != nil {
			t.Fatalf("boundary %d: post-crash put: %v", k, err)
		}
		if err := s2.Sync(); err != nil {
			t.Fatalf("boundary %d: post-crash sync: %v", k, err)
		}
		if v, err := s2.Get("post-crash-probe"); err != nil || string(v) != "alive" {
			t.Fatalf("boundary %d: post-crash get: %q, %v", k, v, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("boundary %d: close: %v", k, err)
		}
	}
	t.Logf("crashed at %d boundaries (%d during open), %d records salvaged, %d repairs",
		total, crashedDuringOpen, salvagedTotal, repairs)
}

// TestPowerCutWithLyingFsync re-runs a slice of the workload with every
// sync silently dropped. Durability guarantees are off the table — the
// drive is lying — but reopen must still never fail and the log must still
// parse to a usable store.
func TestPowerCutWithLyingFsync(t *testing.T) {
	seed := crashSeed(t)
	const dir = "store"
	for _, crashAt := range []int64{25, 100, 400} {
		flt := vfs.NewFault(vfs.FaultConfig{Seed: seed, CrashAt: crashAt, DropSyncRate: 1})
		m := newCrashModel()
		s, err := Open(dir, Options{FS: flt, MaxSegmentBytes: crashSegSize, Metrics: obs.Discard})
		if err == nil {
			if werr := runCrashWorkload(s, m, seed); werr != nil && !errors.Is(werr, vfs.ErrPowerCut) {
				t.Fatalf("crashAt %d: %v", crashAt, werr)
			}
		} else if !errors.Is(err, vfs.ErrPowerCut) {
			t.Fatal(err)
		}
		flt.Restart()
		s2, err := Open(dir, Options{FS: flt, MaxSegmentBytes: crashSegSize, Metrics: obs.Discard})
		if err != nil {
			t.Fatalf("crashAt %d: reopen with lying fsync: %v", crashAt, err)
		}
		if flt.DroppedSyncs() == 0 && crashAt > 25 {
			t.Fatalf("crashAt %d: no syncs dropped — rate not applied?", crashAt)
		}
		if err := s2.Put("probe", []byte("ok")); err != nil {
			t.Fatalf("crashAt %d: probe: %v", crashAt, err)
		}
		s2.Close()
	}
}
