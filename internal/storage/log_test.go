package storage

import (
	"stir/internal/storage/vfs"

	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.Put("user/1", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("user/1")
	if err != nil || string(got) != "alice" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Put("user/1", []byte("bob")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("user/1")
	if string(got) != "bob" {
		t.Fatalf("overwrite failed: %q", got)
	}
	if err := s.Delete("user/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("user/1"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	if err := s.Delete("user/1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Put("", nil); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key err = %v", err)
	}
}

func TestEmptyValueAndBinary(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty value roundtrip = %q, %v", got, err)
	}
	bin := []byte{0, 1, 2, 255, 254, '\n', '#'}
	if err := s.Put("bin", bin); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("bin")
	if !bytes.Equal(got, bin) {
		t.Fatalf("binary roundtrip = %v", got)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k050"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("reopened Len = %d, want 99", s2.Len())
	}
	got, err := s2.Get("k099")
	if err != nil || string(got) != "v99" {
		t.Fatalf("Get after reopen = %q, %v", got, err)
	}
	if _, err := s2.Get("k050"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("tombstone not honoured after reopen: %v", err)
	}
	// Writes continue to work after recovery.
	if err := s2.Put("k100", []byte("new")); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRolling(t *testing.T) {
	s, dir := openTemp(t, Options{MaxSegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{'x'}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := listSegments(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 5 {
		t.Fatalf("expected multiple segments, got %v", ids)
	}
	// All keys still readable across segments.
	for i := 0; i < 50; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%02d", i)); err != nil {
			t.Fatalf("key %d unreadable after roll: %v", i, err)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	// Corrupt: chop the last 3 bytes (mid-record).
	path := filepath.Join(dir, "seg-000001.log")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail should recover, got %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	if _, err := s2.Get("b"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("torn record should be dropped, err = %v", err)
	}
	// Store accepts new writes after truncation.
	if err := s2.Put("b", []byte("again")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Get("b"); string(v) != "again" {
		t.Fatal("rewrite after recovery failed")
	}
}

func TestCorruptCRCDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("payload-payload"))
	s.Put("b", []byte("second"))
	s.Close()

	// Flip a byte inside the first record's value.
	path := filepath.Join(dir, "seg-000001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen detects the damaged record, skips it, and salvages the valid
	// record beyond it — mid-segment corruption is not a torn tail.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("corrupt record should be gone, err = %v", err)
	}
	if v, err := s2.Get("b"); err != nil || string(v) != "second" {
		t.Fatalf("record beyond the corruption should be salvaged: %q, %v", v, err)
	}
	rep := s2.ScrubReport()
	if len(rep.CorruptRanges) != 1 || rep.Salvaged != 1 || rep.TornTails != 0 {
		t.Fatalf("scrub report = %+v", rep)
	}
}

func TestCompact(t *testing.T) {
	s, dir := openTemp(t, Options{MaxSegmentBytes: 512})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%02d", i%20) // 20 keys overwritten 10x
		if err := s.Put(key, []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("k00")
	before, _ := listSegments(vfs.OS{}, dir)
	if len(before) < 3 {
		t.Fatalf("setup should create several segments, got %v", before)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(vfs.OS{}, dir)
	if len(after) != 1 {
		t.Fatalf("after compaction want 1 segment, got %v", after)
	}
	if s.Len() != 19 {
		t.Fatalf("Len after compaction = %d, want 19", s.Len())
	}
	for i := 1; i < 20; i++ {
		v, err := s.Get(fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("gen%d", 180+i) // last generation of each key
		if string(v) != want {
			t.Fatalf("k%02d = %q, want %q", i, v, want)
		}
	}
	if st := s.Stats(); st.DeadRecords != 0 {
		t.Fatalf("DeadRecords after compaction = %d", st.DeadRecords)
	}
	// Store keeps working after compaction, including rolling.
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("post%d", i), bytes.Repeat([]byte{'y'}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("post49"); err != nil {
		t.Fatal(err)
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Put("extra", []byte("e"))
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 31 {
		t.Fatalf("Len = %d, want 31", s2.Len())
	}
}

func TestKeysAndPrefixAndEach(t *testing.T) {
	s, _ := openTemp(t, Options{})
	s.Put("tweet/2", []byte("b"))
	s.Put("tweet/1", []byte("a"))
	s.Put("user/1", []byte("u"))
	keys := s.Keys()
	want := []string{"tweet/1", "tweet/2", "user/1"}
	if len(keys) != 3 || keys[0] != want[0] || keys[1] != want[1] || keys[2] != want[2] {
		t.Fatalf("Keys = %v", keys)
	}
	pk := s.KeysWithPrefix("tweet/")
	if len(pk) != 2 || pk[0] != "tweet/1" {
		t.Fatalf("KeysWithPrefix = %v", pk)
	}
	var visited []string
	err := s.Each(func(k string, v []byte) error {
		visited = append(visited, k+"="+string(v))
		return nil
	})
	if err != nil || len(visited) != 3 || visited[0] != "tweet/1=a" {
		t.Fatalf("Each visited %v, err %v", visited, err)
	}
	stop := errors.New("stop")
	err = s.Each(func(k string, v []byte) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("Each should propagate fn error, got %v", err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Close()
	if err := s.Put("b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// Model-based property test: a sequence of random operations applied to the
// store and to a plain map must agree, including across a reopen.
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "storprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir, Options{MaxSegmentBytes: 300})
		if err != nil {
			return false
		}
		model := map[string]string{}
		keys := []string{"a", "b", "c", "d", "e"}
		for op := 0; op < 200; op++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", r.Int())
				if s.Put(k, []byte(v)) != nil {
					return false
				}
				model[k] = v
			case 2:
				if s.Delete(k) != nil {
					return false
				}
				delete(model, k)
			}
		}
		check := func(st *Store) bool {
			if st.Len() != len(model) {
				return false
			}
			for k, v := range model {
				got, err := st.Get(k)
				if err != nil || string(got) != v {
					return false
				}
			}
			return true
		}
		if !check(s) {
			return false
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(dir, Options{MaxSegmentBytes: 300})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t, Options{MaxSegmentBytes: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d/k%d", g, i)
				if err := s.Put(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestStats(t *testing.T) {
	s, _ := openTemp(t, Options{})
	s.Put("a", []byte("1"))
	s.Put("a", []byte("2"))
	s.Delete("a")
	st := s.Stats()
	if st.Puts != 2 || st.LiveKeys != 0 || st.DeadRecords < 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestShouldCompact(t *testing.T) {
	s, _ := openTemp(t, Options{})
	if s.ShouldCompact(0.5) {
		t.Fatal("empty store should not want compaction")
	}
	s.Put("k", []byte("v1"))
	if s.ShouldCompact(0.5) {
		t.Fatal("fresh store should not want compaction")
	}
	for i := 0; i < 9; i++ {
		s.Put("k", []byte("v"))
	}
	// 1 live, 9 dead → 90% dead.
	if !s.ShouldCompact(0.5) {
		t.Fatalf("overwrite-heavy store should want compaction: %+v", s.Stats())
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.ShouldCompact(0.5) {
		t.Fatal("just-compacted store should not want compaction")
	}
	// Zero threshold uses the 0.5 default: one fresh key among one live
	// record stays below it, one overwrite reaches it exactly.
	s.Put("k2", []byte("v"))
	if s.ShouldCompact(0) {
		t.Fatal("fresh keys should not trigger the default threshold")
	}
	s.Put("k2", []byte("v2"))
	s.Put("k", []byte("v2"))
	if !s.ShouldCompact(0) {
		t.Fatal("50% dead should reach the default threshold")
	}
}
