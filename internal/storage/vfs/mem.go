package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
)

// Mem is an in-memory FS that models what real disks actually promise:
//
//   - File content written but not fsynced is volatile. On Crash, each file
//     keeps its synced prefix; of the unsynced suffix a seeded-random amount
//     survives — nothing, everything, or a torn prefix that may carry a bit
//     flip (a half-written sector is not guaranteed to hold clean bytes).
//   - Namespace changes (create, rename, remove) are volatile until SyncDir.
//     On Crash the directory rolls back to its last-synced entry set: files
//     created but never dir-synced vanish, files removed without a dir sync
//     come back.
//
// Crash powers the FS back on over the surviving state, so a test can run a
// workload, cut the power at any point, "reboot" and reopen the store.
type Mem struct {
	mu      sync.Mutex
	rng     *rand.Rand
	files   map[string]*memFile // volatile namespace (cleaned full paths)
	durable map[string]*memFile // namespace as of the last SyncDir per dir
	dirs    map[string]bool
	down    bool

	// capacity models the device size in bytes (0 = unlimited). Once file
	// content plus external usage reaches it, writes stop mid-buffer with
	// ErrNoSpace (partial-write semantics, like real ENOSPC) and creates
	// fail. external models bytes held by other tenants of the same device;
	// raising it can push usage over capacity, at which point syncing
	// still-unsynced data also fails — the delayed-allocation late ENOSPC.
	capacity int64
	external int64
}

type memFile struct {
	data   []byte
	synced int // durable prefix length
}

// NewMem returns an empty Mem whose crash-time torn-write decisions replay
// deterministically from seed.
func NewMem(seed int64) *Mem {
	return &Mem{
		rng:     rand.New(rand.NewSource(seed)),
		files:   make(map[string]*memFile),
		durable: make(map[string]*memFile),
		dirs:    make(map[string]bool),
	}
}

// PowerOff makes every subsequent operation fail with ErrPowerCut until
// Crash powers the FS back on.
func (m *Mem) PowerOff() {
	m.mu.Lock()
	m.down = true
	m.mu.Unlock()
}

// Crash simulates a power cut and reboot: volatile namespace changes roll
// back, unsynced file suffixes are torn per the seeded schedule, and the FS
// powers back on.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	files := make(map[string]*memFile, len(m.durable))
	seen := make(map[*memFile]bool, len(m.durable))
	for name, f := range m.durable {
		files[name] = f
		if !seen[f] {
			seen[f] = true
			m.tearFile(f)
		}
	}
	m.files = files
	m.down = false
}

// tearFile applies crash semantics to one file's content: the synced prefix
// survives, the unsynced suffix survives fully, partially (possibly with a
// bit flip), or not at all. Whatever survived is durable after the reboot.
func (m *Mem) tearFile(f *memFile) {
	if un := len(f.data) - f.synced; un > 0 {
		keep := 0
		switch m.rng.Intn(3) {
		case 0: // lost entirely
		case 1:
			keep = m.rng.Intn(un + 1)
			if keep > 0 && m.rng.Intn(2) == 0 {
				i := f.synced + m.rng.Intn(keep)
				f.data[i] ^= 1 << m.rng.Intn(8)
			}
		case 2:
			keep = un
		}
		f.data = f.data[:f.synced+keep]
	}
	f.synced = len(f.data)
}

// FlipBit corrupts one durable byte of name in place (both the volatile and
// durable views share the content), simulating media corruption for scrub
// and salvage tests.
func (m *Mem) FlipBit(name string, off int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("vfs: flip bit: %w: %s", fs.ErrNotExist, name)
	}
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("vfs: flip bit: offset %d out of range [0,%d)", off, len(f.data))
	}
	f.data[off] ^= mask
	return nil
}

func (m *Mem) check() error {
	if m.down {
		return ErrPowerCut
	}
	return nil
}

// SetCapacity models a device of n bytes (0 = unlimited). Shrinking the
// capacity below current usage never tears existing content — it only makes
// further allocation fail.
func (m *Mem) SetCapacity(n int64) {
	m.mu.Lock()
	m.capacity = n
	m.mu.Unlock()
}

// AddExternalUsage adjusts the phantom bytes other tenants of the device
// hold: a positive delta fills the disk from outside (pressure building), a
// negative one frees it (space returning). Usage never goes below the bytes
// the FS's own files hold.
func (m *Mem) AddExternalUsage(delta int64) {
	m.mu.Lock()
	m.external += delta
	if m.external < 0 {
		m.external = 0
	}
	m.mu.Unlock()
}

// Used reports the modeled device usage: every file's content plus the
// external tenants' bytes.
func (m *Mem) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usedLocked()
}

func (m *Mem) usedLocked() int64 {
	used := m.external
	seen := make(map[*memFile]bool, len(m.files))
	for _, f := range m.files {
		if !seen[f] {
			seen[f] = true
			used += int64(len(f.data))
		}
	}
	return used
}

// availLocked returns how many bytes can still be allocated; negative when
// external pressure has pushed usage over capacity.
func (m *Mem) availLocked() int64 {
	if m.capacity <= 0 {
		return int64(1) << 62
	}
	return m.capacity - m.usedLocked()
}

// MkdirAll implements FS. Directory creation is treated as immediately
// durable — losing a mkdir is not an interesting failure mode for the store.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	for dir != "." && dir != string(filepath.Separator) {
		m.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	if m.availLocked() <= 0 {
		return nil, fmt.Errorf("vfs: create: %w: %s", ErrNoSpace, name)
	}
	f := &memFile{}
	m.files[name] = f
	return &memHandle{m: m, f: f, write: true}, nil
}

// OpenAppend implements FS.
func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	f, ok := m.files[name]
	if !ok {
		if m.availLocked() <= 0 {
			return nil, fmt.Errorf("vfs: open append: %w: %s", ErrNoSpace, name)
		}
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{m: m, f: f, write: true}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("vfs: open: %w: %s", fs.ErrNotExist, name)
	}
	return &memHandle{m: m, f: f}, nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return nil, err
	}
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("vfs: readdir: %w: %s", fs.ErrNotExist, dir)
	}
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	oldName, newName = filepath.Clean(oldName), filepath.Clean(newName)
	f, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("vfs: rename: %w: %s", fs.ErrNotExist, oldName)
	}
	delete(m.files, oldName)
	m.files[newName] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("vfs: remove: %w: %s", fs.ErrNotExist, name)
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS.
func (m *Mem) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("vfs: truncate: %w: %s", fs.ErrNotExist, name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("vfs: truncate: size %d out of range [0,%d]", size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// SyncDir implements FS: the current entry set of dir becomes durable.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, ok := m.files[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == dir {
			m.durable[name] = f
		}
	}
	return nil
}

type memHandle struct {
	m     *Mem
	f     *memFile
	write bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.check(); err != nil {
		return 0, err
	}
	if !h.write {
		return 0, fmt.Errorf("vfs: write on read-only handle")
	}
	// ENOSPC semantics: write what fits, then fail. The partial bytes are
	// appended unsynced, so the crash/tear model composes — a caller that
	// crashes after a short write loses or keeps the fragment exactly like
	// a torn write.
	if avail := h.m.availLocked(); avail < int64(len(p)) {
		if avail < 0 {
			avail = 0
		}
		h.f.data = append(h.f.data, p[:avail]...)
		return int(avail), fmt.Errorf("vfs: write %d of %d bytes: %w", avail, len(p), ErrNoSpace)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.check(); err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.check(); err != nil {
		return err
	}
	// Delayed-allocation ENOSPC: bytes that were buffered while space
	// existed can fail to allocate at fsync if external pressure has since
	// pushed the device over capacity. Already-synced content is safe.
	if h.f.synced < len(h.f.data) && h.m.availLocked() < 0 {
		return fmt.Errorf("vfs: sync: %w", ErrNoSpace)
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.check(); err != nil {
		return 0, err
	}
	return int64(len(h.f.data)), nil
}

func (h *memHandle) Close() error { return nil }
