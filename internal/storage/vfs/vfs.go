// Package vfs is the filesystem seam under internal/storage. The store
// performs every disk operation through the FS interface, so tests can swap
// the real filesystem for an in-memory model (Mem) that distinguishes
// volatile from durable state, or for a seeded fault wrapper (Fault) that
// simulates a power cut at any chosen write/sync/rename boundary — the
// disk-layer sibling of internal/resilience/fault.
//
// The interface is deliberately verb-shaped rather than a generic OpenFile:
// the store only ever creates-and-truncates (compaction temp files),
// opens-for-append (the active segment) or opens-for-read, and naming those
// three keeps both implementations small.
package vfs

import (
	"errors"
	"io"
	"os"
	"sort"
	"syscall"
)

// ErrPowerCut is returned by a Fault FS for every operation at and after the
// simulated power cut. Errors from the store wrap it, so callers can detect a
// cut with errors.Is regardless of which layer surfaced it.
var ErrPowerCut = errors.New("vfs: simulated power cut")

// ErrNoSpace is returned by a Mem or Fault FS when the modeled device is
// full: writes stop mid-buffer (partial-write semantics, like real ENOSPC),
// creates fail, and syncs of still-unsynced data fail. Errors from the store
// wrap it, so callers can detect disk exhaustion with errors.Is regardless
// of which layer surfaced it.
var ErrNoSpace = errors.New("vfs: no space left on device")

// IsNoSpace reports whether err is a disk-full condition — the simulated
// ErrNoSpace from this package or a real ENOSPC from the OS filesystem.
// Every layer that needs to branch on "out of disk, not broken" goes
// through this one classifier.
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// File is the handle surface the store needs: append writes, positional
// reads, fsync, and the current size.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// FS abstracts the directory the store lives in.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the base names of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newName with oldName's file.
	Rename(oldName, newName string) error
	// Remove unlinks name.
	Remove(name string) error
	// Truncate chops name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making created, renamed and
	// removed entries durable. Without it a crash can roll the namespace
	// back even though the file contents were synced.
	SyncDir(dir string) error
}

// Or returns fsys, or the real filesystem when fsys is nil.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}

// OS is the production FS backed by the real filesystem.
type OS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OS) Rename(oldName, newName string) error { return os.Rename(oldName, newName) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS: open the directory and fsync it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	// Some filesystems refuse directory fsync; treating that as fatal would
	// make the store unusable there for no gain.
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		err = nil
	}
	if err != nil {
		return err
	}
	return cerr
}
